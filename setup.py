"""Setup shim + optional native-kernel build.

The package is pure Python with one *optional* C extension:
``repro.core._native``, the compiled clock-engine kernel behind
``engine="native"`` (see DESIGN.md §13).  The build is best-effort by
design — the pure-Python twin in ``repro/core/hb_native.py`` is a
byte-identical fallback, so a missing compiler degrades performance,
never correctness.  Build in place with::

    python setup.py build_ext --inplace

which is what CI's native job and developers run; ``pip install``
without a toolchain still succeeds (the extension is marked optional).
"""

from setuptools import Extension, find_packages, setup
from setuptools.command.build_ext import build_ext


class optional_build_ext(build_ext):
    """Build ``repro.core._native`` if the toolchain allows; otherwise
    warn and continue — the pure fallback keeps the package working."""

    def build_extension(self, ext):
        try:
            super().build_extension(ext)
        except Exception as exc:  # compiler missing / broken headers
            import warnings

            warnings.warn(
                f"could not build optional extension {ext.name}: {exc}; "
                "repro will use the pure-Python native fallback"
            )


setup(
    package_dir={"": "src"},
    packages=find_packages("src"),
    ext_modules=[
        Extension(
            "repro.core._native",
            sources=["src/repro/core/_native.c"],
            optional=True,
        )
    ],
    cmdclass={"build_ext": optional_build_ext},
)
