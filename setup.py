"""Legacy setup shim.

The execution environment is offline with a setuptools too old for
PEP 517 editable installs (no ``wheel``); this shim lets
``pip install -e . --no-use-pep517`` (or plain ``pip install -e .`` on
older pips) work everywhere.  Metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
