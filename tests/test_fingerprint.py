"""Tests for chained fingerprints and canonical HBR forms."""

from hypothesis import given, strategies as st

from repro.core.fingerprint import CanonicalHBR, FingerprintChain


class TestFingerprintChain:
    def test_empty_chains_of_same_arity_agree(self):
        a, b = FingerprintChain(), FingerprintChain()
        a.ensure_thread(1)
        b.ensure_thread(1)
        assert a.prefix_fingerprint() == b.prefix_fingerprint()

    def test_update_changes_fingerprint(self):
        c = FingerprintChain()
        before = c.prefix_fingerprint()
        c.update(0, (1, 2, None), (1,))
        assert c.prefix_fingerprint() != before

    def test_same_updates_same_fingerprint(self):
        a, b = FingerprintChain(), FingerprintChain()
        for chain in (a, b):
            chain.update(0, (1, 2, None), (1,))
            chain.update(1, (3, 4, None), (1, 1))
        assert a.prefix_fingerprint() == b.prefix_fingerprint()

    def test_order_of_threads_does_not_collide(self):
        # same multiset of per-thread updates applied to different
        # threads must give different fingerprints
        a, b = FingerprintChain(), FingerprintChain()
        a.update(0, (1, 2, None), (1,))
        b.update(1, (1, 2, None), (0, 1))
        assert a.prefix_fingerprint() != b.prefix_fingerprint()

    def test_clock_matters(self):
        a, b = FingerprintChain(), FingerprintChain()
        a.update(0, (1, 2, None), (1, 0))
        b.update(0, (1, 2, None), (1, 5))
        assert a.prefix_fingerprint() != b.prefix_fingerprint()

    def test_event_count_tracked(self):
        c = FingerprintChain()
        assert c.event_count == 0
        c.update(0, (1, 1, None), (1,))
        assert c.event_count == 1

    def test_fork_is_independent(self):
        a = FingerprintChain()
        a.update(0, (1, 1, None), (1,))
        b = a.fork()
        assert a.prefix_fingerprint() == b.prefix_fingerprint()
        b.update(0, (1, 1, None), (2,))
        assert a.prefix_fingerprint() != b.prefix_fingerprint()

    @given(st.lists(st.tuples(st.integers(0, 3), st.integers(0, 5)),
                    max_size=20))
    def test_deterministic_across_instances(self, updates):
        a, b = FingerprintChain(), FingerprintChain()
        for chain in (a, b):
            for tid, label_part in updates:
                chain.update(tid, (label_part, 0, None), (tid + 1,))
        assert a.prefix_fingerprint() == b.prefix_fingerprint()


class TestCanonicalHBR:
    def test_freeze_strips_trailing_empty_threads(self):
        a, b = CanonicalHBR(), CanonicalHBR()
        a.update(0, (1, 1, None), (1,))
        b.update(0, (1, 1, None), (1,))
        b.update(3, (9, 9, None), (0, 0, 0, 1))
        # force thread 3 to exist in `a` too but with no events
        frozen_a = a.freeze()
        assert len(frozen_a) == 1

    def test_equal_relations_freeze_equal(self):
        a, b = CanonicalHBR(), CanonicalHBR()
        for c in (a, b):
            c.update(0, (1, 1, None), (1,))
            c.update(1, (2, 2, None), (1, 1))
        assert a.freeze() == b.freeze()

    def test_different_clocks_freeze_different(self):
        a, b = CanonicalHBR(), CanonicalHBR()
        a.update(0, (1, 1, None), (1, 0))
        b.update(0, (1, 1, None), (1, 9))
        assert a.freeze() != b.freeze()

    def test_freeze_is_hashable(self):
        c = CanonicalHBR()
        c.update(0, (1, 1, None), (1,))
        hash(c.freeze())
