"""Unit tests for the distributed-campaign building blocks.

The coordinator is a synchronous state machine (``handle`` maps one
message dict to one reply dict, clock injected), so the lease
lifecycle, dedup rules, stale-holder rules, stealing, poisoning and
crash-resume are all tested here without processes or sockets.  The
transports get small threaded echo tests; the full kill-a-worker
integration lives in ``test_campaign_chaos.py``.
"""

import threading

import pytest

from repro.campaign import (
    CampaignCell,
    CellResult,
    ChaosError,
    ChaosPlan,
    ChaosRule,
    canonical_report_dict,
    execute_cell,
    execute_cell_with_watchdog,
    merge_stolen_results,
)
from repro.campaign.distributed import (
    Coordinator,
    FileCoordinatorServer,
    FileWorkerChannel,
    TcpCoordinatorServer,
    TcpWorkerChannel,
    Task,
    TransportError,
)
from repro.campaign.distributed import messages as M
from repro.campaign.distributed.coordinator import EXACT_STEAL_EXPLORERS
from repro.campaign.distributed.transport import parse_hostport
from repro.clock import ManualClock
from repro.explore.base import ExplorationLimits

LIMITS = ExplorationLimits(max_schedules=500)


@pytest.fixture(scope="module")
def result_5_dfs():
    return execute_cell(CampaignCell(5, "dfs", 0), LIMITS)


@pytest.fixture(scope="module")
def result_1_dfs():
    return execute_cell(CampaignCell(1, "dfs", 0), LIMITS)


def make_coord(cells=((5, "dfs", 0),), clock=None, **kw):
    cells = [CampaignCell(*c) for c in cells]
    kw.setdefault("lease_timeout", 10.0)
    return Coordinator(cells, LIMITS, clock=clock or ManualClock(100.0), **kw)


def req(worker):
    return {"type": M.REQUEST, "worker": worker}


def hb(worker, task_id, schedules=0):
    return {"type": M.HEARTBEAT, "worker": worker, "task_id": task_id,
            "schedules": schedules}


def result_msg(worker, task_id, result, partial=None):
    return {"type": M.RESULT, "worker": worker, "task_id": task_id,
            "result": result.to_dict(), "partial": partial}


class TestHello:
    def test_protocol_mismatch_rejected(self):
        coord = make_coord()
        reply = coord.handle({"type": M.HELLO, "worker": "w1",
                              "protocol": 999})
        assert reply["type"] == M.ERROR
        assert "protocol mismatch" in reply["error"]

    def test_hello_carries_campaign_config(self):
        coord = make_coord(verify=False)
        reply = coord.handle({"type": M.HELLO, "worker": "w1",
                              "protocol": M.PROTOCOL_VERSION})
        assert reply["type"] == M.OK
        assert reply["limits"]["max_schedules"] == LIMITS.max_schedules
        assert reply["verify"] is False
        assert reply["lease_timeout"] == 10.0
        assert reply["heartbeat_interval"] == pytest.approx(2.5)

    def test_heartbeat_interval_is_clamped(self):
        assert make_coord(lease_timeout=100.0).handle(
            {"type": M.HELLO, "worker": "w", "protocol":
             M.PROTOCOL_VERSION})["heartbeat_interval"] == 5.0
        assert make_coord(lease_timeout=0.1).handle(
            {"type": M.HELLO, "worker": "w", "protocol":
             M.PROTOCOL_VERSION})["heartbeat_interval"] == 0.05

    def test_unknown_message_type(self):
        reply = make_coord().handle({"type": "frobnicate", "worker": "w"})
        assert reply["type"] == M.ERROR

    def test_missing_worker_id(self):
        reply = make_coord().handle({"type": M.REQUEST})
        assert reply["type"] == M.ERROR


class TestLeaseLifecycle:
    def test_grant_execute_complete(self, result_5_dfs):
        coord = make_coord()
        reply = coord.handle(req("w1"))
        assert reply["type"] == M.LEASE
        assert reply["task"]["task_id"] == "5:dfs:0"
        assert reply["task"]["attempt"] == 0
        # only one task: a second worker idles
        assert coord.handle(req("w2"))["type"] == M.IDLE
        assert coord.handle(
            result_msg("w1", "5:dfs:0", result_5_dfs))["type"] == M.OK
        assert coord.done
        assert coord.num_executed == 1
        assert coord.handle(req("w1"))["type"] == M.SHUTDOWN
        final = coord.result()
        assert final.results[0].ok
        assert final.results[0].stats.num_schedules == \
            result_5_dfs.stats.num_schedules

    def test_expired_lease_is_requeued_with_attempt_bump(self):
        clock = ManualClock(100.0)
        coord = make_coord(clock=clock)
        assert coord.handle(req("w1"))["type"] == M.LEASE
        clock.advance(coord.lease_timeout + 1.0)
        reply = coord.handle(req("w2"))
        assert reply["type"] == M.LEASE
        assert reply["task"]["task_id"] == "5:dfs:0"
        assert reply["task"]["attempt"] == 1
        assert coord.num_expired == 1

    def test_heartbeat_renews_the_lease(self):
        clock = ManualClock(100.0)
        coord = make_coord(clock=clock)
        coord.handle(req("w1"))
        for _ in range(4):
            clock.advance(0.9 * coord.lease_timeout)
            assert not coord.handle(
                hb("w1", "5:dfs:0", schedules=7)).get("abandon")
        # still leased: another worker has nothing to grab
        assert coord.handle(req("w2"))["type"] == M.IDLE
        assert coord.num_expired == 0

    def test_heartbeat_from_non_holder_is_abandoned(self):
        coord = make_coord()
        coord.handle(req("w1"))
        assert coord.handle(hb("w2", "5:dfs:0")).get("abandon") is True

    def test_heartbeat_for_unknown_task_is_abandoned(self):
        coord = make_coord()
        assert coord.handle(hb("w1", "9:dfs:9")).get("abandon") is True


class TestDedupAndStaleHolders:
    def test_duplicate_result_is_acknowledged_once(self, result_5_dfs):
        coord = make_coord()
        coord.handle(req("w1"))
        msg = result_msg("w1", "5:dfs:0", result_5_dfs)
        assert coord.handle(msg)["type"] == M.OK
        dup = coord.handle(msg)
        assert dup.get("duplicate") is True
        assert coord.num_executed == 1
        assert coord.num_duplicates == 1

    def test_stale_ok_result_accepted_when_no_steals(self, result_5_dfs):
        # w1's lease expires, w2 picks the task up — then w1's result
        # arrives late.  Statistics are cumulative, so it covers the
        # whole cell: accept it and cancel w2's duplicate attempt.
        clock = ManualClock(100.0)
        coord = make_coord(clock=clock)
        coord.handle(req("w1"))
        clock.advance(coord.lease_timeout + 1.0)
        assert coord.handle(req("w2"))["type"] == M.LEASE
        assert coord.handle(
            result_msg("w1", "5:dfs:0", result_5_dfs))["type"] == M.OK
        assert coord.done
        assert coord.num_executed == 1
        # w2's lease was cancelled with the acceptance
        assert coord.handle(hb("w2", "5:dfs:0")).get("abandon") is True

    def test_stale_failed_result_does_not_burn_a_retry(self):
        clock = ManualClock(100.0)
        coord = make_coord(clock=clock)
        coord.handle(req("w1"))
        clock.advance(coord.lease_timeout + 1.0)
        coord.handle(req("w2"))  # expiry counts retry #1, regrants
        failed = CellResult(CampaignCell(5, "dfs", 0), None, ok=False,
                            error="boom")
        reply = coord.handle(result_msg("w1", "5:dfs:0", failed))
        assert reply.get("duplicate") is True
        # the live attempt keeps its lease and no retry was charged
        assert not coord.handle(hb("w2", "5:dfs:0")).get("abandon")
        assert coord._book["5:dfs:0"].retries == 1

    def test_stale_result_rejected_after_a_steal(self, result_5_dfs):
        clock = ManualClock(100.0)
        coord = make_coord(clock=clock)
        coord.handle(req("w1"))
        clock.advance(coord.lease_timeout + 1.0)
        coord.handle(req("w2"))
        # a steal was granted on this task at some point: the stale
        # attempt's frontier no longer covers the donated subtrees
        coord._steals_granted["5:dfs:0"] = 1
        reply = coord.handle(result_msg("w1", "5:dfs:0", result_5_dfs))
        assert reply.get("abandon") is True
        assert coord.num_executed == 0


class TestCheckpoints:
    SNAP = {"version": 1, "explorer": "dfs", "program": "p",
            "frontier": {"items": []}, "stats": {"num_schedules": 7},
            "strategy": {}}

    def test_checkpoint_resumes_next_attempt(self):
        clock = ManualClock(100.0)
        coord = make_coord(clock=clock)
        coord.handle(req("w1"))
        assert coord.handle(
            {"type": M.CHECKPOINT, "worker": "w1", "task_id": "5:dfs:0",
             "snapshot": self.SNAP, "schedules": 7})["type"] == M.OK
        clock.advance(coord.lease_timeout + 1.0)
        reply = coord.handle(req("w2"))
        assert reply["type"] == M.LEASE
        assert reply["task"]["snapshot"] == self.SNAP

    def test_checkpoint_from_non_holder_is_abandoned(self):
        coord = make_coord()
        coord.handle(req("w1"))
        reply = coord.handle(
            {"type": M.CHECKPOINT, "worker": "w2", "task_id": "5:dfs:0",
             "snapshot": self.SNAP})
        assert reply.get("abandon") is True
        # and the snapshot was NOT taken
        assert "5:dfs:0" not in coord._checkpoints

    def test_checkpoint_renews_the_lease(self):
        clock = ManualClock(100.0)
        coord = make_coord(clock=clock)
        coord.handle(req("w1"))
        clock.advance(0.9 * coord.lease_timeout)
        coord.handle({"type": M.CHECKPOINT, "worker": "w1",
                      "task_id": "5:dfs:0", "snapshot": self.SNAP})
        clock.advance(0.5 * coord.lease_timeout)
        assert coord.handle(req("w2"))["type"] == M.IDLE  # not expired


class TestAdoption:
    def test_heartbeat_adopts_pending_task_after_restart(self,
                                                         result_5_dfs):
        # a restarted coordinator persists leases as *pending* tasks; a
        # live worker heartbeating one is adopted, not abandoned
        coord = make_coord()
        assert "5:dfs:0" in coord._pending
        reply = coord.handle(hb("w1", "5:dfs:0", schedules=3))
        assert not reply.get("abandon")
        assert coord.num_adopted == 1
        assert coord.handle(req("w2"))["type"] == M.IDLE
        assert coord.handle(
            result_msg("w1", "5:dfs:0", result_5_dfs))["type"] == M.OK
        assert coord.done

    def test_checkpoint_adopts_too(self):
        coord = make_coord()
        reply = coord.handle(
            {"type": M.CHECKPOINT, "worker": "w1", "task_id": "5:dfs:0",
             "snapshot": TestCheckpoints.SNAP})
        assert not reply.get("abandon")
        assert coord.num_adopted == 1
        assert coord._checkpoints["5:dfs:0"] == TestCheckpoints.SNAP


class TestStealing:
    SHARD = {"version": 1, "explorer": "dfs", "program": "p",
             "frontier": {"items": [1]}, "stats": None, "strategy": {}}

    def _coord_with_victim(self):
        clock = ManualClock(100.0)
        coord = make_coord(clock=clock)
        coord.handle(req("w1"))
        clock.advance(1.0)  # past steal_min_age
        assert coord.handle(req("w2"))["type"] == M.IDLE  # registers idle
        return coord, clock

    def test_steal_command_rides_the_heartbeat(self):
        coord, _ = self._coord_with_victim()
        reply = coord.handle(hb("w1", "5:dfs:0"))
        steal = reply.get("steal")
        assert steal is not None
        assert steal["steal_id"] == 1
        assert steal["max_shards"] >= 1

    def test_stolen_shards_become_pending_tasks(self):
        coord, _ = self._coord_with_victim()
        coord.handle(hb("w1", "5:dfs:0"))
        post = dict(TestCheckpoints.SNAP)
        reply = coord.handle(
            {"type": M.STOLEN, "worker": "w1", "task_id": "5:dfs:0",
             "steal_id": 1, "shards": [self.SHARD, self.SHARD],
             "snapshot": post})
        assert reply["shards_accepted"] == 2
        assert coord.num_steals == 1
        assert len(coord._pending) == 2
        assert all(t.startswith("5:dfs:0@steal1-")
                   for t in coord._pending)
        # the post-steal snapshot is now the authoritative checkpoint
        assert coord._checkpoints["5:dfs:0"] == post
        # the steal command stops riding heartbeats
        assert "steal" not in coord.handle(hb("w1", "5:dfs:0"))

    def test_duplicate_stolen_message_is_dropped(self):
        coord, _ = self._coord_with_victim()
        coord.handle(hb("w1", "5:dfs:0"))
        msg = {"type": M.STOLEN, "worker": "w1", "task_id": "5:dfs:0",
               "steal_id": 1, "shards": [self.SHARD], "snapshot": None}
        coord.handle(msg)
        assert coord.handle(dict(msg)).get("duplicate") is True
        assert len(coord._pending) == 1  # not enqueued twice

    def test_stolen_from_stale_holder_is_dropped(self):
        coord, clock = self._coord_with_victim()
        coord.handle(hb("w1", "5:dfs:0"))
        clock.advance(coord.lease_timeout + 1.0)
        coord.handle(req("w3"))  # expires w1, regrants to w3
        reply = coord.handle(
            {"type": M.STOLEN, "worker": "w1", "task_id": "5:dfs:0",
             "steal_id": 1, "shards": [self.SHARD], "snapshot": None})
        assert reply.get("abandon") is True
        assert coord.num_steals == 0

    def test_no_steal_for_inexact_strategies(self):
        assert "random" not in EXACT_STEAL_EXPLORERS
        clock = ManualClock(100.0)
        coord = make_coord(cells=((5, "random", 0),), clock=clock)
        coord.handle(req("w1"))
        clock.advance(1.0)
        coord.handle(req("w2"))
        assert "steal" not in coord.handle(hb("w1", "5:random:0"))

    def test_no_steal_when_disabled(self):
        clock = ManualClock(100.0)
        coord = make_coord(clock=clock, steal=False)
        coord.handle(req("w1"))
        clock.advance(1.0)
        coord.handle(req("w2"))
        assert "steal" not in coord.handle(hb("w1", "5:dfs:0"))


class TestPoisonQuarantine:
    def test_repeated_expiry_poisons_the_cell(self):
        clock = ManualClock(100.0)
        coord = make_coord(clock=clock, max_cell_retries=1)
        coord.handle(req("w1"))
        clock.advance(coord.lease_timeout + 1.0)
        assert coord.handle(req("w2"))["type"] == M.LEASE  # retry #1
        clock.advance(coord.lease_timeout + 1.0)
        assert coord.handle(req("w1"))["type"] == M.SHUTDOWN  # poisoned
        assert coord.done
        cell = coord.result().results[0]
        assert not cell.ok
        assert "quarantined after 2 failed attempts" in cell.error
        diag = cell.diagnostics
        assert diag["status"] == "quarantined"
        assert diag["retries"] == 2
        assert diag["workers"] == ["w1", "w2"]
        assert diag["last_failure"] == "lease_expired"
        assert "lease expired" in diag["traceback"]

    def test_failed_results_poison_too(self):
        coord = make_coord(max_cell_retries=0)
        coord.handle(req("w1"))
        failed = CellResult(CampaignCell(5, "dfs", 0), None, ok=False,
                            error="ZeroDivisionError: boom")
        coord.handle(result_msg("w1", "5:dfs:0", failed))
        cell = coord.result().results[0]
        assert not cell.ok
        assert cell.diagnostics["status"] == "quarantined"
        assert "ZeroDivisionError" in cell.diagnostics["traceback"]

    def test_poisoned_holder_is_abandoned(self):
        coord = make_coord(max_cell_retries=0, cells=((5, "dfs", 0),
                                                      (1, "dfs", 0)))
        coord.handle(req("w1"))
        failed = CellResult(CampaignCell(5, "dfs", 0), None, ok=False,
                            error="boom")
        coord.handle(result_msg("w1", "5:dfs:0", failed))
        # any worker still computing the poisoned cell gets told so
        assert coord.handle(hb("w2", "5:dfs:0")).get("abandon") is True


class TestStatePersistence:
    def test_kill_and_resume_round_trip(self, tmp_path, result_5_dfs,
                                        result_1_dfs):
        state = str(tmp_path / "coord-state.json")
        cells = ((5, "dfs", 0), (1, "dfs", 0))
        a = make_coord(cells=cells, state_path=state)
        a.handle(req("w1"))  # leases 5:dfs:0
        a.handle(result_msg("w1", "5:dfs:0", result_5_dfs))
        a.handle(req("w2"))  # leases 1:dfs:0
        a.handle({"type": M.CHECKPOINT, "worker": "w2",
                  "task_id": "1:dfs:0",
                  "snapshot": TestCheckpoints.SNAP})
        a.flush_state()

        b = make_coord(cells=cells, state_path=state)
        assert not b.state_discarded
        assert not b.done
        assert b.num_executed == 1
        # the completed cell was re-merged from persisted results
        assert b.result().results[0].ok
        # the in-flight lease came back as pending work with its
        # streamed checkpoint intact
        assert b._pending == ["1:dfs:0"]
        assert b._checkpoints["1:dfs:0"] == TestCheckpoints.SNAP
        # the still-live worker is adopted and finishes the campaign
        assert not b.handle(hb("w2", "1:dfs:0")).get("abandon")
        assert b.num_adopted == 1
        b.handle(result_msg("w2", "1:dfs:0", result_1_dfs))
        assert b.done

    def test_poison_survives_restart(self, tmp_path):
        state = str(tmp_path / "coord-state.json")
        a = make_coord(state_path=state, max_cell_retries=0)
        a.handle(req("w1"))
        a.handle(result_msg("w1", "5:dfs:0", CellResult(
            CampaignCell(5, "dfs", 0), None, ok=False, error="boom")))
        assert a.done
        a.flush_state()
        b = make_coord(state_path=state, max_cell_retries=0)
        assert b.done
        assert b.result().results[0].diagnostics["status"] == \
            "quarantined"

    def test_incompatible_state_is_discarded(self, tmp_path):
        state = str(tmp_path / "coord-state.json")
        make_coord(cells=((5, "dfs", 0),),
                   state_path=state).flush_state()
        b = make_coord(cells=((1, "dfs", 0),), state_path=state)
        assert b.state_discarded
        assert b._pending == ["1:dfs:0"]  # fresh queue, nothing mixed

    def test_garbage_state_file_starts_fresh(self, tmp_path):
        state = tmp_path / "coord-state.json"
        state.write_text("{ torn")
        b = make_coord(state_path=str(state))
        assert b._pending == ["5:dfs:0"]


def _serve(server, stop):
    while not stop.is_set():
        for msg, reply in server.poll(0.02):
            reply({"type": M.OK, "echo": msg})


class TestTransports:
    def _round_trip(self, server, channel):
        stop = threading.Event()
        t = threading.Thread(target=_serve, args=(server, stop),
                             daemon=True)
        t.start()
        try:
            for n in range(3):
                reply = channel.request({"type": "ping", "n": n},
                                        timeout=5.0)
                assert reply["type"] == M.OK
                assert reply["echo"]["n"] == n
                assert reply["echo"]["worker"] == channel.worker_id
        finally:
            stop.set()
            t.join(timeout=5.0)
            channel.close()
            server.close()

    def test_tcp_round_trip(self):
        server = TcpCoordinatorServer("127.0.0.1", 0)
        host, port = server.address
        self._round_trip(server, TcpWorkerChannel(host, port, "w-tcp"))

    def test_file_round_trip(self, tmp_path):
        server = FileCoordinatorServer(tmp_path / "q")
        self._round_trip(server,
                         FileWorkerChannel(tmp_path / "q", "w-file"))

    def test_file_channel_times_out_without_coordinator(self, tmp_path):
        channel = FileWorkerChannel(tmp_path / "q", "w-alone")
        with pytest.raises(TransportError):
            channel.request({"type": "ping"}, timeout=0.05,
                            max_attempts=2)

    def test_tcp_channel_fails_without_coordinator(self):
        channel = TcpWorkerChannel("127.0.0.1", 1, "w-alone")
        with pytest.raises(TransportError):
            channel.request({"type": "ping"}, timeout=0.05,
                            max_attempts=1)

    def test_parse_hostport(self):
        assert parse_hostport("10.0.0.1:99") == ("10.0.0.1", 99)
        assert parse_hostport(":99") == ("127.0.0.1", 99)
        assert parse_hostport("somehost", 7777) == ("somehost", 7777)


class TestChaosPlan:
    def test_round_trip(self):
        plan = ChaosPlan([
            ChaosRule("kill", cell="3:dfs:0", after_schedules=40),
            ChaosRule("partition", worker="w1", seconds=2.0, times=-1),
        ])
        again = ChaosPlan.from_dict(plan.to_dict())
        assert [r.to_dict() for r in again.rules] == \
            [r.to_dict() for r in plan.rules]

    def test_dump_load(self, tmp_path):
        path = tmp_path / "plan.json"
        ChaosPlan([ChaosRule("hang", seconds=1.0)]).dump(path)
        assert ChaosPlan.load(path).rules[0].action == "hang"

    def test_unknown_action_rejected(self):
        with pytest.raises(ValueError):
            ChaosRule("explode")

    def test_match_respects_threshold_and_times(self):
        plan = ChaosPlan([ChaosRule("fail", after_schedules=10)])
        assert plan.match("w", "c", 9) is None
        assert plan.match("w", "c", 10) is not None
        assert plan.match("w", "c", 11) is None  # times=1 exhausted

    def test_match_filters_worker_and_cell(self):
        plan = ChaosPlan([ChaosRule("fail", cell="3:dfs:0",
                                    worker="w1", times=-1)])
        assert plan.match("w2", "3:dfs:0", 0) is None
        assert plan.match("w1", "5:dfs:0", 0) is None
        assert plan.match("w1", "3:dfs:0", 0) is not None

    def test_probe_fail_raises(self):
        plan = ChaosPlan([ChaosRule("fail")])
        with pytest.raises(ChaosError):
            plan.probe("w", "c", 0)

    def test_probe_partition_returned_to_caller(self):
        plan = ChaosPlan([ChaosRule("partition", seconds=3.0)])
        rule = plan.probe("w", "c", 0)
        assert rule is not None
        assert rule.action == "partition"
        assert rule.seconds == 3.0


class TestDiagnostics:
    def test_cell_result_diagnostics_round_trip(self):
        diag = {"status": "quarantined", "retries": 3,
                "workers": ["w1", "w2"], "traceback": "...",
                "last_checkpoint_depth": 42}
        result = CellResult(CampaignCell(3, "dfs", 0), None, ok=False,
                            error="boom", diagnostics=diag)
        payload = result.to_dict()
        assert payload["diagnostics"] == diag
        assert CellResult.from_dict(payload).diagnostics == diag

    def test_healthy_cells_omit_diagnostics_key(self, result_5_dfs):
        assert "diagnostics" not in result_5_dfs.to_dict()
        assert CellResult.from_dict(
            result_5_dfs.to_dict()).diagnostics is None

    def test_watchdog_reports_timed_out(self):
        import time as _time
        hung = {"done": False}

        def wedge(explorer):
            if not hung["done"]:
                hung["done"] = True
                _time.sleep(3.0)

        result = execute_cell_with_watchdog(
            CampaignCell(1, "dfs", 0), LIMITS, hard_timeout=0.3,
            control_fn=wedge)
        assert not result.ok
        assert result.diagnostics["status"] == "timed_out"
        assert "hard watchdog" in result.error


class TestCanonicalReport:
    def test_strips_provenance_not_results(self):
        report = {
            "kind": "repro-campaign-report", "version": 1,
            "summary": {"num_cells": 1, "num_executed": 1,
                        "num_cached": 0, "num_failed": 0,
                        "num_unexpected": 0, "total_schedules": 12,
                        "total_events": 99, "jobs": 3, "elapsed": 1.5},
            "campaign": {"distributed": True},
            "cells": [{"bench_id": 5, "explorer": "dfs", "seed": 0,
                       "ok": True, "error": None,
                       "stats": {"num_schedules": 12, "elapsed": 0.4,
                                 "extra": {"dist_stolen_shards": 2,
                                           "real_metric": 7}}}],
        }
        canon = canonical_report_dict(report)
        assert "campaign" not in canon
        assert "jobs" not in canon["summary"]
        assert "elapsed" not in canon["summary"]
        assert canon["summary"]["total_schedules"] == 12
        stats = canon["cells"][0]["stats"]
        assert "elapsed" not in stats
        assert stats["extra"] == {"real_metric": 7}
        assert stats["num_schedules"] == 12

    def test_serial_and_distributed_views_agree(self):
        serial = {"summary": {"jobs": 1, "elapsed": 9.0,
                              "num_executed": 2, "num_cached": 0,
                              "num_failed": 0},
                  "cells": [{"ok": True, "stats": {"num_schedules": 5,
                                                   "elapsed": 1.0,
                                                   "extra": {}}}]}
        dist = {"summary": {"jobs": 4, "elapsed": 2.0,
                            "num_executed": 1, "num_cached": 1,
                            "num_failed": 0},
                "campaign": {"distributed": True},
                "cells": [{"ok": True, "stats": {
                    "num_schedules": 5, "elapsed": 0.2,
                    "extra": {"dist_stolen_shards": 1}}}]}
        assert canonical_report_dict(serial) == \
            canonical_report_dict(dist)


class TestMergeStolenResults:
    def test_counters_sum_and_sets_union(self, result_5_dfs):
        shard = CellResult.from_dict(result_5_dfs.to_dict())
        merged = merge_stolen_results(result_5_dfs, [shard])
        assert merged.ok
        assert merged.stats.num_schedules == \
            2 * result_5_dfs.stats.num_schedules
        assert merged.stats.state_hashes == \
            result_5_dfs.stats.state_hashes
        assert merged.stats.hbr_fps == result_5_dfs.stats.hbr_fps
        assert merged.stats.extra["dist_stolen_shards"] == 1
        # the parent result object was not mutated by the merge
        assert "dist_stolen_shards" not in result_5_dfs.stats.extra

    def test_failed_shard_fails_the_cell(self, result_5_dfs):
        bad = CellResult(result_5_dfs.cell, None, ok=False,
                         error="shard died",
                         diagnostics={"status": "quarantined"})
        merged = merge_stolen_results(result_5_dfs, [bad])
        assert not merged.ok
        assert merged.error == "shard died"
        assert merged.diagnostics == {"status": "quarantined"}


class TestTaskWire:
    def test_round_trip(self):
        task = Task("5:dfs:0@steal1-0", "5:dfs:0",
                    snapshot={"x": 1}, attempt=2)
        again = Task.from_dict(task.to_dict())
        assert again == task
        assert again.is_shard
        assert again.cell == CampaignCell(5, "dfs", 0)
        assert not Task("5:dfs:0", "5:dfs:0").is_shard
