"""Hypothesis-driven soundness: on randomly generated lock-structured
programs, every reduction strategy must find exactly the terminal
states exhaustive DFS finds — the strongest evidence the explorers are
correct beyond the hand-picked suite."""

from hypothesis import HealthCheck, example, given, settings, \
    strategies as st

from repro import Program
from repro.explore import (
    DFSExplorer,
    DPORExplorer,
    ExplorationLimits,
    HBRCachingExplorer,
    LazyDPORExplorer,
)

LIM = ExplorationLimits(max_schedules=60_000)

# Program shapes kept tiny so DFS always exhausts: 2 threads, each up
# to 3 segments of up to 2 ops over 2 variables and up to 2 mutexes.
data_op = st.tuples(
    st.sampled_from(["read", "write", "incr"]),
    st.integers(min_value=0, max_value=1),
)
segment = st.one_of(
    data_op.map(lambda op: (None, [op])),
    st.tuples(
        st.integers(min_value=0, max_value=1),  # which mutex
        st.lists(data_op, min_size=1, max_size=2),
    ),
)
thread_body = st.lists(segment, min_size=1, max_size=3)


def _event_count(spec) -> int:
    """Upper bound on the trace length of a generated program."""
    total = 0
    for body in spec:
        for lock_idx, ops in body:
            total += (2 if lock_idx is not None else 0)
            total += sum(2 if op == "incr" else 1 for op, _ in ops)
        total += 1  # exit event
    return total


# keep the interleaving count DFS-exhaustible: <= 14 events over 2 threads
program_spec = st.lists(thread_body, min_size=2, max_size=2).filter(
    lambda spec: _event_count(spec) <= 14
)


def build_program(spec):
    def build(p):
        mutexes = [p.mutex("m0"), p.mutex("m1")]
        cells = p.array("cells", [0, 0])

        def make_thread(segments, seed):
            def body(api):
                token = seed
                for lock_idx, ops in segments:
                    if lock_idx is not None:
                        yield api.lock(mutexes[lock_idx])
                    for op, var in ops:
                        if op == "read":
                            yield api.read(cells, key=var)
                        elif op == "write":
                            token += 1
                            yield api.write(cells, token, key=var)
                        else:  # incr: read-modify-write as two events
                            v = yield api.read(cells, key=var)
                            yield api.write(cells, v + 1, key=var)
                    if lock_idx is not None:
                        yield api.unlock(mutexes[lock_idx])
            return body

        for i, segments in enumerate(spec):
            p.thread(make_thread(segments, (i + 1) * 100))

    return Program("random_prog", build)


soundness_settings = settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


#: Hypothesis-discovered counterexample to lazy-DPOR exactness: the
#: lazy-HBR prune skips a suffix whose race analysis would have added
#: the backtrack point reaching the second terminal state (the loss
#: mechanism documented in ``repro.explore.lazy_dpor``).  Pinned so
#: every CI run exercises it: the sound explorers must still be exact
#: here, and lazy-DPOR must at least under-approximate soundly.
LAZY_DPOR_GAP_SPEC = [
    [(1, [("write", 0)])],
    [(1, [("read", 1)]), (None, [("read", 1)]), (None, [("write", 0)])],
]


@soundness_settings
@given(program_spec)
@example(spec=LAZY_DPOR_GAP_SPEC)
def test_all_reducers_match_dfs_states(spec):
    program = build_program(spec)
    dfs = DFSExplorer(program, LIM)
    stats = dfs.run()
    assert stats.exhausted, "generated program too large for DFS"
    baseline = frozenset(dfs._state_hashes)

    for explorer in (
        DPORExplorer(program, LIM),
        DPORExplorer(program, LIM, sleep_sets=False),
        HBRCachingExplorer(program, LIM, lazy=False),
        HBRCachingExplorer(program, LIM, lazy=True),
    ):
        explorer.run()
        found = frozenset(explorer._state_hashes)
        assert found == baseline, (
            f"{explorer.name} found {len(found)} states, DFS "
            f"{len(baseline)}; spec={spec!r}"
        )

    # lazy-DPOR is documented as approximate: it may under-approximate
    # (see LAZY_DPOR_GAP_SPEC) but must never report an unreachable
    # state, and must find at least one terminal state
    lazy = LazyDPORExplorer(program, LIM)
    lazy.run()
    lazy_found = frozenset(lazy._state_hashes)
    assert lazy_found <= baseline, (
        f"lazy-dpor reported unreachable states; spec={spec!r}"
    )
    assert lazy_found, f"lazy-dpor found no states; spec={spec!r}"


def test_lazy_dpor_gap_counterexample_still_gapped():
    """If lazy-DPOR ever becomes exact on the pinned counterexample,
    this fails as a reminder to restore the exactness assertion above
    (and to delete the approximation caveat in lazy_dpor.py)."""
    program = build_program(LAZY_DPOR_GAP_SPEC)
    dfs = DFSExplorer(program, LIM)
    dfs.run()
    lazy = LazyDPORExplorer(program, LIM)
    lazy.run()
    assert frozenset(lazy._state_hashes) < frozenset(dfs._state_hashes)


# ---------------------------------------------------------------------------
# Channel/future programs: the same soundness bar for the
# message-passing vocabulary the sync-primitive protocol added.  Ops
# reference two channels (one bounded, one rendezvous) and one future;
# recv-without-send deadlocks, double closes crash with ChannelError,
# double sets with FutureError — all legitimate terminal states every
# sound explorer must agree on.
chan_op = st.sampled_from([
    ("send", 0), ("send", 1),
    ("recv", 0), ("recv", 1),
    ("close", 0), ("close", 1),
    ("fut_set", 0), ("fut_get", 0),
    ("write", 0),
])
chan_thread_body = st.lists(chan_op, min_size=1, max_size=3)
# 2-3 threads so MPMC contention (competing rendezvous receivers — the
# one semantics where enabledness inspects other threads' pending ops)
# is inside the soundness bar; <= 6 non-exit events keeps DFS
# exhaustive even though channel blocking prunes little
chan_program_spec = st.lists(chan_thread_body, min_size=2, max_size=3).filter(
    lambda spec: sum(len(body) for body in spec) <= 6
)


def build_chan_program(spec):
    def build(p):
        chans = [p.channel("c0", 1), p.channel("c1", 0)]
        fut = p.future("f")
        cell = p.var("cell", 0)

        def make_thread(ops, seed):
            def body(api):
                token = seed
                for op, idx in ops:
                    if op == "send":
                        token += 1
                        yield api.chan_send(chans[idx], token)
                    elif op == "recv":
                        yield api.chan_recv(chans[idx])
                    elif op == "close":
                        yield api.chan_close(chans[idx])
                    elif op == "fut_set":
                        token += 1
                        yield api.fut_set(fut, token)
                    elif op == "fut_get":
                        yield api.fut_get(fut)
                    else:  # write
                        token += 1
                        yield api.write(cell, token)
            return body

        for i, ops in enumerate(spec):
            p.thread(make_thread(ops, (i + 1) * 100))

    return Program("random_chan_prog", build)


@soundness_settings
@given(chan_program_spec)
@example(spec=[[("close", 0)], [("close", 0)]])       # double-close race
@example(spec=[[("fut_set", 0)], [("fut_set", 0)]])   # double-set race
@example(spec=[[("send", 1)], [("recv", 1)]])         # rendezvous pair
@example(spec=[[("send", 0), ("close", 0)],
               [("recv", 0), ("recv", 0)]])           # drain after close
# hypothesis-found regression: two threads crashing with *different*
# guest errors (ChannelError vs FutureError).  The crash EXITs are
# independent, so the state digest must not depend on which ran first
# — it once keyed the error mark on guest_failures[0] (schedule
# order), making DPOR see 2 states where DFS saw 3.  Crash types now
# live in the per-thread progress tuple; see Executor.finish.
@example(spec=[[("send", 0)],
               [("close", 0), ("fut_set", 0), ("fut_set", 0)]])
def test_channel_reducers_match_dfs_states(spec):
    program = build_chan_program(spec)
    dfs = DFSExplorer(program, LIM)
    stats = dfs.run()
    assert stats.exhausted, "generated channel program too large for DFS"
    baseline = frozenset(dfs._state_hashes)

    for explorer in (
        DPORExplorer(program, LIM),
        DPORExplorer(program, LIM, sleep_sets=False),
        HBRCachingExplorer(program, LIM, lazy=False),
        HBRCachingExplorer(program, LIM, lazy=True),
    ):
        explorer.run()
        found = frozenset(explorer._state_hashes)
        assert found == baseline, (
            f"{explorer.name} found {len(found)} states, DFS "
            f"{len(baseline)}; spec={spec!r}"
        )

    lazy = LazyDPORExplorer(program, LIM)
    lazy.run()
    lazy_found = frozenset(lazy._state_hashes)
    assert lazy_found <= baseline, (
        f"lazy-dpor reported unreachable states; spec={spec!r}"
    )
    assert lazy_found, f"lazy-dpor found no states; spec={spec!r}"


@soundness_settings
@given(program_spec)
def test_inequality_chain_on_random_programs(spec):
    program = build_program(spec)
    for explorer in (
        DPORExplorer(program, LIM),
        HBRCachingExplorer(program, LIM, lazy=True),
    ):
        stats = explorer.run()
        stats.verify_inequality()


@soundness_settings
@given(program_spec)
def test_dpor_schedule_count_never_exceeds_dfs(spec):
    program = build_program(spec)
    dfs = DFSExplorer(program, LIM).run()
    dpor = DPORExplorer(program, LIM).run()
    assert dpor.num_schedules <= dfs.num_schedules
