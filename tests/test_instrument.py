"""AST instrumentation: constructs, caching and rejection paths.

``repro.instrument`` rewrites a plain function into a generator guest;
these tests pin which syntactic constructs become scheduling points and
which stay atomic.
"""

import pytest

import repro
from repro.errors import InstrumentError
from repro.runtime.schedule import execute
from repro.shim import ensure_guest, instrument, program_from_function
from repro.shim import threading as shim_threading


@repro.shared
class Cell:
    def __init__(self):
        self.value = 0


def run_events(fn, *, args=()):
    result = execute(program_from_function(fn, args=args))
    assert result.ok, result.error
    return [(e.tid, e.kind.name) for e in result.events]


# ---------------------------------------------------------------------------
# construct coverage
# ---------------------------------------------------------------------------

class TestConstructs:
    def test_attribute_read_yields_event(self):
        def main():
            c = Cell()
            _ = c.value

        kinds = [k for _, k in run_events(main)]
        assert kinds.count("READ") == 1

    def test_attribute_write_yields_event(self):
        def main():
            c = Cell()
            c.value = 5

        kinds = [k for _, k in run_events(main)]
        assert kinds.count("WRITE") == 1

    def test_augassign_is_read_then_write(self):
        def main():
            c = Cell()
            c.value += 1

        kinds = [k for _, k in run_events(main)]
        read, write = kinds.index("READ"), kinds.index("WRITE")
        assert read < write

    def test_multi_target_assign(self):
        def main():
            a = Cell()
            b = Cell()
            a.value = b.value = 9
            assert a.value == 9 and b.value == 9

        kinds = [k for _, k in run_events(main)]
        assert kinds.count("WRITE") == 2

    def test_annassign_attribute_target(self):
        def main():
            c = Cell()
            c.value: int = 3
            assert c.value == 3

        kinds = [k for _, k in run_events(main)]
        assert kinds.count("WRITE") == 1

    def test_with_statement_releases_on_exception(self):
        def main():
            lock = shim_threading.Lock()

            def worker():
                with lock:
                    raise RuntimeError("inside")

            def other():
                with lock:
                    pass

            t1 = shim_threading.Thread(target=worker)
            t2 = shim_threading.Thread(target=other)
            t1.start()
            t2.start()
            t1.join()
            t2.join()

        from repro.explore.base import ExplorationLimits
        from repro.explore.controller import run_single
        stats = run_single(program_from_function(main), "dfs",
                           ExplorationLimits(max_schedules=2000))
        # every schedule crashes T1, but none deadlocks: __exit__ ran
        kinds = {e.kind for e in stats.errors}
        assert kinds == {"GuestCrashError"}

    def test_nested_def_is_instrumented(self):
        def main():
            c = Cell()

            def helper():
                c.value += 1

            def worker():
                helper()

            t = shim_threading.Thread(target=worker)
            t.start()
            t.join()
            assert c.value == 1

        kinds = [k for tid, k in run_events(main)]
        assert "READ" in kinds and "WRITE" in kinds

    def test_closure_freevars_preserved(self):
        base = 40

        def main():
            c = Cell()
            c.value = base + 2
            assert c.value == 42

        run_events(main)

    def test_args_and_kwargs_forwarded(self):
        def main(start, *, bump):
            c = Cell()
            c.value = start
            c.value += bump
            assert c.value == 12

        result = execute(program_from_function(main, args=(10,),
                                               kwargs={"bump": 2}))
        assert result.ok, result.error

    def test_function_without_ops_still_runs(self):
        def main():
            x = 1 + 1
            assert x == 2

        events = run_events(main)
        assert [k for _, k in events] == ["EXIT"]

    def test_plain_helper_calls_stay_atomic(self):
        # uninstrumented helpers run as one opaque step: no events from
        # inside sorted()/len()/list methods
        def main():
            items = [3, 1, 2]
            items.sort()
            assert items == sorted(items)

        events = run_events(main)
        assert [k for _, k in events] == ["EXIT"]

    def test_comprehensions_not_descended(self):
        def main():
            squares = [i * i for i in range(4)]
            assert squares == [0, 1, 4, 9]

        run_events(main)


# ---------------------------------------------------------------------------
# instrument()/ensure_guest() mechanics
# ---------------------------------------------------------------------------

def _module_level_fn():
    c = Cell()
    c.value += 1


class TestMechanics:
    def test_instrument_is_cached(self):
        g1 = instrument(_module_level_fn)
        g2 = instrument(_module_level_fn)
        assert g1 is g2

    def test_instrument_passthrough_for_guests(self):
        g = instrument(_module_level_fn)
        assert instrument(g) is g
        assert ensure_guest(g) is g

    def test_guest_metadata(self):
        g = instrument(_module_level_fn)
        assert g.__repro_guest__
        assert g.__wrapped__ is _module_level_fn
        assert g.__qualname__ == _module_level_fn.__qualname__

    def test_generator_function_rejected(self):
        def gen():
            yield 1

        with pytest.raises(InstrumentError, match="generator"):
            instrument(gen)

    def test_async_function_rejected(self):
        async def coro():
            return 1

        with pytest.raises(InstrumentError):
            instrument(coro)

    def test_non_callable_rejected(self):
        with pytest.raises(InstrumentError):
            instrument(42)

    def test_exec_defined_function_rejected(self):
        ns = {}
        exec("def from_exec():\n    pass", ns)
        with pytest.raises(InstrumentError, match="source"):
            instrument(ns["from_exec"])

    def test_repro_instrument_export(self):
        assert repro.instrument is instrument
