"""Soundness of the reduction strategies on the extension workloads
(semaphore protocols, await-guarded rendezvous, seqlock)."""

import pytest

from repro.explore import (
    DFSExplorer,
    DPORExplorer,
    ExplorationLimits,
    HBRCachingExplorer,
    LazyDPORExplorer,
)
from repro.suite.extra import cigarette_smokers, h2o, seqlock

LIM = ExplorationLimits(max_schedules=60_000, max_seconds=120)

CASES = [
    ("cigarette_smokers", cigarette_smokers, (1,)),
    ("h2o", h2o, (1,)),
    ("seqlock", seqlock, (1, 1)),
]


@pytest.fixture(scope="module")
def ground_truth():
    truth = {}
    for name, maker, args in CASES:
        prog = maker(*args)
        dfs = DFSExplorer(prog, LIM)
        stats = dfs.run()
        assert stats.exhausted, f"{name}: DFS did not exhaust"
        truth[name] = (prog, frozenset(dfs._state_hashes))
    return truth


@pytest.mark.parametrize("name", [c[0] for c in CASES])
def test_dpor_matches_dfs(ground_truth, name):
    prog, base = ground_truth[name]
    e = DPORExplorer(prog, LIM)
    e.run()
    assert frozenset(e._state_hashes) == base


@pytest.mark.parametrize("name", [c[0] for c in CASES])
def test_lazy_caching_matches_dfs(ground_truth, name):
    prog, base = ground_truth[name]
    e = HBRCachingExplorer(prog, LIM, lazy=True)
    e.run()
    assert frozenset(e._state_hashes) == base


@pytest.mark.parametrize("name", [c[0] for c in CASES])
def test_lazy_dpor_matches_dfs(ground_truth, name):
    prog, base = ground_truth[name]
    e = LazyDPORExplorer(prog, LIM)
    e.run()
    assert frozenset(e._state_hashes) == base


def test_seqlock_state_count_is_five(ground_truth):
    _, base = ground_truth["seqlock"]
    # reader may observe data (0,0) or (1,1), before/after the writer
    # finishes, plus retry variations -> 5 distinct terminal states
    assert len(base) == 5
