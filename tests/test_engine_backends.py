"""The engine backend registry and ref/accel byte-identity.

Three layers of assurance:

* registry unit tests — resolution precedence (explicit > environment >
  auto), the mode-aware auto pick, and loud failures on misconfiguration;
* a hypothesis property driving the reference and accelerated engines
  through identical random operation sequences — spawn edges, release
  edges, engine forks included — and comparing every published clock
  snapshot, fingerprint and dominance outcome event by event;
* subprocess tests proving ``REPRO_ENGINE`` actually steers a fresh
  interpreter (the escape hatch the docs promise).
"""

import os
import subprocess
import sys

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.engines import (
    ENGINE_ENV,
    _BACKENDS,
    available_backends,
    backend_names,
    create_clock_engine,
    register_backend,
    resolve_engine,
)
from repro.core.events import OpKind
from repro.core.hb import DualClockEngine
from repro.core.hb_accel import AccelClockEngine

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


class TestRegistry:
    def test_backends_registered(self):
        assert backend_names() == ("ref", "accel")
        # both ship with the package; accel has a stdlib-only fallback
        # so it is importable even without numpy
        assert set(available_backends()) == {"ref", "accel"}

    def test_explicit_name_beats_environment(self, monkeypatch):
        monkeypatch.setenv(ENGINE_ENV, "accel")
        assert resolve_engine("ref") == "ref"
        monkeypatch.setenv(ENGINE_ENV, "ref")
        assert resolve_engine("accel") == "accel"

    def test_environment_beats_auto(self, monkeypatch):
        # env forces accel everywhere, including where auto picks ref
        monkeypatch.setenv(ENGINE_ENV, "accel")
        assert resolve_engine(None, fast_replay=True) == "accel"
        assert resolve_engine(None, fast_replay=False) == "accel"

    def test_auto_defaults_to_reference(self, monkeypatch):
        # the measured-fastest backend at suite thread counts, in both
        # executor modes (see engines.py module docstring)
        monkeypatch.delenv(ENGINE_ENV, raising=False)
        for fast_replay in (True, False):
            assert resolve_engine(None, fast_replay=fast_replay) == "ref"
            assert resolve_engine("auto", fast_replay=fast_replay) == "ref"

    def test_unknown_engine_is_loud(self):
        with pytest.raises(ValueError, match="unknown engine"):
            resolve_engine("turbo")

    def test_unavailable_engine_is_loud(self):
        register_backend("broken", lambda: False)
        try:
            with pytest.raises(ValueError, match="not available"):
                resolve_engine("broken")
        finally:
            del _BACKENDS["broken"]

    def test_create_respects_backend(self):
        assert create_clock_engine("ref").backend == "ref"
        assert create_clock_engine("accel").backend == "accel"
        assert isinstance(create_clock_engine("accel"), AccelClockEngine)

    def test_canonical_always_reference(self):
        # canonical HBR forms are theorem-checker machinery; only the
        # reference engine carries them
        engine = create_clock_engine("accel", canonical=True)
        assert isinstance(engine, DualClockEngine)
        assert engine.backend == "ref"


# -- the hypothesis property -------------------------------------------

#: Kinds the property exercises: data ops (both dominance branches),
#: mutex ops (lazy side must skip them) and the channel kinds (tuple
#: keys exercise the accel engine's keyed location tables).
_KINDS = (
    OpKind.READ, OpKind.WRITE, OpKind.RMW,
    OpKind.LOCK, OpKind.UNLOCK,
    OpKind.CHAN_SEND, OpKind.CHAN_RECV,
)


def _steps(nthreads):
    tid = st.integers(0, nthreads - 1)
    observe = st.tuples(
        st.just("observe"), tid, st.sampled_from(_KINDS),
        st.integers(0, 3), st.sampled_from([None, 0, 1, "slot"]),
    )
    # WAIT releases its paired mutex: the regular side publishes to the
    # mutex location too
    wait = st.tuples(st.just("wait"), tid, st.integers(0, 3))
    release = st.tuples(st.just("release"), tid, tid)
    spawn = st.tuples(st.just("spawn"), tid, tid)
    fork = st.tuples(st.just("fork"))
    return st.lists(
        st.one_of(observe, wait, release, spawn, fork),
        min_size=1, max_size=60,
    )


class TestObserveEquivalence:
    """ref and accel must agree on every observable, event by event."""

    def _compare(self, ref, acc, nthreads):
        assert ref.hbr_fingerprint() == acc.hbr_fingerprint()
        assert ref.lazy_fingerprint() == acc.lazy_fingerprint()
        for t in range(nthreads):
            for lazy in (False, True):
                assert (list(ref.thread_clock_raw(t, lazy))
                        == list(acc.thread_clock_raw(t, lazy))), (t, lazy)

    @settings(max_examples=60, deadline=None)
    @given(st.data())
    def test_random_sequences(self, data):
        nthreads = data.draw(st.integers(2, 5))
        steps = data.draw(_steps(nthreads))
        ref = DualClockEngine()
        acc = AccelClockEngine()
        for e in (ref, acc):
            e.reserve(nthreads)
        last_snap = {}
        for step in steps:
            if step[0] == "observe":
                _, tid, kind, oid, key = step
                r = ref.observe(tid, int(kind), oid, key)
                a = acc.observe(tid, int(kind), oid, key)
                assert r == a, step
                last_snap[tid] = r
            elif step[0] == "wait":
                _, tid, moid = step
                r = ref.observe(tid, int(OpKind.WAIT), moid + 10, None,
                                released_mutex_oid=moid)
                a = acc.observe(tid, int(OpKind.WAIT), moid + 10, None,
                                released_mutex_oid=moid)
                assert r == a, step
                last_snap[tid] = r
            elif step[0] == "release":
                _, src, dst = step
                snap = last_snap.get(src)
                if snap is None:
                    continue
                ref.add_release_edge_clocks(snap[0], snap[1], dst)
                acc.add_release_edge_clocks(snap[0], snap[1], dst)
            elif step[0] == "spawn":
                _, parent, child = step
                snap = last_snap.get(parent)
                if snap is None:
                    continue
                ref.register_thread_clocks(child, snap[0], snap[1])
                acc.register_thread_clocks(child, snap[0], snap[1])
            else:  # fork: continue on the copies — copy-on-publish must
                # not let the child alias the parent's published rows
                ref, acc = ref.fork(), acc.fork()
            self._compare(ref, acc, nthreads)

    @settings(max_examples=20, deadline=None)
    @given(st.data())
    def test_fork_isolation(self, data):
        """Mutating a fork never leaks into the parent (either engine)."""
        nthreads = 3
        ref = DualClockEngine()
        acc = AccelClockEngine()
        for e in (ref, acc):
            e.reserve(nthreads)
        warm = data.draw(_steps(nthreads))
        for step in warm:
            if step[0] == "observe":
                _, tid, kind, oid, key = step
                ref.observe(tid, int(kind), oid, key)
                acc.observe(tid, int(kind), oid, key)
        rfork, afork = ref.fork(), acc.fork()
        before = (ref.hbr_fingerprint(), ref.lazy_fingerprint())
        for tid in range(nthreads):
            rfork.observe(tid, int(OpKind.WRITE), 0, None)
            afork.observe(tid, int(OpKind.WRITE), 0, None)
        assert (ref.hbr_fingerprint(), ref.lazy_fingerprint()) == before
        assert acc.hbr_fingerprint() == ref.hbr_fingerprint()
        assert afork.hbr_fingerprint() == rfork.hbr_fingerprint()
        assert afork.lazy_fingerprint() == rfork.lazy_fingerprint()

    def test_wide_clocks_hit_bulk_join_path(self):
        """40 threads crosses the numpy bulk-join threshold (when numpy
        is present); the outcome must not depend on which join ran."""
        nthreads = 40
        ref = DualClockEngine()
        acc = AccelClockEngine()
        for e in (ref, acc):
            e.reserve(nthreads)
        for round_no in range(3):
            for tid in range(nthreads):
                kind = _KINDS[(tid + round_no) % len(_KINDS)]
                key = None if tid % 3 else "wide"
                r = ref.observe(tid, int(kind), tid % 5, key)
                a = acc.observe(tid, int(kind), tid % 5, key)
                assert r == a, (round_no, tid)
        assert ref.hbr_fingerprint() == acc.hbr_fingerprint()
        assert ref.lazy_fingerprint() == acc.lazy_fingerprint()
        assert ref.table_stats() == acc.table_stats()


class TestEnvSteering:
    """REPRO_ENGINE must steer a fresh interpreter end to end."""

    def _run(self, engine_env, fast_replay):
        env = dict(os.environ)
        env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src") + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        env[ENGINE_ENV] = engine_env
        code = (
            "from repro.runtime.executor import Executor\n"
            "from repro.suite import REGISTRY\n"
            f"ex = Executor(REGISTRY[4].program, fast_replay={fast_replay})\n"
            "print(ex.engine_name, ex.engine.backend)\n"
        )
        proc = subprocess.run(
            [sys.executable, "-c", code], capture_output=True, text=True,
            env=env, cwd=REPO_ROOT,
        )
        assert proc.returncode == 0, proc.stderr
        return proc.stdout.split()

    def test_ref_env_forces_fallback(self):
        # even on the fast-replay path, where accel is importable and
        # auto would have picked it
        assert self._run("ref", True) == ["ref", "ref"]

    def test_accel_env_forces_accel_everywhere(self):
        assert self._run("accel", False) == ["accel", "accel"]
