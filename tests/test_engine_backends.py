"""The engine backend registry and ref/accel/native byte-identity.

Three layers of assurance:

* registry unit tests — resolution precedence (explicit > environment >
  auto), the compiled-artifact-aware auto pick, and loud failures on
  misconfiguration;
* a hypothesis property driving the reference, accelerated and native
  engines (the compiled kernel too, when built) through identical
  random operation sequences — spawn edges, release edges, engine forks
  included — and comparing every published clock snapshot, fingerprint
  and dominance outcome event by event;
* subprocess tests proving ``REPRO_ENGINE`` actually steers a fresh
  interpreter (the escape hatch the docs promise).
"""

import os
import subprocess
import sys

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.engines import (
    ENGINE_ENV,
    _BACKENDS,
    available_backends,
    backend_names,
    create_clock_engine,
    native_compiled,
    register_backend,
    resolve_engine,
)
from repro.core.events import OpKind
from repro.core.hb import DualClockEngine
from repro.core.hb_accel import AccelClockEngine
from repro.core.hb_native import (
    NATIVE_COMPILED,
    NativeClockEngine,
    PyNativeClockEngine,
)

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def _fresh_engines():
    """One instance of every engine implementation under test: the
    reference, the accelerated, the pure native twin — and the compiled
    kernel when the artifact is built.  Index 0 is the reference."""
    engines = [DualClockEngine(), AccelClockEngine(), PyNativeClockEngine()]
    if NATIVE_COMPILED:
        engines.append(NativeClockEngine())
    return engines


class TestRegistry:
    def test_backends_registered(self):
        assert backend_names() == ("ref", "accel", "native")
        # all three ship with the package; accel has a stdlib-only
        # fallback and native a pure-Python twin, so every backend is
        # importable even without numpy or a C toolchain
        assert set(available_backends()) == {"ref", "accel", "native"}

    def test_explicit_name_beats_environment(self, monkeypatch):
        monkeypatch.setenv(ENGINE_ENV, "accel")
        assert resolve_engine("ref") == "ref"
        monkeypatch.setenv(ENGINE_ENV, "ref")
        assert resolve_engine("accel") == "accel"
        monkeypatch.setenv(ENGINE_ENV, "ref")
        assert resolve_engine("native") == "native"

    def test_environment_beats_auto(self, monkeypatch):
        # env forces accel everywhere, whatever auto would have picked
        monkeypatch.setenv(ENGINE_ENV, "accel")
        assert resolve_engine(None, fast_replay=True) == "accel"
        assert resolve_engine(None, fast_replay=False) == "accel"

    def test_auto_tracks_compiled_artifact(self, monkeypatch):
        # auto picks the compiled native kernel when the artifact is
        # built, and the measured-fastest pure backend (ref) when not —
        # never the uncompiled native twin (see engines.py docstring)
        monkeypatch.delenv(ENGINE_ENV, raising=False)
        expected = "native" if native_compiled() else "ref"
        for fast_replay in (True, False):
            assert resolve_engine(None, fast_replay=fast_replay) == expected
            assert resolve_engine("auto", fast_replay=fast_replay) == expected

    def test_unknown_engine_is_loud(self):
        with pytest.raises(ValueError, match="unknown engine"):
            resolve_engine("turbo")

    def test_unavailable_engine_is_loud(self):
        register_backend("broken", lambda: False)
        try:
            with pytest.raises(ValueError, match="not available"):
                resolve_engine("broken")
        finally:
            del _BACKENDS["broken"]

    def test_create_respects_backend(self):
        assert create_clock_engine("ref").backend == "ref"
        assert create_clock_engine("accel").backend == "accel"
        assert isinstance(create_clock_engine("accel"), AccelClockEngine)
        native = create_clock_engine("native")
        assert native.backend == "native"
        assert native.compiled == NATIVE_COMPILED

    def test_canonical_always_reference(self):
        # canonical HBR forms are theorem-checker machinery; only the
        # reference engine carries them
        for name in ("accel", "native"):
            engine = create_clock_engine(name, canonical=True)
            assert isinstance(engine, DualClockEngine)
            assert engine.backend == "ref"

    def test_native_canonical_accessors_raise(self):
        engine = create_clock_engine("native")
        with pytest.raises(ValueError, match="canonical"):
            engine.canonical_hbr()
        with pytest.raises(ValueError, match="canonical"):
            engine.canonical_lazy_hbr()


# -- the hypothesis property -------------------------------------------

#: Kinds the property exercises: data ops (both dominance branches),
#: mutex ops (lazy side must skip them) and the channel kinds (tuple
#: keys exercise the keyed location tables of accel and native).
_KINDS = (
    OpKind.READ, OpKind.WRITE, OpKind.RMW,
    OpKind.LOCK, OpKind.UNLOCK,
    OpKind.CHAN_SEND, OpKind.CHAN_RECV,
)


def _steps(nthreads):
    tid = st.integers(0, nthreads - 1)
    observe = st.tuples(
        st.just("observe"), tid, st.sampled_from(_KINDS),
        st.integers(0, 3), st.sampled_from([None, 0, 1, "slot"]),
    )
    # WAIT releases its paired mutex: the regular side publishes to the
    # mutex location too
    wait = st.tuples(st.just("wait"), tid, st.integers(0, 3))
    release = st.tuples(st.just("release"), tid, tid)
    spawn = st.tuples(st.just("spawn"), tid, tid)
    fork = st.tuples(st.just("fork"))
    return st.lists(
        st.one_of(observe, wait, release, spawn, fork),
        min_size=1, max_size=60,
    )


class TestObserveEquivalence:
    """Every engine must agree with the reference on every observable,
    event by event."""

    def _compare(self, engines, nthreads):
        ref = engines[0]
        for other in engines[1:]:
            label = type(other).__name__
            assert ref.hbr_fingerprint() == other.hbr_fingerprint(), label
            assert ref.lazy_fingerprint() == other.lazy_fingerprint(), label
            for t in range(nthreads):
                for lazy in (False, True):
                    assert (
                        list(ref.thread_clock_raw(t, lazy))
                        == list(other.thread_clock_raw(t, lazy))
                    ), (label, t, lazy)

    @settings(max_examples=60, deadline=None)
    @given(st.data())
    def test_random_sequences(self, data):
        nthreads = data.draw(st.integers(2, 5))
        steps = data.draw(_steps(nthreads))
        engines = _fresh_engines()
        for e in engines:
            e.reserve(nthreads)
        last_snap = {}
        for step in steps:
            if step[0] == "observe":
                _, tid, kind, oid, key = step
                snaps = [e.observe(tid, int(kind), oid, key)
                         for e in engines]
                assert all(s == snaps[0] for s in snaps), step
                last_snap[tid] = snaps[0]
            elif step[0] == "wait":
                _, tid, moid = step
                snaps = [
                    e.observe(tid, int(OpKind.WAIT), moid + 10, None,
                              released_mutex_oid=moid)
                    for e in engines
                ]
                assert all(s == snaps[0] for s in snaps), step
                last_snap[tid] = snaps[0]
            elif step[0] == "release":
                _, src, dst = step
                snap = last_snap.get(src)
                if snap is None:
                    continue
                for e in engines:
                    e.add_release_edge_clocks(snap[0], snap[1], dst)
            elif step[0] == "spawn":
                _, parent, child = step
                snap = last_snap.get(parent)
                if snap is None:
                    continue
                for e in engines:
                    e.register_thread_clocks(child, snap[0], snap[1])
            else:  # fork: continue on the copies — copy-on-publish must
                # not let the child alias the parent's published rows
                engines = [e.fork() for e in engines]
            self._compare(engines, nthreads)

    @settings(max_examples=20, deadline=None)
    @given(st.data())
    def test_fork_isolation(self, data):
        """Mutating a fork never leaks into the parent (any engine)."""
        nthreads = 3
        engines = _fresh_engines()
        for e in engines:
            e.reserve(nthreads)
        warm = data.draw(_steps(nthreads))
        for step in warm:
            if step[0] == "observe":
                _, tid, kind, oid, key = step
                for e in engines:
                    e.observe(tid, int(kind), oid, key)
        forks = [e.fork() for e in engines]
        ref = engines[0]
        before = (ref.hbr_fingerprint(), ref.lazy_fingerprint())
        for tid in range(nthreads):
            for f in forks:
                f.observe(tid, int(OpKind.WRITE), 0, None)
        assert (ref.hbr_fingerprint(), ref.lazy_fingerprint()) == before
        rfork = forks[0]
        for parent, fork in zip(engines[1:], forks[1:]):
            assert parent.hbr_fingerprint() == ref.hbr_fingerprint()
            assert fork.hbr_fingerprint() == rfork.hbr_fingerprint()
            assert fork.lazy_fingerprint() == rfork.lazy_fingerprint()

    def test_wide_clocks_hit_bulk_join_path(self):
        """40 threads crosses the numpy bulk-join threshold (when numpy
        is present) and every flat engine's row-growth path; the
        outcome must not depend on which join ran."""
        nthreads = 40
        engines = _fresh_engines()
        for e in engines:
            e.reserve(nthreads)
        ref = engines[0]
        for round_no in range(3):
            for tid in range(nthreads):
                kind = _KINDS[(tid + round_no) % len(_KINDS)]
                key = None if tid % 3 else "wide"
                snaps = [e.observe(tid, int(kind), tid % 5, key)
                         for e in engines]
                assert all(s == snaps[0] for s in snaps), (round_no, tid)
        for other in engines[1:]:
            assert ref.hbr_fingerprint() == other.hbr_fingerprint()
            assert ref.lazy_fingerprint() == other.lazy_fingerprint()
            assert ref.table_stats() == other.table_stats()


class TestEnvSteering:
    """REPRO_ENGINE must steer a fresh interpreter end to end."""

    def _run(self, engine_env, fast_replay):
        env = dict(os.environ)
        env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src") + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        env[ENGINE_ENV] = engine_env
        code = (
            "from repro.runtime.executor import Executor\n"
            "from repro.suite import REGISTRY\n"
            f"ex = Executor(REGISTRY[4].program, fast_replay={fast_replay})\n"
            "print(ex.engine_name, ex.engine.backend)\n"
        )
        proc = subprocess.run(
            [sys.executable, "-c", code], capture_output=True, text=True,
            env=env, cwd=REPO_ROOT,
        )
        assert proc.returncode == 0, proc.stderr
        return proc.stdout.split()

    def test_ref_env_forces_fallback(self):
        # even on the fast-replay path, where auto may pick a faster
        # backend
        assert self._run("ref", True) == ["ref", "ref"]

    def test_accel_env_forces_accel_everywhere(self):
        assert self._run("accel", False) == ["accel", "accel"]

    def test_native_env_forces_native_everywhere(self):
        # compiled or not: the name always resolves (pure twin fallback)
        assert self._run("native", True) == ["native", "native"]
        assert self._run("native", False) == ["native", "native"]
