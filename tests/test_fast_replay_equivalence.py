"""Equivalence of the fast-replay executor path with the reference path.

The tentpole guarantee of the hot-path overhaul: ``fast_replay=True``
(no Event materialisation, no trace list, no ``describe_state``) must
produce *identical* fingerprints, state hashes, schedules and error
outcomes to the default executor, for every program in the suite.
These tests enforce that at both the executor level (fixed and seeded
random schedules) and the explorer level (whole explorations under
``dfs`` and ``dpor`` with small limits, compared field by field).
"""

import pytest

from repro.errors import SchedulerError
from repro.explore import ExplorationLimits
from repro.explore.controller import run_single
from repro.runtime.executor import Executor
from repro.runtime.schedule import RandomScheduler
from repro.suite import REGISTRY, all_benchmarks

ALL_IDS = [b.bench_id for b in all_benchmarks()]

LIMITS = ExplorationLimits(max_schedules=25, max_events_per_schedule=400)


def _run_once(program, fast: bool, seed):
    """One complete run under a seeded random scheduler (or first-enabled
    for seed None), with divergence-free stepping."""
    ex = Executor(program, max_events=400, fast_replay=fast)
    chooser = RandomScheduler(seed) if seed is not None else None
    while not ex.is_done():
        enabled = ex.enabled()
        tid = chooser.choose(ex) if chooser else enabled[0]
        ex.step(tid)
    return ex.finish()


def _result_fields(r):
    return (
        r.hbr_fp,
        r.lazy_fp,
        r.state_hash,
        tuple(r.schedule),
        type(r.error).__name__ if r.error else None,
        r.truncated,
        r.num_events,
    )


@pytest.mark.parametrize("bid", ALL_IDS)
def test_executor_fast_vs_reference_schedules(bid):
    """Identical TraceResult fields on first-enabled plus seeded random
    schedules, for every suite program."""
    program = REGISTRY[bid].program
    for seed in (None, 1, 2):
        try:
            slow = _run_once(program, fast=False, seed=seed)
            fast = _run_once(program, fast=True, seed=seed)
        except SchedulerError:
            # max_events truncation raises on the over-budget step for
            # both paths identically; nothing further to compare here
            continue
        assert _result_fields(fast) == _result_fields(slow), (
            f"fast/slow divergence on bench {bid} seed {seed}"
        )
        # fast mode trades the event list and state description away
        assert fast.events == []
        assert fast.final_state == {}
        assert slow.num_events == len(slow.events)


def _stats_fields(stats):
    return (
        stats.num_schedules,
        stats.num_complete,
        stats.num_pruned,
        stats.num_hbrs,
        stats.num_lazy_hbrs,
        stats.num_states,
        stats.num_events,
        sorted((e.kind, e.message, tuple(e.schedule)) for e in stats.errors),
        stats.limit_hit,
        stats.exhausted,
    )


@pytest.mark.parametrize("bid", ALL_IDS)
def test_dfs_exploration_fast_vs_reference(bid):
    """Whole-exploration equivalence: DFS with fast executors produces
    bit-identical statistics to DFS with reference executors."""
    program = REGISTRY[bid].program
    fast = run_single(program, "dfs", LIMITS, verify=True, fast=True)
    slow = run_single(program, "dfs", LIMITS, verify=True, fast=False)
    assert _stats_fields(fast) == _stats_fields(slow)


@pytest.mark.parametrize("bid", ALL_IDS[::6])
def test_dpor_ignores_fast_flag(bid):
    """DPOR hard-requires materialised traces; ``fast=True`` must be a
    harmless no-op for it, not a corruption."""
    program = REGISTRY[bid].program
    a = run_single(program, "dpor", LIMITS, verify=True, fast=True)
    b = run_single(program, "dpor", LIMITS, verify=True, fast=False)
    assert _stats_fields(a) == _stats_fields(b)
