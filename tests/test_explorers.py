"""Tests for the exploration strategies on small hand-built programs."""

import pytest

from repro import Program
from repro.explore import (
    DFSExplorer,
    DPORExplorer,
    ExplorationLimits,
    HBRCachingExplorer,
    LazyDPORExplorer,
    PCTExplorer,
    PreemptionBoundedExplorer,
    RandomWalkExplorer,
)

LIM = ExplorationLimits(max_schedules=50_000)


class TestDFS:
    def test_counts_on_figure1(self, figure1_program):
        stats = DFSExplorer(figure1_program, LIM).run()
        assert stats.exhausted
        assert stats.num_schedules == 72
        assert stats.num_hbrs == 2
        assert stats.num_lazy_hbrs == 1
        assert stats.num_states == 1

    def test_single_thread_one_schedule(self):
        def build(p):
            x = p.var("x", 0)

            def t(api):
                yield api.write(x, 1)

            p.thread(t)

        stats = DFSExplorer(Program("t", build), LIM).run()
        assert stats.exhausted
        assert stats.num_schedules == 1

    def test_limit_truncates(self, figure1_program):
        stats = DFSExplorer(
            figure1_program, ExplorationLimits(max_schedules=10)
        ).run()
        assert stats.limit_hit
        assert not stats.exhausted
        assert stats.num_schedules == 10

    def test_racy_writers_states(self, two_writers_program):
        stats = DFSExplorer(two_writers_program, LIM).run()
        assert stats.exhausted
        assert stats.num_states == 2  # x == 1 or x == 2


class TestDPOR:
    def test_figure1_two_classes(self, figure1_program):
        stats = DPORExplorer(figure1_program, LIM).run()
        assert stats.exhausted
        assert stats.num_schedules == 2
        assert stats.num_hbrs == 2

    def test_never_explores_more_than_dfs(self, locked_pair_program):
        dfs = DFSExplorer(locked_pair_program, LIM).run()
        dpor = DPORExplorer(locked_pair_program, LIM).run()
        assert dpor.num_schedules <= dfs.num_schedules
        assert dpor.num_states == dfs.num_states

    def test_sleep_sets_reduce_schedules(self):
        from repro.suite.counters import racy_counter
        prog = racy_counter(3, 1)
        with_sleep = DPORExplorer(prog, LIM, sleep_sets=True).run()
        without = DPORExplorer(prog, LIM, sleep_sets=False).run()
        assert with_sleep.num_schedules <= without.num_schedules
        assert with_sleep.num_states == without.num_states

    def test_finds_deadlock(self):
        from repro.suite.locks import lock_order_deadlock
        stats = DPORExplorer(lock_order_deadlock(), LIM).run()
        assert any(e.kind == "DeadlockError" for e in stats.errors)

    def test_error_schedule_reproduces(self):
        from repro.runtime.schedule import execute
        from repro.suite.locks import lock_order_deadlock
        prog = lock_order_deadlock()
        stats = DPORExplorer(prog, LIM).run()
        finding = next(e for e in stats.errors
                       if e.kind == "DeadlockError")
        r = execute(prog, schedule=finding.schedule)
        assert r.error is not None


class TestCaching:
    def test_regular_vs_lazy_on_figure1(self, figure1_program):
        reg = HBRCachingExplorer(figure1_program, LIM, lazy=False).run()
        lazy = HBRCachingExplorer(figure1_program, LIM, lazy=True).run()
        assert reg.exhausted and lazy.exhausted
        # both must find the single state; the lazy variant prunes harder
        assert reg.num_states == lazy.num_states == 1
        assert lazy.num_schedules <= reg.num_schedules
        assert lazy.extra["cache_size"] <= reg.extra["cache_size"]

    def test_cache_stats_exposed(self, figure1_program):
        stats = HBRCachingExplorer(figure1_program, LIM).run()
        assert stats.extra["cache_size"] > 0
        assert stats.extra["cache_hits"] > 0

    def test_pruned_runs_counted(self, figure1_program):
        stats = HBRCachingExplorer(figure1_program, LIM).run()
        assert stats.num_pruned > 0
        assert stats.num_pruned + stats.num_complete == stats.num_schedules


class TestLazyDPOR:
    def test_explores_at_most_dpor(self, figure1_program):
        dpor = DPORExplorer(figure1_program, LIM).run()
        lazy = LazyDPORExplorer(figure1_program, LIM).run()
        assert lazy.num_schedules <= dpor.num_schedules
        assert lazy.num_states == dpor.num_states

    def test_disjoint_sections_collapse(self):
        from repro.suite.counters import disjoint_coarse
        prog = disjoint_coarse(3, 1)
        dpor = DPORExplorer(prog, LIM).run()
        lazy = LazyDPORExplorer(prog, LIM).run()
        assert dpor.num_hbrs == 6          # 3! orders of the sections
        assert lazy.num_states == 1
        # branches equivalent under the lazy HBR are pruned early, so
        # far fewer runs reach a terminal state and far less work is done
        assert lazy.num_complete < dpor.num_complete
        assert lazy.num_events < dpor.num_events


class TestRandomWalk:
    def test_runs_exactly_budget(self, figure1_program):
        stats = RandomWalkExplorer(
            figure1_program, ExplorationLimits(max_schedules=25), seed=3
        ).run()
        assert stats.num_schedules == 25
        assert stats.limit_hit

    def test_inequality_holds(self, two_writers_program):
        stats = RandomWalkExplorer(
            two_writers_program, ExplorationLimits(max_schedules=50)
        ).run()
        stats.verify_inequality()


class TestPCT:
    def test_finds_both_orders_of_a_race(self, two_writers_program):
        stats = PCTExplorer(
            two_writers_program, ExplorationLimits(max_schedules=60),
            depth=2, seed=1,
        ).run()
        assert stats.num_states == 2

    def test_depth_validated(self, two_writers_program):
        with pytest.raises(ValueError):
            PCTExplorer(two_writers_program, LIM, depth=0)


class TestPreemptionBounded:
    def test_bound_zero_no_preemptions(self, two_writers_program):
        stats = PreemptionBoundedExplorer(
            two_writers_program, LIM, bound=0
        ).run()
        # without preemptions only thread-completion orders remain
        assert stats.exhausted
        assert stats.num_schedules == 2

    def test_unbounded_equals_dfs(self, figure1_program):
        dfs = DFSExplorer(figure1_program, LIM).run()
        unbounded = PreemptionBoundedExplorer(
            figure1_program, LIM, bound=None
        ).run()
        assert unbounded.num_schedules == dfs.num_schedules
        assert unbounded.num_states == dfs.num_states

    def test_iterative_bounds_monotone(self, figure1_program):
        counts = [
            PreemptionBoundedExplorer(figure1_program, LIM, bound=c)
            .run().num_schedules
            for c in (0, 1, 2)
        ]
        assert counts == sorted(counts)

    def test_bound_zero_misses_states_bound_two_finds(self):
        # the classic preemption-bounding story on a racy counter
        from repro.suite.counters import racy_counter
        prog = racy_counter(2, 1)
        s0 = PreemptionBoundedExplorer(prog, LIM, bound=0).run()
        s2 = PreemptionBoundedExplorer(prog, LIM, bound=2).run()
        assert s0.num_states < s2.num_states


class TestStatsInvariants:
    @pytest.mark.parametrize("explorer_cls,kw", [
        (DFSExplorer, {}),
        (DPORExplorer, {}),
        (HBRCachingExplorer, {}),
        (HBRCachingExplorer, {"lazy": True}),
        (LazyDPORExplorer, {}),
        (RandomWalkExplorer, {}),
    ])
    def test_inequality_everywhere(self, figure1_program, explorer_cls, kw):
        stats = explorer_cls(
            figure1_program, ExplorationLimits(max_schedules=200), **kw
        ).run()
        stats.verify_inequality()

    def test_summary_is_printable(self, figure1_program):
        stats = DPORExplorer(figure1_program, LIM).run()
        assert "figure1" in stats.summary()
