"""Atomic-write semantics: readers never see a torn JSON document.

The distributed campaign leans on :mod:`repro.ioutil` for every
durable artifact (store, partials, coordinator state, reports), so the
"old doc or new doc, never a prefix" guarantee gets its own tests —
including the brutal one: a subprocess SIGKILLed at a random point in
a tight rewrite loop must leave a parseable document behind.
"""

import json
import multiprocessing
import os
import signal
import time

import pytest

from repro.ioutil import atomic_write_json, atomic_write_text, read_json


class TestAtomicWriteBasics:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "doc.json"
        atomic_write_json(path, {"a": 1, "b": [1, 2, 3]})
        assert read_json(path) == {"a": 1, "b": [1, 2, 3]}

    def test_creates_parent_dirs(self, tmp_path):
        path = tmp_path / "deep" / "er" / "doc.json"
        atomic_write_json(path, {"ok": True})
        assert read_json(path) == {"ok": True}

    def test_replace_preserves_old_until_swap(self, tmp_path):
        path = tmp_path / "doc.json"
        atomic_write_json(path, {"gen": 1})
        atomic_write_json(path, {"gen": 2})
        assert read_json(path) == {"gen": 2}

    def test_no_tmp_litter_after_success(self, tmp_path):
        path = tmp_path / "doc.json"
        atomic_write_json(path, {"gen": 1})
        assert [p.name for p in tmp_path.iterdir()] == ["doc.json"]

    def test_no_tmp_litter_after_serialization_failure(self, tmp_path):
        path = tmp_path / "doc.json"
        atomic_write_json(path, {"gen": "old"})
        with pytest.raises(TypeError):
            atomic_write_json(path, {"bad": object()})
        # the old document survives and no temp file is left behind
        assert read_json(path) == {"gen": "old"}
        assert [p.name for p in tmp_path.iterdir()] == ["doc.json"]

    def test_atomic_write_text(self, tmp_path):
        path = tmp_path / "doc.txt"
        atomic_write_text(path, "hello\n")
        assert path.read_text() == "hello\n"

    def test_read_json_missing_file(self, tmp_path):
        assert read_json(tmp_path / "nope.json") is None

    def test_read_json_garbage(self, tmp_path):
        path = tmp_path / "garbage.json"
        path.write_text("{ this is not json")
        assert read_json(path) is None


def _rewrite_forever(path, ready):
    """Child: rewrite ``path`` as fast as possible until killed."""
    gen = 0
    payload_pad = "x" * 8192  # big enough that a torn write would show
    while True:
        gen += 1
        atomic_write_json(path, {"gen": gen, "pad": payload_pad},
                          fsync=False)
        if gen == 3:
            ready.set()  # at least a few complete documents exist


class TestKillMidWrite:
    def test_sigkill_mid_write_never_tears_the_document(self, tmp_path):
        """SIGKILL a tight rewrite loop at random points; the document
        must parse as a *complete* payload every single time."""
        path = tmp_path / "doc.json"
        ctx = multiprocessing.get_context("fork")
        for round_no in range(8):
            ready = ctx.Event()
            proc = ctx.Process(target=_rewrite_forever,
                               args=(str(path), ready), daemon=True)
            proc.start()
            assert ready.wait(timeout=30.0), "writer never got going"
            # kill at a varying offset inside the write loop
            time.sleep(0.001 * (round_no + 1))
            os.kill(proc.pid, signal.SIGKILL)
            proc.join(timeout=10.0)
            assert proc.exitcode == -signal.SIGKILL
            payload = read_json(path)
            assert isinstance(payload, dict), \
                f"round {round_no}: torn document"
            assert set(payload) == {"gen", "pad"}
            assert payload["pad"] == "x" * 8192
        # temp litter from the killed writers (if any) must never be
        # mistaken for the document itself
        raw = json.loads(path.read_text())
        assert raw["gen"] >= 3
