"""Tests for error-schedule minimisation."""

import pytest

from repro import Program, execute
from repro.explore import DPORExplorer, ExplorationLimits, minimize_schedule
from repro.suite.bank import bank_racy
from repro.suite.channels import chan_close_race, chan_producer_consumer
from repro.suite.locks import lock_order_deadlock
from repro.suite.mutual_exclusion import peterson


def find_error_schedule(program):
    stats = DPORExplorer(
        program, ExplorationLimits(max_schedules=30_000)
    ).run()
    assert stats.errors
    return stats.errors[0]


class TestMinimization:
    def test_deadlock_schedule_shrinks(self):
        program = lock_order_deadlock()
        finding = find_error_schedule(program)
        result = minimize_schedule(program, finding.schedule)
        assert result.error_kind == "DeadlockError"
        assert len(result.schedule) <= len(finding.schedule)
        # the minimized schedule still deadlocks when replayed
        r = execute(program, schedule=result.schedule)
        assert r.error is not None

    def test_assertion_schedule_shrinks_and_reproduces(self):
        program = bank_racy(2)
        finding = find_error_schedule(program)
        result = minimize_schedule(program, finding.schedule)
        assert result.error_kind == "GuestAssertionError"
        r = execute(program, schedule=result.schedule)
        assert type(r.error).__name__ == "GuestAssertionError"

    def test_peterson_violation_shrinks(self):
        program = peterson(buggy=True)
        finding = find_error_schedule(program)
        result = minimize_schedule(program, finding.schedule)
        r = execute(program, schedule=result.schedule)
        assert type(r.error).__name__ == "GuestAssertionError"
        assert len(result.schedule) <= len(finding.schedule)

    def test_channel_bug_schedule_shrinks(self):
        # the seeded lost-update producer-consumer bug over a bounded
        # channel: DPOR finds it, the minimizer shrinks the witness
        program = chan_producer_consumer(1, 1, buggy=True)
        finding = find_error_schedule(program)
        result = minimize_schedule(program, finding.schedule)
        assert result.error_kind == "GuestAssertionError"
        assert len(result.schedule) <= len(finding.schedule)
        r = execute(program, schedule=result.schedule)
        assert type(r.error).__name__ == "GuestAssertionError"

    def test_channel_close_race_shrinks(self):
        program = chan_close_race(eager_close=True)
        finding = find_error_schedule(program)
        result = minimize_schedule(program, finding.schedule)
        assert result.error_kind == "ChannelError"
        r = execute(program, schedule=result.schedule)
        assert type(r.error).__name__ == "ChannelError"

    def test_non_failing_schedule_rejected(self, figure1_program):
        full = execute(figure1_program).schedule
        with pytest.raises(ValueError):
            minimize_schedule(figure1_program, full)

    def test_reduction_pct(self):
        program = lock_order_deadlock()
        finding = find_error_schedule(program)
        # pad the failing schedule with redundant explicit choices
        padded = finding.schedule + execute(
            program, schedule=finding.schedule
        ).schedule[len(finding.schedule):]
        result = minimize_schedule(program, padded)
        assert 0.0 <= result.reduction_pct <= 100.0
        assert result.replays >= 1

    def test_error_needing_no_steering_minimizes_to_empty(self):
        # a program that fails under the default first-enabled policy
        def build(p):
            x = p.var("x", 0)

            def t(api):
                yield api.read(x)
                api.guest_assert(False, "always")

            p.thread(t)

        program = Program("always_fails", build)
        result = minimize_schedule(program, [0, 0])
        assert result.schedule == []

    def test_replay_budget_respected(self):
        program = bank_racy(2)
        finding = find_error_schedule(program)
        result = minimize_schedule(program, finding.schedule, max_replays=5)
        assert result.replays <= 6
