"""Tests for error-schedule minimisation."""

import pytest

from repro import Program, execute
from repro.explore import DPORExplorer, ExplorationLimits, minimize_schedule
from repro.suite.bank import bank_racy
from repro.suite.channels import chan_close_race, chan_producer_consumer
from repro.suite.locks import lock_order_deadlock
from repro.suite.mutual_exclusion import peterson
from repro.suite import REGISTRY


def find_error_schedule(program):
    stats = DPORExplorer(
        program, ExplorationLimits(max_schedules=30_000)
    ).run()
    assert stats.errors
    return stats.errors[0]


class TestMinimization:
    def test_deadlock_schedule_shrinks(self):
        program = lock_order_deadlock()
        finding = find_error_schedule(program)
        result = minimize_schedule(program, finding.schedule)
        assert result.error_kind == "DeadlockError"
        assert len(result.schedule) <= len(finding.schedule)
        # the minimized schedule still deadlocks when replayed
        r = execute(program, schedule=result.schedule)
        assert r.error is not None

    def test_assertion_schedule_shrinks_and_reproduces(self):
        program = bank_racy(2)
        finding = find_error_schedule(program)
        result = minimize_schedule(program, finding.schedule)
        assert result.error_kind == "GuestAssertionError"
        r = execute(program, schedule=result.schedule)
        assert type(r.error).__name__ == "GuestAssertionError"

    def test_peterson_violation_shrinks(self):
        program = peterson(buggy=True)
        finding = find_error_schedule(program)
        result = minimize_schedule(program, finding.schedule)
        r = execute(program, schedule=result.schedule)
        assert type(r.error).__name__ == "GuestAssertionError"
        assert len(result.schedule) <= len(finding.schedule)

    def test_channel_bug_schedule_shrinks(self):
        # the seeded lost-update producer-consumer bug over a bounded
        # channel: DPOR finds it, the minimizer shrinks the witness
        program = chan_producer_consumer(1, 1, buggy=True)
        finding = find_error_schedule(program)
        result = minimize_schedule(program, finding.schedule)
        assert result.error_kind == "GuestAssertionError"
        assert len(result.schedule) <= len(finding.schedule)
        r = execute(program, schedule=result.schedule)
        assert type(r.error).__name__ == "GuestAssertionError"

    def test_channel_close_race_shrinks(self):
        program = chan_close_race(eager_close=True)
        finding = find_error_schedule(program)
        result = minimize_schedule(program, finding.schedule)
        assert result.error_kind == "ChannelError"
        r = execute(program, schedule=result.schedule)
        assert type(r.error).__name__ == "ChannelError"

    def test_non_failing_schedule_rejected(self, figure1_program):
        full = execute(figure1_program).schedule
        with pytest.raises(ValueError):
            minimize_schedule(figure1_program, full)

    def test_reduction_pct(self):
        program = lock_order_deadlock()
        finding = find_error_schedule(program)
        # pad the failing schedule with redundant explicit choices
        padded = finding.schedule + execute(
            program, schedule=finding.schedule
        ).schedule[len(finding.schedule):]
        result = minimize_schedule(program, padded)
        assert 0.0 <= result.reduction_pct <= 100.0
        assert result.replays >= 1

    def test_error_needing_no_steering_minimizes_to_empty(self):
        # a program that fails under the default first-enabled policy
        def build(p):
            x = p.var("x", 0)

            def t(api):
                yield api.read(x)
                api.guest_assert(False, "always")

            p.thread(t)

        program = Program("always_fails", build)
        result = minimize_schedule(program, [0, 0])
        assert result.schedule == []

    def test_replay_budget_respected(self):
        program = bank_racy(2)
        finding = find_error_schedule(program)
        result = minimize_schedule(program, finding.schedule, max_replays=5)
        assert result.replays <= 6


class TestTimedBugWitness:
    """The seeded lease-expiry timeout bug (suite id 89): DPOR finds
    it, the minimizer shrinks the witness, and the shrunk schedule
    reproduces byte-identically on every execution configuration —
    both clock-engine backends, snapshots on and off, and the serial
    campaign path."""

    @pytest.fixture(scope="class")
    def witness(self):
        program = REGISTRY[89].program
        finding = find_error_schedule(program)
        assert finding.kind == "GuestAssertionError"
        result = minimize_schedule(program, finding.schedule)
        return program, finding, result

    def test_minimizer_shrinks_the_timeout_witness(self, witness):
        program, finding, result = witness
        assert result.error_kind == "GuestAssertionError"
        assert len(result.schedule) <= len(finding.schedule)
        r = execute(program, schedule=result.schedule)
        assert type(r.error).__name__ == "GuestAssertionError"
        assert "lease stolen" in str(r.error)

    def test_witness_reproduces_on_every_configuration(self, witness):
        from repro.runtime.executor import Executor

        program, _, result = witness
        # execute() completes the minimized prefix with the first-enabled
        # policy; base.schedule is the fully-recorded schedule
        base = execute(program, schedule=result.schedule)
        signature = (base.hbr_fp, base.lazy_fp, base.state_hash)
        for kwargs in ({"engine": "ref"}, {"engine": "accel"},
                       {"snapshots": True}):
            ex = Executor(program, **kwargs)
            for tid in base.schedule:
                ex.step(tid)
            r = ex.finish()
            assert (r.hbr_fp, r.lazy_fp, r.state_hash) == signature, kwargs
            assert type(r.error).__name__ == "GuestAssertionError"

    def test_campaign_cell_finds_the_same_bug(self):
        from repro.campaign import CampaignCell, execute_cell
        from repro.explore.controller import run_single

        lim = ExplorationLimits(max_schedules=30_000)
        serial = run_single(REGISTRY[89].program, "dpor", lim)
        cell = execute_cell(CampaignCell(89, "dpor", 0), lim)
        assert cell.ok, cell.error
        assert {e.kind for e in serial.errors} == {"GuestAssertionError"}
        assert {e.kind for e in cell.stats.errors} == {"GuestAssertionError"}
        assert cell.stats.state_hashes == serial.state_hashes
        assert sorted(e.schedule for e in cell.stats.errors) == \
            sorted(e.schedule for e in serial.errors)
