"""Snapshot/fork equivalence: resuming an executor from a
copy-on-write snapshot must be *observably identical* to replaying the
same prefix from scratch — same enabled sets, pending-info lookahead,
fingerprints, state hashes, schedules and errors.

The property is exercised three ways:

* a hypothesis property over random schedules and random cut points of
  programs that together use **every** sync primitive (mutex, condvar
  wait/notify, semaphore, barrier, rwlock, atomic RMW, plain
  vars/arrays/dicts, await_value, spawn/join, yield, guest assertions,
  deadlocks);
* explorer-level equivalence: kernel strategies and DPOR must produce
  byte-identical statistics whatever the snapshot budget — including a
  budget so tiny that almost every insert is rejected or evicted
  (graceful degradation to plain replay);
* multi-restore: one snapshot restored several times yields
  independent, identical executors, and forking never perturbs the
  original.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro import Program
from repro.core.events import OpKind
from repro.explore import ExplorationLimits
from repro.explore.controller import make_explorer
from repro.runtime.executor import Executor
from repro.suite import REGISTRY


# ---------------------------------------------------------------------------
# Programs spanning the full primitive vocabulary
def _omnibus() -> Program:
    """Barrier + semaphore + condvar + rwlock + atomic + array/dict +
    await_value in one program; three threads."""

    def build(p):
        m = p.mutex("m")
        cv = p.condition("cv")
        sem = p.semaphore("sem", 1)
        bar = p.barrier("bar", 2)
        rw = p.rwlock("rw")
        counter = p.atomic("counter", 0)
        flag = p.var("flag", 0)
        cells = p.array("cells", [0, 0])
        table = p.dict("table", {0: 0})

        def t0(api):
            yield api.fetch_add(counter, 2)
            yield api.barrier_wait(bar)
            yield api.rlock(rw)
            v = yield api.read(cells, key=0)
            yield api.runlock(rw)
            yield api.lock(m)
            yield api.write(flag, 1)
            yield api.notify(cv)
            yield api.unlock(m)
            yield api.write(table, v + 1, key=0)

        def t1(api):
            yield api.sem_acquire(sem)
            yield api.wlock(rw)
            yield api.write(cells, 5, key=0)
            yield api.wunlock(rw)
            yield api.sem_release(sem)
            yield api.barrier_wait(bar)
            ok = yield api.cas(counter, 2, 9)
            yield api.write(cells, 1 if ok else 2, key=1)

        def t2(api):
            yield api.lock(m)
            while True:
                v = yield api.read(flag)
                if v:
                    break
                yield api.wait(cv, m)
            yield api.unlock(m)
            yield api.await_value(counter, lambda x: x >= 2)
            yield api.sched_yield()
            yield api.write(table, 7, key=1)

        p.thread(t0)
        p.thread(t1)
        p.thread(t2)

    return Program("snapshot_omnibus", build)


def _spawner() -> Program:
    """Nested dynamic spawn: a child spawns a grandchild."""

    def build(p):
        out = p.array("out", [0, 0, 0])
        total = p.atomic("total", 0)

        def grandchild(api, me):
            yield api.write(out, me * 10, key=2)
            yield api.fetch_add(total, 1)

        def child(api, me):
            yield api.write(out, me, key=1)
            gtid = yield api.spawn(grandchild, me + 1)
            yield api.join(gtid)
            yield api.fetch_add(total, 1)

        def main(api):
            tid = yield api.spawn(child, 1)
            yield api.write(out, 99, key=0)
            yield api.join(tid)
            yield api.fetch_add(total, 1)

        p.thread(main)

    return Program("snapshot_spawner", build)


def _crashy() -> Program:
    """One thread dies on a guest assertion under some interleavings."""

    def build(p):
        x = p.var("x", 0)

        def writer(api):
            yield api.write(x, 1)

        def asserter(api):
            v = yield api.read(x)
            api.guest_assert(v == 0, "saw the write")
            yield api.write(x, v + 10)

        p.thread(writer)
        p.thread(asserter)

    return Program("snapshot_crashy", build)


def _deadlocky() -> Program:
    def build(p):
        a = p.mutex("a")
        b = p.mutex("b")

        def t0(api):
            yield api.lock(a)
            yield api.lock(b)
            yield api.unlock(b)
            yield api.unlock(a)

        def t1(api):
            yield api.lock(b)
            yield api.lock(a)
            yield api.unlock(a)
            yield api.unlock(b)

        p.thread(t0)
        p.thread(t1)

    return Program("snapshot_deadlocky", build)


PROGRAMS = {
    "omnibus": _omnibus(),
    "spawner": _spawner(),
    "crashy": _crashy(),
    "deadlocky": _deadlocky(),
    "bounded_buffer": REGISTRY[24].program,
    "spawn_join": REGISTRY[77].program,
    # the message-passing primitives: channel buffer/closed COW, future
    # COW, and — via the close race — snapshots of threads crashed by a
    # runtime-injected ChannelError (the throw_exc restore path)
    "chan_pipeline": REGISTRY[80].program,
    "chan_close_race": REGISTRY[87].program,
    "future_dag": REGISTRY[86].program,
    "rendezvous": REGISTRY[88].program,
}


def _random_schedule(program: Program, seed: int):
    ex = Executor(program, snapshots=True)
    rng = random.Random(seed)
    while not ex.is_done():
        ex.step(rng.choice(ex.enabled()))
    return ex.finish()


def _pending_view(ex: Executor):
    return [
        (i.tid, i.kind, i.oid, i.key, i.enabled, i.released_mutex_oid)
        for i in ex.all_pending_infos()
    ]


def _assert_runs_identical(a: Executor, b: Executor, tail):
    """Drive both executors down ``tail`` asserting every observable
    agrees at every scheduling point."""
    for tid in tail:
        assert a.enabled() == b.enabled()
        assert a.runnable_unfinished() == b.runnable_unfinished()
        assert _pending_view(a) == _pending_view(b)
        a.step(tid)
        b.step(tid)
    assert a.is_done() == b.is_done()
    ra, rb = a.finish(), b.finish()
    assert ra.schedule == rb.schedule
    assert ra.hbr_fp == rb.hbr_fp
    assert ra.lazy_fp == rb.lazy_fp
    assert ra.state_hash == rb.state_hash
    assert ra.truncated == rb.truncated
    assert ra.num_events == rb.num_events
    assert type(ra.error).__name__ == type(rb.error).__name__
    assert str(ra.error) == str(rb.error)
    return ra, rb


@pytest.mark.parametrize("name", sorted(PROGRAMS))
@given(seed=st.integers(0, 10**9), cut_frac=st.floats(0.0, 1.0))
@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_fork_resume_identical_to_fresh_replay(name, seed, cut_frac):
    program = PROGRAMS[name]
    full = _random_schedule(program, seed)
    sched = full.schedule
    cut = int(cut_frac * len(sched))

    fresh = Executor(program, snapshots=True)
    fresh.replay_prefix(sched[:cut])
    snap = fresh.snapshot()
    resumed = Executor.from_snapshot(snap)

    ra, rb = _assert_runs_identical(fresh, resumed, sched[cut:])
    assert ra.hbr_fp == full.hbr_fp
    assert ra.state_hash == full.state_hash


@pytest.mark.parametrize("name", sorted(PROGRAMS))
def test_multi_restore_and_fork_independence(name):
    program = PROGRAMS[name]
    full = _random_schedule(program, 1234)
    sched = full.schedule
    cut = len(sched) // 2

    base = Executor(program, snapshots=True)
    base.replay_prefix(sched[:cut])
    snap = base.snapshot()

    # one snapshot, three independent restores (one via fork of a fork)
    r1 = Executor.from_snapshot(snap)
    r2 = Executor.from_snapshot(snap)
    r3 = r1.fork()
    _assert_runs_identical(r1, r2, sched[cut:])
    # forking r1 before it ran must not have perturbed it, and the fork
    # itself continues identically
    r4 = Executor(program, snapshots=True)
    r4.replay_prefix(sched[:cut])
    _assert_runs_identical(r3, r4, sched[cut:])

    # the snapshot source keeps running unperturbed
    for tid in sched[cut:]:
        base.step(tid)
    assert base.finish().state_hash == full.state_hash


def test_trace_mode_snapshot_preserves_events():
    # DPOR runs executors with materialised traces; a resumed executor
    # must carry the full stamped event list
    program = PROGRAMS["omnibus"]
    full = _random_schedule(program, 99)
    sched = full.schedule
    cut = len(sched) // 2
    a = Executor(program, fast_replay=False, snapshots=True)
    a.replay_prefix(sched[:cut])
    b = Executor.from_snapshot(a.snapshot())
    for tid in sched[cut:]:
        a.step(tid)
        b.step(tid)
    ta, tb = a.finish().events, b.finish().events
    assert len(ta) == len(tb) == len(sched)
    for ea, eb in zip(ta, tb):
        assert (ea.index, ea.tid, ea.tindex, ea.kind, ea.oid, ea.key,
                ea.clock, ea.lazy_clock, ea.released_mutex_oid) == \
               (eb.index, eb.tid, eb.tindex, eb.kind, eb.oid, eb.key,
                eb.clock, eb.lazy_clock, eb.released_mutex_oid)


def test_snapshot_requires_recording():
    ex = Executor(PROGRAMS["omnibus"])
    with pytest.raises(Exception):
        ex.snapshot()


# ---------------------------------------------------------------------------
# Explorer-level equivalence across snapshot budgets
def _stats_dict(explorer_name, bench_id, budget):
    limits = ExplorationLimits(max_schedules=500)
    limits.snapshot_budget_bytes = budget
    explorer = make_explorer(explorer_name, REGISTRY[bench_id].program,
                             limits)
    stats = explorer.run().to_dict()
    stats.pop("elapsed")
    return stats, explorer


@pytest.mark.parametrize("explorer_name", [
    "dfs", "hbr-caching", "lazy-hbr-caching", "preempt-bounded",
    "iterative-cb", "delay-bounded", "dpor", "lazy-dpor",
])
@pytest.mark.parametrize("bench_id", [4, 24, 36, 47])
def test_explorer_budget_invariance(explorer_name, bench_id):
    """Statistics are byte-identical whether the snapshot tree is off,
    default-sized, or starved down to eviction thrash."""
    base, _ = _stats_dict(explorer_name, bench_id, 0)
    for budget in (4 << 20, 6000):
        other, _ = _stats_dict(explorer_name, bench_id, budget)
        assert other == base, (explorer_name, bench_id, budget)


def test_tiny_budget_degrades_gracefully():
    """Under a starvation budget the tree must actually reject/evict
    (proving the budget binds) while results stay identical — the
    eviction path falls back to plain replay, it never corrupts."""
    base, _ = _stats_dict("dfs", 24, 0)
    tiny, ex = _stats_dict("dfs", 24, 6000)
    assert tiny == base
    stats = ex.snapshot_tree.stats()
    assert stats["bytes_high_water"] <= 6000
    assert stats["evictions"] > 0 or stats["rejected"] > 0
    # and with everything rejected outright (budget smaller than any
    # snapshot), every lookup is a miss
    micro, ex2 = _stats_dict("dfs", 24, 1)
    assert micro == base
    assert len(ex2.snapshot_tree) == 0
    assert ex2.snapshot_tree.stats()["hits"] == 0


def test_snapshot_budget_zero_disables_tree():
    limits = ExplorationLimits(max_schedules=50)
    limits.snapshot_budget_bytes = 0
    explorer = make_explorer("dfs", REGISTRY[4].program, limits)
    explorer.run()
    assert explorer.snapshot_tree is None


def test_snapshot_of_thread_crashed_by_injected_error():
    """A snapshot taken between a runtime-injected crash (send on a
    closed channel -> ChannelError thrown into the guest) and the
    crashed thread's EXIT must restore the pending EXIT from the
    recorded error — the dead generator cannot re-raise it."""
    program = REGISTRY[87].program  # chan_close_race_eager
    # schedule: producer send(1); controller recv, close; producer
    # send(2) -> crash injected, EXIT pending
    ex = Executor(program, snapshots=True)
    for tid in (0, 1, 1, 0):
        ex.step(tid)
    t0 = ex.threads[0]
    assert t0.throw_exc is not None
    assert t0.pending.kind is OpKind.EXIT
    snap = ex.snapshot()
    for a, b in ((ex, Executor.from_snapshot(snap)),
                 (Executor.from_snapshot(snap),
                  Executor.from_snapshot(snap))):
        # drive both to completion step-for-step (first-enabled)
        while not a.is_done():
            assert a.enabled() == b.enabled()
            tid = a.enabled()[0]
            a.step(tid)
            b.step(tid)
        ra, rb = _assert_runs_identical(a, b, tail=[])
        assert type(ra.error).__name__ == "ChannelError"
