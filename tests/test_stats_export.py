"""Tests for result serialisation and the matrix CLI command."""

import json

from repro.__main__ import main
from repro.explore import DPORExplorer, ExplorationLimits
from repro.suite import REGISTRY


class TestToDict:
    def test_roundtrips_through_json(self):
        stats = DPORExplorer(
            REGISTRY[36].program, ExplorationLimits(max_schedules=100)
        ).run()
        payload = json.loads(json.dumps(stats.to_dict()))
        assert payload["program"] == "lock_order_deadlock"
        assert payload["explorer"] == "dpor"
        assert payload["num_schedules"] == stats.num_schedules
        assert payload["errors"][0]["kind"] == "DeadlockError"
        assert isinstance(payload["errors"][0]["schedule"], list)

    def test_extra_filtered_to_scalars(self):
        stats = DPORExplorer(
            REGISTRY[1].program, ExplorationLimits(max_schedules=100)
        ).run()
        stats.extra["fine"] = 3
        stats.extra["dropped"] = object()
        d = stats.to_dict()
        assert d["extra"]["fine"] == 3
        assert "dropped" not in d["extra"]

    def test_extra_json_safe_collections_round_trip(self):
        # non-scalar but JSON-safe extras (lists, nested dicts) used to
        # be silently dropped; the campaign store needs them faithful
        from repro.explore.base import ExplorationStats

        stats = DPORExplorer(
            REGISTRY[1].program, ExplorationLimits(max_schedules=100)
        ).run()
        stats.extra["per_bound"] = [3, 1, 4]
        stats.extra["nested"] = {"rounds": {"0": 5}, "flags": [True]}
        stats.extra["still_dropped"] = {"obj": object()}
        payload = json.loads(json.dumps(stats.to_dict()))
        assert payload["extra"]["per_bound"] == [3, 1, 4]
        assert payload["extra"]["nested"] == {"rounds": {"0": 5},
                                              "flags": [True]}
        assert "still_dropped" not in payload["extra"]
        clone = ExplorationStats.from_dict(payload)
        assert clone.extra["per_bound"] == [3, 1, 4]
        assert clone.extra["nested"]["rounds"]["0"] == 5

    def test_fingerprint_sets_round_trip(self):
        from repro.explore.base import ExplorationStats

        stats = DPORExplorer(
            REGISTRY[36].program, ExplorationLimits(max_schedules=100)
        ).run()
        assert stats.has_consistent_sets()
        payload = json.loads(json.dumps(stats.to_dict()))
        assert payload["hbr_fps"] == sorted(stats.hbr_fps)
        clone = ExplorationStats.from_dict(payload)
        assert clone.hbr_fps == stats.hbr_fps
        assert clone.lazy_fps == stats.lazy_fps
        assert clone.state_hashes == stats.state_hashes
        assert clone.has_consistent_sets()
        # full dict round trip (the campaign determinism tests rely on
        # to_dict equality, so from_dict(to_dict) must be lossless
        # modulo non-JSON extras)
        assert clone.to_dict() == stats.to_dict()

    def test_merge_requires_consistent_sets(self):
        import pytest

        from repro.explore.base import ExplorationStats

        a = ExplorationStats("p", "e", num_schedules=5, num_hbrs=2,
                             hbr_fps={1, 2}, lazy_fps=set(),
                             state_hashes=set())
        legacy = ExplorationStats("p", "e", num_schedules=5, num_hbrs=3)
        with pytest.raises(ValueError):
            a.merge(legacy)

    def test_merge_unions_sets_and_dedups_errors(self):
        from repro.explore.base import ErrorFinding, ExplorationStats

        a = ExplorationStats(
            "p", "e", num_schedules=3, num_complete=3, num_hbrs=2,
            num_lazy_hbrs=2, num_states=1, hbr_fps={1, 2},
            lazy_fps={10, 11}, state_hashes={7},
            errors=[ErrorFinding("Dead", "m", [0, 1])],
            exhausted=True,
        )
        b = ExplorationStats(
            "p", "e", num_schedules=4, num_complete=4, num_hbrs=2,
            num_lazy_hbrs=1, num_states=1, hbr_fps={2, 3},
            lazy_fps={11}, state_hashes={7},
            errors=[ErrorFinding("Dead", "m", [1, 0]),
                    ErrorFinding("Assert", "n", [1])],
            exhausted=True,
        )
        a.merge(b)
        assert a.num_schedules == 7
        assert a.hbr_fps == {1, 2, 3} and a.num_hbrs == 3
        assert a.lazy_fps == {10, 11} and a.num_lazy_hbrs == 2
        assert a.num_states == 1
        # errors dedup by (kind, message); first witness wins
        assert [(e.kind, e.schedule) for e in a.errors] == [
            ("Dead", [0, 1]), ("Assert", [1]),
        ]
        assert a.exhausted


class TestMatrixCommand:
    def test_matrix_renders_table(self, capsys):
        assert main(["matrix", "--ids", "1", "--strategies",
                     "dpor,lazy-dpor", "--limit", "200"]) == 0
        out = capsys.readouterr().out
        assert "| figure1 | dpor |" in out
        assert "lazy-dpor" in out

    def test_matrix_json_export(self, tmp_path, capsys):
        path = tmp_path / "results.json"
        assert main(["matrix", "--ids", "1,36", "--strategies", "dpor",
                     "--limit", "200", "--json", str(path)]) == 0
        payload = json.loads(path.read_text())
        assert len(payload) == 2
        assert payload[0]["dpor"]["program"] == "figure1"
        assert payload[1]["dpor"]["errors"]
