"""Tests for result serialisation and the matrix CLI command."""

import json

from repro.__main__ import main
from repro.explore import DPORExplorer, ExplorationLimits
from repro.suite import REGISTRY


class TestToDict:
    def test_roundtrips_through_json(self):
        stats = DPORExplorer(
            REGISTRY[36].program, ExplorationLimits(max_schedules=100)
        ).run()
        payload = json.loads(json.dumps(stats.to_dict()))
        assert payload["program"] == "lock_order_deadlock"
        assert payload["explorer"] == "dpor"
        assert payload["num_schedules"] == stats.num_schedules
        assert payload["errors"][0]["kind"] == "DeadlockError"
        assert isinstance(payload["errors"][0]["schedule"], list)

    def test_extra_filtered_to_scalars(self):
        stats = DPORExplorer(
            REGISTRY[1].program, ExplorationLimits(max_schedules=100)
        ).run()
        stats.extra["fine"] = 3
        stats.extra["dropped"] = object()
        d = stats.to_dict()
        assert d["extra"]["fine"] == 3
        assert "dropped" not in d["extra"]


class TestMatrixCommand:
    def test_matrix_renders_table(self, capsys):
        assert main(["matrix", "--ids", "1", "--strategies",
                     "dpor,lazy-dpor", "--limit", "200"]) == 0
        out = capsys.readouterr().out
        assert "| figure1 | dpor |" in out
        assert "lazy-dpor" in out

    def test_matrix_json_export(self, tmp_path, capsys):
        path = tmp_path / "results.json"
        assert main(["matrix", "--ids", "1,36", "--strategies", "dpor",
                     "--limit", "200", "--json", str(path)]) == 0
        payload = json.loads(path.read_text())
        assert len(payload) == 2
        assert payload[0]["dpor"]["program"] == "figure1"
        assert payload[1]["dpor"]["errors"]
