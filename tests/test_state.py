"""Tests for final-state capture and hashing."""

from repro import Program, execute
from repro.runtime.objects import ObjectRegistry
from repro.runtime.sharedvar import SharedVar
from repro.runtime.state import compute_state_hash, describe_state


class TestStateHash:
    def test_same_state_same_hash(self):
        r1, r2 = ObjectRegistry(), ObjectRegistry()
        SharedVar(r1, 5, "x")
        SharedVar(r2, 5, "x")
        h1 = compute_state_hash(r1, ((1, False),), None, False)
        h2 = compute_state_hash(r2, ((1, False),), None, False)
        assert h1 == h2

    def test_value_changes_hash(self):
        r1, r2 = ObjectRegistry(), ObjectRegistry()
        SharedVar(r1, 5, "x")
        SharedVar(r2, 6, "x")
        assert compute_state_hash(r1, (), None, False) != \
               compute_state_hash(r2, (), None, False)

    def test_error_changes_hash(self):
        from repro.errors import DeadlockError
        r = ObjectRegistry()
        SharedVar(r, 5, "x")
        clean = compute_state_hash(r, (), None, False)
        dead = compute_state_hash(r, (), DeadlockError([0]), False)
        assert clean != dead

    def test_progress_changes_hash(self):
        r = ObjectRegistry()
        a = compute_state_hash(r, ((1, False),), None, False)
        b = compute_state_hash(r, ((2, False),), None, False)
        assert a != b

    def test_crash_flag_changes_hash(self):
        r = ObjectRegistry()
        a = compute_state_hash(r, ((1, False),), None, False)
        b = compute_state_hash(r, ((1, True),), None, False)
        assert a != b

    def test_truncation_changes_hash(self):
        r = ObjectRegistry()
        assert compute_state_hash(r, (), None, False) != \
               compute_state_hash(r, (), None, True)


class TestDescribeState:
    def test_names_mapped_to_values(self):
        r = ObjectRegistry()
        SharedVar(r, 5, "x")
        SharedVar(r, "hi", "y")
        assert describe_state(r) == {"x": 5, "y": "hi"}


class TestEndToEndStateIdentity:
    def test_commuting_schedules_same_state(self):
        """Increments commute: +1 then +2 == +2 then +1 — but only with
        atomic increments; with read/write pairs interleavings differ."""
        def build(p):
            a = p.atomic("a", 0)

            def inc(api, d):
                yield api.fetch_add(a, d)

            p.thread(inc, 1)
            p.thread(inc, 2)

        prog = Program("t", build)
        r1 = execute(prog, schedule=[0, 0, 1, 1])
        r2 = execute(prog, schedule=[1, 1, 0, 0])
        assert r1.state_hash == r2.state_hash
        # ...but the HBRs differ (RMWs conflict):
        assert r1.hbr_fp != r2.hbr_fp
