"""Tests for schedulers, replay and feasibility checking."""

import pytest

from repro import execute, is_feasible
from repro.errors import SchedulerError
from repro.runtime.schedule import (
    FirstEnabledScheduler,
    RandomScheduler,
    ReplayScheduler,
    RoundRobinScheduler,
)


class TestFirstEnabled:
    def test_deterministic(self, figure1_program):
        a = execute(figure1_program, scheduler=FirstEnabledScheduler())
        b = execute(figure1_program, scheduler=FirstEnabledScheduler())
        assert a.schedule == b.schedule


class TestRoundRobin:
    def test_alternates_between_enabled_threads(self, two_writers_program):
        r = execute(two_writers_program, scheduler=RoundRobinScheduler())
        # both threads appear early, not one run to completion first
        assert r.schedule[0] != r.schedule[1]


class TestRandom:
    def test_seeded_reproducibility(self, figure1_program):
        a = execute(figure1_program, scheduler=RandomScheduler(7))
        b = execute(figure1_program, scheduler=RandomScheduler(7))
        assert a.schedule == b.schedule

    def test_different_seeds_eventually_differ(self, figure1_program):
        schedules = {
            tuple(execute(figure1_program,
                          scheduler=RandomScheduler(s)).schedule)
            for s in range(20)
        }
        assert len(schedules) > 1


class TestReplay:
    def test_prefix_then_fallback(self, figure1_program):
        r = execute(figure1_program, schedule=[1])
        assert r.schedule[0] == 1
        assert len(r.events) == 10

    def test_divergent_replay_raises(self, figure1_program):
        # t0 holds the mutex; asking t1 to lock must fail
        with pytest.raises(SchedulerError):
            execute(figure1_program, schedule=[0, 1, 1])

    def test_strict_replay_stops_at_end(self, figure1_program):
        sched = ReplayScheduler([0], strict=True)
        with pytest.raises(SchedulerError):
            execute(figure1_program, scheduler=sched)


class TestFeasibility:
    def test_complete_schedule_is_feasible(self, figure1_program):
        full = execute(figure1_program).schedule
        assert is_feasible(figure1_program, full)

    def test_infeasible_schedule_detected(self, figure1_program):
        # T1 cannot lock while T0 holds the mutex
        assert not is_feasible(figure1_program, [0, 1, 1, 0, 0, 0, 0, 1, 1, 1])

    def test_partial_schedule_is_not_feasible_as_complete(self, figure1_program):
        assert not is_feasible(figure1_program, [0, 0])

    def test_too_long_schedule_is_infeasible(self, figure1_program):
        full = execute(figure1_program).schedule
        assert not is_feasible(figure1_program, full + [0])
