"""Chaos-engineering integration tests for distributed campaigns.

Real coordinator, real forked worker processes, real fault injection —
and one invariant above all: however many workers die, hang, or get
partitioned mid-campaign, the **canonical report** (provenance
stripped, see :func:`repro.campaign.canonical_report_dict`) is
byte-for-byte identical to the serial run's.

The file-queue transport keeps these tests network-free; the kill
tests use ``os._exit(137)`` inside the explorer's control callback at
a deterministic schedule count (hypothesis picks the count), which is
as close to SIGKILL-at-a-bad-moment as a test can schedule.
"""

import json
import multiprocessing
import tempfile
import threading
import time
from pathlib import Path

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.campaign import (
    CampaignCell,
    ChaosPlan,
    ChaosRule,
    campaign_report,
    canonical_report_dict,
    run_campaign,
)
from repro.campaign.distributed import (
    Coordinator,
    DistributedWorker,
    FileCoordinatorServer,
    FileWorkerChannel,
)
from repro.explore.base import ExplorationLimits

CTX = multiprocessing.get_context("fork")

#: bench 3 under dfs explores 252 schedules to exhaustion — big enough
#: that faults land mid-cell, small enough to re-run many times
SMALL_CELL = (3, "dfs", 0)
#: bench 75 under dfs explores 2660 schedules — long enough for a
#: steal command to land while the victim is still working
BIG_CELL = (75, "dfs", 0)


def canonical(report_dict):
    return json.dumps(canonical_report_dict(report_dict),
                      sort_keys=True)


_SERIAL_CACHE = {}


def serial_canonical(cells, limits):
    key = (tuple(cells), limits.max_schedules)
    if key not in _SERIAL_CACHE:
        cs = [CampaignCell(*c) for c in cells]
        campaign = run_campaign(cs, limits)
        _SERIAL_CACHE[key] = canonical(
            campaign_report(campaign, limits).to_dict())
    return _SERIAL_CACHE[key]


def _worker_main(queue_dir, worker_id, chaos_dict=None):
    """Forked worker process entry point."""
    chaos = (ChaosPlan.from_dict(chaos_dict) if chaos_dict else None)
    channel = FileWorkerChannel(queue_dir, worker_id)
    try:
        DistributedWorker(channel, chaos=chaos).run()
    finally:
        channel.close()


def spawn_worker(queue_dir, worker_id, chaos=None):
    proc = CTX.Process(
        target=_worker_main,
        args=(str(queue_dir), worker_id,
              chaos.to_dict() if chaos else None),
        daemon=True,
    )
    proc.start()
    return proc


def coordinator_thread(coord, box, **kw):
    def pump():
        box["result"] = coord.run(**kw)

    t = threading.Thread(target=pump, daemon=True)
    t.start()
    return t


def distributed_canonical(coord_result, limits):
    return canonical(campaign_report(coord_result, limits).to_dict())


def wait_for(predicate, timeout=20.0, what="condition"):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(0.01)
    raise AssertionError(f"timed out waiting for {what}")


class TestKillWorkerMidCell:
    @settings(max_examples=3, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(kill_at=st.integers(min_value=5, max_value=200))
    def test_killed_worker_resumes_bit_identical(self, kill_at):
        """Kill a worker at a hypothesis-chosen schedule count; a
        clean worker resumes from the streamed checkpoint and the
        final report matches the serial run byte for byte."""
        cells = [SMALL_CELL]
        limits = ExplorationLimits(max_schedules=1000)
        expected = serial_canonical(cells, limits)
        with tempfile.TemporaryDirectory() as tmp:
            queue = Path(tmp) / "q"
            server = FileCoordinatorServer(queue)
            coord = Coordinator(
                [CampaignCell(*c) for c in cells], limits,
                server=server, lease_timeout=1.0, max_cell_retries=5,
            )
            box = {}
            pump = coordinator_thread(coord, box, max_seconds=60)
            try:
                chaos = ChaosPlan([ChaosRule(
                    "kill", cell="3:dfs:0", after_schedules=kill_at)])
                victim = spawn_worker(queue, "victim", chaos)
                victim.join(timeout=30)
                assert victim.exitcode == 137, \
                    "chaos kill never fired"
                # only now does the rescuer start: the victim
                # provably died holding the lease
                rescuer = spawn_worker(queue, "rescuer")
                pump.join(timeout=60)
                assert not pump.is_alive(), "campaign never finished"
                rescuer.join(timeout=30)
            finally:
                server.close()
            assert coord.num_expired >= 1
            assert distributed_canonical(box["result"], limits) == \
                expected


class TestCoordinatorCrashResume:
    def test_kill_and_resume_coordinator_mid_campaign(self, tmp_path):
        """Stop the coordinator mid-campaign (state checkpointed),
        start a replacement on the same state file: live workers are
        adopted and the final report is serial-identical."""
        cells = [(75, "dfs", 0), (80, "dfs", 0),
                 (75, "dfs", 1), (80, "dfs", 1)]
        limits = ExplorationLimits(max_schedules=3000)
        expected = serial_canonical(cells, limits)
        queue = tmp_path / "q"
        state = str(tmp_path / "coord-state.json")
        workers = [spawn_worker(queue, f"w{i}") for i in range(2)]
        try:
            server = FileCoordinatorServer(queue)
            first = Coordinator(
                [CampaignCell(*c) for c in cells], limits,
                server=server, state_path=state, lease_timeout=5.0,
            )
            # first incarnation: cut off mid-campaign (its final state
            # flush stands in for the periodic crash-safe checkpoint,
            # whose atomicity test_ioutil kill-tests directly)
            first.run(max_seconds=1.0)
            interrupted = not first.done

            second = Coordinator(
                [CampaignCell(*c) for c in cells], limits,
                server=server, state_path=state, lease_timeout=5.0,
            )
            assert not second.state_discarded
            result = second.run(max_seconds=120)
            server.close()
            for proc in workers:
                proc.join(timeout=30)
        finally:
            for proc in workers:
                if proc.is_alive():
                    proc.terminate()
        assert distributed_canonical(result, limits) == expected
        if interrupted:
            # the replacement really did inherit in-flight work: it
            # adopted a live worker's lease or resumed from checkpoint
            assert (second.num_adopted + second.num_executed) >= 1

    def test_stale_state_from_other_campaign_is_ignored(self, tmp_path):
        state = tmp_path / "coord-state.json"
        state.write_text(json.dumps({
            "version": 1, "kind": "repro-campaign-coordinator-state",
            "limits": {"max_schedules": 7, "max_seconds": None,
                       "max_events_per_schedule": 1},
            "cells": ["9:dfs:9"], "tasks": [],
        }))
        coord = Coordinator(
            [CampaignCell(*SMALL_CELL)],
            ExplorationLimits(max_schedules=1000),
            state_path=str(state),
        )
        assert coord.state_discarded
        assert coord._pending == ["3:dfs:0"]


class TestDuplicateDelivery:
    def test_partitioned_worker_redelivers_and_is_deduped(self,
                                                          tmp_path):
        """A network partition mutes a worker's heartbeats mid-cell:
        its lease expires and the cell is re-executed elsewhere, then
        the partition heals and the original result arrives late.
        At-least-once delivery + dedup: counted once, bit-identical."""
        cells = [SMALL_CELL]
        limits = ExplorationLimits(max_schedules=1000)
        expected = serial_canonical(cells, limits)
        queue = tmp_path / "q"
        server = FileCoordinatorServer(queue)
        coord = Coordinator(
            [CampaignCell(*c) for c in cells], limits,
            server=server, lease_timeout=0.6, max_cell_retries=5,
            steal=False,
        )
        box = {}
        # linger long enough to absorb the post-partition redelivery
        pump = coordinator_thread(coord, box, max_seconds=60,
                                  linger=6.0)
        chaos = ChaosPlan([ChaosRule("partition", cell="3:dfs:0",
                                     after_schedules=50, seconds=2.5)])
        victim = spawn_worker(queue, "victim", chaos)
        # the backup must not win the race for the only lease, or no
        # fault ever fires — start it once the victim holds the cell
        wait_for(lambda: coord._leases, what="victim's lease")
        backup = spawn_worker(queue, "backup")
        try:
            pump.join(timeout=60)
            assert not pump.is_alive(), "campaign never finished"
            # the campaign completed before the partition healed; the
            # late redelivery needs the linger window (and both worker
            # processes) to fully drain
            victim.join(timeout=30)
            backup.join(timeout=30)
        finally:
            server.close()
            for proc in (victim, backup):
                if proc.is_alive():
                    proc.terminate()
        assert coord.num_expired >= 1
        assert coord.num_executed == 1
        # the healed victim redelivered and was absorbed exactly once
        assert coord.num_duplicates >= 1
        assert distributed_canonical(box["result"], limits) == expected


class TestPoisonQuarantineIntegration:
    def test_cell_that_keeps_killing_workers_is_quarantined(
            self, tmp_path):
        """A cell that SIGKILLs every worker that touches it must end
        up quarantined with full diagnostics — not retry forever."""
        limits = ExplorationLimits(max_schedules=1000)
        queue = tmp_path / "q"
        server = FileCoordinatorServer(queue)
        coord = Coordinator(
            [CampaignCell(*SMALL_CELL)], limits,
            server=server, lease_timeout=0.8, max_cell_retries=2,
        )
        box = {}
        pump = coordinator_thread(coord, box, max_seconds=90)
        chaos = ChaosPlan([ChaosRule("kill", cell="3:dfs:0",
                                     after_schedules=5, times=-1)])
        kill_count = 0
        try:
            # the fleet manager: respawn the (always-doomed) worker
            # until the coordinator gives up on the cell
            for _ in range(8):
                if coord.done:
                    break
                proc = spawn_worker(queue, f"doomed{kill_count}",
                                    chaos)
                proc.join(timeout=30)
                if proc.exitcode == 137:
                    kill_count += 1
            pump.join(timeout=90)
            assert not pump.is_alive(), "campaign never finished"
        finally:
            server.close()
        assert kill_count >= 3  # initial attempt + max_cell_retries
        cell = box["result"].results[0]
        assert not cell.ok
        assert "quarantined after 3 failed attempts" in cell.error
        diag = cell.diagnostics
        assert diag["status"] == "quarantined"
        assert diag["retries"] == 3
        assert len(diag["workers"]) == 3
        assert diag["last_failure"] == "lease_expired"
        # the report document round-trips the forensics
        payload = campaign_report(box["result"], limits).to_dict()
        assert payload["cells"][0]["diagnostics"]["status"] == \
            "quarantined"


class TestWorkStealingIntegration:
    def test_stolen_shards_merge_bit_identical(self, tmp_path):
        """Three workers on one big DFS cell: the idle two steal
        frontier shards from the victim, and the merged cell equals
        the serial exploration exactly."""
        cells = [BIG_CELL]
        limits = ExplorationLimits(max_schedules=3000)
        expected = serial_canonical(cells, limits)
        queue = tmp_path / "q"
        server = FileCoordinatorServer(queue)
        coord = Coordinator(
            [CampaignCell(*c) for c in cells], limits,
            server=server, lease_timeout=0.8,
        )
        coord.steal_min_age = 0.05  # don't wait long in a test
        box = {}
        pump = coordinator_thread(coord, box, max_seconds=120)
        workers = [spawn_worker(queue, f"w{i}") for i in range(3)]
        try:
            pump.join(timeout=120)
            assert not pump.is_alive(), "campaign never finished"
            for proc in workers:
                proc.join(timeout=30)
        finally:
            server.close()
            for proc in workers:
                if proc.is_alive():
                    proc.terminate()
        assert coord.num_steals >= 1
        merged = box["result"].results[0]
        assert merged.stats.extra["dist_stolen_shards"] >= 1
        assert distributed_canonical(box["result"], limits) == expected


def _cli_worker_main(queue_dir):
    import repro.__main__ as cli
    raise SystemExit(cli.main([
        "campaign", "--worker", "--transport", "file",
        "--queue", queue_dir, "--worker-id", "cli-w1",
    ]))


class TestDistributedCli:
    def test_file_transport_end_to_end(self, tmp_path):
        """``repro campaign --coordinator`` + ``--worker`` over a file
        queue produce the standard report artifact."""
        import repro.__main__ as cli
        queue = tmp_path / "q"
        out = tmp_path / "report.json"
        proc = CTX.Process(target=_cli_worker_main,
                           args=(str(queue),), daemon=True)
        proc.start()
        try:
            rc = cli.main([
                "campaign", "--coordinator", "--transport", "file",
                "--queue", str(queue), "--ids", "5",
                "--explorers", "dfs", "--limit", "500",
                "--out", str(out),
                "--state", str(tmp_path / "state.json"),
            ])
            proc.join(timeout=30)
        finally:
            if proc.is_alive():
                proc.terminate()
        assert rc == 0
        assert proc.exitcode == 0
        payload = json.loads(out.read_text())
        assert payload["kind"] == "repro-campaign-report"
        assert payload["campaign"]["distributed"] is True
        assert payload["summary"]["num_failed"] == 0
        assert payload["cells"][0]["ok"] is True

    def test_worker_without_coordinator_fails_cleanly(self, tmp_path):
        import repro.__main__ as cli
        rc = cli.main([
            "campaign", "--worker", "--transport", "tcp",
            "--connect", "127.0.0.1:1", "--worker-id", "lonely",
        ])
        assert rc == 1


class TestHangChaos:
    def test_hung_worker_lease_expires_and_cell_recovers(self,
                                                         tmp_path):
        """A wedged worker (sleeping through its heartbeats) loses the
        lease; the cell completes elsewhere, serial-identical."""
        cells = [SMALL_CELL]
        limits = ExplorationLimits(max_schedules=1000)
        expected = serial_canonical(cells, limits)
        queue = tmp_path / "q"
        server = FileCoordinatorServer(queue)
        coord = Coordinator(
            [CampaignCell(*c) for c in cells], limits,
            server=server, lease_timeout=0.6, max_cell_retries=5,
            steal=False,
        )
        box = {}
        # the sleeper redelivers ~4s after it hung: linger for it
        pump = coordinator_thread(coord, box, max_seconds=60,
                                  linger=8.0)
        chaos = ChaosPlan([ChaosRule("hang", cell="3:dfs:0",
                                     after_schedules=30,
                                     seconds=4.0)])
        sleeper = spawn_worker(queue, "sleeper", chaos)
        wait_for(lambda: coord._leases, what="sleeper's lease")
        backup = spawn_worker(queue, "backup")
        try:
            pump.join(timeout=60)
            assert not pump.is_alive(), "campaign never finished"
            sleeper.join(timeout=30)
            backup.join(timeout=30)
        finally:
            server.close()
            for proc in (sleeper, backup):
                if proc.is_alive():
                    proc.terminate()
        assert coord.num_expired >= 1
        assert distributed_canonical(box["result"], limits) == expected
