"""Frontier semantics: work-item serialization, snapshot/resume
round-trips, and split(k) disjointness/exhaustiveness — property-tested
over the small suite for every ported strategy."""

from __future__ import annotations

import json

import pytest

from repro.explore import ExplorationLimits, Frontier, WorkItem
from repro.explore.base import ExplorationStats
from repro.explore.controller import (
    SPLITTABLE_EXPLORERS,
    make_explorer,
    supports_snapshot,
    supports_split,
)
from repro.explore.kernel import SNAPSHOT_VERSION
from repro.suite import REGISTRY

#: small but non-trivial benchmarks (enough schedules that a tiny
#: budget genuinely truncates exploration)
BENCH_IDS = (1, 3, 24, 36, 47)

RESUMABLE = sorted(SPLITTABLE_EXPLORERS) + ["dpor", "lazy-dpor"]


def _fresh(explorer_name, bench_id, **lim):
    program = REGISTRY[bench_id].program
    return make_explorer(explorer_name, program,
                         ExplorationLimits(**lim) if lim
                         else ExplorationLimits())


class TestWorkItem:
    def test_round_trip(self):
        item = WorkItem((0, 1, 0), {"budget": 2, "prev": 1})
        clone = WorkItem.from_dict(json.loads(json.dumps(item.to_dict())))
        assert clone == item
        assert clone.prefix == (0, 1, 0)

    def test_list_annotations_round_trip(self):
        item = WorkItem((1,), {"backtrack": [0, 2], "chosen": 1})
        clone = WorkItem.from_dict(json.loads(json.dumps(item.to_dict())))
        assert clone == item

    def test_non_serializable_annotation_rejected(self):
        with pytest.raises(TypeError):
            WorkItem((0,), {"bad": object()}).to_dict()

    def test_hashable(self):
        a = WorkItem((0, 1), {"x": 1})
        b = WorkItem((0, 1), {"x": 1})
        assert len({a, b}) == 1


class TestFrontier:
    def _frontier(self, n=10):
        fr = Frontier()
        for i in range(n):
            fr.push(WorkItem((0,) * i + (1,), {"depth": i}))
        return fr

    def test_lifo(self):
        fr = self._frontier(3)
        assert fr.pop().annotation["depth"] == 2

    def test_round_trip(self):
        fr = self._frontier()
        clone = Frontier.from_dict(json.loads(json.dumps(fr.to_dict())))
        assert clone == fr

    def test_bad_version_rejected(self):
        with pytest.raises(ValueError):
            Frontier.from_dict({"version": 99, "items": []})

    @pytest.mark.parametrize("k", [1, 2, 3, 4, 7, 15])
    def test_split_disjoint_and_exhaustive(self, k):
        fr = self._frontier(10)
        original = list(fr)
        shards = fr.split(k)
        assert len(shards) == k
        dealt = [item for shard in shards for item in shard]
        # exhaustive: every item lands in exactly one shard
        assert sorted(dealt, key=lambda i: i.annotation["depth"]) == original
        # disjoint: no duplicates
        assert len(set(dealt)) == len(original)

    def test_split_preserves_relative_order(self):
        fr = self._frontier(9)
        for shard in fr.split(3):
            depths = [item.annotation["depth"] for item in shard]
            assert depths == sorted(depths)

    def test_split_k1_is_identity(self):
        fr = self._frontier(5)
        (only,) = fr.split(1)
        assert only == fr

    def test_split_invalid_k(self):
        with pytest.raises(ValueError):
            self._frontier().split(0)

    def test_pop_shallowest(self):
        fr = Frontier()
        fr.push(WorkItem((0, 1, 2), {}))
        fr.push(WorkItem((1,), {}))
        fr.push(WorkItem((0, 1), {}))
        assert fr.pop_shallowest().prefix == (1,)
        assert fr.pop_shallowest().prefix == (0, 1)

    def test_pop_shallowest_matches_reference_scan(self):
        """Split-seeding determinism regression: the depth-bucketed
        pop_shallowest (which replaced an O(n²) full scan + splice)
        must pop the exact item the reference implementation would —
        shortest prefix, first such in stack order — under arbitrary
        interleavings of push / pop_shallowest / pop, with len() and
        serialization agreeing at every step."""
        import random

        rng = random.Random(20260731)
        for _ in range(50):
            fr = Frontier()
            model = []          # reference: plain list in stack order

            def ref_pop_shallowest():
                best = min(range(len(model)),
                           key=lambda i: len(model[i].prefix))
                return model.pop(best)

            counter = 0
            for _ in range(rng.randrange(5, 120)):
                roll = rng.random()
                if roll < 0.55 or not model:
                    depth = rng.randrange(0, 6)
                    item = WorkItem(
                        tuple(rng.randrange(3) for _ in range(depth)),
                        {"n": counter},
                    )
                    counter += 1
                    fr.push(item)
                    model.append(item)
                elif roll < 0.85:
                    assert fr.pop_shallowest() == ref_pop_shallowest()
                else:
                    # a LIFO pop mid-stream compacts the seeding index
                    assert fr.pop() == model.pop()
                assert len(fr) == len(model)
                assert bool(fr) == bool(model)
            # leaving seeding mode: order and serialization intact
            assert list(fr) == model
            assert fr.to_dict() == Frontier(model).to_dict()
            assert fr == Frontier(model)

    def test_pop_shallowest_empty_raises(self):
        with pytest.raises(IndexError):
            Frontier().pop_shallowest()
        fr = Frontier()
        fr.push(WorkItem((1,), {}))
        fr.pop_shallowest()
        with pytest.raises(IndexError):
            fr.pop_shallowest()

    def test_seed_split_deterministic_end_to_end(self):
        """Two independent seed runs of the same cell grow and split
        identical frontiers (the campaign's resume correctness relies
        on this)."""
        from repro.explore.dfs import DFSExplorer
        from repro.suite import REGISTRY

        def seeded_shards():
            ex = DFSExplorer(REGISTRY[13].program, ExplorationLimits())
            stats = ex.run_seed(min_items=24, max_schedules=64)
            return ([s.to_dict() for s in ex.frontier.split(4)],
                    stats.to_dict())

        shards_a, stats_a = seeded_shards()
        shards_b, stats_b = seeded_shards()
        stats_a.pop("elapsed")
        stats_b.pop("elapsed")
        assert shards_a == shards_b
        assert stats_a == stats_b


class TestSnapshotResume:
    """Serialization round-trip resumes to the identical remaining
    schedule set: interrupted-then-resumed == uninterrupted."""

    @pytest.mark.parametrize("explorer_name", RESUMABLE)
    @pytest.mark.parametrize("bench_id", BENCH_IDS)
    def test_resume_equals_uninterrupted(self, explorer_name, bench_id):
        assert supports_snapshot(explorer_name)
        full = _fresh(explorer_name, bench_id, max_schedules=500)
        full_stats = full.run()

        part = _fresh(explorer_name, bench_id, max_schedules=7)
        part_stats = part.run()
        if not part_stats.limit_hit:
            pytest.skip("cell exhausted before the interrupt budget")
        # the snapshot must survive a JSON round trip (that is how the
        # campaign store persists it)
        snapshot = json.loads(json.dumps(part.snapshot()))

        resumed = _fresh(explorer_name, bench_id, max_schedules=500)
        resumed.restore(snapshot)
        resumed_stats = resumed.run()

        full_dict = full_stats.to_dict()
        resumed_dict = resumed_stats.to_dict()
        full_dict.pop("elapsed")
        resumed_dict.pop("elapsed")
        assert full_dict == resumed_dict

    def test_double_interrupt_resume(self):
        # resume from a resume: 252-schedule DFS cell in three slices
        full = _fresh("dfs", 3).run()
        ex = _fresh("dfs", 3, max_schedules=20)
        ex.run()
        for budget in (90, 100_000):
            snap = json.loads(json.dumps(ex.snapshot()))
            ex = _fresh("dfs", 3, max_schedules=budget)
            ex.restore(snap)
            ex.run()
        assert ex.stats.num_schedules == full.num_schedules
        assert ex.stats.hbr_fps == full.hbr_fps
        assert ex.stats.exhausted

    def test_restore_rejects_wrong_explorer(self):
        ex = _fresh("dfs", 1, max_schedules=2)
        ex.run()
        snap = ex.snapshot()
        other = _fresh("hbr-caching", 1)
        with pytest.raises(ValueError):
            other.restore(snap)

    def test_restore_rejects_bad_version(self):
        ex = _fresh("dfs", 1)
        with pytest.raises(ValueError):
            ex.restore({"version": 999})

    def test_kernel_snapshot_shape(self):
        ex = _fresh("dfs", 3, max_schedules=5)
        ex.run()
        snap = ex.snapshot()
        assert snap["version"] == SNAPSHOT_VERSION
        assert snap["explorer"] == "dfs"
        assert snap["frontier"]["items"]
        assert snap["stats"]["num_schedules"] == 5


class TestSplitShards:
    """split(k) shards are disjoint, exhaustive, and merge to the
    unsplit run's aggregate sets for every splittable strategy."""

    @pytest.mark.parametrize("explorer_name",
                             sorted(SPLITTABLE_EXPLORERS))
    @pytest.mark.parametrize("bench_id", BENCH_IDS)
    @pytest.mark.parametrize("k", [2, 4])
    def test_shards_merge_to_unsplit_sets(self, explorer_name, bench_id,
                                          k):
        assert supports_split(explorer_name)
        unsplit = _fresh(explorer_name, bench_id).run()

        seed = _fresh(explorer_name, bench_id)
        seed_stats = seed.run_seed(min_items=k * 4, max_schedules=32)
        if not seed.frontier:
            pytest.skip("cell exhausted during seeding")
        strategy_state = seed.strategy.state_to_dict()
        merged = ExplorationStats.from_dict(seed_stats.to_dict())
        merged.exhausted = True
        schedule_sets = []
        for shard in seed.frontier.split(k):
            worker = _fresh(explorer_name, bench_id)
            worker.schedule_sink = []
            worker.restore(json.loads(json.dumps({
                "version": SNAPSHOT_VERSION,
                "explorer": worker.name,
                "program": worker.program.name,
                "frontier": shard.to_dict(),
                "stats": None,
                "strategy": strategy_state,
            })))
            merged.merge(worker.run())
            schedule_sets.append(
                {tuple(s) for s in worker.schedule_sink}
            )
        # aggregate sets equal the unsplit run's
        assert merged.hbr_fps == unsplit.hbr_fps
        assert merged.lazy_fps == unsplit.lazy_fps
        assert merged.state_hashes == unsplit.state_hashes
        assert ({(e.kind, e.message) for e in merged.errors}
                == {(e.kind, e.message) for e in unsplit.errors})
        # iterative-cb never reports exhaustion (it re-explores across
        # rounds, matching the pre-kernel explorer)
        assert merged.exhausted == unsplit.exhausted
        # non-pruning strategies partition the schedule set exactly
        if explorer_name in ("dfs", "preempt-bounded", "iterative-cb",
                             "delay-bounded"):
            assert merged.num_schedules == unsplit.num_schedules

    @pytest.mark.parametrize("k", [2, 4])
    def test_dfs_shard_schedules_pairwise_disjoint(self, k):
        seed = _fresh("dfs", 3)
        seed.run_seed(min_items=k * 4, max_schedules=32)
        shard_schedules = []
        for shard in seed.frontier.split(k):
            worker = _fresh("dfs", 3)
            worker.schedule_sink = []
            worker.restore({
                "version": SNAPSHOT_VERSION,
                "explorer": "dfs",
                "program": worker.program.name,
                "frontier": shard.to_dict(),
                "stats": None,
                "strategy": {},
            })
            worker.run()
            shard_schedules.append(
                {tuple(s) for s in worker.schedule_sink}
            )
        for i in range(len(shard_schedules)):
            for j in range(i + 1, len(shard_schedules)):
                assert not (shard_schedules[i] & shard_schedules[j])


class TestPeriodicCheckpoint:
    """Every periodic snapshot — not just the final budget-limit one —
    must resume to the identical remaining schedule set.  (Regression:
    checkpointing after the pop lost the in-flight item's subtree.)"""

    @pytest.mark.parametrize("explorer_name", ["dfs", "lazy-hbr-caching"])
    def test_every_periodic_snapshot_resumes_identically(self,
                                                         explorer_name):
        reference = _fresh(explorer_name, 3).run()
        ex = _fresh(explorer_name, 3)
        snapshots = []
        ex.set_checkpoint(snapshots.append, interval=0.0)
        ex.run()
        assert len(snapshots) > 10
        for snap in snapshots[:: max(1, len(snapshots) // 8)]:
            resumed = _fresh(explorer_name, 3)
            resumed.restore(json.loads(json.dumps(snap)))
            stats = resumed.run()
            assert stats.num_schedules == reference.num_schedules, \
                f"snapshot at {snap['stats']['num_schedules']} diverged"
            assert stats.hbr_fps == reference.hbr_fps
            assert stats.state_hashes == reference.state_hashes
            assert stats.exhausted


class TestAbortRollback:
    """A mid-schedule deadline abort must roll back the aborted
    schedule's cache insertions — otherwise the re-executed schedule
    prunes its own subtree on resume.  (Regression.)"""

    @pytest.mark.parametrize("explorer_name", ["hbr-caching",
                                               "lazy-hbr-caching"])
    @pytest.mark.parametrize("fire_at", [1, 3, 7])
    def test_abort_then_resume_matches_uninterrupted(self, explorer_name,
                                                     fire_at):
        reference = _fresh(explorer_name, 3).run()

        ex = _fresh(explorer_name, 3)
        # force exactly one mid-schedule abort at a deterministic
        # scheduling point (instance-level probe override)
        calls = {"n": 0, "fired": False}

        def probe():
            calls["n"] += 1
            if not calls["fired"] and calls["n"] == 40 + fire_at:
                calls["fired"] = True
                ex.stats.limit_hit = True
                return True
            return False

        ex._deadline_exceeded_midschedule = probe
        ex.run()
        assert calls["fired"]
        assert ex.stats.limit_hit

        snap = json.loads(json.dumps(ex.snapshot()))
        resumed = _fresh(explorer_name, 3)
        resumed.restore(snap)
        stats = resumed.run()
        assert stats.num_schedules == reference.num_schedules
        assert stats.hbr_fps == reference.hbr_fps
        assert stats.lazy_fps == reference.lazy_fps
        assert stats.state_hashes == reference.state_hashes
        assert stats.exhausted


class TestMidScheduleDeadline:
    """`max_seconds` must interrupt one long schedule, not just check
    between schedules (the old wall-clock budget hole)."""

    def test_kernel_deadline_fires_mid_schedule(self):
        import time

        from repro.runtime.program import Program

        def build(p):
            x = p.var("x", 0)

            def spin(api, n):
                for i in range(5_000):
                    yield api.write(x, i)

            p.thread(spin, 0)
            p.thread(spin, 1)

        program = Program("spinner", build)
        ex = make_explorer(
            "dfs", program,
            ExplorationLimits(max_seconds=0.02,
                              max_events_per_schedule=1_000_000),
        )
        t0 = time.monotonic()
        stats = ex.run()
        elapsed = time.monotonic() - t0
        assert stats.limit_hit
        # one schedule is >=10k events; without the mid-schedule check
        # the first schedule alone would have to finish.  The abort
        # must come quickly and leave a resumable frontier.
        assert elapsed < 1.0
        assert ex.frontier
        stats.verify_inequality()

    def test_dpor_deadline_fires_mid_schedule(self):
        import time

        from repro.runtime.program import Program

        def build(p):
            x = p.var("x", 0)

            def spin(api, n):
                for i in range(3_000):
                    yield api.write(x, i)

            p.thread(spin, 0)
            p.thread(spin, 1)

        program = Program("spinner", build)
        ex = make_explorer(
            "dpor", program,
            ExplorationLimits(max_seconds=0.02,
                              max_events_per_schedule=1_000_000),
        )
        t0 = time.monotonic()
        stats = ex.run()
        assert stats.limit_hit
        assert time.monotonic() - t0 < 2.0
        stats.verify_inequality()

    def test_aborted_schedule_not_counted(self):
        from repro.runtime.program import Program

        def build(p):
            x = p.var("x", 0)

            def spin(api, n):
                for i in range(5_000):
                    yield api.write(x, i)

            p.thread(spin, 0)
            p.thread(spin, 1)

        program = Program("spinner", build)
        ex = make_explorer(
            "dfs", program,
            ExplorationLimits(max_seconds=0.005,
                              max_events_per_schedule=1_000_000),
        )
        stats = ex.run()
        # the in-flight schedule was abandoned and un-counted, so a
        # resumed run re-executes it: counts stay consistent
        assert stats.num_complete == stats.num_schedules
