"""Tests for the fingerprint cache."""

from repro.core.cache import FingerprintCache


class TestFingerprintCache:
    def test_insert_new_returns_true(self):
        c = FingerprintCache()
        assert c.insert(42)
        assert 42 in c
        assert len(c) == 1

    def test_insert_duplicate_returns_false(self):
        c = FingerprintCache()
        c.insert(42)
        assert not c.insert(42)
        assert c.hits == 1
        assert c.misses == 1

    def test_stats_accumulate(self):
        c = FingerprintCache()
        for v in (1, 2, 1, 1, 3):
            c.insert(v)
        assert c.misses == 3
        assert c.hits == 2
        assert len(c) == 3

    def test_capacity_bound_stops_growth_but_stays_sound(self):
        c = FingerprintCache(capacity=2)
        assert c.insert(1)
        assert c.insert(2)
        # new fingerprint beyond capacity: reported new, not stored
        assert c.insert(3)
        assert 3 not in c
        assert c.overflowed
        # previously stored fingerprints still hit
        assert not c.insert(1)

    def test_clear(self):
        c = FingerprintCache()
        c.insert(1)
        c.insert(1)
        c.clear()
        assert len(c) == 0
        assert c.hits == 0 and c.misses == 0
