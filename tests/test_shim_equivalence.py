"""Golden equivalence: shim frontend vs hand-built DSL twins.

Every fixture in :mod:`repro.suite.shim_twins` is the same concurrent
program authored twice.  The two sides must be *byte-identical* to every
observer: single-execution event streams, fingerprints and state
hashes, and — per explorer — schedule counts, fingerprint sets and
error findings.  This pins the entire shim pipeline (oid assignment,
instrumentation-generated op streams, crash wrapping) against the DSL
semantics the paper reproduction is built on.

A hypothesis harness then does the same soundness check on random small
shim programs: whatever bugs/states exhaustive DFS finds, DPOR must
find exactly.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro
from repro.explore.base import ExplorationLimits
from repro.explore.controller import run_single
from repro.shim import program_from_function
from repro.shim import threading as shim_threading
from repro.suite.shim_twins import (
    _explorer_signature,
    _single_run_signature,
    equivalence_report,
    make_twins,
)

TWINS = make_twins()
LIM = ExplorationLimits(max_schedules=3000)

EXPLORERS = ("dfs", "dpor", "pct")


@pytest.mark.parametrize("pair", TWINS, ids=[p.name for p in TWINS])
def test_single_run_byte_identical(pair):
    shim_sig = _single_run_signature(pair.shim)
    dsl_sig = _single_run_signature(pair.dsl)
    assert shim_sig == dsl_sig


@pytest.mark.parametrize("explorer", EXPLORERS)
@pytest.mark.parametrize("pair", TWINS, ids=[p.name for p in TWINS])
def test_exploration_byte_identical(pair, explorer):
    shim_sig = _explorer_signature(pair.shim, explorer, LIM)
    dsl_sig = _explorer_signature(pair.dsl, explorer, LIM)
    assert shim_sig == dsl_sig


@pytest.mark.parametrize("pair", TWINS, ids=[p.name for p in TWINS])
def test_expected_error_kinds(pair):
    sig = _explorer_signature(pair.shim, "dfs", LIM)
    if pair.expect_error is None:
        assert sig["error_kinds"] == []
    else:
        assert sig["error_kinds"] == [pair.expect_error]


def test_equivalence_report_shape():
    report = equivalence_report(ExplorationLimits(max_schedules=500),
                                explorers=("dpor",))
    assert report["kind"] == "repro-shim-equivalence"
    assert report["all_equal"] is True
    assert set(report["pairs"]) == {p.name for p in TWINS}
    import json
    json.dumps(report)  # must be a JSON-able artifact


# ---------------------------------------------------------------------------
# the same twin identity, per clock-engine backend
# ---------------------------------------------------------------------------
#
# The shim pipeline must stay byte-identical to its DSL twin no matter
# which backend replays it, and each twin's exploration signature must
# itself be backend-invariant.  ``accel`` is always importable;
# ``native`` only runs where the compiled artifact exists (the same
# machines the `auto` policy would select it on).

from repro.core.engines import native_compiled  # noqa: E402
from repro.runtime.executor import Executor  # noqa: E402
from repro.runtime.schedule import execute  # noqa: E402

ENGINES = ("ref", "accel") + (("native",) if native_compiled() else ())
ENGINE_LIM = ExplorationLimits(max_schedules=600)


@pytest.mark.parametrize("engine", ENGINES)
@pytest.mark.parametrize("pair", TWINS, ids=[p.name for p in TWINS])
def test_twins_byte_identical_per_engine(pair, engine, monkeypatch):
    monkeypatch.setenv("REPRO_ENGINE", engine)
    shim_sig = _explorer_signature(pair.shim, "dfs", ENGINE_LIM)
    dsl_sig = _explorer_signature(pair.dsl, "dfs", ENGINE_LIM)
    assert shim_sig == dsl_sig


@pytest.mark.parametrize("pair", TWINS, ids=[p.name for p in TWINS])
def test_twin_signature_engine_invariant(pair, monkeypatch):
    sigs = {}
    for engine in ENGINES:
        monkeypatch.setenv("REPRO_ENGINE", engine)
        sigs[engine] = _explorer_signature(pair.shim, "dpor", ENGINE_LIM)
    base = sigs["ref"]
    for engine, sig in sigs.items():
        assert sig == base, f"engine {engine} diverges from ref"


@pytest.mark.parametrize("engine", ENGINES)
@pytest.mark.parametrize("pair", TWINS, ids=[p.name for p in TWINS])
def test_twin_mid_schedule_snapshot_round_trip(pair, engine, monkeypatch):
    """Snapshot a shim twin mid-schedule on each backend and finish it
    from the restore: the restored run must be indistinguishable from
    the uninterrupted one — same fingerprints, state hash, error."""
    monkeypatch.setenv("REPRO_ENGINE", engine)
    full = execute(pair.shim)
    sched = list(full.schedule)
    cut = len(sched) // 2

    ex = Executor(pair.shim, snapshots=True)
    ex.replay_prefix(sched[:cut])
    restored = Executor.from_snapshot(ex.snapshot())
    assert restored.engine.backend == ex.engine.backend
    for tid in sched[cut:]:
        assert restored.enabled() == ex.enabled()
        restored.step(tid)
        ex.step(tid)
    ra, rb = restored.finish(), ex.finish()
    assert (ra.hbr_fp, ra.lazy_fp, ra.state_hash, ra.num_events) == \
           (rb.hbr_fp, rb.lazy_fp, rb.state_hash, rb.num_events)
    assert ra.hbr_fp == full.hbr_fp
    assert ra.state_hash == full.state_hash
    assert type(ra.error).__name__ == type(rb.error).__name__


# ---------------------------------------------------------------------------
# randomized soundness: DFS-exhaustive == DPOR on small shim programs
# ---------------------------------------------------------------------------

@repro.shared
class _Shared:
    def __init__(self):
        self.a = 0
        self.b = 0


def _scripted_main(script1, script2):
    s = _Shared()
    lock = shim_threading.Lock()
    ev = shim_threading.Event()

    def worker(script):
        for step in script:
            if step == "inc_a":
                s.a += 1
            elif step == "write_a":
                s.a = 7
            elif step == "read_a":
                _ = s.a
            elif step == "locked_inc_b":
                with lock:
                    s.b += 1
            elif step == "event_set":
                ev.set()
            elif step == "assert_b_small":
                assert s.b <= 2, s.b

    t1 = shim_threading.Thread(target=worker, args=(script1,))
    t2 = shim_threading.Thread(target=worker, args=(script2,))
    t1.start()
    t2.start()
    t1.join()
    t2.join()


STEP = st.sampled_from(
    ["inc_a", "write_a", "read_a", "locked_inc_b", "event_set",
     "assert_b_small"]
)
SCRIPT = st.lists(STEP, max_size=3)


@settings(max_examples=25, deadline=None, derandomize=True)
@given(script1=SCRIPT, script2=SCRIPT)
def test_random_shim_programs_dpor_sound(script1, script2):
    program = program_from_function(
        _scripted_main, name="scripted", args=(script1, script2),
    )
    lim = ExplorationLimits(max_schedules=20_000)
    dfs = run_single(program, "dfs", lim, verify=True)
    assert dfs.exhausted, "vocabulary produced a too-large program"
    dpor = run_single(program, "dpor", lim, verify=True)
    assert dpor.exhausted
    # terminal-state soundness: the reduced exploration reaches exactly
    # the states exhaustive enumeration reaches
    assert dpor.state_hashes == dfs.state_hashes
    assert dpor.num_states == dfs.num_states
    # finding soundness: same distinct error kinds
    assert {e.kind for e in dpor.errors} == {e.kind for e in dfs.errors}
    # the paper's inequality holds on both
    dfs.verify_inequality()
    dpor.verify_inequality()
