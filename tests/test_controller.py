"""Tests for the explorer run-matrix controller."""

import pytest

from repro.explore import ExplorationLimits
from repro.explore.controller import (
    STANDARD_EXPLORERS,
    run_matrix,
    states_found,
)
from repro.suite import REGISTRY


class TestRunMatrix:
    def test_matrix_shape(self):
        rows = run_matrix(
            [REGISTRY[1].program, REGISTRY[3].program],
            ["dpor", "lazy-hbr-caching"],
            ExplorationLimits(max_schedules=300),
        )
        assert len(rows) == 2
        assert set(rows[0].by_explorer) == {"dpor", "lazy-hbr-caching"}

    def test_unknown_explorer_rejected(self):
        with pytest.raises(KeyError):
            run_matrix([REGISTRY[1].program], ["nope"])

    def test_progress_callback(self):
        seen = []
        run_matrix(
            [REGISTRY[1].program], ["dpor"],
            ExplorationLimits(max_schedules=100),
            progress=seen.append,
        )
        assert len(seen) == 1
        assert "figure1" in seen[0]

    def test_all_standard_explorers_run(self):
        rows = run_matrix(
            [REGISTRY[1].program],
            sorted(STANDARD_EXPLORERS),
            ExplorationLimits(max_schedules=200),
        )
        for name, stats in rows[0].by_explorer.items():
            assert stats.num_schedules >= 1, name


class TestStatesFound:
    def test_all_strategies_agree_on_figure1(self):
        lim = ExplorationLimits(max_schedules=500)
        sets = {
            name: states_found(REGISTRY[1].program, name, lim)
            for name in ("dfs", "dpor", "hbr-caching", "lazy-hbr-caching",
                         "lazy-dpor")
        }
        baseline = sets["dfs"]
        assert all(s == baseline for s in sets.values())
