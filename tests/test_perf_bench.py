"""The perf harness: report shape, regression comparison, CLI, and the
committed baseline artifact."""

import json
import os
import subprocess
import sys

import pytest

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

from repro.perf.bench import (
    CASES,
    REPORT_KIND,
    SPLIT_REPORT_KIND,
    bench_table,
    case_names,
    compare_reports,
    load_report,
    run_bench,
    run_split_bench,
    write_report,
)

TINY = dict(repeat=1, min_time=0.0)


class TestSplitScenario:
    def test_report_shape_and_consistency(self):
        report = run_split_bench(shards=2, smoke=True)
        assert report["meta"]["kind"] == SPLIT_REPORT_KIND
        split = report["split"]
        assert split["shards"] == 2
        assert split["schedules"] > 0
        assert split["serial_seconds"] > 0
        assert split["split_seconds"] > 0
        # no speedup assertion: CI runners may have one core — the
        # scenario itself asserts split/serial/resume set equality and
        # raises AssertionError on divergence, which is the real check
        assert split["speedup"] == pytest.approx(
            split["serial_seconds"] / split["split_seconds"]
        )
        resume = report["resume"]
        assert resume["frontier_items"] > 0
        assert resume["snapshot_bytes"] > 0

    def test_cli_scenario_split(self, tmp_path, capsys):
        from repro.__main__ import main

        out = tmp_path / "BENCH_split.json"
        assert main(["bench", "--scenario", "split", "--smoke",
                     "--shards", "2", "--out", str(out)]) == 0
        captured = capsys.readouterr().out
        assert "split speedup" in captured
        payload = json.loads(out.read_text())
        assert payload["meta"]["kind"] == SPLIT_REPORT_KIND


class TestRunBench:
    def test_report_shape(self):
        report = run_bench(cases=["dfs/racy_counter"], **TINY)
        assert report["meta"]["kind"] == REPORT_KIND
        assert report["meta"]["calibration_ops_per_sec"] > 0
        case = report["cases"]["dfs/racy_counter"]
        assert case["schedules"] == 1680       # DFS exhausts racy_counter
        assert case["schedules_per_sec"] > 0
        assert case["events_per_sec"] > case["schedules_per_sec"]
        assert case["iterations"] >= 1

    def test_unknown_case_rejected(self):
        with pytest.raises(KeyError):
            run_bench(cases=["nope/nothing"], **TINY)

    def test_case_table_is_consistent(self):
        names = case_names()
        assert len(names) == len(set(names)) == len(CASES)
        # at least three distinct explorers and three programs measured
        assert len({c.explorer for c in CASES}) >= 3
        assert len({c.bench_id for c in CASES}) >= 3


class TestCompareReports:
    def _fake(self, rate, cal=1_000_000.0):
        return {
            "meta": {"kind": REPORT_KIND, "calibration_ops_per_sec": cal},
            "cases": {"x/y": {"schedules_per_sec": rate,
                              "events_per_sec": rate * 9}},
        }

    def test_no_regression_within_threshold(self):
        assert compare_reports(self._fake(80.0), self._fake(100.0),
                               max_regression=0.30) == []

    def test_regression_detected(self):
        failures = compare_reports(self._fake(60.0), self._fake(100.0),
                                   max_regression=0.30)
        assert len(failures) == 1 and "x/y" in failures[0]

    def test_calibration_normalises_machine_speed(self):
        # half the throughput on a machine measured half as fast: fine
        cur = self._fake(50.0, cal=500_000.0)
        assert compare_reports(cur, self._fake(100.0),
                               max_regression=0.30) == []

    def test_disjoint_cases_ignored(self):
        cur = self._fake(100.0)
        base = self._fake(100.0)
        base["cases"]["only/base"] = {"schedules_per_sec": 5.0}
        assert compare_reports(cur, base) == []


class TestReportIO:
    def test_roundtrip(self, tmp_path):
        report = run_bench(cases=["dpor/racy_counter"], **TINY)
        path = tmp_path / "BENCH_test.json"
        write_report(report, str(path))
        loaded = load_report(str(path))
        assert loaded["cases"].keys() == report["cases"].keys()

    def test_rejects_foreign_json(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text(json.dumps({"foo": 1}))
        with pytest.raises(ValueError):
            load_report(str(path))

    def test_table_lists_all_cases(self):
        report = run_bench(cases=["dfs/racy_counter"], **TINY)
        table = bench_table(report)
        assert "dfs/racy_counter" in table and table.startswith("| case |")


class TestCommittedBaseline:
    def test_baseline_artifact_is_valid(self):
        baseline = load_report(os.path.join(REPO_ROOT,
                                            "BENCH_baseline.json"))
        assert set(baseline["cases"]) == set(case_names())
        pre = baseline["pre_pr"]
        # the PR's acceptance criterion, pinned as a test: >= 2x on at
        # least 3 explorer microbenchmarks, measured with one harness
        speedups = pre["speedup_schedules_per_sec"]
        assert sum(1 for s in speedups.values() if s >= 2.0) >= 3, speedups


class TestCLI:
    def _env(self):
        env = dict(os.environ)
        env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src") + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        return env

    def test_bench_cli_smoke(self, tmp_path):
        out = tmp_path / "bench.json"
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "bench",
             "--cases", "dpor/racy_counter", "--repeat", "1",
             "--min-time", "0.0", "--quiet", "--out", str(out)],
            capture_output=True, text=True, env=self._env(), cwd=REPO_ROOT,
        )
        assert proc.returncode == 0, proc.stderr
        report = json.loads(out.read_text())
        assert "dpor/racy_counter" in report["cases"]

    def test_bench_cli_unknown_case(self):
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "bench", "--cases", "zzz",
             "--quiet"],
            capture_output=True, text=True, env=self._env(), cwd=REPO_ROOT,
        )
        assert proc.returncode == 2
        assert "unknown bench case" in proc.stderr
