"""The perf harness: report shape, regression comparison, CLI, and the
committed baseline artifact."""

import json
import os
import subprocess
import sys

import pytest

from repro.perf.bench import (
    AB_REPORT_KIND,
    CASES,
    PREFIX_CASES,
    PREFIX_REPORT_KIND,
    REPORT_KIND,
    SPLIT_REPORT_KIND,
    ab_table,
    bench_table,
    case_names,
    compare_reports,
    load_report,
    profile_case,
    run_bench,
    run_engine_ab,
    run_prefix_bench,
    run_split_bench,
    write_report,
)

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

TINY = dict(repeat=1, min_time=0.0)


class TestSplitScenario:
    def test_report_shape_and_consistency(self):
        report = run_split_bench(shards=2, smoke=True)
        assert report["meta"]["kind"] == SPLIT_REPORT_KIND
        split = report["split"]
        assert split["shards"] == 2
        assert split["schedules"] > 0
        assert split["serial_seconds"] > 0
        assert split["split_seconds"] > 0
        # no speedup assertion: CI runners may have one core — the
        # scenario itself asserts split/serial/resume set equality and
        # raises AssertionError on divergence, which is the real check
        assert split["speedup"] == pytest.approx(
            split["serial_seconds"] / split["split_seconds"]
        )
        resume = report["resume"]
        assert resume["frontier_items"] > 0
        assert resume["snapshot_bytes"] > 0

    def test_cli_scenario_split(self, tmp_path, capsys):
        from repro.__main__ import main

        out = tmp_path / "BENCH_split.json"
        assert main(["bench", "--scenario", "split", "--smoke",
                     "--shards", "2", "--out", str(out)]) == 0
        captured = capsys.readouterr().out
        assert "split speedup" in captured
        payload = json.loads(out.read_text())
        assert payload["meta"]["kind"] == SPLIT_REPORT_KIND


class TestPrefixScenario:
    def test_report_shape_and_accounting(self):
        report = run_prefix_bench(smoke=True, min_time=0.0, repeat=1)
        assert report["meta"]["kind"] == PREFIX_REPORT_KIND
        assert set(report["cases"]) == {c.name for c in PREFIX_CASES}
        for name, case in report["cases"].items():
            # event accounting: resumed + replayed + fresh == total
            assert (case["resumed_events"] + case["replayed_events"]
                    + case["fresh_events"]) == case["events"], name
            assert case["resumed_fraction"] + case["replayed_fraction"] \
                + case["fresh_fraction"] == pytest.approx(1.0)
            assert case["speedup"] == pytest.approx(
                case["on_schedules_per_sec"] / case["off_schedules_per_sec"]
            )
            snap = case["snapshot"]
            assert 0.0 <= snap["hit_rate"] <= 1.0
            assert snap["bytes_high_water"] <= snap["budget_bytes"]
            # deep cases actually resume most of their prefix events
            if name != "dfs/racy_counter":
                assert case["resumed_fraction"] > 0.5, name

    def test_cli_scenario_prefix(self, tmp_path, capsys):
        from repro.__main__ import main

        out = tmp_path / "BENCH_prefix.json"
        assert main(["bench", "--scenario", "prefix", "--smoke",
                     "--min-time", "0.0", "--quiet",
                     "--out", str(out)]) == 0
        captured = capsys.readouterr().out
        assert "prefix sharing" in captured
        payload = json.loads(out.read_text())
        assert payload["meta"]["kind"] == PREFIX_REPORT_KIND


class TestProfile:
    def test_profile_case_writes_pstats(self, tmp_path):
        import pstats

        out = tmp_path / "profile.pstats"
        profile_case("dfs/racy_counter", str(out), max_schedules=50)
        stats = pstats.Stats(str(out))
        assert stats.total_calls > 0

    def test_cli_profile_flag(self, tmp_path, capsys):
        from repro.__main__ import main

        prof = tmp_path / "slowest.pstats"
        assert main(["bench", "--cases", "dfs/racy_counter",
                     "--repeat", "1", "--min-time", "0.0", "--quiet",
                     "--profile", str(prof)]) == 0
        assert "profiled slowest case" in capsys.readouterr().out
        assert prof.stat().st_size > 0


class TestRunBench:
    def test_report_shape(self):
        report = run_bench(cases=["dfs/racy_counter"], **TINY)
        assert report["meta"]["kind"] == REPORT_KIND
        assert report["meta"]["calibration_ops_per_sec"] > 0
        case = report["cases"]["dfs/racy_counter"]
        assert case["schedules"] == 1680       # DFS exhausts racy_counter
        assert case["schedules_per_sec"] > 0
        assert case["events_per_sec"] > case["schedules_per_sec"]
        assert case["iterations"] >= 1

    def test_iteration_floor(self):
        # regression: slow cells used to calibrate to as few as two
        # iterations (dfs/bounded_buffer_pc2), letting one scheduler
        # hiccup poison half the best-of sample; every measurement now
        # runs at least MIN_ITERATIONS iterations even when min_time
        # has already elapsed
        from repro.perf.bench import MIN_ITERATIONS

        assert MIN_ITERATIONS >= 3
        report = run_bench(cases=["dfs/racy_counter"], **TINY)
        assert (report["cases"]["dfs/racy_counter"]["iterations"]
                >= MIN_ITERATIONS)

    def test_unknown_case_rejected(self):
        with pytest.raises(KeyError):
            run_bench(cases=["nope/nothing"], **TINY)

    def test_case_table_is_consistent(self):
        names = case_names()
        assert len(names) == len(set(names)) == len(CASES)
        # at least three distinct explorers and three programs measured
        assert len({c.explorer for c in CASES}) >= 3
        assert len({c.bench_id for c in CASES}) >= 3

    def test_engine_recorded_in_every_case_row(self, monkeypatch):
        from repro.core.engines import backend_names, native_compiled

        monkeypatch.delenv("REPRO_ENGINE", raising=False)
        report = run_bench(cases=["dfs/racy_counter", "dpor/racy_counter"],
                           **TINY)
        assert report["meta"]["engine"] == "auto"
        for row in report["cases"].values():
            assert row["engine"] in backend_names()
            # every row carries the provenance of the backend it ran on
            prov = row["provenance"]
            assert isinstance(prov["compiled"], bool)
            assert prov["python"]
        # auto resolves to the compiled native kernel when built, the
        # reference backend otherwise
        expected = "native" if native_compiled() else "ref"
        assert report["cases"]["dpor/racy_counter"]["engine"] == expected

    def test_provenance_warnings_on_mismatch(self):
        from repro.perf.bench import provenance_warnings

        current = run_bench(cases=["dfs/racy_counter"], **TINY)
        same = provenance_warnings(current, current)
        assert same == []
        flipped = json.loads(json.dumps(current))
        row = flipped["cases"]["dfs/racy_counter"]
        row["provenance"]["compiled"] = not row["provenance"]["compiled"]
        warned = provenance_warnings(current, flipped)
        assert len(warned) == 1 and "provenance differs" in warned[0]
        # a baseline predating provenance recording warns too
        del row["provenance"]
        warned = provenance_warnings(current, flipped)
        assert len(warned) == 1 and "predates provenance" in warned[0]

    def test_explicit_engine_pins_every_case(self):
        report = run_bench(cases=["dfs/racy_counter", "dpor/racy_counter"],
                           engine="ref", **TINY)
        assert report["meta"]["engine"] == "ref"
        assert all(r["engine"] == "ref" for r in report["cases"].values())


class TestEngineAB:
    def test_ab_report_shape_and_equivalence(self):
        from repro.core.engines import backend_names

        report = run_engine_ab(cases=["dfs/racy_counter"], **TINY)
        assert report["meta"]["kind"] == AB_REPORT_KIND
        # every registered backend is measured, not a hardcoded pair
        assert report["meta"]["engines"] == list(backend_names())
        assert set(report["meta"]["provenance"]) == set(backend_names())
        case = report["cases"]["dfs/racy_counter"]
        assert case["equivalent"] is True
        for name in backend_names():
            assert case[name]["engine"] == name
            assert case[name]["schedules_per_sec"] > 0
        ref_rate = case["ref"]["schedules_per_sec"]
        for name, ratio in case["speedups"].items():
            assert ratio == pytest.approx(
                case[name]["schedules_per_sec"] / ref_rate
            )
        assert case["accel_speedup"] == case["speedups"]["accel"]
        table = ab_table(report)
        assert "dfs/racy_counter" in table and "accel speedup" in table
        assert "native sched/s" in table and "native speedup" in table

    def test_ab_cli(self, tmp_path, capsys):
        from repro.__main__ import main

        out = tmp_path / "BENCH_ab.json"
        assert main(["bench", "--engine", "both",
                     "--cases", "dpor/racy_counter", "--repeat", "1",
                     "--min-time", "0.0", "--quiet",
                     "--out", str(out)]) == 0
        assert "accel speedup" in capsys.readouterr().out
        payload = json.loads(out.read_text())
        assert payload["meta"]["kind"] == AB_REPORT_KIND


class TestCompareReports:
    def _fake(self, rate, cal=1_000_000.0):
        return {
            "meta": {"kind": REPORT_KIND, "calibration_ops_per_sec": cal},
            "cases": {"x/y": {"schedules_per_sec": rate,
                              "events_per_sec": rate * 9}},
        }

    def test_no_regression_within_threshold(self):
        assert compare_reports(self._fake(80.0), self._fake(100.0),
                               max_regression=0.30) == []

    def test_regression_detected(self):
        failures = compare_reports(self._fake(60.0), self._fake(100.0),
                                   max_regression=0.30)
        assert len(failures) == 1 and "x/y" in failures[0]

    def test_calibration_normalises_machine_speed(self):
        # half the throughput on a machine measured half as fast: fine
        cur = self._fake(50.0, cal=500_000.0)
        assert compare_reports(cur, self._fake(100.0),
                               max_regression=0.30) == []

    def test_disjoint_cases_ignored(self):
        cur = self._fake(100.0)
        base = self._fake(100.0)
        base["cases"]["only/base"] = {"schedules_per_sec": 5.0}
        assert compare_reports(cur, base) == []


class TestReportIO:
    def test_roundtrip(self, tmp_path):
        report = run_bench(cases=["dpor/racy_counter"], **TINY)
        path = tmp_path / "BENCH_test.json"
        write_report(report, str(path))
        loaded = load_report(str(path))
        assert loaded["cases"].keys() == report["cases"].keys()

    def test_rejects_foreign_json(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text(json.dumps({"foo": 1}))
        with pytest.raises(ValueError):
            load_report(str(path))

    def test_table_lists_all_cases(self):
        report = run_bench(cases=["dfs/racy_counter"], **TINY)
        table = bench_table(report)
        assert "dfs/racy_counter" in table and table.startswith("| case |")


class TestCommittedBaseline:
    #: the dfs/dpor hot cells the engine-backend PR guards: none may
    #: fall below 0.9x of the immediately-pre-PR schedules/sec on the
    #: reference engine (the auto default)
    REPLAY_GUARD = (
        "dfs/racy_counter",
        "dfs/bounded_buffer",
        "dfs/bounded_buffer_pc2",
        "dfs/chan_pipeline2",
        "dpor/racy_counter",
        "dpor/disjoint_coarse",
        "dpor/chan_pipeline2",
        "lazy-dpor/disjoint_coarse",
    )

    def test_baseline_artifact_is_valid(self):
        baseline = load_report(os.path.join(REPO_ROOT,
                                            "BENCH_baseline.json"))
        assert set(baseline["cases"]) == set(case_names())
        # every case row is self-describing about its backend and how
        # that backend was built
        for name, row in baseline["cases"].items():
            assert row["engine"] in ("ref", "accel", "native"), name
            assert "provenance" in row, name
        pre = baseline["pre_pr"]
        assert pre["commit"]
        # the engine PR's regression guard, pinned as a test: the
        # replay-path structural work (state-hash memoisation, thread
        # adoption on restore, executor pooling) must keep every
        # guarded dfs/dpor hot cell within 10% of the
        # immediately-pre-PR schedules/sec, calibration-normalised on
        # one harness+machine.  (The snapshot-path cells measured
        # 1.1-1.3x; the guard pins the floor, not the wins.)
        speedups = pre["speedup_schedules_per_sec"]
        guard = {n: speedups[n] for n in self.REPLAY_GUARD}
        assert all(s >= 0.9 for s in guard.values()), guard
        # the pre-PR block covers the full current case set
        assert set(speedups) == set(case_names())
        assert set(pre["cases"]) == set(case_names())


class TestCLI:
    def _env(self):
        env = dict(os.environ)
        env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src") + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        return env

    def test_bench_cli_smoke(self, tmp_path):
        out = tmp_path / "bench.json"
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "bench",
             "--cases", "dpor/racy_counter", "--repeat", "1",
             "--min-time", "0.0", "--quiet", "--out", str(out)],
            capture_output=True, text=True, env=self._env(), cwd=REPO_ROOT,
        )
        assert proc.returncode == 0, proc.stderr
        report = json.loads(out.read_text())
        assert "dpor/racy_counter" in report["cases"]

    def test_baseline_missing_case_fails_loudly(self, tmp_path, capsys):
        # regression: a case the baseline never measured used to sail
        # through the comparison as "no regressions" — the CLI must
        # fail with a clear message instead
        from repro.__main__ import main

        baseline = run_bench(cases=["dpor/racy_counter"], **TINY)
        path = tmp_path / "BENCH_small.json"
        write_report(baseline, str(path))
        assert main(["bench", "--cases", "dfs/racy_counter",
                     "--repeat", "1", "--min-time", "0.0", "--quiet",
                     "--baseline", str(path)]) == 1
        err = capsys.readouterr().err
        assert "missing from baseline" in err
        assert "dfs/racy_counter" in err

    def test_bench_cli_unknown_case(self):
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "bench", "--cases", "zzz",
             "--quiet"],
            capture_output=True, text=True, env=self._env(), cwd=REPO_ROOT,
        )
        assert proc.returncode == 2
        assert "unknown bench case" in proc.stderr
