"""Soundness of every reduction strategy against exhaustive DFS.

For each DFS-exhaustible benchmark in the chosen subset, every explorer
must find exactly the same set of distinct terminal states — the core
guarantee of partial-order reduction (no error states can be missed).
"""

import pytest

from repro.explore import (
    DFSExplorer,
    DPORExplorer,
    ExplorationLimits,
    HBRCachingExplorer,
    LazyDPORExplorer,
)
from repro.suite import REGISTRY

LIM = ExplorationLimits(max_schedules=30_000)

# A representative, fast subset of the DFS-exhaustible benchmarks
# (covering mutexes, condvars, semaphores, barriers, rwlocks, atomics,
# awaits, spawn/join and crashing threads).  The full sweep lives in the
# benchmark harness.
SUBSET = [
    1,   # figure1
    3,   # racy_counter 2x2
    6,   # locked_counter 2x2
    8,   # atomic_counter
    11,  # disjoint_coarse 2x2
    14,  # readonly_coarse
    17,  # mixed_coarse
    19,  # indexer
    24,  # bounded_buffer (condvars)
    28,  # pingpong
    31,  # pipeline (semaphores)
    32,  # philosophers naive (deadlocks)
    36,  # lock_order deadlock
    38,  # ticket lock (awaits)
    40,  # readers_writers (rwlock)
    45,  # bank per-account
    48,  # peterson (rmw + await)
    54,  # work_queue
    59,  # coarse_dict
    64,  # treiber stack (CAS)
    66,  # barrier_phases
    69,  # semaphore pool
    73,  # dcl
    74,  # dcl buggy (crashes)
    77,  # spawn/join
    79,  # flags handshake
    80,  # channel pipeline
    83,  # channel fan-out (MPMC)
    84,  # producer-consumer seeded lost-update (assertion schedules)
    86,  # future DAG
    87,  # channel close race (ChannelError schedules)
    88,  # rendezvous handshake
    89,  # lease expiry seeded timeout bug (TIME_FIRE vs mutex)
    91,  # heartbeat watchdog (timer thread + timed await)
    96,  # timed handshake (timed rendezvous send/recv)
]


def dfs_states(benchmark):
    explorer = DFSExplorer(benchmark.program, LIM)
    stats = explorer.run()
    assert stats.exhausted, f"{benchmark.name}: DFS did not exhaust"
    return frozenset(explorer._state_hashes), stats


@pytest.fixture(scope="module")
def ground_truth():
    return {bid: dfs_states(REGISTRY[bid]) for bid in SUBSET}


@pytest.mark.parametrize("bid", SUBSET)
def test_dpor_finds_all_states(ground_truth, bid):
    base, _ = ground_truth[bid]
    e = DPORExplorer(REGISTRY[bid].program, LIM)
    e.run()
    assert frozenset(e._state_hashes) == base


@pytest.mark.parametrize("bid", SUBSET)
def test_dpor_without_sleep_sets_finds_all_states(ground_truth, bid):
    base, _ = ground_truth[bid]
    e = DPORExplorer(REGISTRY[bid].program, LIM, sleep_sets=False)
    e.run()
    assert frozenset(e._state_hashes) == base


@pytest.mark.parametrize("bid", SUBSET)
def test_hbr_caching_finds_all_states(ground_truth, bid):
    base, _ = ground_truth[bid]
    e = HBRCachingExplorer(REGISTRY[bid].program, LIM, lazy=False)
    e.run()
    assert frozenset(e._state_hashes) == base


@pytest.mark.parametrize("bid", SUBSET)
def test_lazy_hbr_caching_finds_all_states(ground_truth, bid):
    base, _ = ground_truth[bid]
    e = HBRCachingExplorer(REGISTRY[bid].program, LIM, lazy=True)
    e.run()
    assert frozenset(e._state_hashes) == base


@pytest.mark.parametrize("bid", SUBSET)
def test_lazy_dpor_finds_all_states(ground_truth, bid):
    base, _ = ground_truth[bid]
    e = LazyDPORExplorer(REGISTRY[bid].program, LIM)
    e.run()
    assert frozenset(e._state_hashes) == base


@pytest.mark.parametrize("bid", SUBSET)
def test_reducers_never_exceed_dfs_schedules(ground_truth, bid):
    _, dfs_stats = ground_truth[bid]
    for cls, kw in ((DPORExplorer, {}), (LazyDPORExplorer, {})):
        stats = cls(REGISTRY[bid].program, LIM, **kw).run()
        assert stats.num_schedules <= dfs_stats.num_schedules


@pytest.mark.parametrize("bid", SUBSET)
def test_inequality_chain_everywhere(ground_truth, bid):
    for cls, kw in (
        (DPORExplorer, {}),
        (HBRCachingExplorer, {"lazy": False}),
        (HBRCachingExplorer, {"lazy": True}),
        (LazyDPORExplorer, {}),
    ):
        stats = cls(REGISTRY[bid].program, LIM, **kw).run()
        stats.verify_inequality()
