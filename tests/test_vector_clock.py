"""Unit and property tests for dense vector clocks."""

import pytest
from hypothesis import given, strategies as st

from repro.core.vector_clock import VectorClock, tuple_concurrent, tuple_leq

clock_lists = st.lists(st.integers(min_value=0, max_value=8), max_size=6)


class TestBasics:
    def test_new_clock_is_zero(self):
        vc = VectorClock(3)
        assert vc.snapshot() == (0, 0, 0)

    def test_tick_increments_own_component(self):
        vc = VectorClock(2)
        vc.tick(1)
        vc.tick(1)
        assert vc.snapshot() == (0, 2)

    def test_tick_grows_clock(self):
        vc = VectorClock(1)
        vc.tick(4)
        assert vc.snapshot() == (0, 0, 0, 0, 1)

    def test_getitem_out_of_range_is_zero(self):
        vc = VectorClock(2)
        assert vc[10] == 0

    def test_setitem_grows(self):
        vc = VectorClock(0)
        vc[3] = 5
        assert vc.snapshot() == (0, 0, 0, 5)

    def test_copy_is_independent(self):
        a = VectorClock(2, [1, 2])
        b = a.copy()
        b.tick(0)
        assert a.snapshot() == (1, 2)
        assert b.snapshot() == (2, 2)

    def test_mutable_clock_is_unhashable(self):
        with pytest.raises(TypeError):
            hash(VectorClock(1))


class TestJoin:
    def test_join_takes_pointwise_max(self):
        a = VectorClock(3, [1, 5, 2])
        b = VectorClock(3, [4, 1, 2])
        a.join_inplace(b)
        assert a.snapshot() == (4, 5, 2)

    def test_join_grows_shorter_clock(self):
        a = VectorClock(1, [3])
        b = VectorClock(3, [1, 2, 3])
        a.join_inplace(b)
        assert a.snapshot() == (3, 2, 3)

    def test_join_tuple(self):
        a = VectorClock(2, [1, 1])
        a.join_tuple_inplace((0, 5, 7))
        assert a.snapshot() == (1, 5, 7)


class TestComparison:
    def test_leq_reflexive(self):
        a = VectorClock(2, [1, 2])
        assert a.leq(a)

    def test_leq_with_shorter_other(self):
        a = VectorClock(3, [1, 0, 0])
        b = VectorClock(1, [2])
        assert a.leq(b)  # trailing zeros are ignored

    def test_not_leq(self):
        a = VectorClock(2, [1, 2])
        b = VectorClock(2, [2, 1])
        assert not a.leq(b)
        assert not b.leq(a)

    def test_eq_ignores_trailing_zeros(self):
        assert VectorClock(2, [1, 0]) == VectorClock(4, [1, 0, 0, 0])
        assert VectorClock(2, [1, 1]) != VectorClock(2, [1, 0])


class TestTupleHelpers:
    def test_tuple_leq_basic(self):
        assert tuple_leq((1, 2), (1, 3))
        assert not tuple_leq((2, 0), (1, 3))

    def test_tuple_leq_length_mismatch(self):
        assert tuple_leq((1,), (1, 5))
        assert tuple_leq((1, 0, 0), (1,))
        assert not tuple_leq((1, 0, 2), (1,))

    def test_tuple_concurrent(self):
        assert tuple_concurrent((1, 0), (0, 1))
        assert not tuple_concurrent((1, 0), (1, 1))


class TestLatticeProperties:
    @given(clock_lists, clock_lists)
    def test_join_is_upper_bound(self, xs, ys):
        a = VectorClock(init=xs)
        b = VectorClock(init=ys)
        j = a.copy()
        j.join_inplace(b)
        assert a.leq(j) and b.leq(j)

    @given(clock_lists, clock_lists)
    def test_join_commutes(self, xs, ys):
        a1 = VectorClock(init=xs)
        a1.join_inplace(VectorClock(init=ys))
        a2 = VectorClock(init=ys)
        a2.join_inplace(VectorClock(init=xs))
        assert a1 == a2

    @given(clock_lists, clock_lists, clock_lists)
    def test_join_associates(self, xs, ys, zs):
        a = VectorClock(init=xs)
        a.join_inplace(VectorClock(init=ys))
        a.join_inplace(VectorClock(init=zs))
        b = VectorClock(init=ys)
        b.join_inplace(VectorClock(init=zs))
        c = VectorClock(init=xs)
        c.join_inplace(b)
        assert a == c

    @given(clock_lists)
    def test_join_idempotent(self, xs):
        a = VectorClock(init=xs)
        b = VectorClock(init=xs)
        a.join_inplace(b)
        assert a == b

    @given(clock_lists, clock_lists)
    def test_leq_antisymmetric(self, xs, ys):
        a = VectorClock(init=xs)
        b = VectorClock(init=ys)
        if a.leq(b) and b.leq(a):
            assert a == b

    @given(clock_lists, clock_lists)
    def test_tuple_leq_matches_clock_leq(self, xs, ys):
        a = VectorClock(init=xs)
        b = VectorClock(init=ys)
        assert tuple_leq(tuple(xs), tuple(ys)) == a.leq(b)
