"""Frozen pre-kernel explorer implementations (golden references).

These are verbatim copies of the frame-based ``_explore`` loops the
DFS-family explorers shipped before the unified exploration kernel
(``repro.explore.kernel``) replaced them, instrumented with a
``schedule_log`` that records every executed schedule (full schedules
for terminal runs, the executed prefix for pruned runs).

``tests/test_kernel_equivalence.py`` runs each kernel-ported strategy
against its reference here and asserts byte-identical schedule
sequences, fingerprint sets and statistics.  Do not "improve" this
file: its only job is to stay exactly what the pre-refactor code did.
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.cache import FingerprintCache
from repro.explore.base import ExplorationLimits, Explorer


class _LogMixin:
    """Adds the ``schedule_log`` list to a reference explorer."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.schedule_log: List[List[int]] = []


# ---------------------------------------------------------------------------
# DFS (pre-kernel repro/explore/dfs.py)
# ---------------------------------------------------------------------------

class _DFSFrame:
    __slots__ = ("enabled", "idx")

    def __init__(self, enabled: List[int]) -> None:
        self.enabled = enabled
        self.idx = 0

    @property
    def chosen(self) -> int:
        return self.enabled[self.idx]


class ReferenceDFS(_LogMixin, Explorer):
    name = "dfs"

    def _explore(self) -> None:
        path: List[_DFSFrame] = []
        first = True
        while first or path:
            first = False
            if self._budget_exceeded():
                return
            self._schedule_started()
            ex = self._new_executor()
            ex.replay_prefix([frame.chosen for frame in path])
            while not ex.is_done():
                frame = _DFSFrame(ex.enabled())
                path.append(frame)
                ex.step(frame.chosen)
            result = ex.finish()
            self.schedule_log.append(list(result.schedule))
            self.stats.num_events += result.num_events
            self._record_terminal(result)
            while path and path[-1].idx + 1 >= len(path[-1].enabled):
                path.pop()
            if path:
                path[-1].idx += 1
            else:
                self.stats.exhausted = True
                return


# ---------------------------------------------------------------------------
# Preemption bounding (pre-kernel repro/explore/bounded.py)
# ---------------------------------------------------------------------------

class _PBFrame:
    __slots__ = ("choices", "idx", "prev_tid", "budget")

    def __init__(self, choices: List[int], prev_tid: int, budget: int) -> None:
        self.choices = choices
        self.idx = 0
        self.prev_tid = prev_tid
        self.budget = budget

    @property
    def chosen(self) -> int:
        return self.choices[self.idx]


class ReferencePreemptionBounded(_LogMixin, Explorer):
    name = "preempt-bounded"

    def __init__(self, program, limits=None, bound: Optional[int] = 2) -> None:
        super().__init__(program, limits)
        self.bound = bound
        if bound is not None:
            self.stats.explorer_name = self.name = f"preempt-bounded({bound})"

    def _choices(self, enabled: List[int], prev_tid: int,
                 budget: int) -> List[int]:
        if prev_tid in enabled:
            if budget <= 0:
                return [prev_tid]
            return [prev_tid] + [t for t in enabled if t != prev_tid]
        return list(enabled)

    def _explore(self) -> None:
        path: List[_PBFrame] = []
        first = True
        while first or path:
            first = False
            if self._budget_exceeded():
                return
            self._schedule_started()
            ex = self._new_executor()
            ex.replay_prefix([frame.chosen for frame in path])
            prev_tid = path[-1].chosen if path else -1
            budget = path[-1].budget if path else (
                self.bound if self.bound is not None else 1 << 30
            )
            if path:
                budget = self._budget_after(path[-1])
            while not ex.is_done():
                enabled = ex.enabled()
                choices = self._choices(enabled, prev_tid, budget)
                frame = _PBFrame(choices, prev_tid, budget)
                path.append(frame)
                chosen = frame.chosen
                budget = self._budget_after(frame)
                prev_tid = chosen
                ex.step(chosen)
            result = ex.finish()
            self.schedule_log.append(list(result.schedule))
            self.stats.num_events += result.num_events
            self._record_terminal(result)
            while path and path[-1].idx + 1 >= len(path[-1].choices):
                path.pop()
            if path:
                path[-1].idx += 1
            else:
                self.stats.exhausted = not self.stats.limit_hit
                return

    def _budget_after(self, frame: _PBFrame) -> int:
        chosen = frame.chosen
        if frame.prev_tid != -1 and frame.prev_tid != chosen and \
                frame.prev_tid in frame.choices:
            return frame.budget - 1
        return frame.budget


class ReferenceIterativeCB(_LogMixin, Explorer):
    name = "iterative-cb"

    def __init__(self, program, limits=None, max_bound: int = 3) -> None:
        super().__init__(program, limits)
        self.max_bound = max_bound
        self.bound_reached = -1

    def _explore(self) -> None:
        remaining = self.limits.max_schedules
        for bound in range(self.max_bound + 1):
            if remaining <= 0:
                self.stats.limit_hit = True
                return
            inner_limits = ExplorationLimits(
                max_schedules=remaining,
                max_seconds=None,
                max_events_per_schedule=self.limits.max_events_per_schedule,
            )
            inner = ReferencePreemptionBounded(
                self.program, inner_limits, bound=bound
            )
            inner.stats.hbr_fps = self.stats.hbr_fps
            inner.stats.lazy_fps = self.stats.lazy_fps
            inner.stats.state_hashes = self.stats.state_hashes
            inner._error_kinds = self._error_kinds
            inner.stats.errors = self.stats.errors
            inner_stats = inner.run()
            self.schedule_log.extend(inner.schedule_log)
            self.stats.num_schedules += inner_stats.num_schedules
            self.stats.num_complete += inner_stats.num_complete
            self.stats.num_events += inner_stats.num_events
            self.stats.num_hbrs = len(self.stats.hbr_fps)
            self.stats.num_lazy_hbrs = len(self.stats.lazy_fps)
            self.stats.num_states = len(self.stats.state_hashes)
            remaining -= inner_stats.num_schedules
            self.bound_reached = bound
            self.stats.extra[f"schedules_bound_{bound}"] = \
                inner_stats.num_schedules
            if self._deadline is not None:
                import time
                if time.monotonic() > self._deadline:
                    self.stats.limit_hit = True
                    return
        self.stats.limit_hit = self.stats.num_schedules >= \
            self.limits.max_schedules


# ---------------------------------------------------------------------------
# Delay bounding (pre-kernel repro/explore/delay.py)
# ---------------------------------------------------------------------------

class _DelayFrame:
    __slots__ = ("enabled", "delays", "budget_left", "start")

    def __init__(self, enabled: List[int], budget_left: int,
                 start: int) -> None:
        self.enabled = enabled
        self.delays = 0
        self.budget_left = budget_left
        self.start = start

    @property
    def chosen(self) -> int:
        return self.enabled[(self.start + self.delays) % len(self.enabled)]

    def can_delay_more(self) -> bool:
        return (
            self.delays < self.budget_left
            and self.delays + 1 < len(self.enabled)
        )


class ReferenceDelayBounded(_LogMixin, Explorer):
    name = "delay-bounded"

    def __init__(self, program, limits=None, bound: int = 1) -> None:
        super().__init__(program, limits)
        if bound < 0:
            raise ValueError("delay bound must be >= 0")
        self.bound = bound
        self.stats.explorer_name = self.name = f"delay-bounded({bound})"

    def _default_start(self, enabled: List[int], last_tid: int) -> int:
        for i, tid in enumerate(enabled):
            if tid >= last_tid:
                return i
        return 0

    def _explore(self) -> None:
        path: List[_DelayFrame] = []
        first = True
        while first or path:
            first = False
            if self._budget_exceeded():
                return
            self._schedule_started()
            ex = self._new_executor()
            budget = self.bound
            last_tid = 0
            ex.replay_prefix([frame.chosen for frame in path])
            if path:
                budget = path[-1].budget_left - path[-1].delays
                last_tid = path[-1].chosen
            while not ex.is_done():
                enabled = ex.enabled()
                start = self._default_start(enabled, last_tid)
                frame = _DelayFrame(enabled, budget, start)
                path.append(frame)
                last_tid = frame.chosen
                ex.step(frame.chosen)
            result = ex.finish()
            self.schedule_log.append(list(result.schedule))
            self.stats.num_events += result.num_events
            self._record_terminal(result)
            while path and not path[-1].can_delay_more():
                path.pop()
            if path:
                path[-1].delays += 1
            else:
                self.stats.exhausted = not self.stats.limit_hit
                return


# ---------------------------------------------------------------------------
# (Lazy) HBR caching (pre-kernel repro/explore/caching.py)
# ---------------------------------------------------------------------------

class ReferenceHBRCaching(_LogMixin, Explorer):
    name = "hbr-caching"

    def __init__(
        self,
        program,
        limits=None,
        lazy: bool = False,
        cache_capacity: Optional[int] = None,
    ) -> None:
        super().__init__(program, limits)
        self.lazy = lazy
        if lazy:
            self.stats.explorer_name = self.name = "lazy-hbr-caching"
        self.cache = FingerprintCache(cache_capacity)

    def _prefix_fp(self, ex) -> int:
        return (ex.engine.lazy_fingerprint() if self.lazy
                else ex.engine.hbr_fingerprint())

    def _explore(self) -> None:
        path: List[_DFSFrame] = []
        first = True
        while first or path:
            first = False
            if self._budget_exceeded():
                return
            self._schedule_started()
            ex = self._new_executor()
            ex.replay_prefix([frame.chosen for frame in path])
            pruned = False
            while not ex.is_done():
                frame = _DFSFrame(ex.enabled())
                path.append(frame)
                ex.step(frame.chosen)
                if not self.cache.insert(self._prefix_fp(ex)):
                    pruned = True
                    break
            if pruned:
                self.schedule_log.append(
                    [frame.chosen for frame in path]
                )
                self.stats.num_pruned += 1
                self.stats.num_events += ex.num_events
            else:
                result = ex.finish()
                self.schedule_log.append(list(result.schedule))
                self.stats.num_events += result.num_events
                self._record_terminal(result)
            while path and path[-1].idx + 1 >= len(path[-1].enabled):
                path.pop()
            if path:
                path[-1].idx += 1
            else:
                self.stats.exhausted = not self.stats.limit_hit
                return

    def run(self):
        stats = super().run()
        stats.extra["cache_size"] = len(self.cache)
        stats.extra["cache_hits"] = self.cache.hits
        return stats
