"""Tests for the exception hierarchy."""

import pytest

from repro.errors import (
    DeadlockError,
    ExplorationLimitError,
    GuestAssertionError,
    GuestError,
    InvalidOpError,
    ReproError,
    SchedulerError,
)


class TestHierarchy:
    def test_guest_errors_are_repro_errors(self):
        assert issubclass(GuestError, ReproError)
        assert issubclass(DeadlockError, GuestError)
        assert issubclass(GuestAssertionError, GuestError)

    def test_host_errors_are_not_guest_errors(self):
        for cls in (InvalidOpError, SchedulerError, ExplorationLimitError):
            assert issubclass(cls, ReproError)
            assert not issubclass(cls, GuestError)

    def test_deadlock_records_blocked_threads(self):
        e = DeadlockError([2, 0, 1])
        assert e.blocked_threads == (2, 0, 1)
        assert "deadlock" in str(e)

    def test_assertion_records_thread(self):
        e = GuestAssertionError(3, "boom")
        assert e.thread_id == 3
        assert str(e) == "boom"

    def test_assertion_default_message(self):
        e = GuestAssertionError(3)
        assert "thread 3" in str(e)

    def test_catching_guest_errors(self):
        with pytest.raises(GuestError):
            raise DeadlockError([0])
