"""Shared fixtures: small canonical programs used across the tests."""

from __future__ import annotations

import pytest

from repro import Program


def build_figure1(p):
    m = p.mutex("m")
    x = p.var("x", 0)
    y = p.var("y", 0)
    z = p.var("z", 0)

    def t1(api):
        yield api.lock(m)
        v = yield api.read(x)
        yield api.unlock(m)
        yield api.write(y, v + 1)

    def t2(api):
        yield api.write(z, 7)
        yield api.lock(m)
        yield api.read(x)
        yield api.unlock(m)

    p.thread(t1)
    p.thread(t2)


@pytest.fixture
def figure1_program():
    return Program("figure1", build_figure1)


def build_two_writers(p):
    x = p.var("x", 0)

    def w(api, val):
        yield api.write(x, val)

    p.thread(w, 1)
    p.thread(w, 2)


@pytest.fixture
def two_writers_program():
    """The minimal racy program: two writes to one variable."""
    return Program("two_writers", build_two_writers)


def build_locked_pair(p):
    m = p.mutex("m")
    c = p.var("c", 0)

    def w(api):
        yield api.lock(m)
        v = yield api.read(c)
        yield api.write(c, v + 1)
        yield api.unlock(m)

    p.thread(w)
    p.thread(w)


@pytest.fixture
def locked_pair_program():
    """Two coarse-locked increments."""
    return Program("locked_pair", build_locked_pair)
