"""The example scripts are part of the public surface: they must run
cleanly and print what they claim to print."""

import os
import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).parent.parent / "examples"
SRC = pathlib.Path(__file__).parent.parent / "src"


def run_example(name, *args, timeout=240, cwd=None):
    env = dict(os.environ)
    # absolute src path: a relative PYTHONPATH=src breaks under cwd=
    env["PYTHONPATH"] = os.pathsep.join(
        [str(SRC)] + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
    )
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=timeout,
        cwd=cwd,
        env=env,
    )
    assert result.returncode == 0, result.stderr
    return result.stdout


class TestQuickstart:
    @pytest.fixture(scope="class")
    def output(self):
        return run_example("quickstart.py")

    def test_shows_both_relations(self, output):
        assert "regular happens-before relation" in output
        assert "lazy happens-before relation" in output

    def test_regular_has_edge_lazy_does_not(self, output):
        assert "inter-thread edges: 2->6" in output
        assert "(none)" in output

    def test_headline_numbers(self, output):
        assert "sched=72" in output      # DFS
        assert "hbrs=2" in output        # two HBR classes
        assert "lazy=1" in output        # one lazy class


class TestCoarseGrainedServer:
    @pytest.fixture(scope="class")
    def output(self):
        return run_example("coarse_grained_server.py")

    def test_all_strategies_reported(self, output):
        for name in ("dpor", "hbr-caching", "lazy-hbr-caching", "lazy-dpor"):
            assert name in output

    def test_no_errors_found(self, output):
        # every row ends with 0 errors
        for line in output.splitlines():
            if line.startswith(("dpor", "hbr-caching", "lazy")):
                assert line.rstrip().endswith("0")


class TestFindTheBug:
    @pytest.fixture(scope="class")
    def output(self):
        return run_example("find_the_bug.py")

    def test_finds_deadlock(self, output):
        assert "FOUND DeadlockError" in output

    def test_finds_assertion_failures(self, output):
        assert "FOUND GuestAssertionError" in output
        assert "money not conserved" in output
        assert "mutual exclusion violated" in output

    def test_reproduces_deterministically(self, output):
        assert "(deterministic)" in output

    def test_fixed_versions_clean(self, output):
        assert "no bugs in" in output


class TestDebuggingWorkflow:
    @pytest.fixture(scope="class")
    def output(self):
        return run_example("debugging_workflow.py")

    def test_all_four_steps_run(self, output):
        for step in ("race detection", "systematic exploration",
                     "schedule minimization", "human-readable"):
            assert step in output

    def test_races_reported(self, output):
        assert "race on balances" in output

    def test_minimization_reported(self, output):
        assert "minimized to" in output
        assert "replays" in output

    def test_timeline_shows_the_violation(self, output):
        assert "ERROR: GuestAssertionError" in output
        assert "exit [crashed]" in output


class TestRealCodeDemo:
    @pytest.fixture(scope="class")
    def output(self):
        return run_example("real_code_demo.py")

    def test_dpor_finds_the_lost_update(self, output):
        assert "BUG (GuestCrashError)" in output
        assert "lost update" in output

    def test_schedule_minimized(self, output):
        assert "minimized:" in output
        assert "% shorter" in output

    def test_timeline_rendered(self, output):
        assert "Stats.processed#0" in output
        assert "exit [crashed]" in output

    def test_deterministic_across_invocations(self, output):
        assert "identical result across two invocations" in output


class TestTimedRetryDemo:
    @pytest.fixture(scope="class")
    def output(self):
        return run_example("timed_retry_demo.py")

    @pytest.fixture(scope="class")
    def stderr(self):
        result = subprocess.run(
            [sys.executable, str(EXAMPLES / "timed_retry_demo.py")],
            capture_output=True, text=True, timeout=240,
            env={**os.environ,
                 "PYTHONPATH": str(SRC)},
        )
        assert result.returncode == 0
        return result.stderr

    def test_dpor_finds_the_stolen_lease(self, output):
        assert "BUG (GuestCrashError)" in output
        assert "lease stolen while still held" in output

    def test_schedule_minimized(self, output):
        assert "minimized:" in output
        assert "% shorter" in output

    def test_timeline_shows_the_timeout_firing(self, output):
        # the reproduction visibly hinges on virtual-time branches
        assert "time_fire(__clock__)" in output
        assert "Lease.owner#0" in output

    def test_no_generator_teardown_noise(self, stderr):
        # abandoned minimization replays must close their guests
        # quietly (Executor.close / the drive() GeneratorExit path)
        assert "Exception ignored" not in stderr
        assert "GeneratorExit" not in stderr


class TestFigureRunners:
    def test_run_figure2_subset(self):
        # tiny limit for speed; the full run is exercised by the bench
        out = run_example("run_figure2.py", "60", "2")
        assert "Figure 2" in out
        assert "below the diagonal" in out

    def test_run_figure3_subset(self):
        out = run_example("run_figure3.py", "40", "1")
        assert "Figure 3" in out
        assert "lazy HBR caching" in out

    def test_run_figure2_parallel_matches_serial(self):
        # generous time cap so only the (deterministic) schedule limit
        # binds — a binding wall-clock cap would break reproducibility
        serial = run_example("run_figure2.py", "40", "60", "1")
        parallel = run_example("run_figure2.py", "40", "60", "2")
        # report is deterministic; only progress-line order may differ
        marker = "## Figure 2"
        assert serial[serial.index(marker):] == \
            parallel[parallel.index(marker):]


class TestCampaignRunner:
    def test_run_campaign_checkpoints_and_reports(self, tmp_path):
        out = run_example("run_campaign.py", "40", "2", cwd=tmp_path)
        assert "Figure 2" in out
        assert "Figure 3" in out
        assert "(0 from checkpoint)" in out
        assert (tmp_path / "campaign.ckpt.json").exists()
        # second run resumes entirely from the checkpoint
        again = run_example("run_campaign.py", "40", "2", cwd=tmp_path)
        assert "(288 from checkpoint)" in again
