"""Tests for the trace timeline renderer."""

from repro import execute
from repro.analysis.traceviz import names_of, render_timeline


class TestTimeline:
    def test_columns_per_thread(self, figure1_program):
        r = execute(figure1_program)
        text = render_timeline(r, names_of(figure1_program))
        assert "T0" in text and "T1" in text
        assert "lock(m)" in text
        assert "write(z) = 7" in text
        assert "read(x) -> 0" in text

    def test_one_row_per_event(self, figure1_program):
        r = execute(figure1_program)
        text = render_timeline(r)
        rows = [l for l in text.splitlines() if l[:4].strip().isdigit()]
        assert len(rows) == len(r.events)

    def test_error_shown(self):
        from repro.suite.locks import lock_order_deadlock
        prog = lock_order_deadlock()
        r = execute(prog, schedule=[0, 1])
        text = render_timeline(r, names_of(prog))
        assert "ERROR: DeadlockError" in text

    def test_crashed_exit_marked(self):
        from repro.suite.bank import bank_racy
        from repro.explore import DPORExplorer, ExplorationLimits
        prog = bank_racy(2)
        stats = DPORExplorer(prog,
                             ExplorationLimits(max_schedules=5000)).run()
        sched = stats.errors[0].schedule
        r = execute(prog, schedule=sched)
        text = render_timeline(r, names_of(prog))
        assert "exit [crashed]" in text

    def test_spawn_and_join_render(self):
        from repro.suite.sync_patterns import spawn_join_tree
        prog = spawn_join_tree(2)
        r = execute(prog)
        text = render_timeline(r, names_of(prog))
        assert "spawn -> T1" in text
        assert "join(" in text
