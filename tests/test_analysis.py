"""Tests for the analysis harness: scatter points, aggregates, report
rendering, and small end-to-end figure runs."""

from repro.analysis import (
    ScatterPoint,
    below_diagonal,
    caching_gain_summary,
    figure2_report,
    figure3_report,
    inequality_report,
    redundancy_summary,
    render_scatter,
    run_figure2,
    run_figure3,
    run_inequality_table,
    scatter_csv,
)
from repro.suite import REGISTRY

SUBSET = [REGISTRY[i] for i in (1, 3, 6, 11, 14, 32, 47)]


class TestScatterPoint:
    def test_below_diagonal(self):
        assert ScatterPoint(1, "a", 10, 3).below_diagonal
        assert not ScatterPoint(1, "a", 3, 3).below_diagonal
        assert not ScatterPoint(1, "a", 3, 10).below_diagonal


class TestAggregates:
    POINTS = [
        ScatterPoint(1, "diag", 10, 10),
        ScatterPoint(2, "below", 100, 20),
        ScatterPoint(3, "below2", 50, 25),
    ]

    def test_below_diagonal_filter(self):
        assert [p.bench_id for p in below_diagonal(self.POINTS)] == [2, 3]

    def test_redundancy_summary(self):
        s = redundancy_summary(self.POINTS)
        assert s["num_below_diagonal"] == 2
        assert s["total_hbrs_below"] == 150
        assert s["redundant_hbrs"] == 105
        assert abs(s["redundant_pct"] - 70.0) < 1e-9

    def test_redundancy_empty(self):
        s = redundancy_summary([ScatterPoint(1, "d", 5, 5)])
        assert s["num_below_diagonal"] == 0
        assert s["redundant_pct"] == 0.0

    def test_caching_gain_summary(self):
        pts = [
            ScatterPoint(1, "same", 10, 10),
            ScatterPoint(2, "gain", 10, 15),
        ]
        s = caching_gain_summary(pts)
        assert s["num_gaining"] == 1
        assert s["extra_lazy_hbrs"] == 5
        assert abs(s["extra_pct"] - 50.0) < 1e-9


class TestScatterRendering:
    POINTS = [ScatterPoint(i, f"b{i}", 10 ** (i % 4), 5 * i + 1)
              for i in range(1, 8)]

    def test_render_contains_axes_and_diagonal(self):
        text = render_scatter(self.POINTS, "xs", "ys")
        assert "xs" in text and "ys" in text
        assert "/" in text
        assert "1e0" in text

    def test_render_places_all_points(self):
        text = render_scatter([ScatterPoint(3, "b", 1, 1)], "x", "y")
        assert "3" in text

    def test_csv(self):
        csv = scatter_csv(self.POINTS[:2])
        lines = csv.splitlines()
        assert lines[0] == "bench_id,name,x,y,limit_hit"
        assert lines[1].startswith("1,b1,10,")


class TestFigureRuns:
    def test_figure2_rows(self):
        rows = run_figure2(SUBSET, schedule_limit=200)
        assert len(rows) == len(SUBSET)
        fig1 = next(r for r in rows if r.name == "figure1")
        assert fig1.num_hbrs == 2
        assert fig1.num_lazy_hbrs == 1
        disjoint = next(r for r in rows if "disjoint" in r.name)
        assert disjoint.num_lazy_hbrs == 1
        assert disjoint.num_hbrs > 1

    def test_figure2_report_renders(self):
        rows = run_figure2(SUBSET[:3], schedule_limit=100)
        text = figure2_report(rows, 100)
        assert "Figure 2" in text
        assert "below the diagonal" in text
        assert "figure1" in text

    def test_figure3_rows(self):
        rows = run_figure3(SUBSET, schedule_limit=200)
        assert len(rows) == len(SUBSET)
        for r in rows:
            # regular caching never explores more lazy HBRs than lazy
            # caching when both exhaust; under equal budgets the lazy
            # variant is never behind on exhausted benchmarks
            if not r.limit_hit:
                assert r.lazy_hbrs_lazy_caching >= r.lazy_hbrs_regular_caching

    def test_figure3_report_renders(self):
        rows = run_figure3(SUBSET[:3], schedule_limit=100)
        text = figure3_report(rows, 100)
        assert "Figure 3" in text
        assert "lazy HBR caching" in text

    def test_inequality_table(self):
        rows = run_inequality_table(SUBSET, schedule_limit=200)
        text = inequality_report(rows)
        assert "Violations: **0**" in text


class TestRowRoundTrips:
    """Figure rows are the typed result currency; their dict forms pin
    the JSON report schema and must round-trip losslessly."""

    def test_figure2_row(self):
        import json

        from repro.analysis.runner import Figure2Row
        rows = run_figure2(SUBSET[:2], schedule_limit=100)
        for row in rows:
            payload = json.loads(json.dumps(row.to_dict()))
            assert Figure2Row.from_dict(payload) == row
            assert set(payload) == {
                "bench_id", "name", "num_schedules", "num_hbrs",
                "num_lazy_hbrs", "num_states", "limit_hit",
            }

    def test_figure3_row(self):
        import json

        from repro.analysis.runner import Figure3Row
        rows = run_figure3(SUBSET[:2], schedule_limit=100)
        for row in rows:
            payload = json.loads(json.dumps(row.to_dict()))
            assert Figure3Row.from_dict(payload) == row

    def test_inequality_row(self):
        import json

        from repro.analysis.runner import InequalityRow
        rows = run_inequality_table(SUBSET[:2], schedule_limit=100)
        for row in rows:
            payload = json.loads(json.dumps(row.to_dict()))
            back = InequalityRow.from_dict(payload)
            assert back.bench_id == row.bench_id
            assert back.name == row.name
            assert back.stats.to_dict() == row.stats.to_dict()
