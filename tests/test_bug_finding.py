"""Every benchmark with a known property violation must be caught —
and each reported schedule must reproduce its error."""

import pytest

from repro.explore import DPORExplorer, ExplorationLimits
from repro.runtime.schedule import execute
from repro.suite import all_benchmarks

LIM = ExplorationLimits(max_schedules=30_000)

BUGGY = [b for b in all_benchmarks() if b.expect_error is not None]
CORRECT_SMALL = [b for b in all_benchmarks()
                 if b.expect_error is None and b.small]

EXPECTED_KIND = {
    "deadlock": "DeadlockError",
    "assertion": "GuestAssertionError",
    "channel": "ChannelError",
}


@pytest.mark.parametrize("bench", BUGGY, ids=lambda b: b.program.name)
def test_expected_error_is_found(bench):
    stats = DPORExplorer(bench.program, LIM).run()
    kinds = {e.kind for e in stats.errors}
    assert EXPECTED_KIND[bench.expect_error] in kinds, (
        f"{bench.program.name}: expected {bench.expect_error}, "
        f"found {kinds or 'nothing'}"
    )


@pytest.mark.parametrize("bench", BUGGY, ids=lambda b: b.program.name)
def test_error_schedules_reproduce(bench):
    stats = DPORExplorer(bench.program, LIM).run()
    for finding in stats.errors:
        r = execute(bench.program, schedule=finding.schedule)
        assert r.error is not None, (
            f"{bench.program.name}: schedule {finding.schedule} did not "
            f"reproduce {finding.kind}"
        )


@pytest.mark.parametrize("bench", CORRECT_SMALL, ids=lambda b: b.program.name)
def test_correct_programs_have_no_errors(bench):
    stats = DPORExplorer(bench.program, LIM).run()
    assert stats.errors == [], (
        f"{bench.program.name} reported {stats.errors}"
    )
