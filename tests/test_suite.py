"""Tests for the benchmark suite itself: registry consistency, program
determinism, and expected properties."""

import pytest

from repro.runtime.schedule import RandomScheduler, execute
from repro.suite import REGISTRY, all_benchmarks, by_family, get_benchmark, small_benchmarks


class TestRegistry:
    def test_exactly_96_benchmarks(self):
        assert len(REGISTRY) == 96

    def test_ids_are_1_to_96(self):
        assert sorted(REGISTRY) == list(range(1, 97))

    def test_names_unique(self):
        names = [b.program.name for b in all_benchmarks()]
        assert len(set(names)) == 96

    def test_get_benchmark(self):
        assert get_benchmark(1).program.name == "figure1"

    def test_small_subset_nonempty(self):
        smalls = small_benchmarks()
        assert 30 <= len(smalls) <= 96

    def test_by_family(self):
        phils = by_family(["philosophers"])
        assert len(phils) == 4
        assert all(b.family == "philosophers" for b in phils)

    def test_spectrum_of_families_present(self):
        families = {b.family for b in all_benchmarks()}
        for expected in ("figure1", "racy_counter", "disjoint_coarse",
                         "philosophers", "bounded_buffer", "peterson",
                         "treiber_stack", "barrier_phases",
                         "chan_pipeline", "chan_pc", "future_dag",
                         "rendezvous"):
            assert expected in families


class TestProgramsExecute:
    @pytest.mark.parametrize("bid", sorted(REGISTRY))
    def test_runs_under_default_scheduler(self, bid):
        b = REGISTRY[bid]
        r = execute(b.program)
        assert not r.truncated, f"{b.name} truncated"
        if b.expect_error is None:
            assert r.error is None, f"{b.name}: unexpected {r.error}"

    @pytest.mark.parametrize("bid", sorted(REGISTRY))
    def test_runs_under_random_scheduler(self, bid):
        b = REGISTRY[bid]
        r = execute(b.program, scheduler=RandomScheduler(1234 + bid))
        assert not r.truncated

    @pytest.mark.parametrize("bid", sorted(REGISTRY))
    def test_deterministic_replay(self, bid):
        b = REGISTRY[bid]
        first = execute(b.program, scheduler=RandomScheduler(7 * bid))
        second = execute(b.program, schedule=first.schedule)
        assert second.hbr_fp == first.hbr_fp
        assert second.lazy_fp == first.lazy_fp
        assert second.state_hash == first.state_hash


class TestObjectIdStability:
    @pytest.mark.parametrize("bid", [1, 13, 24, 32, 48, 64, 78])
    def test_oids_stable_across_instantiations(self, bid):
        prog = REGISTRY[bid].program
        a = prog.instantiate()
        b = prog.instantiate()
        assert [(o.oid, o.name) for o in a.registry.objects] == \
               [(o.oid, o.name) for o in b.registry.objects]
