"""Golden equivalence: kernel-ported explorers vs the pre-refactor
frame-based implementations (frozen in ``reference_explorers.py``).

For every ported DFS-family strategy, over a behaviour-spanning subset
of the ``small`` suite, the kernel port must produce **byte-identical**

* schedule sequences (the exact order of executed schedules, including
  pruned prefixes),
* fingerprint/state-hash sets, and
* statistics (everything except wall-clock ``elapsed``),

both on exhaustive runs and under a binding ``max_schedules`` budget
(same order => same cutoff point).
"""

from __future__ import annotations

import pytest

from repro.explore import ExplorationLimits
from repro.explore.dfs import DFSExplorer
from repro.explore.bounded import (
    IterativeContextBoundingExplorer,
    PreemptionBoundedExplorer,
)
from repro.explore.caching import HBRCachingExplorer
from repro.explore.delay import DelayBoundedExplorer
from repro.suite import REGISTRY, small_benchmarks

from reference_explorers import (
    ReferenceDFS,
    ReferenceDelayBounded,
    ReferenceHBRCaching,
    ReferenceIterativeCB,
    ReferencePreemptionBounded,
)

#: behaviour-spanning subset of the small suite: racy counters, coarse
#: locks (disjoint + mixed), condvars/buffers, a deadlock, an assertion
#: violation, a mutual-exclusion protocol, an SC litmus test
BENCH_IDS = (1, 2, 3, 5, 10, 17, 24, 28, 36, 47, 48, 75)

STRATEGIES = [
    ("dfs",
     lambda p, lim: DFSExplorer(p, lim),
     lambda p, lim: ReferenceDFS(p, lim)),
    ("preempt-bounded(1)",
     lambda p, lim: PreemptionBoundedExplorer(p, lim, bound=1),
     lambda p, lim: ReferencePreemptionBounded(p, lim, bound=1)),
    ("preempt-bounded(2)",
     lambda p, lim: PreemptionBoundedExplorer(p, lim, bound=2),
     lambda p, lim: ReferencePreemptionBounded(p, lim, bound=2)),
    ("iterative-cb",
     lambda p, lim: IterativeContextBoundingExplorer(p, lim, max_bound=2),
     lambda p, lim: ReferenceIterativeCB(p, lim, max_bound=2)),
    ("delay-bounded(2)",
     lambda p, lim: DelayBoundedExplorer(p, lim, bound=2),
     lambda p, lim: ReferenceDelayBounded(p, lim, bound=2)),
    ("hbr-caching",
     lambda p, lim: HBRCachingExplorer(p, lim, lazy=False),
     lambda p, lim: ReferenceHBRCaching(p, lim, lazy=False)),
    ("lazy-hbr-caching",
     lambda p, lim: HBRCachingExplorer(p, lim, lazy=True),
     lambda p, lim: ReferenceHBRCaching(p, lim, lazy=True)),
]


def _run_pair(bench_id, make_new, make_ref, limit):
    program = REGISTRY[bench_id].program
    lim = ExplorationLimits(max_schedules=limit)
    new = make_new(program, lim)
    new.schedule_sink = []
    new_stats = new.run()
    ref = make_ref(program, lim)
    ref_stats = ref.run()
    return new, new_stats, ref, ref_stats


@pytest.mark.parametrize("label,make_new,make_ref",
                         STRATEGIES, ids=[s[0] for s in STRATEGIES])
@pytest.mark.parametrize("bench_id", BENCH_IDS)
def test_byte_identical_schedules_and_stats(bench_id, label, make_new,
                                            make_ref):
    new, new_stats, ref, ref_stats = _run_pair(
        bench_id, make_new, make_ref, limit=400,
    )
    assert new.schedule_sink == ref.schedule_log, (
        f"schedule sequences diverge on bench {bench_id} / {label}"
    )
    new_dict, ref_dict = new_stats.to_dict(), ref_stats.to_dict()
    new_dict.pop("elapsed")
    ref_dict.pop("elapsed")
    assert new_dict == ref_dict


@pytest.mark.parametrize("label,make_new,make_ref",
                         STRATEGIES, ids=[s[0] for s in STRATEGIES])
def test_budget_cutoff_identical(label, make_new, make_ref):
    # a binding budget must cut the identical sequence at the identical
    # point — racy_counter(2,2) has 252 DFS schedules
    new, new_stats, ref, ref_stats = _run_pair(
        3, make_new, make_ref, limit=37,
    )
    assert new_stats.limit_hit == ref_stats.limit_hit
    assert new.schedule_sink == ref.schedule_log
    assert new_stats.num_schedules == ref_stats.num_schedules == 37 or \
        not new_stats.limit_hit


def test_full_small_suite_dfs_equivalence():
    # DFS is the ground truth every reduction is compared against, so
    # check it on EVERY small benchmark (budgeted to keep CI fast)
    for bench in small_benchmarks():
        lim = ExplorationLimits(max_schedules=300)
        new = DFSExplorer(bench.program, lim)
        new.schedule_sink = []
        new_stats = new.run()
        ref = ReferenceDFS(bench.program, lim)
        ref_stats = ref.run()
        assert new.schedule_sink == ref.schedule_log, bench.program.name
        nd, rd = new_stats.to_dict(), ref_stats.to_dict()
        nd.pop("elapsed")
        rd.pop("elapsed")
        assert nd == rd, bench.program.name
