"""Renamed public API: deprecated aliases must stay complete and
warn exactly once per process."""

import warnings

import pytest

from repro.deprecation import reset_warnings
from repro.runtime.program import BUILDER_ALIASES, Program, ProgramBuilder
from repro.runtime.schedule import execute
from repro.runtime.thread_api import THREAD_API_ALIASES, ThreadAPI


@pytest.fixture(autouse=True)
def _fresh_warning_state():
    reset_warnings()
    yield
    reset_warnings()


@pytest.mark.parametrize("alias,canonical",
                         sorted(THREAD_API_ALIASES.items()))
def test_thread_api_alias_complete(alias, canonical):
    assert hasattr(ThreadAPI, canonical), canonical
    method = getattr(ThreadAPI, alias)
    assert method.__deprecated_alias_for__ == canonical


@pytest.mark.parametrize("alias,canonical", sorted(BUILDER_ALIASES.items()))
def test_builder_alias_complete(alias, canonical):
    assert hasattr(ProgramBuilder, canonical), canonical
    method = getattr(ProgramBuilder, alias)
    assert method.__deprecated_alias_for__ == canonical


def test_no_stray_aliases():
    """Every __deprecated_alias_for__-marked method is in its table."""
    for cls, table in ((ThreadAPI, THREAD_API_ALIASES),
                       (ProgramBuilder, BUILDER_ALIASES)):
        marked = {
            name
            for name in dir(cls)
            if getattr(getattr(cls, name), "__deprecated_alias_for__", None)
        }
        assert marked == set(table), cls.__name__


def test_alias_forwards_and_warns_once():
    def build(p):
        sem = p.semaphore("s", 1)

        def main(api):
            yield api.acquire(sem)   # deprecated spelling of sem_acquire
            yield api.release(sem)   # deprecated spelling of sem_release

        p.thread(main)

    program = Program("alias-forward", build)
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        result = execute(program)
        assert result.ok, result.error
        execute(program)  # second run: aliases already warned
    messages = [str(w.message) for w in caught
                if issubclass(w.category, DeprecationWarning)]
    acquire_warnings = [m for m in messages if "sem_acquire" in m]
    release_warnings = [m for m in messages if "sem_release" in m]
    assert len(acquire_warnings) == 1, messages
    assert len(release_warnings) == 1, messages
    assert "deprecated" in acquire_warnings[0]


def test_builder_alias_forwards():
    def build(p):
        cv = p.condvar("cv")     # deprecated spelling of condition
        m = p.mutex("m")

        def main(api):
            yield api.lock(m)
            yield api.notify(cv)
            yield api.unlock(m)

        p.thread(main)

    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        result = execute(Program("builder-alias", build))
    assert result.ok, result.error
    assert any("condition" in str(w.message) for w in caught
               if issubclass(w.category, DeprecationWarning))
