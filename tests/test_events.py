"""Tests for event/op structures and kind classifications."""

from repro.core.events import (
    BLOCKING_KINDS,
    Event,
    MODIFYING_KINDS,
    MUTEX_KINDS,
    Op,
    OpKind,
)


class TestKindSets:
    def test_mutex_kinds_are_exactly_lock_unlock(self):
        assert MUTEX_KINDS == {OpKind.LOCK, OpKind.UNLOCK}

    def test_reads_do_not_modify(self):
        assert OpKind.READ not in MODIFYING_KINDS
        assert OpKind.JOIN not in MODIFYING_KINDS
        assert OpKind.YIELD not in MODIFYING_KINDS

    def test_writes_and_rmw_modify(self):
        assert OpKind.WRITE in MODIFYING_KINDS
        assert OpKind.RMW in MODIFYING_KINDS

    def test_mutex_ops_modify_their_mutex(self):
        # condition (b) of the regular HBR: lock/unlock are modifications
        assert OpKind.LOCK in MODIFYING_KINDS
        assert OpKind.UNLOCK in MODIFYING_KINDS

    def test_lifecycle_classification(self):
        # EXIT/SPAWN modify the thread handle; JOIN only observes it
        assert OpKind.EXIT in MODIFYING_KINDS
        assert OpKind.SPAWN in MODIFYING_KINDS
        assert OpKind.JOIN not in MODIFYING_KINDS

    def test_blocking_kinds(self):
        for k in (OpKind.LOCK, OpKind.WAIT, OpKind.SEM_ACQUIRE,
                  OpKind.BARRIER_WAIT, OpKind.JOIN):
            assert k in BLOCKING_KINDS
        assert OpKind.WRITE not in BLOCKING_KINDS

    def test_kind_values_are_stable(self):
        # fingerprints embed these integers; they must never change
        assert int(OpKind.READ) == 0
        assert int(OpKind.WRITE) == 1
        assert int(OpKind.LOCK) == 3
        assert int(OpKind.UNLOCK) == 4


class TestEvent:
    def _event(self, **kw):
        defaults = dict(index=0, tid=1, tindex=0, kind=OpKind.READ, oid=5)
        defaults.update(kw)
        return Event(**defaults)

    def test_label_includes_kind_oid_key(self):
        e = self._event(kind=OpKind.WRITE, oid=3, key=7)
        assert e.label() == (int(OpKind.WRITE), 3, 7)

    def test_label_excludes_value(self):
        a = self._event(value=1)
        b = self._event(value=999)
        assert a.label() == b.label()

    def test_location(self):
        e = self._event(oid=2, key="k")
        assert e.location() == (2, "k")

    def test_is_mutex_op(self):
        assert self._event(kind=OpKind.LOCK).is_mutex_op
        assert not self._event(kind=OpKind.WAIT).is_mutex_op

    def test_is_modification(self):
        assert self._event(kind=OpKind.WRITE).is_modification
        assert not self._event(kind=OpKind.READ).is_modification


class TestOp:
    def test_op_rejects_foreign_attributes(self):
        # Op fields are write-once by construction discipline (a hard
        # __setattr__ freeze cost ~400ns per guest yield and was
        # dropped); __slots__ still makes attaching new state an error.
        op = Op(OpKind.YIELD)
        try:
            op.payload = 1
            assert False, "Op should reject unknown attributes"
        except AttributeError:
            pass

    def test_repr_mentions_kind(self):
        assert "YIELD" in repr(Op(OpKind.YIELD))
