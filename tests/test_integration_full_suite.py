"""Integration sweep: every registry benchmark is explorable by the
main strategies within a small budget, with the paper's inequality
verified on every single run.

This is the test-suite counterpart of the benchmark harness: tiny
budgets (hundreds of schedules, seconds per program) so the whole sweep
stays fast, but full breadth — all 96 instances x the headline
strategies.
"""

import pytest

from repro.explore import (
    DPORExplorer,
    ExplorationLimits,
    HBRCachingExplorer,
    LazyDPORExplorer,
)
from repro.suite import all_benchmarks

LIM = ExplorationLimits(max_schedules=200, max_seconds=5)

BENCHES = all_benchmarks()


@pytest.mark.parametrize("bench", BENCHES, ids=lambda b: b.program.name)
def test_dpor_explores_and_inequality_holds(bench):
    stats = DPORExplorer(bench.program, LIM).run()
    stats.verify_inequality()
    assert stats.num_schedules >= 1
    assert stats.num_states >= 1


@pytest.mark.parametrize("bench", BENCHES[::4], ids=lambda b: b.program.name)
def test_caching_pair_ordering(bench):
    """Within an identical budget, lazy caching never reaches fewer lazy
    HBRs than regular caching when neither hit the budget; and never
    violates the inequality either way."""
    regular = HBRCachingExplorer(bench.program, LIM, lazy=False).run()
    lazy = HBRCachingExplorer(bench.program, LIM, lazy=True).run()
    regular.verify_inequality()
    lazy.verify_inequality()
    if not (regular.limit_hit or lazy.limit_hit):
        assert lazy.num_lazy_hbrs >= regular.num_lazy_hbrs


@pytest.mark.parametrize("bench", BENCHES[::4], ids=lambda b: b.program.name)
def test_lazy_dpor_never_more_complete_runs_than_dpor(bench):
    dpor = DPORExplorer(bench.program, LIM).run()
    lazy = LazyDPORExplorer(bench.program, LIM).run()
    lazy.verify_inequality()
    if not (dpor.limit_hit or lazy.limit_hit):
        assert lazy.num_complete <= dpor.num_complete
