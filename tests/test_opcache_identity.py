"""Op-cache byte-identity: ``REPRO_OPCACHE`` on vs off.

The op-stream trie (:mod:`repro.runtime.optrie`) serves memoised guest
ops during replay instead of resuming generators.  It is purely a
replay accelerator: with the cache on or off, every exploration must
produce identical schedules, fingerprint sets, state hashes and
statistics.  This is the suite the optrie module docstring promises.

``_OPCACHE_ON`` is bound at executor import, so each configuration
runs in a fresh subprocess.
"""

import json
import os
import subprocess
import sys

import pytest

from repro.core.engines import native_compiled

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

_RUN = r"""
import json, sys
from repro.suite import REGISTRY
from repro.explore.base import ExplorationLimits
from repro.explore.controller import make_explorer
explorer, prog_name = sys.argv[1], sys.argv[2]
program = {b.name: b for b in REGISTRY.values()}[prog_name].program
exp = make_explorer(explorer, program,
                    ExplorationLimits(max_schedules=400))
st = exp.run()
print(json.dumps({
    "schedules": st.num_schedules, "complete": st.num_complete,
    "events": st.num_events, "hbrs": st.num_hbrs,
    "lazy": st.num_lazy_hbrs, "states": st.num_states,
    "pruned": st.num_pruned, "exhausted": st.exhausted,
    "errors": sorted((e.kind, list(e.schedule)) for e in st.errors),
    "hbr_fps": sorted(st.hbr_fps),
    "state_hashes": sorted(st.state_hashes),
}, sort_keys=True))
"""


def _signature(explorer, program, opcache, engine=None):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src")
    env["REPRO_OPCACHE"] = "1" if opcache else "0"
    if engine is not None:
        env["REPRO_ENGINE"] = engine
    else:
        env.pop("REPRO_ENGINE", None)
    proc = subprocess.run(
        [sys.executable, "-c", _RUN, explorer, program],
        capture_output=True, text=True, env=env, cwd=REPO_ROOT,
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
    return json.loads(proc.stdout)


CELLS = [
    ("dfs", "racy_counter_t3_k1"),
    ("dpor", "bounded_buffer_p1_c2_k2_cap2"),
    ("preempt-bounded", "pipeline_s2_k2"),
]


@pytest.mark.parametrize("explorer,program", CELLS)
def test_opcache_on_off_byte_identical(explorer, program):
    off = _signature(explorer, program, opcache=False)
    on = _signature(explorer, program, opcache=True)
    assert on == off


@pytest.mark.skipif(not native_compiled(),
                    reason="native extension not compiled")
def test_opcache_off_native_byte_identical():
    # the kill switch composes with the compiled engine: native with
    # the cache disabled still matches the pure-Python baseline
    explorer, program = CELLS[0]
    base = _signature(explorer, program, opcache=False)
    native_off = _signature(explorer, program, opcache=False,
                            engine="native")
    assert native_off == base
