"""Tests for the explicit PartialOrder view of traces."""

import pytest

from repro import Program, execute
from repro.core.relations import PartialOrder


class TestFigure1Order(object):
    @pytest.fixture
    def po_pair(self, figure1_program):
        r = execute(figure1_program, schedule=[0, 0, 0, 0, 0, 1])
        return (
            PartialOrder(r.events, lazy=False),
            PartialOrder(r.events, lazy=True),
            r,
        )

    def test_program_order_preserved(self, po_pair):
        po, _, r = po_pair
        t0 = [e.index for e in r.events if e.tid == 0]
        for a, b in zip(t0, t0[1:]):
            assert po.precedes(a, b)
            assert not po.precedes(b, a)

    def test_regular_has_cross_edge_lazy_does_not(self, po_pair):
        po, lazy_po, r = po_pair
        assert any(
            r.events[i].tid != r.events[j].tid
            for (i, j) in po.inter_thread_edges()
        )
        assert lazy_po.inter_thread_edges() == []

    def test_unordered_writes_are_concurrent(self, po_pair):
        po, _, r = po_pair
        wy = next(e.index for e in r.events
                  if e.kind.name == "WRITE" and e.tid == 0)
        wz = next(e.index for e in r.events
                  if e.kind.name == "WRITE" and e.tid == 1)
        assert po.concurrent(wy, wz)

    def test_render_contains_threads_and_edges(self, po_pair):
        po, lazy_po, _ = po_pair
        text = po.render()
        assert "T0" in text and "T1" in text
        assert "->" in text
        assert "(none)" in lazy_po.render()


class TestLinearizations:
    def test_single_thread_has_one_linearization(self):
        def build(p):
            x = p.var("x", 0)

            def t(api):
                yield api.write(x, 1)
                yield api.read(x)

            p.thread(t)

        r = execute(Program("t", build))
        po = PartialOrder(r.events)
        lins = list(po.linearizations())
        assert len(lins) == 1
        assert lins[0] == list(range(len(r.events)))

    def test_independent_threads_all_interleavings(self):
        def build(p):
            x, y = p.var("x", 0), p.var("y", 0)

            def t0(api):
                yield api.write(x, 1)

            def t1(api):
                yield api.write(y, 1)

            p.thread(t0)
            p.thread(t1)

        r = execute(Program("t", build))
        po = PartialOrder(r.events)
        # 4 events (2 writes + 2 exits)... exits conflict only with own
        # thread; count = C(4,2) = 6 interleavings
        assert len(list(po.linearizations())) == 6

    def test_limit_respected(self, figure1_program):
        r = execute(figure1_program)
        po = PartialOrder(r.events, lazy=True)
        assert len(list(po.linearizations(limit=5))) == 5

    def test_every_linearization_respects_order(self, figure1_program):
        r = execute(figure1_program)
        po = PartialOrder(r.events)
        for lin in po.linearizations(limit=50):
            pos = {v: i for i, v in enumerate(lin)}
            for i in range(len(r.events)):
                for j in range(len(r.events)):
                    if po.precedes(i, j):
                        assert pos[i] < pos[j]

    def test_thread_schedule_conversion(self, figure1_program):
        r = execute(figure1_program)
        po = PartialOrder(r.events)
        lin = next(po.linearizations(limit=1))
        sched = po.thread_schedule(lin)
        assert len(sched) == len(r.events)
        assert set(sched) == {0, 1}

    def test_unstamped_events_rejected(self):
        from repro.core.events import Event, OpKind
        with pytest.raises(ValueError):
            PartialOrder([Event(0, 0, 0, OpKind.READ, 0)])


class TestPredecessors:
    def test_immediate_predecessors_are_covering(self, figure1_program):
        r = execute(figure1_program, schedule=[0, 0, 0, 0, 0, 1])
        po = PartialOrder(r.events)
        for j in range(len(r.events)):
            for i in po.immediate_predecessors(j):
                assert po.precedes(i, j)
                # no event strictly between i and j
                for k in po.predecessors(j):
                    assert not (po.precedes(i, k) and po.precedes(k, j))
