"""Cross-process stability of state hashes (and fingerprints).

The campaign runner shards cells across worker processes and the
aggregator counts distinct terminal states across shards, so
``compute_state_hash`` must not depend on per-process hash
randomisation.  The original implementation used builtin ``hash()``
over tuples containing strings — silently different under every
``PYTHONHASHSEED`` — which this regression test would have caught: it
re-computes hashes in fresh subprocesses under different hash seeds
and demands byte-identical results.
"""

import json
import os
import subprocess
import sys

from repro.runtime.state import compute_state_hash
from repro.runtime.objects import ObjectRegistry
from repro.runtime.sharedvar import SharedDict, SharedVar
from repro.errors import DeadlockError

#: benchmarks whose terminal runs exercise strings in the state digest
#: (dict programs, error names) plus plain numeric ones
SAMPLE_IDS = (1, 4, 13, 24, 36, 47, 59, 75)

_CHILD = r"""
import json, sys
from repro.runtime.schedule import execute
from repro.suite import REGISTRY
out = {}
for bid in %r:
    r = execute(REGISTRY[bid].program)
    out[str(bid)] = [r.state_hash, r.hbr_fp, r.lazy_fp]
print(json.dumps(out))
"""


def _hashes_under_seed(seed: str):
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = seed
    env["PYTHONPATH"] = "src" + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    proc = subprocess.run(
        [sys.executable, "-c", _CHILD % (SAMPLE_IDS,)],
        capture_output=True, text=True, env=env,
        cwd=os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    )
    assert proc.returncode == 0, proc.stderr
    return json.loads(proc.stdout)


def test_state_hashes_stable_across_hash_seeds():
    a = _hashes_under_seed("0")
    b = _hashes_under_seed("12345")
    c = _hashes_under_seed("random")
    assert a == b == c


class TestDigestProperties:
    def _registry_with(self, value):
        r = ObjectRegistry()
        SharedVar(r, value, "x")
        return r

    def test_same_state_same_hash(self):
        a = compute_state_hash(self._registry_with(41), (1,), None, False)
        b = compute_state_hash(self._registry_with(41), (1,), None, False)
        assert a == b

    def test_value_changes_hash(self):
        a = compute_state_hash(self._registry_with(1), (), None, False)
        b = compute_state_hash(self._registry_with(2), (), None, False)
        assert a != b

    def test_error_and_truncation_marks(self):
        r = self._registry_with(0)
        clean = compute_state_hash(r, (), None, False)
        dead = compute_state_hash(r, (), DeadlockError([0]), False)
        trunc = compute_state_hash(r, (), None, True)
        assert len({clean, dead, trunc}) == 3

    def test_dict_states_are_order_insensitive(self):
        ra, rb = ObjectRegistry(), ObjectRegistry()
        da, db = SharedDict(ra, name="d"), SharedDict(rb, name="d")
        da.set("alpha", 1)
        da.set("beta", 2)
        db.set("beta", 2)
        db.set("alpha", 1)
        assert compute_state_hash(ra, (), None, False) == \
            compute_state_hash(rb, (), None, False)

    def test_hash_is_64_bit_int(self):
        h = compute_state_hash(self._registry_with(0), (), None, False)
        assert isinstance(h, int)
        assert 0 <= h < (1 << 64)
