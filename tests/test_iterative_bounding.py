"""Tests for iterative context bounding (CHESS-style)."""

from repro.explore import (
    DFSExplorer,
    ExplorationLimits,
    IterativeContextBoundingExplorer,
    PreemptionBoundedExplorer,
)
from repro.suite import REGISTRY

LIM = ExplorationLimits(max_schedules=50_000)


class TestIterativeContextBounding:
    def test_finds_deadlock_at_bound_one(self):
        # the AB-BA deadlock needs exactly one preemption
        prog = REGISTRY[36].program
        stats = IterativeContextBoundingExplorer(prog, LIM, max_bound=1).run()
        assert any(e.kind == "DeadlockError" for e in stats.errors)

    def test_coverage_grows_with_bound(self):
        prog = REGISTRY[3].program  # racy_counter 2x2
        states = []
        for b in (0, 1, 3):
            stats = IterativeContextBoundingExplorer(
                prog, LIM, max_bound=b
            ).run()
            states.append(stats.num_states)
        assert states == sorted(states)
        assert states[0] < states[-1]

    def test_converges_to_dfs_states(self):
        prog = REGISTRY[3].program
        dfs = DFSExplorer(prog, LIM).run()
        icb = IterativeContextBoundingExplorer(prog, LIM, max_bound=8).run()
        assert icb.num_states == dfs.num_states

    def test_per_bound_schedule_counts_recorded(self):
        prog = REGISTRY[1].program
        stats = IterativeContextBoundingExplorer(prog, LIM, max_bound=2).run()
        for b in (0, 1, 2):
            assert f"schedules_bound_{b}" in stats.extra

    def test_budget_shared_across_rounds(self):
        prog = REGISTRY[1].program
        lim = ExplorationLimits(max_schedules=5)
        stats = IterativeContextBoundingExplorer(prog, lim, max_bound=4).run()
        assert stats.num_schedules <= 5 + 4  # one overshoot round max
        assert stats.limit_hit

    def test_inequality_holds(self):
        prog = REGISTRY[11].program
        stats = IterativeContextBoundingExplorer(prog, LIM, max_bound=2).run()
        stats.verify_inequality()

    def test_small_bound_hypothesis_on_buggy_suite(self):
        # every buggy benchmark's bug is reachable within 2 preemptions
        from repro.suite import all_benchmarks
        for bench in all_benchmarks():
            if bench.expect_error is None or not bench.small:
                continue
            stats = IterativeContextBoundingExplorer(
                bench.program, LIM, max_bound=2
            ).run()
            assert stats.errors, f"{bench.name}: no bug within 2 preemptions"


class TestPreemptionBoundedMore:
    def test_bound_limits_preemptions_in_schedules(self):
        # verify the bound semantics by replaying every explored
        # schedule and counting actual preemptions
        prog = REGISTRY[2].program  # racy_counter 2x1

        class Recording(PreemptionBoundedExplorer):
            schedules = []

            def _record_terminal(self, result):
                super()._record_terminal(result)
                Recording.schedules.append(list(result.schedule))

        Recording.schedules = []
        Recording(prog, LIM, bound=1).run()
        from repro.runtime.executor import Executor

        for sched in Recording.schedules:
            # count unforced switches by stepping through
            ex = Executor(prog)
            prev, preemptions = -1, 0
            for tid in sched:
                enabled = ex.enabled()
                if prev != -1 and prev != tid and prev in enabled:
                    preemptions += 1
                ex.step(tid)
                prev = tid
            assert preemptions <= 1, sched
