"""Invariants of the executor's incremental scheduling state.

The memoised enabled list, the incrementally maintained runnable set,
the barrier-pending counter and the conditional cache invalidation
(non-disturbing READ/WRITE/YIELD/JOIN steps patch instead of rebuild)
must always agree with a from-scratch recomputation.  These tests walk
diverse suite programs under seeded random schedules and cross-check
after every single step.
"""

import random

import pytest

from repro.runtime.executor import Executor
from repro.suite import REGISTRY

#: programs covering every enabledness mechanism: plain races, coarse
#: locks, condvars, philosophers (deadlock), barriers, semaphores,
#: rwlocks, ticket locks (await_value predicates), spawn/join
PROGRAMS = (4, 13, 24, 32, 38, 40, 66, 69, 77)


def _walk_and_check(program, seed, fast):
    rng = random.Random(seed)
    ex = Executor(program, max_events=600, fast_replay=fast)
    steps = 0
    while not ex.is_done():
        enabled = ex.enabled()
        assert enabled == sorted(ex._recomputed_enabled()), (
            f"{program.name}: memoised enabled diverged after "
            f"{steps} steps"
        )
        assert enabled, "is_done() said runnable but nothing enabled"
        ex.step(enabled[rng.randrange(len(enabled))])
        steps += 1
    # terminal state agreement too (deadlocks show up here)
    assert sorted(ex._recomputed_enabled()) == ex.enabled() or \
        ex.error is not None or ex.truncated
    return ex


@pytest.mark.parametrize("bid", PROGRAMS)
@pytest.mark.parametrize("fast", [False, True], ids=["ref", "fast"])
def test_enabled_matches_recomputation(bid, fast):
    program = REGISTRY[bid].program
    for seed in range(6):
        _walk_and_check(program, seed, fast)


def test_step_rejects_disabled_thread():
    ex = Executor(REGISTRY[13].program)  # coarse lock program
    enabled = ex.enabled()
    # grab the lock with the first thread; the others' LOCK is disabled
    ex.step(enabled[0])
    from repro.errors import SchedulerError
    blocked = [t for t in ex.enabled() if t != enabled[0]]
    # after one step the lock is held; find a thread whose pending LOCK
    # is now disabled and confirm step() refuses it
    disabled = set(range(len(ex.threads))) - set(ex.enabled())
    for tid in disabled:
        if ex.threads[tid].status == 0 and ex.threads[tid].pending:
            with pytest.raises(SchedulerError):
                ex.step(tid)
            return
    assert blocked is not None  # lock program always blocks someone


def test_num_events_tracks_trace_in_reference_mode():
    ex = Executor(REGISTRY[4].program)
    while not ex.is_done():
        ex.step(ex.enabled()[0])
    assert ex.num_events == len(ex.trace) > 0


def test_num_events_counts_without_trace_in_fast_mode():
    ex = Executor(REGISTRY[4].program, fast_replay=True)
    while not ex.is_done():
        ex.step(ex.enabled()[0])
    assert ex.trace == []
    assert ex.num_events > 0
