"""Empirical validation of the paper's theorems on randomly generated
programs (hypothesis) and on hand-picked ones.

Theorem 2.1: all linearizations of a schedule's HBR are feasible and
reach the same state.
Theorem 2.2: feasible schedules with equal lazy HBRs reach equal
states (and equal HBRs imply equal lazy HBRs).
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro import Program
from repro.core.theorems import (
    check_inequality_chain,
    check_theorem_2_1,
    check_theorem_2_2,
)
from repro.explore import DFSExplorer, ExplorationLimits
from repro.runtime.schedule import RandomScheduler, execute


# ---------------------------------------------------------------------------
# Random-program generation.  Each thread is a list of segments; a
# segment is either a plain data op or a lock-protected block of data
# ops, so lock/unlock are always properly nested.

data_op = st.tuples(
    st.sampled_from(["read", "write"]),
    st.integers(min_value=0, max_value=2),   # which variable
)
segment = st.one_of(
    data_op.map(lambda op: ("plain", [op])),
    st.lists(data_op, min_size=1, max_size=2).map(lambda ops: ("locked", ops)),
)
thread_body = st.lists(segment, min_size=1, max_size=3)
program_spec = st.lists(thread_body, min_size=2, max_size=3)


def build_program(spec):
    def build(p):
        m = p.mutex("m")
        cells = p.array("cells", [0, 0, 0])

        def make_thread(segments, seed):
            def body(api):
                counter = seed
                for style, ops in segments:
                    if style == "locked":
                        yield api.lock(m)
                    for op, var in ops:
                        if op == "read":
                            yield api.read(cells, key=var)
                        else:
                            counter += 1
                            yield api.write(cells, counter, key=var)
                    if style == "locked":
                        yield api.unlock(m)
            return body

        for i, segments in enumerate(spec):
            p.thread(make_thread(segments, (i + 1) * 100))

    return Program("generated", build)


few_examples = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


class TestTheorem21:
    @few_examples
    @given(program_spec, st.integers(min_value=0, max_value=99))
    def test_all_linearizations_feasible_and_equal(self, spec, seed):
        program = build_program(spec)
        base = execute(program, scheduler=RandomScheduler(seed))
        report = check_theorem_2_1(program, base.schedule,
                                   max_linearizations=80)
        assert report.holds, report.detail

    def test_figure1(self, figure1_program):
        report = check_theorem_2_1(figure1_program, [0] * 5 + [1] * 5)
        assert report.holds
        assert report.checked > 1

    def test_infeasible_schedule_rejected(self, figure1_program):
        import pytest
        with pytest.raises(ValueError):
            check_theorem_2_1(figure1_program, [1, 1, 0, 0])


class TestTheorem22:
    @few_examples
    @given(program_spec)
    def test_equal_lazy_hbr_implies_equal_state(self, spec):
        program = build_program(spec)
        schedules = [
            execute(program, scheduler=RandomScheduler(s)).schedule
            for s in range(12)
        ]
        report = check_theorem_2_2(program, schedules)
        assert report.holds, (report.detail, report.counterexample)

    def test_figure1_lock_orders_share_lazy_hbr(self, figure1_program):
        s1 = [0] * 5 + [1] * 5
        s2 = [1] * 5 + [0] * 5
        report = check_theorem_2_2(figure1_program, [s1, s2])
        assert report.holds
        a = execute(figure1_program, schedule=s1)
        b = execute(figure1_program, schedule=s2)
        assert a.lazy_fp == b.lazy_fp
        assert a.hbr_fp != b.hbr_fp


class TestInequalityChain:
    @few_examples
    @given(program_spec)
    def test_chain_on_random_schedules(self, spec):
        program = build_program(spec)
        schedules = [
            execute(program, scheduler=RandomScheduler(s)).schedule
            for s in range(10)
        ]
        report = check_inequality_chain(program, schedules)
        assert report.holds, report.detail

    def test_chain_on_exhaustive_exploration(self, figure1_program):
        stats = DFSExplorer(
            figure1_program, ExplorationLimits(max_schedules=200)
        ).run()
        stats.verify_inequality()
        assert stats.num_hbrs == 2
        assert stats.num_lazy_hbrs == 1
        assert stats.num_states == 1
