"""Tests for the dual clock engine: regular vs lazy happens-before."""

from repro import Program, execute
from repro.core.events import OpKind


def run(build, schedule=None):
    return execute(Program("t", build), schedule=schedule)


class TestMutexEdges:
    def test_figure1_lock_edge_only_in_regular(self, figure1_program):
        r = execute(figure1_program, schedule=[0, 0, 0, 0, 0, 1])
        t1_lock = next(e for e in r.events if e.tid == 1 and e.kind == OpKind.LOCK)
        # regular: ordered after T0's unlock (component 0 inherited)
        assert t1_lock.clock[0] > 0
        # lazy: no mutex edge, so no knowledge of T0 at all
        assert t1_lock.lazy_clock[0] == 0

    def test_data_edges_in_both(self):
        def build(p):
            x = p.var("x", 0)

            def w(api):
                yield api.write(x, 1)

            def r_(api):
                yield api.read(x)

            p.thread(w)
            p.thread(r_)

        r = run(build, schedule=[0, 0, 1])
        read = next(e for e in r.events if e.kind == OpKind.READ)
        assert read.clock[0] > 0
        assert read.lazy_clock[0] > 0

    def test_read_read_no_edge_in_either(self):
        def build(p):
            x = p.var("x", 0)

            def rd(api):
                yield api.read(x)

            p.thread(rd)
            p.thread(rd)

        r = run(build, schedule=[0, 0, 1])
        second = next(e for e in r.events if e.tid == 1 and e.kind == OpKind.READ)
        assert second.clock[0] == 0
        assert second.lazy_clock[0] == 0


class TestLazyContainment:
    def test_lazy_clock_leq_regular_clock_everywhere(self, figure1_program):
        from repro.core.vector_clock import tuple_leq
        r = execute(figure1_program)
        for e in r.events:
            assert tuple_leq(e.lazy_clock, e.clock), (
                "the lazy HBR must be a subset of the regular HBR"
            )

    def test_lazy_containment_on_condvar_program(self):
        from repro.core.vector_clock import tuple_leq
        from repro.suite.buffers import pingpong
        r = execute(pingpong(1))
        for e in r.events:
            assert tuple_leq(e.lazy_clock, e.clock)


class TestSynchronisationEdges:
    def test_notify_edge_survives_in_lazy(self):
        def build(p):
            m = p.mutex("m")
            cv = p.condition("cv")
            flag = p.var("flag", 0)

            def waiter(api):
                yield api.lock(m)
                f = yield api.read(flag)
                if not f:
                    yield api.wait(cv, m)
                yield api.unlock(m)

            def notifier(api):
                yield api.lock(m)
                yield api.write(flag, 1)
                yield api.notify(cv)
                yield api.unlock(m)

            p.thread(waiter)
            p.thread(notifier)

        # waiter first: lock, read, wait; then notifier runs fully;
        # then waiter re-acquires and unlocks.
        r = run(build, schedule=[0, 0, 0, 1, 1, 1, 1, 1, 0])
        resume_lock = [e for e in r.events
                       if e.tid == 0 and e.kind == OpKind.LOCK][-1]
        # even in the lazy relation the wakeup is ordered after notify
        assert resume_lock.lazy_clock[1] > 0

    def test_spawn_edge_in_both(self):
        def build(p):
            x = p.var("x", 0)

            def child(api):
                yield api.read(x)

            def main(api):
                yield api.write(x, 1)
                yield api.spawn(child)

            p.thread(main)

        r = run(build)
        child_read = next(e for e in r.events
                          if e.tid == 1 and e.kind == OpKind.READ)
        assert child_read.clock[0] >= 2
        assert child_read.lazy_clock[0] >= 2

    def test_exit_join_edge_in_both(self):
        def build(p):
            x = p.var("x", 0)

            def child(api):
                yield api.write(x, 5)

            def main(api):
                tid = yield api.spawn(child)
                yield api.join(tid)
                yield api.read(x)

            p.thread(main)

        r = run(build)
        join_ev = next(e for e in r.events if e.kind == OpKind.JOIN)
        exit_ev = next(e for e in r.events
                       if e.kind == OpKind.EXIT and e.tid == 1)
        from repro.core.vector_clock import tuple_leq
        assert tuple_leq(exit_ev.clock, join_ev.clock)
        assert tuple_leq(exit_ev.lazy_clock, join_ev.lazy_clock)


class TestFingerprints:
    def test_equivalent_schedules_same_fingerprints(self, figure1_program):
        # swapping the independent write(z) with T0's events preserves
        # both relations
        a = execute(figure1_program, schedule=[0, 0, 0, 0, 0, 1, 1, 1, 1, 1])
        b = execute(figure1_program, schedule=[1, 0, 0, 0, 0, 0, 1, 1, 1, 1])
        assert a.hbr_fp == b.hbr_fp
        assert a.lazy_fp == b.lazy_fp

    def test_different_lock_orders_differ_only_in_regular(self, figure1_program):
        a = execute(figure1_program, schedule=[0, 0, 0, 0, 0, 1])
        b = execute(figure1_program, schedule=[1, 1, 1, 1, 1, 0])
        assert a.hbr_fp != b.hbr_fp         # different HBR classes
        assert a.lazy_fp == b.lazy_fp       # one lazy class (the paper's point)
        assert a.state_hash == b.state_hash

    def test_conflicting_orders_differ_in_both(self, two_writers_program):
        a = execute(two_writers_program, schedule=[0, 0, 1])
        b = execute(two_writers_program, schedule=[1, 1, 0])
        assert a.hbr_fp != b.hbr_fp
        assert a.lazy_fp != b.lazy_fp
        assert a.state_hash != b.state_hash

    def test_canonical_forms_match_fingerprints(self, figure1_program):
        from repro.runtime.executor import Executor
        results = []
        for sched in ([0, 0, 0, 0, 0, 1], [1, 1, 1, 1, 1, 0]):
            ex = Executor(figure1_program, canonical=True)
            from repro.runtime.schedule import ReplayScheduler
            s = ReplayScheduler(sched)
            while not ex.is_done():
                ex.step(s.choose(ex))
            results.append(
                (ex.engine.canonical_hbr(), ex.engine.canonical_lazy_hbr())
            )
        (hbr_a, lazy_a), (hbr_b, lazy_b) = results
        assert hbr_a != hbr_b
        assert lazy_a == lazy_b
