"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import build_parser, main


class TestList:
    def test_lists_all(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "figure1" in out
        # header + 88 rows
        assert len(out.strip().splitlines()) == 89


class TestRun:
    def test_run_figure1(self, capsys):
        assert main(["run", "1"]) == 0
        out = capsys.readouterr().out
        assert "figure1" in out
        assert "final state" in out

    def test_run_with_schedule(self, capsys):
        assert main(["run", "1", "--schedule", "1,1,1,1,1,0"]) == 0
        out = capsys.readouterr().out
        assert "schedule=[1, 1, 1, 1, 1, 0" in out

    def test_unknown_id_exits_2(self):
        with pytest.raises(SystemExit) as exc:
            main(["run", "999"])
        assert exc.value.code == 2


class TestExplore:
    def test_explore_dpor(self, capsys):
        assert main(["explore", "1", "--strategy", "dpor"]) == 0
        out = capsys.readouterr().out
        assert "dpor" in out
        assert "hbrs=2" in out

    def test_explore_finds_deadlock(self, capsys):
        assert main(["explore", "36"]) == 0
        out = capsys.readouterr().out
        assert "DeadlockError" in out
        assert "schedule:" in out

    def test_unknown_strategy(self, capsys):
        assert main(["explore", "1", "--strategy", "nope"]) == 2

    def test_all_strategies_accessible(self, capsys):
        for strategy in ("dfs", "dpor", "hbr-caching", "lazy-hbr-caching",
                         "lazy-dpor"):
            assert main(["explore", "1", "--strategy", strategy,
                         "--limit", "200"]) == 0


class TestRaces:
    def test_racy_benchmark_exits_1(self, capsys):
        assert main(["races", "2"]) == 1
        out = capsys.readouterr().out
        assert "race(s)" in out
        assert "witness" in out

    def test_clean_benchmark_exits_0(self, capsys):
        assert main(["races", "5"]) == 0
        assert "race-free" in capsys.readouterr().out


class TestFigures:
    def test_parser_has_all_commands(self):
        parser = build_parser()
        for cmd in ("list", "run", "explore", "races", "figure2",
                    "figure3", "inequality", "campaign"):
            # does not raise
            if cmd == "list":
                parser.parse_args([cmd])
            elif cmd in ("run", "explore", "races"):
                parser.parse_args([cmd, "1"])
            else:
                parser.parse_args([cmd, "--limit", "10"])

    def test_figure_commands_accept_jobs(self):
        parser = build_parser()
        for cmd in ("figure2", "figure3", "inequality"):
            args = parser.parse_args([cmd, "--jobs", "4"])
            assert args.jobs == 4

    def test_campaign_flags(self):
        args = build_parser().parse_args(
            ["campaign", "--smoke", "--jobs", "2", "--seeds", "3",
             "--resume", "ckpt.json", "--out", "report.json"]
        )
        assert args.smoke and args.jobs == 2 and args.seeds == 3
        assert args.resume == "ckpt.json" and args.out == "report.json"

    def test_missing_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])
