"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import build_parser, main


class TestCheck:
    def test_check_benchmark_clean(self, capsys):
        assert main(["check", "1", "--explorer", "dfs",
                     "--limit", "100"]) == 0
        out = capsys.readouterr().out
        assert "no bug found" in out

    def test_check_finds_bug_exits_1(self, capsys):
        assert main(["check", "36", "--limit", "500"]) == 1
        out = capsys.readouterr().out
        assert "BUG" in out
        assert "minimized" in out

    def test_expect_bug_makes_finding_a_pass(self, capsys):
        assert main(["check", "36", "--limit", "500",
                     "--expect", "bug"]) == 0

    def test_expect_clean_fails_on_bug(self, capsys):
        assert main(["check", "36", "--limit", "500",
                     "--expect", "clean"]) == 1
        assert "UNEXPECTED" in capsys.readouterr().err

    def test_module_function_target(self, capsys, monkeypatch):
        import pathlib
        import sys as _sys
        repo = pathlib.Path(__file__).parent.parent
        monkeypatch.syspath_prepend(str(repo))
        _sys.modules.pop("examples.real_code_demo", None)
        assert main(["check", "examples.real_code_demo:pipeline",
                     "--expect", "bug"]) == 0
        out = capsys.readouterr().out
        assert "lost update" in out

    def test_json_artifact(self, capsys, tmp_path):
        import json
        path = tmp_path / "check.json"
        assert main(["check", "36", "--limit", "500",
                     "--json", str(path), "--expect", "bug"]) == 0
        payload = json.loads(path.read_text())
        assert payload["bug_found"] is True
        assert payload["explorer"] == "dpor"

    def test_bad_target_exits_2(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["check", "no-colon-here"])
        assert exc.value.code == 2

    def test_unknown_explorer_exits_2(self, capsys):
        assert main(["check", "1", "--explorer", "nope"]) == 2


class TestShimEquivalence:
    def test_report_and_artifact(self, capsys, tmp_path):
        import json
        path = tmp_path / "equiv.json"
        assert main(["shim-equivalence", "--limit", "400",
                     "--explorers", "dpor", "--out", str(path)]) == 0
        out = capsys.readouterr().out
        assert "all_equal=True" in out
        assert "racy_counter" in out
        payload = json.loads(path.read_text())
        assert payload["kind"] == "repro-shim-equivalence"
        assert payload["all_equal"] is True


class TestList:
    def test_lists_all(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "figure1" in out
        # header + 96 rows
        assert len(out.strip().splitlines()) == 97


class TestRun:
    def test_run_figure1(self, capsys):
        assert main(["run", "1"]) == 0
        out = capsys.readouterr().out
        assert "figure1" in out
        assert "final state" in out

    def test_run_with_schedule(self, capsys):
        assert main(["run", "1", "--schedule", "1,1,1,1,1,0"]) == 0
        out = capsys.readouterr().out
        assert "schedule=[1, 1, 1, 1, 1, 0" in out

    def test_unknown_id_exits_2(self):
        with pytest.raises(SystemExit) as exc:
            main(["run", "999"])
        assert exc.value.code == 2


class TestExplore:
    def test_explore_dpor(self, capsys):
        assert main(["explore", "1", "--strategy", "dpor"]) == 0
        out = capsys.readouterr().out
        assert "dpor" in out
        assert "hbrs=2" in out

    def test_explore_finds_deadlock(self, capsys):
        assert main(["explore", "36"]) == 0
        out = capsys.readouterr().out
        assert "DeadlockError" in out
        assert "schedule:" in out

    def test_unknown_strategy(self, capsys):
        assert main(["explore", "1", "--strategy", "nope"]) == 2

    def test_all_strategies_accessible(self, capsys):
        for strategy in ("dfs", "dpor", "hbr-caching", "lazy-hbr-caching",
                         "lazy-dpor"):
            assert main(["explore", "1", "--strategy", strategy,
                         "--limit", "200"]) == 0


class TestRaces:
    def test_racy_benchmark_exits_1(self, capsys):
        assert main(["races", "2"]) == 1
        out = capsys.readouterr().out
        assert "race(s)" in out
        assert "witness" in out

    def test_clean_benchmark_exits_0(self, capsys):
        assert main(["races", "5"]) == 0
        assert "race-free" in capsys.readouterr().out


class TestFigures:
    def test_parser_has_all_commands(self):
        parser = build_parser()
        for cmd in ("list", "run", "explore", "races", "figure2",
                    "figure3", "inequality", "campaign"):
            # does not raise
            if cmd == "list":
                parser.parse_args([cmd])
            elif cmd in ("run", "explore", "races"):
                parser.parse_args([cmd, "1"])
            else:
                parser.parse_args([cmd, "--limit", "10"])

    def test_figure_commands_accept_jobs(self):
        parser = build_parser()
        for cmd in ("figure2", "figure3", "inequality"):
            args = parser.parse_args([cmd, "--jobs", "4"])
            assert args.jobs == 4

    def test_campaign_flags(self):
        args = build_parser().parse_args(
            ["campaign", "--smoke", "--jobs", "2", "--seeds", "3",
             "--resume", "ckpt.json", "--out", "report.json"]
        )
        assert args.smoke and args.jobs == 2 and args.seeds == 3
        assert args.resume == "ckpt.json" and args.out == "report.json"

    def test_missing_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])
