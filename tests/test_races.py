"""Tests for happens-before data-race detection."""

import pytest

from repro import Program, execute
from repro.analysis.races import (
    Race,
    find_races,
    race_summary,
    races_in_trace,
    sync_oids_of,
)
from repro.explore import ExplorationLimits

LIM = ExplorationLimits(max_schedules=20_000)


def hunt(program):
    return find_races(program, LIM)


class TestRacyPrograms:
    def test_racy_counter_has_races(self):
        from repro.suite.counters import racy_counter
        report = hunt(racy_counter(2, 1))
        assert not report.race_free
        assert report.exhausted
        # read-write and write-write pairs on c; read-read is not a race
        kinds = {(r.first[2], r.second[2]) for r in report.races}
        assert len(report.races) == 3
        assert all(r.oid is not None for r in report.races)

    def test_racy_bank_races_on_balances(self):
        from repro.suite.bank import bank_racy
        report = hunt(bank_racy(2))
        assert not report.race_free
        keys = {r.key for r in report.races}
        assert keys == {0, 1}  # both account slots race

    def test_dcl_buggy_fast_path_races(self):
        from repro.suite.sync_patterns import double_checked_locking
        report = hunt(double_checked_locking(2, buggy=True))
        # the unsynchronised fast-path read of `ready` races with the
        # locked write of `ready`
        assert not report.race_free

    def test_witness_schedules_are_replayable(self):
        from repro.suite.counters import racy_counter
        program = racy_counter(2, 1)
        report = hunt(program)
        sync = sync_oids_of(program.instantiate().registry)
        for race, schedule in report.witness.items():
            r = execute(program, schedule=schedule)
            assert race in races_in_trace(r, sync)


class TestRaceFreePrograms:
    @pytest.mark.parametrize("maker", [
        lambda: __import__("repro.suite.counters", fromlist=["x"]).locked_counter(2, 2),
        lambda: __import__("repro.suite.counters", fromlist=["x"]).disjoint_coarse(2, 2),
        lambda: __import__("repro.suite.counters", fromlist=["x"]).atomic_counter(2, 2),
        lambda: __import__("repro.suite.bank", fromlist=["x"]).bank_per_account(2),
        lambda: __import__("repro.suite.buffers", fromlist=["x"]).pingpong(1),
    ], ids=["locked_counter", "disjoint_coarse", "atomic_counter",
            "bank_per_account", "pingpong"])
    def test_properly_synchronised_programs_race_free(self, maker):
        report = hunt(maker())
        assert report.race_free, race_summary(report)
        assert report.exhausted

    def test_rwlock_readers_race_free(self):
        from repro.suite.locks import readers_writers
        report = hunt(readers_writers(1, 1))
        assert report.race_free

    def test_spawn_join_is_synchronisation(self):
        # parent writes before spawn; child reads: ordered by the spawn
        # edge, NOT racy.  child writes; parent reads after join: ordered.
        def build(p):
            x = p.var("x", 0)
            y = p.var("y", 0)

            def child(api):
                yield api.read(x)
                yield api.write(y, 1)

            def main(api):
                yield api.write(x, 1)
                tid = yield api.spawn(child)
                yield api.join(tid)
                yield api.read(y)

            p.thread(main)

        report = hunt(Program("spawn_sync", build))
        assert report.race_free, race_summary(report)

    def test_message_passing_via_await_is_still_a_race(self):
        # await on a plain variable is a spin-read: data race by the
        # sync-HB definition (like C without atomics), even though the
        # program is correct under SC
        from repro.suite.sync_patterns import message_passing_litmus
        report = hunt(message_passing_litmus())
        assert not report.race_free


class TestRaceIdentity:
    def test_race_stable_across_schedules(self):
        from repro.suite.counters import racy_counter
        program = racy_counter(2, 1)
        sync = sync_oids_of(program.instantiate().registry)
        a = races_in_trace(execute(program, schedule=[0, 1, 0, 1]), sync)
        b = races_in_trace(execute(program, schedule=[1, 0, 1, 0]), sync)
        assert set(a) & set(b), "same logical race found in both schedules"

    def test_describe_mentions_location_and_threads(self):
        race = Race(3, None, (0, 1, 1), (1, 0, 0))
        text = race.describe({3: "counter"})
        assert "counter" in text
        assert "T0.1 WRITE" in text and "T1.0 READ" in text

    def test_summary_renders(self):
        from repro.suite.counters import racy_counter
        report = hunt(racy_counter(2, 1))
        text = race_summary(report)
        assert "race(s)" in text
        assert "witness schedule" in text
