"""Tests for the guest-facing operation constructors and semantics of
the less-common operations (RMW helpers, rwlock ops, yield)."""

import pytest

from repro import GuestAssertionError, Program, execute
from repro.core.events import OpKind
from repro.runtime.thread_api import ThreadAPI


class TestOpConstruction:
    def test_read_write_ops(self):
        api = ThreadAPI(0)
        sentinel = object()
        op = api.read(sentinel, key=3)
        assert op.kind == OpKind.READ and op.arg == 3
        op = api.write(sentinel, 9, key=2)
        assert op.kind == OpKind.WRITE and op.arg == 2 and op.arg2 == 9

    def test_guest_assert_raises_immediately(self):
        api = ThreadAPI(4)
        api.guest_assert(True)  # no-op
        with pytest.raises(GuestAssertionError) as exc:
            api.guest_assert(False, "nope")
        assert exc.value.thread_id == 4


class TestAtomicSemantics:
    def _prog(self, body):
        def build(p):
            a = p.atomic("a", 10)
            out = p.var("out", None)

            def t(api):
                result = yield from body(api, a)
                yield api.write(out, result)

            p.thread(t)

        return Program("t", build)

    def test_fetch_add_returns_old(self):
        def body(api, a):
            old = yield api.fetch_add(a, 5)
            return old

        r = execute(self._prog(body))
        assert r.final_state["out"] == 10
        assert r.final_state["a"] == 15

    def test_add_fetch_returns_new(self):
        def body(api, a):
            new = yield api.add_fetch(a, 5)
            return new

        r = execute(self._prog(body))
        assert r.final_state["out"] == 15

    def test_cas_success_and_failure(self):
        def body(api, a):
            ok1 = yield api.cas(a, 10, 20)
            ok2 = yield api.cas(a, 10, 30)
            return (ok1, ok2)

        r = execute(self._prog(body))
        assert r.final_state["out"] == (True, False)
        assert r.final_state["a"] == 20

    def test_exchange(self):
        def body(api, a):
            old = yield api.exchange(a, 77)
            return old

        r = execute(self._prog(body))
        assert r.final_state["out"] == 10
        assert r.final_state["a"] == 77

    def test_load_store(self):
        def body(api, a):
            yield api.store(a, 3)
            v = yield api.load(a)
            return v

        r = execute(self._prog(body))
        assert r.final_state["out"] == 3


class TestRWLockOps:
    def test_reader_writer_interaction(self):
        def build(p):
            rw = p.rwlock("rw")
            x = p.var("x", 0)

            def writer(api):
                yield api.wlock(rw)
                yield api.write(x, 1)
                yield api.wunlock(rw)

            def reader(api):
                yield api.rlock(rw)
                yield api.read(x)
                yield api.runlock(rw)

            p.thread(writer)
            p.thread(reader)

        r = execute(Program("t", build))
        assert r.ok

    def test_two_readers_concurrent(self):
        from repro.runtime.executor import Executor

        def build(p):
            rw = p.rwlock("rw")
            x = p.var("x", 0)

            def reader(api):
                yield api.rlock(rw)
                yield api.read(x)
                yield api.runlock(rw)

            p.thread(reader)
            p.thread(reader)

        ex = Executor(Program("t", build))
        ex.step(0)  # r0 takes read lock
        assert 1 in ex.enabled()  # r1 can read-lock concurrently


class TestYield:
    def test_sched_yield_creates_scheduling_point(self):
        def build(p):
            def t(api):
                yield api.sched_yield()
                yield api.sched_yield()

            p.thread(t)

        r = execute(Program("t", build))
        yields = [e for e in r.events if e.kind == OpKind.YIELD]
        assert len(yields) == 2
        assert all(e.oid == -1 for e in yields)

    def test_general_rmw_on_var(self):
        def build(p):
            v = p.var("v", (1, 2))
            out = p.var("out", None)

            def t(api):
                old_sum = yield api.rmw(
                    v, lambda old: ((old[0] + 1, old[1]), old[0] + old[1])
                )
                yield api.write(out, old_sum)

            p.thread(t)

        r = execute(Program("t", build))
        assert r.final_state["v"] == (2, 2)
        assert r.final_state["out"] == 3
