"""Tests for the regular and lazy conflict predicates."""

from repro.core.dependence import conflicts, conflicts_lazy, may_be_coenabled
from repro.core.events import Event, OpKind


def ev(tid, kind, oid, key=None, released=None, index=0):
    return Event(index=index, tid=tid, tindex=0, kind=kind, oid=oid,
                 key=key, released_mutex_oid=released)


class TestRegularConflicts:
    def test_same_thread_always_dependent(self):
        a = ev(0, OpKind.READ, 1)
        b = ev(0, OpKind.READ, 2)
        assert conflicts(a, b)

    def test_read_read_independent(self):
        assert not conflicts(ev(0, OpKind.READ, 1), ev(1, OpKind.READ, 1))

    def test_read_write_conflict(self):
        assert conflicts(ev(0, OpKind.READ, 1), ev(1, OpKind.WRITE, 1))

    def test_write_write_conflict(self):
        assert conflicts(ev(0, OpKind.WRITE, 1), ev(1, OpKind.WRITE, 1))

    def test_different_objects_independent(self):
        assert not conflicts(ev(0, OpKind.WRITE, 1), ev(1, OpKind.WRITE, 2))

    def test_different_keys_independent(self):
        a = ev(0, OpKind.WRITE, 1, key=0)
        b = ev(1, OpKind.WRITE, 1, key=1)
        assert not conflicts(a, b)

    def test_same_key_conflict(self):
        a = ev(0, OpKind.WRITE, 1, key=3)
        b = ev(1, OpKind.READ, 1, key=3)
        assert conflicts(a, b)

    def test_lock_lock_conflict(self):
        assert conflicts(ev(0, OpKind.LOCK, 9), ev(1, OpKind.LOCK, 9))

    def test_lock_unlock_conflict(self):
        assert conflicts(ev(0, OpKind.LOCK, 9), ev(1, OpKind.UNLOCK, 9))

    def test_rmw_conflicts_with_read(self):
        assert conflicts(ev(0, OpKind.RMW, 4), ev(1, OpKind.READ, 4))

    def test_wait_conflicts_with_lock_on_released_mutex(self):
        w = ev(0, OpKind.WAIT, 5, released=9)
        l = ev(1, OpKind.LOCK, 9)
        assert conflicts(w, l)
        assert conflicts(l, w)

    def test_wait_does_not_conflict_with_other_mutex(self):
        w = ev(0, OpKind.WAIT, 5, released=9)
        l = ev(1, OpKind.LOCK, 8)
        assert not conflicts(w, l)

    def test_wait_notify_conflict_on_condvar(self):
        w = ev(0, OpKind.WAIT, 5, released=9)
        n = ev(1, OpKind.NOTIFY, 5)
        assert conflicts(w, n)


class TestLazyConflicts:
    def test_lock_never_conflicts_lazily(self):
        assert not conflicts_lazy(ev(0, OpKind.LOCK, 9), ev(1, OpKind.LOCK, 9))
        assert not conflicts_lazy(ev(0, OpKind.UNLOCK, 9), ev(1, OpKind.LOCK, 9))

    def test_lock_vs_wait_release_is_lazy_independent(self):
        w = ev(0, OpKind.WAIT, 5, released=9)
        l = ev(1, OpKind.LOCK, 9)
        assert not conflicts_lazy(w, l)

    def test_data_conflicts_survive(self):
        assert conflicts_lazy(ev(0, OpKind.WRITE, 1), ev(1, OpKind.READ, 1))

    def test_condvar_conflicts_survive(self):
        w = ev(0, OpKind.WAIT, 5, released=9)
        n = ev(1, OpKind.NOTIFY_ALL, 5)
        assert conflicts_lazy(w, n)

    def test_semaphore_conflicts_survive(self):
        a = ev(0, OpKind.SEM_ACQUIRE, 2)
        r = ev(1, OpKind.SEM_RELEASE, 2)
        assert conflicts_lazy(a, r)

    def test_same_thread_still_dependent(self):
        a = ev(0, OpKind.LOCK, 9)
        b = ev(0, OpKind.UNLOCK, 9)
        assert conflicts_lazy(a, b)

    def test_lazy_implies_regular(self):
        # lazy conflicts are a subset of regular conflicts
        kinds = [OpKind.READ, OpKind.WRITE, OpKind.RMW, OpKind.LOCK,
                 OpKind.UNLOCK, OpKind.SEM_ACQUIRE, OpKind.NOTIFY]
        for k1 in kinds:
            for k2 in kinds:
                e1, e2 = ev(0, k1, 1), ev(1, k2, 1)
                if conflicts_lazy(e1, e2):
                    assert conflicts(e1, e2)


class TestCoEnabled:
    def test_lock_unlock_same_mutex_never_coenabled(self):
        assert not may_be_coenabled(ev(0, OpKind.LOCK, 9), ev(1, OpKind.UNLOCK, 9))

    def test_lock_lock_may_be_coenabled(self):
        assert may_be_coenabled(ev(0, OpKind.LOCK, 9), ev(1, OpKind.LOCK, 9))

    def test_data_ops_may_be_coenabled(self):
        assert may_be_coenabled(ev(0, OpKind.WRITE, 1), ev(1, OpKind.READ, 1))
