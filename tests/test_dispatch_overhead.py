"""Dispatch-overhead regression pin for the replay hot path.

The engine-backend work (specialized step loop, fused
``observe_fast``, op-stream memoisation, restore templates) is about
removing Python-level dispatch from the per-event replay path.  This
test pins that property so it cannot silently regress: a reference
dfs cell is explored under ``cProfile`` (which counts every
Python-level call through the same hook family as
``sys.setprofile``) and the number of primitive calls per
replayed event must stay under a fixed ceiling.

The ceiling is deliberately generous (~40% headroom over the measured
value) so it only trips on structural regressions — a new per-event
Python callback, an accidentally disabled fast path — not on noise.
Call counts, unlike wall-clock time, are machine-independent, which
is what makes this pin viable in CI.
"""

import cProfile
import pstats

import pytest

from repro.explore.base import ExplorationLimits
from repro.explore.controller import make_explorer
from repro.core.engines import native_compiled
from repro.suite import REGISTRY

#: calls/event ceilings per backend, measured at ~24.4 (ref) and
#: ~20.7 (native) on the commit that introduced this test
CALLS_PER_EVENT_CEILING = {"ref": 35.0, "native": 30.0}

#: the reference cell: small enough to explore exhaustively in
#: milliseconds, hot enough that per-event costs dominate
PROGRAM = "racy_counter_t3_k1"
MAX_SCHEDULES = 500


def _calls_per_event(engine: str) -> float:
    program = {b.name: b for b in REGISTRY.values()}[PROGRAM].program
    explorer = make_explorer(
        "dfs", program, ExplorationLimits(max_schedules=MAX_SCHEDULES),
        engine=engine,
    )
    profile = cProfile.Profile()
    profile.enable()
    stats = explorer.run()
    profile.disable()
    assert stats.num_events > 0
    prim_calls = pstats.Stats(profile).prim_calls
    return prim_calls / stats.num_events


def test_ref_engine_dispatch_overhead_pinned():
    ratio = _calls_per_event("ref")
    assert ratio <= CALLS_PER_EVENT_CEILING["ref"], (
        f"replay dispatch overhead regressed: {ratio:.1f} Python-level "
        f"calls per replayed event on the reference dfs cell "
        f"(ceiling {CALLS_PER_EVENT_CEILING['ref']})"
    )


@pytest.mark.skipif(not native_compiled(),
                    reason="native extension not compiled")
def test_native_engine_dispatch_overhead_pinned():
    ratio = _calls_per_event("native")
    assert ratio <= CALLS_PER_EVENT_CEILING["native"], (
        f"native replay dispatch overhead regressed: {ratio:.1f} "
        f"Python-level calls per replayed event "
        f"(ceiling {CALLS_PER_EVENT_CEILING['native']})"
    )


@pytest.mark.skipif(not native_compiled(),
                    reason="native extension not compiled")
def test_native_dispatches_less_than_ref():
    # the compiled engine must actually remove Python-level work from
    # the hot loop, not just shuffle it around
    assert _calls_per_event("native") < _calls_per_event("ref")
