"""Unit tests for shared objects: registry, vars, mutexes, semaphores,
condvars, barriers, rwlocks, atomics."""

import pytest

from repro.errors import InvalidOpError
from repro.runtime.atomic import AtomicInt
from repro.runtime.barrier import Barrier
from repro.runtime.condvar import CondVar
from repro.runtime.mutex import Mutex
from repro.runtime.objects import ObjectRegistry, ThreadHandle
from repro.runtime.rwlock import RWLock
from repro.runtime.semaphore import Semaphore
from repro.runtime.sharedvar import SharedArray, SharedDict, SharedVar


@pytest.fixture
def reg():
    return ObjectRegistry()


class TestRegistry:
    def test_oids_are_dense_and_ordered(self, reg):
        a = SharedVar(reg, 0, "a")
        b = Mutex(reg, "b")
        c = SharedVar(reg, 0, "c")
        assert (a.oid, b.oid, c.oid) == (0, 1, 2)

    def test_state_items_in_oid_order(self, reg):
        SharedVar(reg, 5, "a")
        Semaphore(reg, 2, "s")
        items = reg.state_items()
        assert items == [(0, 5), (1, ("sem", 2))]

    def test_default_names(self, reg):
        v = SharedVar(reg, 0)
        assert v.name == "sharedvar0"


class TestSharedData:
    def test_var_get_set(self, reg):
        v = SharedVar(reg, 10)
        assert v.get() == 10
        v.set(None, 20)
        assert v.get() == 20

    def test_array_bounds_checked(self, reg):
        a = SharedArray(reg, [1, 2, 3])
        assert a.get(2) == 3
        with pytest.raises(InvalidOpError):
            a.get(3)
        with pytest.raises(InvalidOpError):
            a.set("x", 1)

    def test_array_state_value(self, reg):
        a = SharedArray(reg, [1, [2, 3]])
        assert a.state_value() == (1, (2, 3))

    def test_dict_get_missing_returns_none(self, reg):
        d = SharedDict(reg)
        assert d.get("nope") is None

    def test_dict_state_value_is_order_independent(self, reg):
        d1 = SharedDict(reg)
        d2 = SharedDict(reg)
        d1.set("a", 1); d1.set("b", 2)
        d2.set("b", 2); d2.set("a", 1)
        assert d1.state_value() == d2.state_value()

    def test_unhashable_values_digest(self, reg):
        v = SharedVar(reg, {"k": [1, 2]})
        hash(v.state_value())


class TestMutex:
    def test_lock_unlock_cycle(self, reg):
        m = Mutex(reg)
        assert m.can_lock()
        m.do_lock(3)
        assert not m.can_lock()
        assert m.owner == 3
        m.do_unlock(3)
        assert m.owner is None

    def test_double_lock_is_invalid(self, reg):
        m = Mutex(reg)
        m.do_lock(0)
        with pytest.raises(InvalidOpError):
            m.do_lock(1)

    def test_unlock_by_non_owner_is_invalid(self, reg):
        m = Mutex(reg)
        m.do_lock(0)
        with pytest.raises(InvalidOpError):
            m.do_unlock(1)

    def test_unlock_of_free_mutex_is_invalid(self, reg):
        with pytest.raises(InvalidOpError):
            Mutex(reg).do_unlock(0)


class TestSemaphore:
    def test_acquire_release(self, reg):
        s = Semaphore(reg, 1)
        assert s.can_acquire()
        s.do_acquire()
        assert not s.can_acquire()
        s.do_release()
        assert s.can_acquire()

    def test_negative_initial_rejected(self, reg):
        with pytest.raises(ValueError):
            Semaphore(reg, -1)


class TestCondVar:
    def test_fifo_notify(self, reg):
        cv = CondVar(reg)
        cv.add_waiter(1)
        cv.add_waiter(2)
        assert cv.pop_one() == [1]
        assert cv.pop_one() == [2]
        assert cv.pop_one() == []

    def test_pop_all(self, reg):
        cv = CondVar(reg)
        cv.add_waiter(1)
        cv.add_waiter(2)
        assert cv.pop_all() == [1, 2]
        assert cv.pop_all() == []


class TestBarrier:
    def test_generation_cycle(self, reg):
        b = Barrier(reg, 2)
        b.admit([0, 1])
        assert b.can_pass(0) and b.can_pass(1)
        b.do_pass(0)
        assert not b.can_pass(0)
        gen = b.do_pass(1)
        assert gen == 1

    def test_needs_positive_parties(self, reg):
        with pytest.raises(ValueError):
            Barrier(reg, 0)


class TestRWLock:
    def test_multiple_readers(self, reg):
        rw = RWLock(reg)
        rw.do_rlock(0)
        assert rw.can_rlock(1)
        rw.do_rlock(1)
        assert not rw.can_wlock(2)
        rw.do_runlock(0)
        rw.do_runlock(1)
        assert rw.can_wlock(2)

    def test_writer_excludes_readers(self, reg):
        rw = RWLock(reg)
        rw.do_wlock(0)
        assert not rw.can_rlock(1)
        assert not rw.can_wlock(1)
        rw.do_wunlock(0)
        assert rw.can_rlock(1)

    def test_reentrant_rlock_rejected(self, reg):
        rw = RWLock(reg)
        rw.do_rlock(0)
        assert not rw.can_rlock(0)
        with pytest.raises(InvalidOpError):
            rw.do_rlock(0)

    def test_wrong_unlocks_rejected(self, reg):
        rw = RWLock(reg)
        with pytest.raises(InvalidOpError):
            rw.do_runlock(0)
        with pytest.raises(InvalidOpError):
            rw.do_wunlock(0)


class TestAtomicInt:
    def test_rmw_builders(self):
        assert AtomicInt._fetch_add(3)(10) == (13, 10)
        assert AtomicInt._add_fetch(3)(10) == (13, 13)
        assert AtomicInt._cas(10, 99)(10) == (99, True)
        assert AtomicInt._cas(11, 99)(10) == (10, False)
        assert AtomicInt._exchange(7)(1) == (7, 1)

    def test_state_value(self, reg):
        a = AtomicInt(reg, 5)
        assert a.state_value() == 5


class TestThreadHandle:
    def test_handle_state(self, reg):
        h = ThreadHandle(reg, 2)
        assert h.state_value() == ("thread", 2)
        assert h.tid == 2


class TestInjectedErrorSemantics:
    """fx_throw contract: the injected channel/future error is fatal.

    A guest that swallows it still crashes with the injected error; a
    guest that escalates to a different GuestError crashes with that
    error; a guest that swallows it and keeps yielding is a modelling
    error (its generator has diverged from the send tape).
    """

    def _close_race(self, producer_body):
        from repro.runtime.program import Program

        def build(p):
            ch = p.channel("ch", 2)

            def closer(api):
                yield api.chan_close(ch)

            p.thread(producer_body, ch)
            p.thread(closer)

        return Program("throw_semantics", build)

    def test_swallowed_injected_error_still_crashes(self):
        from repro.errors import ChannelError
        from repro.runtime.schedule import execute

        def producer(api, ch):
            try:
                yield api.chan_send(ch, 1)
            except ChannelError:
                return  # swallowing does not undo the violation

        r = execute(self._close_race(producer), schedule=[1, 0, 0])
        assert type(r.error).__name__ == "ChannelError"

    def test_escalated_error_wins(self):
        from repro.errors import ChannelError
        from repro.runtime.schedule import execute

        def producer(api, ch):
            try:
                yield api.chan_send(ch, 1)
            except ChannelError:
                api.guest_assert(False, "escalated")
            yield api.chan_send(ch, 2)

        r = execute(self._close_race(producer), schedule=[1, 0, 0])
        assert type(r.error).__name__ == "GuestAssertionError"

    def test_intercept_and_continue_is_a_modelling_error(self):
        from repro.errors import ChannelError
        from repro.runtime.executor import Executor

        def producer(api, ch):
            try:
                yield api.chan_send(ch, 1)
            except ChannelError:
                pass
            yield api.sched_yield()  # diverged from the tape

        ex = Executor(self._close_race(producer))
        ex.step(1)  # close
        with pytest.raises(InvalidOpError):
            ex.step(0)  # send on closed -> throw -> guest keeps going
