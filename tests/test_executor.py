"""Tests for the stepwise executor: enabledness, stepping, blocking
semantics, deadlock detection, dynamic threads, truncation."""

import pytest

from repro import DeadlockError, Program, execute
from repro.core.events import OpKind
from repro.errors import InvalidOpError, SchedulerError
from repro.runtime.executor import Executor


def make(build, name="t"):
    return Program(name, build)


class TestStepping:
    def test_step_disabled_thread_raises(self):
        def build(p):
            m = p.mutex("m")

            def t(api):
                yield api.lock(m)
                yield api.unlock(m)

            p.thread(t)
            p.thread(t)

        ex = Executor(make(build))
        ex.step(0)  # T0 locks
        assert ex.enabled() == [0]
        with pytest.raises(SchedulerError):
            ex.step(1)

    def test_step_finished_thread_raises(self):
        def build(p):
            x = p.var("x", 0)

            def t(api):
                yield api.write(x, 1)

            p.thread(t)

        ex = Executor(make(build))
        ex.step(0)
        ex.step(0)  # EXIT
        with pytest.raises(SchedulerError):
            ex.step(0)

    def test_every_thread_gets_exit_event(self):
        def build(p):
            x = p.var("x", 0)

            def t(api):
                yield api.write(x, 1)

            p.thread(t)
            p.thread(t)

        r = execute(make(build))
        exits = [e for e in r.events if e.kind == OpKind.EXIT]
        assert {e.tid for e in exits} == {0, 1}

    def test_trace_indices_sequential(self, figure1_program):
        r = execute(figure1_program)
        assert [e.index for e in r.events] == list(range(len(r.events)))

    def test_tindex_per_thread(self, figure1_program):
        r = execute(figure1_program)
        for tid in (0, 1):
            seq = [e.tindex for e in r.events if e.tid == tid]
            assert seq == list(range(len(seq)))

    def test_finish_before_done_raises(self, figure1_program):
        ex = Executor(figure1_program)
        with pytest.raises(SchedulerError):
            ex.finish()

    def test_yielding_non_op_raises(self):
        def build(p):
            def t(api):
                yield "not an op"

            p.thread(t)

        with pytest.raises(InvalidOpError):
            Executor(make(build))


class TestMutexSemantics:
    def test_lock_blocks_second_thread(self):
        def build(p):
            m = p.mutex("m")

            def t(api):
                yield api.lock(m)
                yield api.unlock(m)

            p.thread(t)
            p.thread(t)

        ex = Executor(make(build))
        assert ex.enabled() == [0, 1]
        ex.step(0)
        assert ex.enabled() == [0]
        ex.step(0)  # unlock
        assert ex.enabled() == [0, 1]

    def test_deadlock_detected_and_recorded(self):
        def build(p):
            a, b = p.mutex("a"), p.mutex("b")

            def t0(api):
                yield api.lock(a)
                yield api.lock(b)

            def t1(api):
                yield api.lock(b)
                yield api.lock(a)

            p.thread(t0)
            p.thread(t1)

        r = execute(make(build), schedule=[0, 1])
        assert isinstance(r.error, DeadlockError)
        assert set(r.error.blocked_threads) == {0, 1}

    def test_unlock_by_non_owner_is_host_error(self):
        def build(p):
            m = p.mutex("m")

            def t(api):
                yield api.unlock(m)

            p.thread(t)

        with pytest.raises(InvalidOpError):
            execute(make(build))


class TestCondVarSemantics:
    def _waiter_notifier(self, p):
        m = p.mutex("m")
        cv = p.condition("cv")
        flag = p.var("flag", 0)

        def waiter(api):
            yield api.lock(m)
            while True:
                f = yield api.read(flag)
                if f:
                    break
                yield api.wait(cv, m)
            yield api.unlock(m)

        def notifier(api):
            yield api.lock(m)
            yield api.write(flag, 1)
            yield api.notify(cv)
            yield api.unlock(m)

        p.thread(waiter)
        p.thread(notifier)
        return m, cv

    def test_wait_releases_mutex(self):
        holder = {}

        def build(p):
            holder["m"], _ = self._waiter_notifier(p)

        ex = Executor(make(build))
        ex.step(0)  # lock
        ex.step(0)  # read flag = 0
        ex.step(0)  # wait: releases m, parks
        assert ex.instance.named["m"].owner is None
        assert ex.enabled() == [1]  # waiter is parked

    def test_wait_resumes_after_notify_and_reacquire(self):
        def build(p):
            self._waiter_notifier(p)

        r = execute(make(build), schedule=[0, 0, 0, 1, 1, 1, 1])
        assert r.ok
        # the waiter's resume appears as a second LOCK event by tid 0
        locks = [e for e in r.events if e.tid == 0 and e.kind == OpKind.LOCK]
        assert len(locks) == 2

    def test_lost_wakeup_semantics(self):
        # notify with no waiters is a no-op; a later wait sleeps forever
        def build(p):
            m = p.mutex("m")
            cv = p.condition("cv")

            def waiter(api):
                yield api.lock(m)
                yield api.wait(cv, m)
                yield api.unlock(m)

            def notifier(api):
                yield api.notify(cv)

            p.thread(waiter)
            p.thread(notifier)

        r = execute(make(build), schedule=[1, 1, 0, 0])
        assert isinstance(r.error, DeadlockError)

    def test_wait_without_mutex_is_host_error(self):
        def build(p):
            m = p.mutex("m")
            cv = p.condition("cv")

            def t(api):
                yield api.wait(cv, m)

            p.thread(t)

        with pytest.raises(InvalidOpError):
            execute(make(build))

    def test_notify_all_wakes_everyone(self):
        def build(p):
            m = p.mutex("m")
            cv = p.condition("cv")
            flag = p.var("flag", 0)

            def waiter(api):
                yield api.lock(m)
                while True:
                    f = yield api.read(flag)
                    if f:
                        break
                    yield api.wait(cv, m)
                yield api.unlock(m)

            def boss(api):
                yield api.lock(m)
                yield api.write(flag, 1)
                yield api.notify_all(cv)
                yield api.unlock(m)

            p.thread(waiter)
            p.thread(waiter)
            p.thread(boss)

        r = execute(make(build), schedule=[0, 0, 0, 1, 1, 1, 2])
        assert r.ok


class TestAwait:
    def test_await_blocks_until_predicate(self):
        def build(p):
            flag = p.var("flag", 0)

            def consumer(api):
                yield api.await_value(flag, lambda v: v == 1)

            def producer(api):
                yield api.write(flag, 1)

            p.thread(consumer)
            p.thread(producer)

        ex = Executor(make(build))
        assert ex.enabled() == [1]
        ex.step(1)
        assert 0 in ex.enabled()

    def test_await_never_satisfied_is_deadlock(self):
        def build(p):
            flag = p.var("flag", 0)

            def consumer(api):
                yield api.await_value(flag, lambda v: v == 1)

            p.thread(consumer)

        r = execute(make(build))
        assert isinstance(r.error, DeadlockError)


class TestDynamicThreads:
    def test_spawn_returns_tid_and_join_waits(self):
        def build(p):
            x = p.var("x", 0)

            def child(api):
                yield api.write(x, 42)

            def main(api):
                tid = yield api.spawn(child)
                yield api.join(tid)
                v = yield api.read(x)
                api.guest_assert(v == 42)

            p.thread(main)

        r = execute(make(build))
        assert r.ok
        assert r.final_state["x"] == 42

    def test_join_blocks_until_child_exits(self):
        def build(p):
            def child(api):
                yield api.sched_yield()

            def main(api):
                tid = yield api.spawn(child)
                yield api.join(tid)

            p.thread(main)

        ex = Executor(make(build))
        ex.step(0)  # spawn
        assert ex.enabled() == [1]  # join not enabled until child exits
        ex.step(1)  # child yield
        ex.step(1)  # child exit
        assert 0 in ex.enabled()


class TestGuestAssertions:
    def test_failed_assertion_crashes_only_that_thread(self):
        def build(p):
            x = p.var("x", 0)

            def bad(api):
                yield api.read(x)
                api.guest_assert(False, "boom")

            def good(api):
                yield api.write(x, 1)

            p.thread(bad)
            p.thread(good)

        r = execute(make(build), schedule=[0, 0, 1, 1])
        assert r.error is not None
        assert "boom" in str(r.error)
        assert r.final_state["x"] == 1  # the good thread still ran

    def test_error_state_differs_from_clean_state(self):
        def build(p):
            x = p.var("x", 0)

            def maybe_bad(api):
                v = yield api.read(x)
                api.guest_assert(v == 0, "saw the write")

            def writer(api):
                yield api.write(x, 0)  # writes the same value!

            p.thread(maybe_bad)
            p.thread(writer)

        # both orders end with x == 0 and no failure -> same final data;
        # assertion never fires, states equal
        a = execute(make(build), schedule=[0, 0, 1, 1])
        b = execute(make(build), schedule=[1, 1, 0, 0])
        assert a.error is None and b.error is None


class TestTruncation:
    def test_max_events_truncates(self):
        def build(p):
            x = p.var("x", 0)

            def spinner(api):
                while True:
                    yield api.read(x)

            p.thread(spinner)

        r = execute(make(build), max_events=25)
        assert r.truncated
        assert len(r.events) == 25


class TestDeterminism:
    def test_same_schedule_same_everything(self, figure1_program):
        a = execute(figure1_program, schedule=[1, 0, 0, 0, 1])
        b = execute(figure1_program, schedule=[1, 0, 0, 0, 1])
        assert a.schedule == b.schedule
        assert a.hbr_fp == b.hbr_fp
        assert a.lazy_fp == b.lazy_fp
        assert a.state_hash == b.state_hash
        assert [e.label() for e in a.events] == [e.label() for e in b.events]
