"""Tests for the parallel campaign subsystem: work-list construction,
cell execution, serial/parallel determinism, checkpoint/resume, and the
``repro campaign`` CLI."""

import json

import pytest

from repro.__main__ import main
from repro.campaign import (
    CampaignCell,
    CampaignReport,
    ResultStore,
    build_cells,
    campaign_report,
    comparison_rows,
    execute_cell,
    run_campaign,
)
from repro.analysis.runner import (
    figure2_rows_from_cells,
    figure3_rows_from_cells,
    run_figure2,
    run_figure3,
)
from repro.explore import ExplorationLimits, make_explorer
from repro.explore.controller import matrix_report
from repro.suite import REGISTRY

LIMITS = ExplorationLimits(max_schedules=120)


def stats_dicts(results, drop=("elapsed",)):
    """Comparable per-cell stats with wall-clock fields removed."""
    out = []
    for r in results:
        d = r.to_dict()
        if d["stats"] is not None:
            d["stats"] = {k: v for k, v in d["stats"].items()
                          if k not in drop}
        out.append(d)
    return out


class TestBuildCells:
    def test_deterministic_explorers_do_not_fan_out(self):
        cells = build_cells([1], ["dpor", "random"], seeds=3)
        assert [c.key for c in cells] == [
            "1:dpor:0", "1:random:0", "1:random:1", "1:random:2",
        ]

    def test_duplicates_collapse(self):
        cells = build_cells([1, 1], ["dpor", "dpor"])
        assert cells == [CampaignCell(1, "dpor", 0)]

    def test_unknown_explorer_rejected_eagerly(self):
        with pytest.raises(KeyError):
            build_cells([1], ["nope"])

    def test_bad_seed_count_rejected(self):
        with pytest.raises(ValueError):
            build_cells([1], ["dpor"], seeds=0)

    def test_key_round_trip(self):
        cell = CampaignCell(42, "lazy-hbr-caching", 7)
        assert CampaignCell.from_key(cell.key) == cell


class TestSeedThreading:
    """STANDARD_EXPLORERS must thread seeds into the randomized
    strategies (previously hardcoded to 0)."""

    def test_randomized_explorers_receive_seed(self):
        for name in ("random", "pct"):
            ex = make_explorer(name, REGISTRY[1].program, LIMITS, seed=7)
            assert ex.seed == 7

    def test_default_seed_is_zero(self):
        ex = make_explorer("random", REGISTRY[1].program, LIMITS)
        assert ex.seed == 0

    def test_distinct_seeds_schedule_differently(self):
        # on a racy program, two random walks with different seeds pick
        # different schedules; the error-witness schedules differ
        lim = ExplorationLimits(max_schedules=5)
        runs = {
            seed: make_explorer(
                "random", REGISTRY[47].program, lim, seed=seed
            ).run()
            for seed in (0, 1)
        }
        sched0 = [e.schedule for e in runs[0].errors]
        sched1 = [e.schedule for e in runs[1].errors]
        assert sched0 != sched1


class TestExecuteCell:
    def test_ok_cell(self):
        res = execute_cell(CampaignCell(1, "dpor"), LIMITS)
        assert res.ok and res.error is None
        assert res.stats.num_hbrs == 2
        assert res.stats.num_lazy_hbrs == 1

    def test_unknown_benchmark_is_failure_not_exception(self):
        res = execute_cell(CampaignCell(999, "dpor"), LIMITS)
        assert not res.ok
        assert "999" in res.error
        assert res.stats is None

    def test_unknown_explorer_is_failure_not_exception(self):
        res = execute_cell(CampaignCell(1, "nope"), LIMITS)
        assert not res.ok
        assert "KeyError" in res.error

    def test_expected_findings_are_not_unexpected(self):
        deadlock = execute_cell(CampaignCell(36, "dpor"), LIMITS)
        assert deadlock.ok and deadlock.stats.errors
        assert not deadlock.unexpected_findings

    def test_result_round_trips_through_json(self):
        res = execute_cell(CampaignCell(36, "dpor"), LIMITS)
        clone = type(res).from_dict(json.loads(json.dumps(res.to_dict())))
        assert clone.cell == res.cell
        assert clone.stats.to_dict() == res.stats.to_dict()


class TestDeterminism:
    CELLS = build_cells([1, 3, 36, 47], ["dpor", "lazy-hbr-caching",
                                         "random"], seeds=2)

    def test_jobs1_vs_jobs4_identical_stats(self):
        serial = run_campaign(self.CELLS, LIMITS, jobs=1)
        parallel = run_campaign(self.CELLS, LIMITS, jobs=4)
        assert stats_dicts(serial.results) == stats_dicts(parallel.results)

    def test_jobs1_vs_jobs4_identical_reports(self):
        serial = run_campaign(self.CELLS, LIMITS, jobs=1)
        parallel = run_campaign(self.CELLS, LIMITS, jobs=4)
        assert (matrix_report(comparison_rows(serial.results))
                == matrix_report(comparison_rows(parallel.results)))

    def test_figure_rows_identical_serial_vs_parallel(self):
        subset = [REGISTRY[i] for i in (1, 3, 11, 36)]
        assert (run_figure2(subset, schedule_limit=120)
                == run_figure2(subset, schedule_limit=120, jobs=4))
        assert (run_figure3(subset, schedule_limit=120)
                == run_figure3(subset, schedule_limit=120, jobs=4))

    def test_duplicate_benchmarks_get_one_row_each(self):
        # the pre-campaign serial loop produced one row per entry;
        # duplicates must not collapse through the cell work-list
        rows = run_figure2([REGISTRY[1], REGISTRY[1]], schedule_limit=60,
                           jobs=2)
        assert len(rows) == 2
        assert rows[0] == rows[1]

    def test_figure_rows_from_cells_match_harness(self):
        subset = [REGISTRY[i] for i in (1, 3, 11)]
        cells = build_cells(
            [b.bench_id for b in subset],
            ["dpor", "hbr-caching", "lazy-hbr-caching"],
        )
        campaign = run_campaign(cells, LIMITS, jobs=2)
        assert (figure2_rows_from_cells(campaign.results)
                == run_figure2(subset, schedule_limit=120))
        assert (figure3_rows_from_cells(campaign.results)
                == run_figure3(subset, schedule_limit=120))


class TestCheckpointResume:
    CELLS = build_cells([1, 36], ["dpor", "random"], seeds=2)

    def test_round_trip(self, tmp_path):
        path = tmp_path / "ckpt.json"
        first = run_campaign(self.CELLS, LIMITS, jobs=1,
                             store=ResultStore(path))
        assert first.num_executed == len(self.CELLS)

        resumed = run_campaign(self.CELLS, LIMITS, jobs=1,
                               store=ResultStore(path))
        assert resumed.num_executed == 0
        assert resumed.num_cached == len(self.CELLS)
        assert all(r.cached for r in resumed.results)
        assert stats_dicts(first.results) == stats_dicts(resumed.results)

    def test_partial_checkpoint_runs_only_missing_cells(self, tmp_path):
        path = tmp_path / "ckpt.json"
        store = ResultStore(path)
        run_campaign(self.CELLS[:2], LIMITS, store=store)

        rest = run_campaign(self.CELLS, LIMITS, store=ResultStore(path))
        assert rest.num_cached == 2
        assert rest.num_executed == len(self.CELLS) - 2

    @pytest.mark.parametrize("content", [
        "[1, 2, 3]",                                   # wrong shape
        '{"version": 2, "cells": {"1:dpor:0": {}}}',   # malformed cell
        '{"version": 2, "cells": "nope"}',             # wrong cells type
    ])
    def test_foreign_json_checkpoint_treated_as_fresh(self, tmp_path,
                                                      content):
        path = tmp_path / "ckpt.json"
        path.write_text(content)
        store = ResultStore(path)
        assert store.load() == 0
        campaign = run_campaign(self.CELLS, LIMITS, store=store)
        assert campaign.num_executed == len(self.CELLS)

    def test_corrupt_checkpoint_treated_as_fresh(self, tmp_path):
        path = tmp_path / "ckpt.json"
        path.write_text("{ not json")
        store = ResultStore(path)
        assert store.load() == 0
        campaign = run_campaign(self.CELLS, LIMITS, store=store)
        assert campaign.num_executed == len(self.CELLS)
        # and the store has been rewritten as a valid checkpoint
        from repro.campaign.store import STORE_VERSION
        assert json.loads(path.read_text())["version"] == STORE_VERSION

    def test_failed_cells_not_checkpointed(self, tmp_path):
        path = tmp_path / "ckpt.json"
        bad = [CampaignCell(999, "dpor")]
        run_campaign(bad, LIMITS, store=ResultStore(path))
        store = ResultStore(path)
        assert store.load() == 0  # failure retried on resume

    def test_checkpoint_under_different_limits_discarded(self, tmp_path):
        path = tmp_path / "ckpt.json"
        run_campaign(self.CELLS, LIMITS, store=ResultStore(path))

        other = ExplorationLimits(max_schedules=500)
        store = ResultStore(path, other)
        resumed = run_campaign(self.CELLS, other, store=store)
        assert store.discarded_mismatch
        assert resumed.num_cached == 0
        assert resumed.num_executed == len(self.CELLS)
        # the checkpoint is rewritten under the new limits and resumable
        again = run_campaign(self.CELLS, other,
                             store=ResultStore(path, other))
        assert again.num_cached == len(self.CELLS)


class TestIntraCellResume:
    """A half-explored cell resumes from its partial frontier
    checkpoint instead of schedule zero."""

    CELL = CampaignCell(3, "dfs")  # racy_counter(2,2): 252 schedules

    def test_partial_written_on_budget_limit(self, tmp_path):
        path = tmp_path / "ckpt.json"
        tight = ExplorationLimits(max_schedules=30)
        store = ResultStore(path, tight)
        campaign = run_campaign([self.CELL], tight, store=store)
        assert campaign.results[0].stats.limit_hit
        assert store.partial_path(self.CELL.key).exists()

    def test_laxer_budget_resumes_from_frontier(self, tmp_path):
        path = tmp_path / "ckpt.json"
        tight = ExplorationLimits(max_schedules=30)
        run_campaign([self.CELL], tight, store=ResultStore(path, tight))

        lax = ExplorationLimits(max_schedules=100_000)
        store = ResultStore(path, lax)
        resumed = run_campaign([self.CELL], lax, store=store)
        assert resumed.num_resumed == 1
        stats = resumed.results[0].stats
        # continued, not restarted: totals equal the uninterrupted run
        reference = execute_cell(self.CELL, lax).stats
        assert stats.num_schedules == reference.num_schedules == 252
        assert stats.hbr_fps == reference.hbr_fps
        assert stats.exhausted
        # the exhausted cell cleared its partial
        assert not store.partial_path(self.CELL.key).exists()

    def test_tighter_budget_discards_partial(self, tmp_path):
        path = tmp_path / "ckpt.json"
        mid = ExplorationLimits(max_schedules=30)
        run_campaign([self.CELL], mid, store=ResultStore(path, mid))

        tighter = ExplorationLimits(max_schedules=10)
        resumed = run_campaign([self.CELL], tighter,
                               store=ResultStore(path, tighter))
        assert resumed.num_resumed == 0
        assert resumed.results[0].stats.num_schedules == 10

    def test_corrupt_partial_ignored(self, tmp_path):
        path = tmp_path / "ckpt.json"
        limits = ExplorationLimits(max_schedules=120)
        store = ResultStore(path, limits)
        partial = store.partial_path(self.CELL.key)
        partial.parent.mkdir(parents=True)
        partial.write_text("{ not json")
        campaign = run_campaign([self.CELL], limits, store=store)
        assert campaign.num_resumed == 0
        assert campaign.results[0].ok

    def test_dpor_cells_resume_too(self, tmp_path):
        path = tmp_path / "ckpt.json"
        cell = CampaignCell(3, "dpor")
        tight = ExplorationLimits(max_schedules=5)
        first = run_campaign([cell], tight,
                             store=ResultStore(path, tight))
        if not first.results[0].stats.limit_hit:
            pytest.skip("dpor exhausted under the interrupt budget")
        lax = ExplorationLimits(max_schedules=100_000)
        resumed = run_campaign([cell], lax,
                               store=ResultStore(path, lax))
        assert resumed.num_resumed == 1
        reference = execute_cell(cell, lax).stats
        assert (resumed.results[0].stats.num_schedules
                == reference.num_schedules)
        assert resumed.results[0].stats.state_hashes \
            == reference.state_hashes


class TestSplitCampaign:
    """--split-large: one cell sharded into k disjoint sub-frontiers
    whose union-merged sets equal the unsplit cell's exactly."""

    LIMITS = ExplorationLimits(max_schedules=100_000)

    @pytest.mark.parametrize("explorer", ["dfs", "lazy-hbr-caching",
                                          "iterative-cb"])
    def test_split4_aggregates_to_unsplit_sets(self, explorer):
        cells = [CampaignCell(3, explorer)]
        unsplit = run_campaign(cells, self.LIMITS)
        # a small seed budget forces real sharding even on this
        # test-sized cell (the default would exhaust it while seeding)
        split = run_campaign(cells, self.LIMITS, jobs=2, split_large=4,
                             split_seed_schedules=8)
        assert split.num_split == 1
        u, s = unsplit.results[0].stats, split.results[0].stats
        assert s.hbr_fps == u.hbr_fps
        assert s.lazy_fps == u.lazy_fps
        assert s.state_hashes == u.state_hashes
        assert ({(e.kind, e.message) for e in s.errors}
                == {(e.kind, e.message) for e in u.errors})
        assert s.extra["split_shards"] == 4
        if explorer == "dfs":
            # no pruning: the shards partition the schedule set exactly
            assert s.num_schedules == u.num_schedules

    def test_split_dfs_schedule_count_exact_serial_vs_pool(self):
        cells = [CampaignCell(3, "dfs")]
        serial = run_campaign(cells, self.LIMITS, jobs=1, split_large=4)
        pooled = run_campaign(cells, self.LIMITS, jobs=4, split_large=4)
        assert stats_dicts(serial.results) == stats_dicts(pooled.results)

    def test_unsplittable_cells_run_whole(self):
        cells = [CampaignCell(3, "dpor"), CampaignCell(3, "random")]
        campaign = run_campaign(cells, self.LIMITS, split_large=4)
        assert campaign.num_split == 0
        assert all(r.ok for r in campaign.results)
        assert all("split_shards" not in r.stats.extra
                   for r in campaign.results)

    def test_tiny_cells_complete_during_seeding(self):
        campaign = run_campaign([CampaignCell(1, "dfs")], self.LIMITS,
                                split_large=4)
        # figure1 exhausts inside the seed budget: no shards needed
        assert campaign.num_split == 0
        reference = execute_cell(CampaignCell(1, "dfs"), self.LIMITS)
        assert (campaign.results[0].stats.num_schedules
                == reference.stats.num_schedules)

    def test_split_resume_serves_completed_shards(self, tmp_path):
        path = tmp_path / "ckpt.json"
        cells = [CampaignCell(3, "dfs")]
        store = ResultStore(path, self.LIMITS)
        first = run_campaign(cells, self.LIMITS, split_large=4,
                             store=store)
        assert first.num_split == 1

        again = run_campaign(cells, self.LIMITS, split_large=4,
                             store=ResultStore(path, self.LIMITS))
        # the deterministic seed re-runs, but every shard is cached
        assert again.num_cached == 4
        assert again.num_executed == 0
        assert stats_dicts(first.results) == stats_dicts(again.results)

    def test_budget_limited_shards_keep_partials_and_resume(
            self, tmp_path):
        # regression: record() used to delete a limit-hit shard's
        # final frontier snapshot, so laxer-budget resume restarted
        # the shard from its seed state
        path = tmp_path / "ckpt.json"
        cells = [CampaignCell(3, "dfs")]
        tight = ExplorationLimits(max_schedules=20)
        store = ResultStore(path, tight)
        first = run_campaign(cells, tight, split_large=2,
                             split_seed_schedules=4, store=store)
        assert first.num_split == 1
        assert first.results[0].stats.limit_hit
        from repro.campaign.split import shard_key
        kept = [i for i in range(2)
                if store.partial_path(
                    shard_key(cells[0], i, 2)).exists()]
        assert kept, "limit-hit shards must keep their partials"

        lax = ExplorationLimits(max_schedules=100_000)
        resumed = run_campaign(cells, lax, split_large=2,
                               split_seed_schedules=4,
                               store=ResultStore(path, lax))
        stats = resumed.results[0].stats
        reference = execute_cell(cells[0], lax).stats
        assert stats.hbr_fps == reference.hbr_fps
        assert stats.state_hashes == reference.state_hashes
        # shards continued from their frontiers: the total schedule
        # count stays the exact DFS partition count
        assert stats.num_schedules == reference.num_schedules

    def test_invalid_split_rejected(self):
        with pytest.raises(ValueError):
            run_campaign([CampaignCell(1, "dfs")], self.LIMITS,
                         split_large=1)

    def test_mixed_matrix_split_and_whole(self):
        cells = build_cells([1, 3], ["dfs", "dpor"])
        unsplit = run_campaign(cells, self.LIMITS)
        split = run_campaign(cells, self.LIMITS, jobs=2, split_large=2)
        for u, s in zip(unsplit.results, split.results):
            assert u.stats.state_hashes == s.stats.state_hashes
        report = campaign_report(split, self.LIMITS)
        assert report.summary.num_failed == 0


class TestCampaignReport:
    def test_report_shape(self):
        cells = build_cells([1, 36], ["dpor"])
        campaign = run_campaign(cells, LIMITS)
        report = campaign_report(campaign, LIMITS, meta={"jobs": 1})
        assert report.summary.num_cells == 2
        assert report.summary.num_failed == 0
        payload = json.loads(json.dumps(report.to_dict()))
        assert payload["kind"] == "repro-campaign-report"
        assert payload["summary"]["num_cells"] == 2
        assert payload["summary"]["num_failed"] == 0
        assert payload["limits"]["max_schedules"] == 120
        assert payload["campaign"]["jobs"] == 1
        assert len(payload["cells"]) == 2

    def test_failures_counted(self):
        campaign = run_campaign([CampaignCell(999, "dpor")], LIMITS)
        report = campaign_report(campaign)
        assert report.summary.num_failed == 1
        assert campaign.unexpected

    def test_round_trip(self):
        cells = build_cells([1, 36], ["dpor", "hbr-caching"])
        campaign = run_campaign(cells, LIMITS)
        report = campaign_report(
            campaign, LIMITS, meta={"jobs": 1, "smoke": False},
            figure2=figure2_rows_from_cells(campaign.results),
        )
        payload = report.to_dict()
        back = CampaignReport.from_dict(json.loads(json.dumps(payload)))
        assert back.to_dict() == payload
        assert back.summary == report.summary
        assert [r.cell for r in back.cells] == [r.cell for r in report.cells]
        assert back.figure2 == report.figure2

    def test_round_trip_minimal(self):
        campaign = run_campaign([CampaignCell(1, "dpor")], LIMITS)
        report = campaign_report(campaign)
        back = CampaignReport.from_dict(report.to_dict())
        assert back.to_dict() == report.to_dict()
        assert back.limits is None and back.campaign is None
        assert back.figure2 is None and back.figure3 is None

    def test_from_dict_rejects_foreign_documents(self):
        with pytest.raises(ValueError, match="kind"):
            CampaignReport.from_dict({"kind": "something-else"})
        with pytest.raises(ValueError, match="version"):
            CampaignReport.from_dict(
                {"kind": "repro-campaign-report", "version": 99}
            )


class TestCampaignCLI:
    def test_smoke_exits_zero(self, capsys):
        assert main(["campaign", "--smoke", "--jobs", "2"]) == 0
        out = capsys.readouterr().out
        assert "| figure1 | dpor |" in out
        assert "failed=0" in out

    def test_out_report_written(self, tmp_path, capsys):
        path = tmp_path / "report.json"
        assert main(["campaign", "--ids", "1,36", "--explorers",
                     "dpor,hbr-caching,lazy-hbr-caching", "--limit",
                     "120", "--out", str(path)]) == 0
        payload = json.loads(path.read_text())
        assert payload["summary"]["num_cells"] == 6
        assert [r["bench_id"] for r in payload["figure2"]] == [1, 36]
        assert [r["bench_id"] for r in payload["figure3"]] == [1, 36]

    def test_resume_skips_completed_cells(self, tmp_path, capsys):
        ckpt = tmp_path / "ckpt.json"
        args = ["campaign", "--ids", "1", "--explorers", "dpor",
                "--limit", "120", "--resume", str(ckpt)]
        assert main(args) == 0
        capsys.readouterr()
        assert main(args) == 0
        out = capsys.readouterr().out
        assert "resuming: 1 cell(s)" in out
        assert "executed=0 cached=1" in out

    def test_seeds_fan_out_randomized_only(self, capsys):
        assert main(["campaign", "--ids", "1", "--explorers",
                     "dpor,random", "--seeds", "2", "--limit",
                     "60"]) == 0
        out = capsys.readouterr().out
        assert "cells=3" in out  # dpor + random#0 + random#1
        assert "random#1" in out

    def test_unknown_bench_id_exits_2(self):
        with pytest.raises(SystemExit) as exc:
            main(["campaign", "--ids", "999"])
        assert exc.value.code == 2

    def test_bad_ids_token_exits_2(self, capsys):
        assert main(["campaign", "--ids", "1,2x"]) == 2
        assert "--ids" in capsys.readouterr().err

    def test_unknown_explorer_exits_2(self, capsys):
        assert main(["campaign", "--ids", "1", "--explorers",
                     "dpr"]) == 2
        assert "unknown explorer" in capsys.readouterr().err

    def test_bad_jobs_exits_2(self, capsys):
        assert main(["campaign", "--ids", "1", "--jobs", "0"]) == 2
        assert "--jobs" in capsys.readouterr().err

    def test_resume_with_different_limits_ignores_checkpoint(
            self, tmp_path, capsys):
        ckpt = tmp_path / "ckpt.json"
        base = ["campaign", "--ids", "1", "--explorers", "dpor",
                "--resume", str(ckpt)]
        assert main(base + ["--limit", "120"]) == 0
        capsys.readouterr()
        assert main(base + ["--limit", "200"]) == 0
        out = capsys.readouterr().out
        assert "ignoring checkpoint" in out
        assert "executed=1 cached=0" in out
