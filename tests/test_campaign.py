"""Tests for the parallel campaign subsystem: work-list construction,
cell execution, serial/parallel determinism, checkpoint/resume, and the
``repro campaign`` CLI."""

import json

import pytest

from repro.__main__ import main
from repro.campaign import (
    CampaignCell,
    ResultStore,
    build_cells,
    campaign_report,
    comparison_rows,
    execute_cell,
    run_campaign,
)
from repro.analysis.runner import (
    figure2_rows_from_cells,
    figure3_rows_from_cells,
    run_figure2,
    run_figure3,
)
from repro.explore import ExplorationLimits, make_explorer
from repro.explore.controller import matrix_report
from repro.suite import REGISTRY

LIMITS = ExplorationLimits(max_schedules=120)


def stats_dicts(results, drop=("elapsed",)):
    """Comparable per-cell stats with wall-clock fields removed."""
    out = []
    for r in results:
        d = r.to_dict()
        if d["stats"] is not None:
            d["stats"] = {k: v for k, v in d["stats"].items()
                          if k not in drop}
        out.append(d)
    return out


class TestBuildCells:
    def test_deterministic_explorers_do_not_fan_out(self):
        cells = build_cells([1], ["dpor", "random"], seeds=3)
        assert [c.key for c in cells] == [
            "1:dpor:0", "1:random:0", "1:random:1", "1:random:2",
        ]

    def test_duplicates_collapse(self):
        cells = build_cells([1, 1], ["dpor", "dpor"])
        assert cells == [CampaignCell(1, "dpor", 0)]

    def test_unknown_explorer_rejected_eagerly(self):
        with pytest.raises(KeyError):
            build_cells([1], ["nope"])

    def test_bad_seed_count_rejected(self):
        with pytest.raises(ValueError):
            build_cells([1], ["dpor"], seeds=0)

    def test_key_round_trip(self):
        cell = CampaignCell(42, "lazy-hbr-caching", 7)
        assert CampaignCell.from_key(cell.key) == cell


class TestSeedThreading:
    """STANDARD_EXPLORERS must thread seeds into the randomized
    strategies (previously hardcoded to 0)."""

    def test_randomized_explorers_receive_seed(self):
        for name in ("random", "pct"):
            ex = make_explorer(name, REGISTRY[1].program, LIMITS, seed=7)
            assert ex.seed == 7

    def test_default_seed_is_zero(self):
        ex = make_explorer("random", REGISTRY[1].program, LIMITS)
        assert ex.seed == 0

    def test_distinct_seeds_schedule_differently(self):
        # on a racy program, two random walks with different seeds pick
        # different schedules; the error-witness schedules differ
        lim = ExplorationLimits(max_schedules=5)
        runs = {
            seed: make_explorer(
                "random", REGISTRY[47].program, lim, seed=seed
            ).run()
            for seed in (0, 1)
        }
        sched0 = [e.schedule for e in runs[0].errors]
        sched1 = [e.schedule for e in runs[1].errors]
        assert sched0 != sched1


class TestExecuteCell:
    def test_ok_cell(self):
        res = execute_cell(CampaignCell(1, "dpor"), LIMITS)
        assert res.ok and res.error is None
        assert res.stats.num_hbrs == 2
        assert res.stats.num_lazy_hbrs == 1

    def test_unknown_benchmark_is_failure_not_exception(self):
        res = execute_cell(CampaignCell(999, "dpor"), LIMITS)
        assert not res.ok
        assert "999" in res.error
        assert res.stats is None

    def test_unknown_explorer_is_failure_not_exception(self):
        res = execute_cell(CampaignCell(1, "nope"), LIMITS)
        assert not res.ok
        assert "KeyError" in res.error

    def test_expected_findings_are_not_unexpected(self):
        deadlock = execute_cell(CampaignCell(36, "dpor"), LIMITS)
        assert deadlock.ok and deadlock.stats.errors
        assert not deadlock.unexpected_findings

    def test_result_round_trips_through_json(self):
        res = execute_cell(CampaignCell(36, "dpor"), LIMITS)
        clone = type(res).from_dict(json.loads(json.dumps(res.to_dict())))
        assert clone.cell == res.cell
        assert clone.stats.to_dict() == res.stats.to_dict()


class TestDeterminism:
    CELLS = build_cells([1, 3, 36, 47], ["dpor", "lazy-hbr-caching",
                                         "random"], seeds=2)

    def test_jobs1_vs_jobs4_identical_stats(self):
        serial = run_campaign(self.CELLS, LIMITS, jobs=1)
        parallel = run_campaign(self.CELLS, LIMITS, jobs=4)
        assert stats_dicts(serial.results) == stats_dicts(parallel.results)

    def test_jobs1_vs_jobs4_identical_reports(self):
        serial = run_campaign(self.CELLS, LIMITS, jobs=1)
        parallel = run_campaign(self.CELLS, LIMITS, jobs=4)
        assert (matrix_report(comparison_rows(serial.results))
                == matrix_report(comparison_rows(parallel.results)))

    def test_figure_rows_identical_serial_vs_parallel(self):
        subset = [REGISTRY[i] for i in (1, 3, 11, 36)]
        assert (run_figure2(subset, schedule_limit=120)
                == run_figure2(subset, schedule_limit=120, jobs=4))
        assert (run_figure3(subset, schedule_limit=120)
                == run_figure3(subset, schedule_limit=120, jobs=4))

    def test_duplicate_benchmarks_get_one_row_each(self):
        # the pre-campaign serial loop produced one row per entry;
        # duplicates must not collapse through the cell work-list
        rows = run_figure2([REGISTRY[1], REGISTRY[1]], schedule_limit=60,
                           jobs=2)
        assert len(rows) == 2
        assert rows[0] == rows[1]

    def test_figure_rows_from_cells_match_harness(self):
        subset = [REGISTRY[i] for i in (1, 3, 11)]
        cells = build_cells(
            [b.bench_id for b in subset],
            ["dpor", "hbr-caching", "lazy-hbr-caching"],
        )
        campaign = run_campaign(cells, LIMITS, jobs=2)
        assert (figure2_rows_from_cells(campaign.results)
                == run_figure2(subset, schedule_limit=120))
        assert (figure3_rows_from_cells(campaign.results)
                == run_figure3(subset, schedule_limit=120))


class TestCheckpointResume:
    CELLS = build_cells([1, 36], ["dpor", "random"], seeds=2)

    def test_round_trip(self, tmp_path):
        path = tmp_path / "ckpt.json"
        first = run_campaign(self.CELLS, LIMITS, jobs=1,
                             store=ResultStore(path))
        assert first.num_executed == len(self.CELLS)

        resumed = run_campaign(self.CELLS, LIMITS, jobs=1,
                               store=ResultStore(path))
        assert resumed.num_executed == 0
        assert resumed.num_cached == len(self.CELLS)
        assert all(r.cached for r in resumed.results)
        assert stats_dicts(first.results) == stats_dicts(resumed.results)

    def test_partial_checkpoint_runs_only_missing_cells(self, tmp_path):
        path = tmp_path / "ckpt.json"
        store = ResultStore(path)
        run_campaign(self.CELLS[:2], LIMITS, store=store)

        rest = run_campaign(self.CELLS, LIMITS, store=ResultStore(path))
        assert rest.num_cached == 2
        assert rest.num_executed == len(self.CELLS) - 2

    @pytest.mark.parametrize("content", [
        "[1, 2, 3]",                                   # wrong shape
        '{"version": 2, "cells": {"1:dpor:0": {}}}',   # malformed cell
        '{"version": 2, "cells": "nope"}',             # wrong cells type
    ])
    def test_foreign_json_checkpoint_treated_as_fresh(self, tmp_path,
                                                      content):
        path = tmp_path / "ckpt.json"
        path.write_text(content)
        store = ResultStore(path)
        assert store.load() == 0
        campaign = run_campaign(self.CELLS, LIMITS, store=store)
        assert campaign.num_executed == len(self.CELLS)

    def test_corrupt_checkpoint_treated_as_fresh(self, tmp_path):
        path = tmp_path / "ckpt.json"
        path.write_text("{ not json")
        store = ResultStore(path)
        assert store.load() == 0
        campaign = run_campaign(self.CELLS, LIMITS, store=store)
        assert campaign.num_executed == len(self.CELLS)
        # and the store has been rewritten as a valid checkpoint
        from repro.campaign.store import STORE_VERSION
        assert json.loads(path.read_text())["version"] == STORE_VERSION

    def test_failed_cells_not_checkpointed(self, tmp_path):
        path = tmp_path / "ckpt.json"
        bad = [CampaignCell(999, "dpor")]
        run_campaign(bad, LIMITS, store=ResultStore(path))
        store = ResultStore(path)
        assert store.load() == 0  # failure retried on resume

    def test_checkpoint_under_different_limits_discarded(self, tmp_path):
        path = tmp_path / "ckpt.json"
        run_campaign(self.CELLS, LIMITS, store=ResultStore(path))

        other = ExplorationLimits(max_schedules=500)
        store = ResultStore(path, other)
        resumed = run_campaign(self.CELLS, other, store=store)
        assert store.discarded_mismatch
        assert resumed.num_cached == 0
        assert resumed.num_executed == len(self.CELLS)
        # the checkpoint is rewritten under the new limits and resumable
        again = run_campaign(self.CELLS, other,
                             store=ResultStore(path, other))
        assert again.num_cached == len(self.CELLS)


class TestCampaignReport:
    def test_report_shape(self):
        cells = build_cells([1, 36], ["dpor"])
        campaign = run_campaign(cells, LIMITS)
        report = campaign_report(campaign, LIMITS, meta={"jobs": 1})
        payload = json.loads(json.dumps(report))
        assert payload["kind"] == "repro-campaign-report"
        assert payload["summary"]["num_cells"] == 2
        assert payload["summary"]["num_failed"] == 0
        assert payload["limits"]["max_schedules"] == 120
        assert payload["campaign"]["jobs"] == 1
        assert len(payload["cells"]) == 2

    def test_failures_counted(self):
        campaign = run_campaign([CampaignCell(999, "dpor")], LIMITS)
        report = campaign_report(campaign)
        assert report["summary"]["num_failed"] == 1
        assert campaign.unexpected


class TestCampaignCLI:
    def test_smoke_exits_zero(self, capsys):
        assert main(["campaign", "--smoke", "--jobs", "2"]) == 0
        out = capsys.readouterr().out
        assert "| figure1 | dpor |" in out
        assert "failed=0" in out

    def test_out_report_written(self, tmp_path, capsys):
        path = tmp_path / "report.json"
        assert main(["campaign", "--ids", "1,36", "--explorers",
                     "dpor,hbr-caching,lazy-hbr-caching", "--limit",
                     "120", "--out", str(path)]) == 0
        payload = json.loads(path.read_text())
        assert payload["summary"]["num_cells"] == 6
        assert [r["bench_id"] for r in payload["figure2"]] == [1, 36]
        assert [r["bench_id"] for r in payload["figure3"]] == [1, 36]

    def test_resume_skips_completed_cells(self, tmp_path, capsys):
        ckpt = tmp_path / "ckpt.json"
        args = ["campaign", "--ids", "1", "--explorers", "dpor",
                "--limit", "120", "--resume", str(ckpt)]
        assert main(args) == 0
        capsys.readouterr()
        assert main(args) == 0
        out = capsys.readouterr().out
        assert "resuming: 1 cell(s)" in out
        assert "executed=0 cached=1" in out

    def test_seeds_fan_out_randomized_only(self, capsys):
        assert main(["campaign", "--ids", "1", "--explorers",
                     "dpor,random", "--seeds", "2", "--limit",
                     "60"]) == 0
        out = capsys.readouterr().out
        assert "cells=3" in out  # dpor + random#0 + random#1
        assert "random#1" in out

    def test_unknown_bench_id_exits_2(self):
        with pytest.raises(SystemExit) as exc:
            main(["campaign", "--ids", "999"])
        assert exc.value.code == 2

    def test_bad_ids_token_exits_2(self, capsys):
        assert main(["campaign", "--ids", "1,2x"]) == 2
        assert "--ids" in capsys.readouterr().err

    def test_unknown_explorer_exits_2(self, capsys):
        assert main(["campaign", "--ids", "1", "--explorers",
                     "dpr"]) == 2
        assert "unknown explorer" in capsys.readouterr().err

    def test_bad_jobs_exits_2(self, capsys):
        assert main(["campaign", "--ids", "1", "--jobs", "0"]) == 2
        assert "--jobs" in capsys.readouterr().err

    def test_resume_with_different_limits_ignores_checkpoint(
            self, tmp_path, capsys):
        ckpt = tmp_path / "ckpt.json"
        base = ["campaign", "--ids", "1", "--explorers", "dpor",
                "--resume", str(ckpt)]
        assert main(base + ["--limit", "120"]) == 0
        capsys.readouterr()
        assert main(base + ["--limit", "200"]) == 0
        out = capsys.readouterr().out
        assert "ignoring checkpoint" in out
        assert "executed=1 cached=0" in out
