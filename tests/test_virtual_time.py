"""Virtual time (DESIGN.md §12): determinism, timed-operation
semantics, and the unsupported-timeout contract.

The headline property is replay determinism: for any timed benchmark
and any recorded schedule, re-executing that schedule must produce an
identical time-event sequence (fire order *and* the virtual-clock
value at each fire), identical fingerprints and an identical state
hash — on the reference engine, on the accelerated engine, and across
a COW-snapshot round-trip.  Virtual time is part of the explored
state, so any wall-clock leak here would silently break replay and
partial-order reduction.
"""

import pickle

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.events import TICKS_PER_SECOND, TIMED_OUT, OpKind, to_ticks
from repro.errors import UnsupportedTimeoutError
from repro.runtime.executor import Executor
from repro.runtime.program import Program
from repro.runtime.schedule import RandomScheduler, execute
from repro.shim import program_from_function
from repro.shim import queue as shim_queue
from repro.shim import threading as shim_threading
from repro.suite import REGISTRY

#: the timed suite family (suite/timed.py)
TIMED_IDS = tuple(range(89, 97))
TIME_KINDS = (OpKind.SLEEP, OpKind.TIME_FIRE, OpKind.TIMER_TICK)


def fire_order(result):
    """The time-event subsequence of a trace: (tid, kind, clock-after)."""
    return [(e.tid, e.kind, e.value) for e in result.events
            if e.kind in TIME_KINDS]


class TestScheduleDeterminism:
    @settings(max_examples=50, deadline=None)
    @given(bid=st.sampled_from(TIMED_IDS), seed=st.integers(0, 2**31 - 1))
    def test_same_schedule_same_time_everywhere(self, bid, seed):
        prog = REGISTRY[bid].program
        base = execute(prog, scheduler=RandomScheduler(seed))
        fires = fire_order(base)
        signature = (base.hbr_fp, base.lazy_fp, base.state_hash)

        # both clock-engine backends replay the schedule byte-identically
        for engine in ("ref", "accel"):
            ex = Executor(prog, engine=engine)
            for tid in base.schedule:
                ex.step(tid)
            r = ex.finish()
            assert (r.hbr_fp, r.lazy_fp, r.state_hash) == signature, engine
            assert fire_order(r) == fires, engine

        # a snapshot cut mid-schedule restores the virtual clock exactly
        cut = len(base.schedule) // 2
        ex = Executor(prog, snapshots=True)
        for tid in base.schedule[:cut]:
            ex.step(tid)
        resumed = Executor.from_snapshot(ex.snapshot())
        for tid in base.schedule[cut:]:
            resumed.step(tid)
        r = resumed.finish()
        assert (r.hbr_fp, r.lazy_fp, r.state_hash) == signature, "snapshot"

    @settings(max_examples=25, deadline=None)
    @given(bid=st.sampled_from(TIMED_IDS), seed=st.integers(0, 2**31 - 1))
    def test_clock_is_schedule_determined_not_wall_time(self, bid, seed):
        """Two executions of the same schedule see identical clocks even
        though arbitrary wall time passes between them."""
        prog = REGISTRY[bid].program
        first = execute(prog, scheduler=RandomScheduler(seed))
        second = execute(prog, schedule=first.schedule)
        assert fire_order(second) == fire_order(first)
        assert second.state_hash == first.state_hash


# ---------------------------------------------------------------------------
# timed-operation semantics on hand-built schedules
# ---------------------------------------------------------------------------

def _timed_lock_program():
    def build(p):
        m = p.mutex("m")
        won = p.var("won", -1)

        def holder(api):
            yield api.lock(m)
            yield api.write(won, 99)   # a step to schedule around
            yield api.unlock(m)

        def contender(api):
            got = yield api.lock(m, timeout=0.25)
            yield api.write(won, got is not False)
            if got is not False:
                yield api.unlock(m)

        p.thread(holder)
        p.thread(contender)

    return Program("vt_timed_lock", build)


def _terminal_results(program, cap=500):
    """Exhaustively enumerate terminal schedules (tiny programs only)."""
    out = []

    def rec(sched):
        if len(out) >= cap:
            return
        ex = Executor(program)
        for tid in sched:
            ex.step(tid)
        if ex.is_done():
            out.append(ex.finish())
            return
        for tid in list(ex.enabled()):
            rec(sched + [tid])

    rec([])
    return out


class TestTimedSemantics:
    def test_both_branches_are_explorable(self):
        """Timeout-fires and base-op-wins are both reachable terminal
        states of the same program — a scheduling branch, not a race."""
        results = _terminal_results(_timed_lock_program())
        won = {r.final_state["won"] is not False for r in results
               if r.final_state["won"] != 99}
        assert won == {True, False}

    def test_timeout_branch_emits_exactly_one_time_fire(self):
        """A timed-out acquire shows up in the trace as one TIME_FIRE
        delivering the primitive's timeout result (False for a mutex);
        schedules where the acquire won carry no TIME_FIRE at all."""
        saw_fire = saw_win = False
        for r in _terminal_results(_timed_lock_program()):
            fires = [e for e in r.events if e.kind == OpKind.TIME_FIRE]
            if fires:
                saw_fire = True
                assert len(fires) == 1
                assert fires[0].value is False
            else:
                saw_win = True
        assert saw_fire and saw_win

    def test_sleep_advances_clock_relatively(self):
        def build(p):
            def sleeper(api):
                yield api.sleep(0.5)
                yield api.sleep(0.25)

            p.thread(sleeper)

        r = execute(Program("vt_two_sleeps", build))
        assert [v for (_, _, v) in fire_order(r)] == [
            to_ticks(0.5), to_ticks(0.5) + to_ticks(0.25)]

    def test_timed_out_is_a_pickle_stable_singleton(self):
        assert pickle.loads(pickle.dumps(TIMED_OUT)) is TIMED_OUT

    def test_to_ticks(self):
        assert to_ticks(1.0) == TICKS_PER_SECOND
        assert to_ticks(0.000001) == 1
        assert to_ticks(0.0) == 0


# ---------------------------------------------------------------------------
# the unsupported-timeout contract (every shim path either routes onto
# the virtual clock or names the stdlib site and a supported alternative)
# ---------------------------------------------------------------------------

class TestUnsupportedTimeoutContract:
    def _expect(self, fn, pattern):
        with pytest.raises(UnsupportedTimeoutError, match=pattern):
            execute(program_from_function(fn))

    def test_barrier_constructor_names_alternative(self):
        def main():
            shim_threading.Barrier(2, timeout=1.0)

        self._expect(
            main,
            r"threading\.Barrier.*nearest supported alternative.*"
            r"Event\.wait\(timeout=\)",
        )

    def test_barrier_wait_names_alternative(self):
        def main():
            b = shim_threading.Barrier(1)
            b.wait(timeout=1.0)

        self._expect(
            main,
            r"threading\.Barrier\.wait.*nearest supported alternative",
        )

    def test_condition_wait_for_names_loop_alternative(self):
        def main():
            cond = shim_threading.Condition()
            with cond:
                cond.wait_for(lambda: True, timeout=1.0)

        self._expect(
            main,
            r"threading\.Condition\.wait_for.*"
            r"Condition\.wait\(timeout=\)",
        )

    def test_negative_timeout_rejected_threading_style(self):
        def main():
            shim_threading.Lock().acquire(timeout=-0.5)

        err = execute(program_from_function(main)).error
        assert "timeout value must be non-negative" in str(err)

    def test_negative_timeout_rejected_queue_style(self):
        def main():
            shim_queue.Queue().get(timeout=-1)

        err = execute(program_from_function(main)).error
        assert "'timeout' must be a non-negative number" in str(err)
