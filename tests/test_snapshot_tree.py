"""Unit tests of the prefix-keyed snapshot tree: LRU eviction under a
byte budget, deepest-ancestor lookup, and the stat counters the perf
harness reports."""

from __future__ import annotations

import pytest

from repro.explore.snapshots import SnapshotTree


class _FakeSnap:
    """Stands in for ExecutorSnapshot: the tree only reads approx_bytes."""

    def __init__(self, size: int, tag: str = "") -> None:
        self.approx_bytes = size
        self.tag = tag


def test_lookup_finds_deepest_ancestor():
    tree = SnapshotTree(10_000)
    tree.insert((1,), _FakeSnap(100, "d1"))
    tree.insert((1, 2, 3), _FakeSnap(100, "d3"))
    depth, snap = tree.lookup((1, 2, 3, 4, 5))
    assert depth == 3 and snap.tag == "d3"
    depth, snap = tree.lookup((1, 2))
    assert depth == 1 and snap.tag == "d1"
    # exact-depth hits count too
    depth, snap = tree.lookup((1, 2, 3))
    assert depth == 3 and snap.tag == "d3"
    assert tree.lookup((2, 9)) is None
    stats = tree.stats()
    assert stats["hits"] == 3 and stats["misses"] == 1
    assert stats["hit_rate"] == pytest.approx(0.75)


def test_wants_rejects_duplicates_and_roots():
    tree = SnapshotTree(10_000)
    assert not tree.wants(())            # depth-0 never cached
    assert tree.wants((1,))
    tree.insert((1,), _FakeSnap(10))
    assert not tree.wants((1,))
    assert tree.wants((1, 2))


def test_budget_evicts_lru_first():
    tree = SnapshotTree(300)
    tree.insert((1,), _FakeSnap(100, "a"))
    tree.insert((2,), _FakeSnap(100, "b"))
    tree.insert((3,), _FakeSnap(100, "c"))
    assert tree.bytes_used == 300
    tree.lookup((1,))                    # refresh "a": now LRU is "b"
    tree.insert((4,), _FakeSnap(100, "d"))
    assert tree.lookup((2,)) is None     # "b" evicted
    assert tree.lookup((1,))[1].tag == "a"
    stats = tree.stats()
    assert stats["evictions"] == 1
    assert stats["bytes_used"] == 300
    assert stats["bytes_high_water"] == 300


def test_oversized_snapshot_rejected():
    tree = SnapshotTree(100)
    assert not tree.insert((1,), _FakeSnap(101))
    assert len(tree) == 0 and tree.stats()["rejected"] == 1
    assert tree.insert((1,), _FakeSnap(100))
    assert len(tree) == 1


def test_eviction_drains_to_fit_large_insert():
    tree = SnapshotTree(300)
    for i in range(3):
        tree.insert((i,), _FakeSnap(100))
    tree.insert((9,), _FakeSnap(250))
    # 300 + 250 > 300 → evict until it fits: all three LRU entries go
    assert tree.stats()["evictions"] == 3
    assert tree.bytes_used == 250
    assert tree.lookup((9,)) is not None


def test_lookup_probe_range_tracks_evictions():
    """The miss path probes only up to the deepest *live* key — and the
    max-depth bookkeeping survives evicting the deepest entry."""
    tree = SnapshotTree(250)
    tree.insert((1, 2, 3, 4, 5), _FakeSnap(200, "deep"))
    assert tree._max_depth == 5
    tree.insert((7,), _FakeSnap(100, "shallow"))   # evicts "deep"
    assert tree._max_depth == 1
    # a very deep miss probes within the live range and still hits the
    # shallow ancestor
    assert tree.lookup(tuple([7] + list(range(100))))[1].tag == "shallow"
    tree.clear()
    assert tree._max_depth == 0 and tree._depth_counts == {}


def test_negative_budget_rejected():
    with pytest.raises(ValueError):
        SnapshotTree(-1)


def test_clear_resets_bytes_but_keeps_counters():
    tree = SnapshotTree(1000)
    tree.insert((1,), _FakeSnap(500))
    tree.lookup((1,))
    tree.clear()
    assert len(tree) == 0 and tree.bytes_used == 0
    assert tree.stats()["hits"] == 1     # counters survive a clear
    assert tree.stats()["bytes_high_water"] == 500
