"""``repro.check`` and the :class:`CheckResult` currency."""

import pytest

import repro
from repro.check import CheckResult, check
from repro.explore.base import ExplorationLimits
from repro.shim import threading as shim_threading
from repro.suite import all_benchmarks


@repro.shared
class Cell:
    def __init__(self):
        self.value = 0


def racy_main():
    c = Cell()

    def worker():
        c.value += 1

    t1 = shim_threading.Thread(target=worker)
    t2 = shim_threading.Thread(target=worker)
    t1.start()
    t2.start()
    t1.join()
    t2.join()
    assert c.value == 2, c.value


def clean_main():
    c = Cell()
    lock = shim_threading.Lock()

    def worker():
        with lock:
            c.value += 1

    t1 = shim_threading.Thread(target=worker)
    t2 = shim_threading.Thread(target=worker)
    t1.start()
    t2.start()
    t1.join()
    t2.join()
    assert c.value == 2


def _normalized(result: CheckResult) -> dict:
    d = result.to_dict()
    d["elapsed"] = 0.0
    d["stats"]["elapsed"] = 0.0
    return d


class TestCheck:
    def test_finds_seeded_bug_and_minimizes(self):
        result = check(racy_main)
        assert result.bug_found
        assert result.error_kind == "GuestCrashError"
        assert "AssertionError" in result.error_message
        assert result.schedule
        assert result.minimized_schedule
        assert len(result.minimized_schedule) <= len(result.schedule)
        assert result.repro_schedule == result.minimized_schedule
        assert result.trace, "expected a rendered timeline"
        assert any("Cell.value#0" in line for line in result.trace)

    def test_clean_program(self):
        result = check(clean_main)
        assert not result.bug_found
        assert result.error_kind is None
        assert result.schedule is None
        assert result.trace == []
        assert result.stats.num_schedules >= 2

    def test_deterministic_across_calls(self):
        a, b = check(racy_main), check(racy_main)
        assert _normalized(a) == _normalized(b)

    def test_round_trip(self):
        result = check(racy_main)
        back = CheckResult.from_dict(result.to_dict())
        assert back.to_dict() == result.to_dict()

    def test_round_trip_clean(self):
        result = check(clean_main, max_schedules=50)
        back = CheckResult.from_dict(result.to_dict())
        assert back.to_dict() == result.to_dict()

    def test_summary_mentions_bug(self):
        result = check(racy_main)
        text = result.summary()
        assert "BUG" in text and "minimized" in text

    def test_unknown_explorer_rejected(self):
        with pytest.raises(ValueError, match="unknown explorer"):
            check(racy_main, explorer="nope")

    def test_bad_target_rejected(self):
        with pytest.raises(TypeError, match="target"):
            check(42)

    def test_dsl_program_target(self):
        bench = all_benchmarks()[0]
        result = check(bench.program, explorer="dfs", max_schedules=200)
        assert result.program_name == bench.program.name
        assert result.stats.num_schedules >= 1

    def test_benchmark_target(self):
        bench = all_benchmarks()[0]
        result = check(bench, explorer="dpor", max_schedules=200)
        assert result.program_name == bench.program.name

    def test_seeded_explorer_fans_out(self):
        result = check(racy_main, explorer="pct", seeds=(0, 1, 2),
                       max_schedules=30)
        assert result.seeds == (0, 1, 2)
        # merged stats cover all three seeded runs
        assert result.stats.num_schedules > 30 - 1

    def test_unseeded_explorer_uses_single_seed(self):
        result = check(racy_main, explorer="dpor", seeds=(0, 1, 2))
        assert result.seeds == (0,)

    def test_limits_and_overrides(self):
        lim = ExplorationLimits(max_schedules=5)
        result = check(clean_main, explorer="dfs", limits=lim)
        assert result.stats.num_schedules <= 5
        result = check(clean_main, explorer="dfs", limits=lim,
                       max_schedules=1)
        assert result.stats.num_schedules == 1

    def test_minimize_and_trace_toggles(self):
        result = check(racy_main, minimize=False, trace=False)
        assert result.bug_found
        assert result.minimized_schedule is None
        assert result.trace == []
        assert result.repro_schedule == result.schedule

    def test_name_and_args_passthrough(self):
        def parametrized(expected):
            c = Cell()
            c.value = expected
            assert c.value == expected

        result = check(parametrized, name="custom", args=(3,),
                       explorer="dfs")
        assert result.program_name == "custom"
        assert not result.bug_found
