"""Tests for delay-bounded exploration."""

import pytest

from repro.explore import (
    DelayBoundedExplorer,
    DFSExplorer,
    ExplorationLimits,
)
from repro.suite import REGISTRY

LIM = ExplorationLimits(max_schedules=50_000)


class TestDelayBounded:
    def test_bound_zero_single_schedule(self):
        stats = DelayBoundedExplorer(REGISTRY[1].program, LIM, bound=0).run()
        assert stats.exhausted
        assert stats.num_schedules == 1

    def test_negative_bound_rejected(self):
        with pytest.raises(ValueError):
            DelayBoundedExplorer(REGISTRY[1].program, LIM, bound=-1)

    def test_coverage_grows_with_bound(self):
        prog = REGISTRY[3].program  # racy_counter 2x2
        counts, states = [], []
        for b in (0, 1, 2, 4):
            stats = DelayBoundedExplorer(prog, LIM, bound=b).run()
            counts.append(stats.num_schedules)
            states.append(stats.num_states)
        assert counts == sorted(counts)
        assert states == sorted(states)
        assert states[0] < states[-1]

    def test_finds_deadlock_with_one_delay(self):
        prog = REGISTRY[36].program  # AB-BA deadlock
        stats = DelayBoundedExplorer(prog, LIM, bound=1).run()
        assert any(e.kind == "DeadlockError" for e in stats.errors)

    def test_large_bound_reaches_all_dfs_states(self):
        prog = REGISTRY[2].program  # racy_counter 2x1
        dfs = DFSExplorer(prog, LIM).run()
        db = DelayBoundedExplorer(prog, LIM, bound=10).run()
        assert db.num_states == dfs.num_states

    def test_delay_cheaper_than_preemption_on_buggy_programs(self):
        # classic claim: delay bound 1 suffices where preemption
        # exploration needs to consider many switch placements
        prog = REGISTRY[36].program
        stats = DelayBoundedExplorer(prog, LIM, bound=1).run()
        assert stats.num_schedules <= 20

    def test_inequality_holds(self):
        stats = DelayBoundedExplorer(REGISTRY[11].program, LIM, bound=2).run()
        stats.verify_inequality()


class TestMatrixReport:
    def test_report_renders(self):
        from repro.explore.controller import matrix_report, run_matrix
        rows = run_matrix(
            [REGISTRY[1].program],
            ["dpor", "delay-bounded"],
            ExplorationLimits(max_schedules=300),
        )
        text = matrix_report(rows)
        assert "figure1" in text
        assert "dpor" in text and "delay-bounded" in text
        assert "exhausted" in text
