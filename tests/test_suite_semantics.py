"""Semantic checks per benchmark family: what each program *means* must
hold across the entire explored state space, not just one run."""

import pytest

from repro.explore import DFSExplorer, DPORExplorer, ExplorationLimits
from repro.runtime.schedule import RandomScheduler, execute

LIM = ExplorationLimits(max_schedules=30_000)


def explore(program):
    return DPORExplorer(program, LIM).run()


class TestCounters:
    def test_locked_counter_always_exact(self):
        from repro.suite.counters import locked_counter
        stats = explore(locked_counter(3, 1))
        assert stats.exhausted
        assert stats.num_states == 1  # no lost updates, ever

    def test_racy_counter_loses_updates(self):
        from repro.suite.counters import racy_counter
        prog = racy_counter(2, 2)
        stats = DFSExplorer(prog, LIM).run()
        assert stats.exhausted
        finals = set()
        # extract final values by replaying distinct-state witnesses: use
        # random sampling for simplicity
        for seed in range(60):
            finals.add(execute(prog,
                               scheduler=RandomScheduler(seed)).final_state["c"])
        assert max(finals) == 4
        assert min(finals) < 4  # some interleaving loses an update

    def test_atomic_counter_single_state(self):
        from repro.suite.counters import atomic_counter
        stats = explore(atomic_counter(3, 1))
        assert stats.exhausted
        assert stats.num_states == 1


class TestBoundedBuffer:
    def test_items_conserved_in_every_schedule(self):
        from repro.suite.buffers import bounded_buffer
        prog = bounded_buffer(1, 1, 2, 1)
        for seed in range(40):
            r = execute(prog, scheduler=RandomScheduler(seed))
            assert r.ok
            # consumer got both items: 1 + 2
            assert r.final_state["sums"] == (3,)

    def test_never_deadlocks(self):
        from repro.suite.buffers import bounded_buffer
        stats = explore(bounded_buffer(1, 1, 2, 1))
        assert stats.exhausted
        assert not stats.errors


class TestPhilosophers:
    def test_ordered_variant_deadlock_free_exhaustively(self):
        from repro.suite.locks import philosophers
        stats = explore(philosophers(2, ordered=True))
        assert stats.exhausted
        assert not stats.errors

    def test_naive_variant_both_outcomes_reachable(self):
        from repro.suite.locks import philosophers
        prog = philosophers(2, ordered=False)
        stats = explore(prog)
        assert stats.exhausted
        assert any(e.kind == "DeadlockError" for e in stats.errors)
        # and the happy path exists too: some schedule completes
        ok = execute(prog)  # first-enabled runs T0 fully first
        assert ok.error is None


class TestBankInvariants:
    def test_global_lock_conserves_money_everywhere(self):
        from repro.suite.bank import bank_global_lock
        stats = explore(bank_global_lock(2))
        assert stats.exhausted
        assert not stats.errors  # the audit assertion never fires

    def test_per_account_never_deadlocks(self):
        from repro.suite.bank import bank_per_account
        stats = explore(bank_per_account(2))
        assert stats.exhausted
        assert not stats.errors

    def test_racy_bank_all_four_violation_amounts(self):
        from repro.suite.bank import bank_racy
        stats = explore(bank_racy(2))
        assert stats.exhausted
        amounts = {e.message for e in stats.errors}
        # lost update of +/-10 or +/-11 on either account
        assert amounts == {"money not conserved: 189",
                           "money not conserved: 190",
                           "money not conserved: 210",
                           "money not conserved: 211"}


class TestMutualExclusion:
    @pytest.mark.parametrize("protocol", ["peterson", "dekker", "bakery"])
    def test_correct_protocols_exclude_exhaustively(self, protocol):
        from repro.suite import mutual_exclusion as mx
        prog = {"peterson": lambda: mx.peterson(False),
                "dekker": lambda: mx.dekker(False),
                "bakery": lambda: mx.bakery(2)}[protocol]()
        stats = explore(prog)
        assert stats.exhausted
        assert not stats.errors
        # both threads completed their increment in every terminal state
        r = execute(prog)
        assert r.final_state["c"] == 2

    @pytest.mark.parametrize("protocol", ["peterson", "dekker"])
    def test_buggy_protocols_violated(self, protocol):
        from repro.suite import mutual_exclusion as mx
        prog = {"peterson": lambda: mx.peterson(True),
                "dekker": lambda: mx.dekker(True)}[protocol]()
        stats = explore(prog)
        assert any(e.kind == "GuestAssertionError" for e in stats.errors)


class TestLitmus:
    def test_store_buffer_has_exactly_three_outcomes(self):
        from repro.suite.sync_patterns import store_buffer_litmus
        stats = explore(store_buffer_litmus())
        assert stats.exhausted
        # SC allows (1,0), (0,1), (1,1) — and NEVER (0,0): the checker
        # asserts it, so zero errors means zero (0,0) outcomes
        assert not stats.errors
        assert stats.num_states == 3

    def test_message_passing_always_sees_data(self):
        from repro.suite.sync_patterns import message_passing_litmus
        stats = explore(message_passing_litmus())
        assert stats.exhausted
        assert not stats.errors
        assert stats.num_states == 1


class TestSequencedFamilies:
    def test_token_ring_fully_deterministic(self):
        from repro.suite.sync_patterns import token_ring
        stats = explore(token_ring(3, 1))
        assert stats.exhausted
        assert stats.num_states == 1
        assert stats.num_lazy_hbrs == 1

    def test_pingpong_alternates(self):
        from repro.suite.buffers import pingpong
        r = execute(pingpong(2))
        assert r.final_state["hits"] == (2, 2)
        assert r.final_state["turn"] == 0

    def test_pipeline_counts(self):
        from repro.suite.buffers import pipeline
        r = execute(pipeline(3, 2))
        assert r.final_state["cell"] == 6  # 3 stages x 2 items
        assert r.final_state["work"] == (2, 2, 2)


class TestBarrierPhases:
    def test_phase_separation_holds_everywhere(self):
        from repro.suite.sync_patterns import barrier_phases
        stats = explore(barrier_phases(2, 1))
        assert stats.exhausted
        # reads of neighbours' previous values are phase-separated, so
        # the result is schedule-independent
        assert stats.num_states == 1

    def test_final_values(self):
        from repro.suite.sync_patterns import barrier_phases
        r = execute(barrier_phases(2, 1))
        # each cell becomes left-neighbour's initial value + 1
        assert r.final_state["cells"] == (2, 1)


class TestCollections:
    def test_coarse_dict_final_map_schedule_independent(self):
        from repro.suite.collections_prog import coarse_dict
        stats = explore(coarse_dict(2, 2))
        assert stats.exhausted
        assert stats.num_states == 1
        assert stats.num_lazy_hbrs == 1

    def test_work_queue_items_partitioned(self):
        from repro.suite.collections_prog import work_queue_shared
        prog = work_queue_shared(2, 2)
        for seed in range(25):
            r = execute(prog, scheduler=RandomScheduler(seed))
            # every item processed exactly once: sums partition 1+2+3+4
            assert sum(r.final_state["sums"]) == 10

    def test_treiber_stack_all_pushes_land(self):
        from repro.suite.collections_prog import treiber_stack
        prog = treiber_stack(2, 2)
        for seed in range(25):
            r = execute(prog, scheduler=RandomScheduler(seed))
            # walk the stack from top: every pushed value appears once
            nexts = r.final_state["nexts"]
            seen, node = [], r.final_state["top"]
            while node:
                seen.append(node)
                node = nexts[node]
            assert sorted(seen) == [1, 2, 3, 4]


class TestIndexerFamily:
    def test_indexer_no_collisions_is_fully_independent(self):
        from repro.suite.indexer import indexer
        stats = explore(indexer(2, 2, 8))
        assert stats.exhausted
        # coprime multiplier: disjoint slots, DPOR needs one schedule
        assert stats.num_schedules == 1

    def test_indexer_collisions_force_exploration(self):
        from repro.suite.indexer import indexer
        stats = explore(indexer(2, 2, 4, mult=2))
        assert stats.exhausted
        assert stats.num_schedules > 1

    def test_filesystem_all_inodes_allocated(self):
        from repro.suite.indexer import filesystem
        r = execute(filesystem(2))
        assert all(v > 0 for v in r.final_state["inode"])
