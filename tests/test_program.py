"""Tests for Program / ProgramBuilder."""

import pytest

from repro import Program
from repro.runtime.program import ProgramBuilder


class TestBuilder:
    def test_all_object_kinds_constructible(self):
        b = ProgramBuilder()
        b.var("v", 1)
        b.array("a", [1, 2])
        b.dict("d", {1: 2})
        b.atomic("at", 3)
        b.mutex("m")
        b.condition("cv")
        b.semaphore("s", 2)
        b.barrier("bar", 2)
        b.rwlock("rw")
        assert len(b.registry.objects) == 9
        assert set(b.named) == {"v", "a", "d", "at", "m", "cv", "s",
                                "bar", "rw"}

    def test_duplicate_names_rejected(self):
        b = ProgramBuilder()
        b.var("x", 0)
        with pytest.raises(ValueError):
            b.mutex("x")

    def test_thread_ids_in_declaration_order(self):
        b = ProgramBuilder()

        def body(api):
            yield api.sched_yield()

        assert b.thread(body) == 0
        assert b.thread(body) == 1
        assert b.thread(body, name="named") == 2


class TestProgram:
    def test_instantiate_is_fresh_each_time(self):
        def build(p):
            v = p.var("v", 0)

            def t(api):
                yield api.write(v, 1)

            p.thread(t)

        prog = Program("t", build)
        a = prog.instantiate()
        b = prog.instantiate()
        assert a.named["v"] is not b.named["v"]
        a.named["v"].set(None, 99)
        assert b.named["v"].get() == 0

    def test_program_without_threads_rejected(self):
        prog = Program("empty", lambda p: None)
        with pytest.raises(ValueError):
            prog.instantiate()

    def test_program_is_reusable_across_explorations(self, figure1_program):
        from repro.explore import DPORExplorer
        s1 = DPORExplorer(figure1_program).run()
        s2 = DPORExplorer(figure1_program).run()
        assert s1.num_schedules == s2.num_schedules
        assert s1.num_hbrs == s2.num_hbrs
