"""The in-place clock engine against a pre-refactor-style reference.

``DualClockEngine`` mutates raw list clocks in place, publishes
copy-on-write snapshots, and *replaces* access/modify table entries
when a dominance argument allows it.  The reference implementation here
reproduces the original, purely immutable algorithm — fresh tuples
everywhere, tables always updated by join — so any unsound shortcut in
the optimised engine shows up as a clock or fingerprint divergence.

Golden fingerprint values are recorded for fixed programs; they are
pure-int hashes (labels, clocks and chain seeds are all ints), hence
stable across processes, hash seeds and CPython versions >= 3.8.
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro import Program
from repro.core.fingerprint import _SEED
from repro.runtime import executor as executor_mod
from repro.runtime.schedule import RandomScheduler, execute
from repro.suite import REGISTRY


def _join(a, b):
    if len(a) < len(b):
        a = a + (0,) * (len(b) - len(a))
    return tuple(
        max(x, b[i]) if i < len(b) else x for i, x in enumerate(a)
    )


class ReferenceDualClockEngine:
    """Immutable-tuple reimplementation of the dual clock engine.

    Same interface as :class:`repro.core.hb.DualClockEngine` (the
    subset the executor uses), same fingerprint formula, but the
    original update rules: every table publication is a join, every
    clock update builds a fresh tuple.
    """

    def __init__(self, canonical: bool = False) -> None:
        assert not canonical, "reference engine does not do canonical forms"
        # per side: [thread clock tuples], {loc: access}, {loc: modify},
        # [chain hashes], event count
        self._sides = [
            [[], {}, {}, [], 0],  # regular
            [[], {}, {}, [], 0],  # lazy
        ]
        self._pending = {}

    # -- registration ---------------------------------------------------
    def reserve(self, n: int) -> None:
        if n > 0:
            self.register_thread(n - 1)

    def register_thread(self, tid, parent_spawn_event=None) -> None:
        for clocks, _a, _m, chains, _c in self._sides:
            while len(clocks) <= tid:
                clocks.append((0,) * (len(clocks) + 1))
            while len(chains) <= tid:
                chains.append(hash((_SEED, len(chains))))
        if parent_spawn_event is not None:
            self.register_thread_clocks(
                tid, parent_spawn_event.clock, parent_spawn_event.lazy_clock
            )

    def register_thread_clocks(self, tid, spawn_clock, spawn_lazy_clock):
        self.register_thread(tid)
        for side, edge in zip(self._sides, (spawn_clock, spawn_lazy_clock)):
            side[0][tid] = _join(side[0][tid], edge)

    def add_release_edge_clocks(self, clock, lazy_clock, released_tid):
        self._pending.setdefault(released_tid, []).append((clock, lazy_clock))

    def add_release_edge(self, event, released_tid):
        self.add_release_edge_clocks(event.clock, event.lazy_clock,
                                     released_tid)

    # -- the event update ----------------------------------------------
    def observe(self, tid, kind, oid, key, released_mutex_oid=None):
        from repro.core.events import MODIFYING_KINDS, MUTEX_KINDS

        pending = self._pending.pop(tid, None)
        snaps = []
        for lazy, side in enumerate(self._sides):
            clocks, access, modify, chains, _count = side
            tc = clocks[tid]
            if pending:
                for edge in pending:
                    tc = _join(tc, edge[lazy])
            skip_edges = lazy and kind in MUTEX_KINDS
            modifying = kind in MODIFYING_KINDS
            loc = (oid, key) if oid >= 0 else None
            mutex_loc = None
            if released_mutex_oid is not None and not lazy:
                mutex_loc = (released_mutex_oid, None)
            if loc is not None and not skip_edges:
                prev = (access if modifying else modify).get(loc)
                if prev is not None:
                    tc = _join(tc, prev)
            if mutex_loc is not None:
                prev = access.get(mutex_loc)
                if prev is not None:
                    tc = _join(tc, prev)
            tc = tc[:tid] + (tc[tid] + 1,) + tc[tid + 1:]
            clocks[tid] = tc
            # original publication: always join into the table entry
            if loc is not None and not skip_edges:
                access[loc] = _join(access.get(loc, ()), tc)
                if modifying:
                    modify[loc] = _join(modify.get(loc, ()), tc)
            if mutex_loc is not None:
                access[mutex_loc] = _join(access.get(mutex_loc, ()), tc)
                modify[mutex_loc] = _join(modify.get(mutex_loc, ()), tc)
            key_n = -1 if key is None else key
            chains[tid] = hash((chains[tid], kind, oid, key_n, tc))
            side[4] += 1
            snaps.append(tc)
        return snaps[0], snaps[1]

    def on_event(self, event):
        event.clock, event.lazy_clock = self.observe(
            event.tid, event.kind, event.oid, event.key,
            event.released_mutex_oid,
        )

    # -- fingerprints ---------------------------------------------------
    def _fp(self, side):
        clocks, _a, _m, chains, count = side
        return hash((count, tuple(chains)))

    def hbr_fingerprint(self):
        return self._fp(self._sides[0])

    def lazy_fingerprint(self):
        return self._fp(self._sides[1])


def _reference_run(program, monkeypatch, schedule_seed=None):
    with monkeypatch.context() as m:
        # swap the construction funnel (the executor builds engines via
        # the backend registry now) for the model reference engine
        m.setattr(
            executor_mod, "create_clock_engine",
            lambda name=None, canonical=False: ReferenceDualClockEngine(
                canonical=canonical
            ),
        )
        scheduler = (RandomScheduler(schedule_seed)
                     if schedule_seed is not None else None)
        return execute(program, scheduler=scheduler)


def _optimised_run(program, schedule_seed=None):
    scheduler = (RandomScheduler(schedule_seed)
                 if schedule_seed is not None else None)
    return execute(program, scheduler=scheduler)


def _compare(program, monkeypatch, seed=None):
    ref = _reference_run(program, monkeypatch, seed)
    opt = _optimised_run(program, seed)
    assert opt.schedule == ref.schedule
    assert [e.clock for e in opt.events] == [e.clock for e in ref.events]
    assert [e.lazy_clock for e in opt.events] == \
        [e.lazy_clock for e in ref.events]
    assert opt.hbr_fp == ref.hbr_fp
    assert opt.lazy_fp == ref.lazy_fp
    return opt


# -- fixed programs spanning every edge type ---------------------------

#: diverse suite programs: data races, coarse locks, condvars (release
#: edges), barriers, semaphores, rwlocks, spawn/join
SUITE_SAMPLE = (1, 4, 13, 24, 40, 66, 69, 77)


def test_suite_sample_matches_reference(monkeypatch):
    for bid in SUITE_SAMPLE:
        program = REGISTRY[bid].program
        for seed in (None, 7, 23):
            _compare(program, monkeypatch, seed)


# -- golden fingerprints (int-only hashes: stable everywhere) ----------

GOLDEN = {
    # bid: (hbr_fp, lazy_fp) under the first-enabled schedule.  Note
    # bench 4 (racy counter): no mutexes, so the two relations coincide
    # and so do their fingerprints.  Regenerated when the virtual-time
    # clock object was added to every program instance (it shifts the
    # thread-handle oids by one, an intentional layout change).
    1: (6916854769344561026, -6830497331089486971),
    4: (-2257368397602522090, -2257368397602522090),
    13: (3358040502110862692, 7745797518615796582),
    24: (2173206886104868878, 9007917938833531649),
}


def test_golden_fingerprints():
    for bid, (hbr, lazy) in GOLDEN.items():
        r = execute(REGISTRY[bid].program)
        assert (r.hbr_fp, r.lazy_fp) == (hbr, lazy), f"bench {bid}"


def test_public_chain_api_matches_engine_fingerprints():
    """A chain rebuilt through FingerprintChain's *public* update() from
    the recorded events must reproduce the engine-inlined fingerprints
    (the two must never use divergent hash formulas)."""
    from repro.core.fingerprint import FingerprintChain

    for bid in (1, 24):
        r = execute(REGISTRY[bid].program)
        chain = FingerprintChain()
        lazy_chain = FingerprintChain()
        for e in r.events:
            chain.update(e.tid, e.label(), e.clock)
            lazy_chain.update(e.tid, e.label(), e.lazy_clock)
        assert chain.prefix_fingerprint() == r.hbr_fp
        assert lazy_chain.prefix_fingerprint() == r.lazy_fp


# -- random programs ---------------------------------------------------

data_op = st.tuples(
    st.sampled_from(["read", "write", "incr"]),
    st.integers(min_value=0, max_value=1),
)
segment = st.one_of(
    data_op.map(lambda op: (None, [op])),
    st.tuples(
        st.integers(min_value=0, max_value=1),
        st.lists(data_op, min_size=1, max_size=3),
    ),
)
thread_body = st.lists(segment, min_size=1, max_size=4)
program_spec = st.lists(thread_body, min_size=2, max_size=3)


def build_program(spec):
    def build(p):
        mutexes = [p.mutex("m0"), p.mutex("m1")]
        cells = p.array("cells", [0, 0])

        def make_thread(segments, seed):
            def body(api):
                token = seed
                for lock_idx, ops in segments:
                    if lock_idx is not None:
                        yield api.lock(mutexes[lock_idx])
                    for op, var in ops:
                        if op == "read":
                            yield api.read(cells, key=var)
                        elif op == "write":
                            token += 1
                            yield api.write(cells, token, key=var)
                        else:
                            v = yield api.read(cells, key=var)
                            yield api.write(cells, v + 1, key=var)
                    if lock_idx is not None:
                        yield api.unlock(mutexes[lock_idx])
            return body

        for i, segments in enumerate(spec):
            p.thread(make_thread(segments, (i + 1) * 100))

    return Program("vc_equiv_prog", build)


@settings(
    max_examples=40,
    deadline=None,
    # the monkeypatch fixture is safe under @given here: every example
    # enters and exits its own monkeypatch.context()
    suppress_health_check=[HealthCheck.too_slow,
                           HealthCheck.function_scoped_fixture],
)
@given(program_spec, st.integers(min_value=0, max_value=10_000))
def test_random_programs_match_reference(monkeypatch, spec, seed):
    program = build_program(spec)
    _compare(program, monkeypatch, seed)
