"""Tests for the extension workloads (suite.extra)."""


from repro.explore import DPORExplorer, ExplorationLimits
from repro.runtime.schedule import RandomScheduler, execute
from repro.suite.extra import (
    cigarette_smokers,
    h2o,
    seqlock,
    sleeping_barber,
    stress_work_queue,
)

LIM = ExplorationLimits(max_schedules=8_000, max_seconds=30)


class TestSleepingBarber:
    def test_everyone_accounted_for(self):
        prog = sleeping_barber(2, 1)
        for seed in range(40):
            r = execute(prog, scheduler=RandomScheduler(seed), max_events=3000)
            assert r.ok, f"seed {seed}: {r.error}"
            s = r.final_state
            assert s["served"] + s["turned_away"] == 2
            assert s["waiting"] == 0

    def test_no_deadlock_within_budget(self):
        stats = DPORExplorer(sleeping_barber(2, 1), LIM).run()
        assert not stats.errors


class TestCigaretteSmokers:
    def test_each_smoker_smokes_once_per_round(self):
        prog = cigarette_smokers(1)
        for seed in range(40):
            r = execute(prog, scheduler=RandomScheduler(seed))
            assert r.ok
            assert r.final_state["smoked"] == (1, 1, 1)
            assert r.final_state["table"] == 0

    def test_deterministic_single_state(self):
        stats = DPORExplorer(cigarette_smokers(1), LIM).run()
        assert stats.num_states == 1


class TestH2O:
    def test_all_atoms_bond(self):
        prog = h2o(1)
        for seed in range(40):
            r = execute(prog, scheduler=RandomScheduler(seed))
            assert r.ok
            assert r.final_state["bonds"] == 3  # 2 H + 1 O

    def test_no_deadlock(self):
        stats = DPORExplorer(h2o(1), LIM).run()
        kinds = {e.kind for e in stats.errors}
        assert "DeadlockError" not in kinds


class TestSeqlock:
    def test_readers_never_tear(self):
        prog = seqlock(1, 1)
        stats = DPORExplorer(prog, LIM).run()
        # the retry protocol prevents torn reads on every schedule
        assert not stats.errors

    def test_reader_sees_consistent_snapshot(self):
        prog = seqlock(1, 1)
        for seed in range(40):
            r = execute(prog, scheduler=RandomScheduler(seed), max_events=3000)
            assert r.ok
            assert r.final_state["out"][0] in (0, 1)

    def test_benign_races_are_still_reported(self):
        # the data reads race with the writer by design; HB race
        # detection must flag them (they are races, just tolerated)
        from repro.analysis.races import find_races
        report = find_races(seqlock(1, 1), LIM)
        assert not report.race_free
        racy_locations = {r.oid for r in report.races}
        assert len(racy_locations) >= 1


class TestStressInstances:
    def test_stress_work_queue_is_budget_binding(self):
        from repro.explore import HBRCachingExplorer
        lim = ExplorationLimits(max_schedules=300)
        stats = HBRCachingExplorer(stress_work_queue(2, 4), lim).run()
        assert stats.limit_hit
