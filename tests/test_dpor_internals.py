"""White-box tests for DPOR's race analysis machinery."""

from repro import Program
from repro.core.events import OpKind
from repro.explore.dpor import DPORExplorer, _Node, _pending_as_event
from repro.runtime.executor import Executor
from repro.runtime.trace import PendingInfo


class TestPendingAsEvent:
    def test_fields_carried_over(self):
        info = PendingInfo(tid=2, kind=int(OpKind.WRITE), oid=5, key=7,
                           enabled=True)
        e = _pending_as_event(info)
        assert e.tid == 2
        assert e.kind == OpKind.WRITE
        assert e.location() == (5, 7)

    def test_wait_release_carried(self):
        info = PendingInfo(tid=0, kind=int(OpKind.WAIT), oid=3, key=None,
                           enabled=True, released_mutex_oid=9)
        e = _pending_as_event(info)
        assert e.released_mutex_oid == 9


class TestNode:
    def test_initial_state(self):
        n = _Node([0, 1, 2], {1})
        assert n.chosen == -1
        assert n.backtrack == set()
        assert n.done == set()
        assert n.sleep == {1}


class TestRaceAnalysis:
    def _program(self):
        def build(p):
            x = p.var("x", 0)

            def t(api, v):
                yield api.write(x, v)

            p.thread(t, 1)
            p.thread(t, 2)

        return Program("t", build)

    def test_backtrack_point_registered_for_write_write_race(self):
        prog = self._program()
        explorer = DPORExplorer(prog)
        stack = []
        explorer._run_one(stack)
        # T0's write executed first; T1's pending write races with it,
        # so the root node must have gained a backtrack candidate for T1
        assert 1 in stack[0].backtrack or 1 in stack[0].done

    def test_hb_pending_uses_own_component(self):
        prog = self._program()
        ex = Executor(prog)
        ex.step(0)  # T0 writes
        e = ex.trace[0]
        cv0 = ex.engine.thread_clock(0)
        cv1 = ex.engine.thread_clock(1)
        assert DPORExplorer._hb_pending(e, cv0)       # own past event
        assert not DPORExplorer._hb_pending(e, cv1)   # unordered for T1

    def test_sleep_set_survival_requires_independence(self):
        # after exploring T0's branch from the root, T0 sleeps in the
        # sibling branch and is woken only by a conflicting event
        prog = self._program()
        explorer = DPORExplorer(prog, sleep_sets=True)
        stats = explorer.run()
        # with sleep sets the two orders are explored exactly once each
        assert stats.num_schedules <= 3
        assert stats.num_states == 2


class TestLocIndex:
    def test_index_includes_wait_released_mutex(self):
        from repro.core.events import Event

        idx = {}
        trace = []
        e = Event(index=0, tid=0, tindex=0, kind=OpKind.WAIT, oid=4,
                  released_mutex_oid=9)
        DPORExplorer._index_event(idx, trace, e)
        assert (4, None) in idx
        assert (9, None) in idx

    def test_index_skips_objectless_events(self):
        from repro.core.events import Event

        idx = {}
        e = Event(index=0, tid=0, tindex=0, kind=OpKind.YIELD, oid=-1)
        DPORExplorer._index_event(idx, [], e)
        assert idx == {}
