"""Shim frontend: primitives, setup-phase rules and error surfacing.

The instrumentation pipeline itself is covered in test_instrument.py and
the shim-vs-DSL golden equivalence in test_shim_equivalence.py; this
file exercises the ``repro.shim.threading`` / ``repro.shim.queue``
classes and the usage contract they enforce.
"""

import pytest

import repro
from repro.errors import (
    DisabledThreadError,
    GuestCrashError,
    ShimUsageError,
    UnsupportedTimeoutError,
)
from repro.explore.base import ExplorationLimits
from repro.explore.controller import run_single
from repro.runtime.executor import Executor
from repro.runtime.schedule import execute
from repro.shim import program_from_function
from repro.shim import queue as shim_queue
from repro.shim import threading as shim_threading

LIM = ExplorationLimits(max_schedules=2000)


@repro.shared
class Cell:
    def __init__(self):
        self.value = 0


def run_ok(fn, *, args=()):
    """Single first-enabled execution; assert it completes cleanly."""
    result = execute(program_from_function(fn, args=args))
    assert result.ok, result.error
    return result


def run_error(fn):
    """Single first-enabled execution; return the recorded error."""
    result = execute(program_from_function(fn))
    assert result.error is not None
    return result.error


# ---------------------------------------------------------------------------
# setup-phase and context rules
# ---------------------------------------------------------------------------

class TestUsageContract:
    def test_shim_object_outside_check_rejected(self):
        with pytest.raises(ShimUsageError, match="checked program"):
            shim_threading.Lock()

    def test_shared_object_outside_check_rejected(self):
        with pytest.raises(ShimUsageError):
            Cell()

    def test_create_after_start_rejected(self):
        def main():
            t = shim_threading.Thread(target=None)
            t.start()
            shim_threading.Lock()

        with pytest.raises(ShimUsageError,
                           match="before the first thread starts"):
            execute(program_from_function(main))

    def test_create_in_worker_rejected(self):
        def main():
            def worker():
                shim_threading.Lock()

            t = shim_threading.Thread(target=worker)
            t.start()
            t.join()

        with pytest.raises(ShimUsageError, match="created by worker thread"):
            execute(program_from_function(main))

    def test_unsupported_threading_name(self):
        with pytest.raises(ShimUsageError, match="local"):
            shim_threading.local  # noqa: B018

    def test_unsupported_queue_name(self):
        with pytest.raises(ShimUsageError, match="LifoQueue"):
            shim_queue.LifoQueue  # noqa: B018

    def test_uncontended_timed_acquire_succeeds(self):
        # timeouts route onto the virtual clock; an uncontended timed
        # acquire succeeds without the deadline ever firing
        def main():
            lock = shim_threading.Lock()
            assert lock.acquire(timeout=1.5) is True
            lock.release()

        run_ok(main)

    def test_unsupported_timeout_site_names_alternative(self):
        def main():
            t = shim_threading.Thread(target=None)
            t.start()
            t.join(timeout=0.5)

        with pytest.raises(
            UnsupportedTimeoutError,
            match=r"threading\.Thread\.join.*nearest supported "
                  r"alternative.*Event\.wait\(timeout=\)",
        ):
            execute(program_from_function(main))

    def test_nonblocking_rejected(self):
        def main():
            lock = shim_threading.Lock()
            lock.acquire(blocking=False)

        with pytest.raises(ShimUsageError, match="non-blocking"):
            execute(program_from_function(main))

    def test_polling_apis_rejected(self):
        def use_locked():
            shim_threading.Lock().locked()

        def use_qsize():
            shim_queue.Queue().qsize()

        def use_is_alive():
            shim_threading.Thread(target=None).is_alive()

        for fn in (use_locked, use_qsize, use_is_alive):
            with pytest.raises(ShimUsageError):
                execute(program_from_function(fn))

    def test_shared_rejects_slots(self):
        with pytest.raises(ShimUsageError, match="__slots__"):
            @repro.shared
            class Slotted:
                __slots__ = ("x",)


# ---------------------------------------------------------------------------
# satellite 3: blocked shim ops name the stdlib call site
# ---------------------------------------------------------------------------

class TestBlockedSiteNaming:
    def test_queue_get_site_in_disabled_thread_error(self):
        def main():
            q = shim_queue.Queue()
            q.get()

        ex = Executor(program_from_function(main))
        with pytest.raises(DisabledThreadError, match=r"queue\.Queue\.get"):
            ex.step(0)

    def test_lock_acquire_site_in_disabled_thread_error(self):
        def main():
            lock = shim_threading.Lock()
            lock.acquire()

            def worker():
                lock.acquire()

            t = shim_threading.Thread(target=worker)
            t.start()
            t.join()

        ex = Executor(program_from_function(main))
        while ex.enabled():
            ex.step(ex.enabled()[0])
        # main holds the lock and joins; the worker's acquire is blocked
        with pytest.raises(DisabledThreadError,
                           match=r"threading\.Lock\.acquire"):
            ex.step(1)

    def test_event_wait_site(self):
        def main():
            ev = shim_threading.Event()
            ev.wait()

        ex = Executor(program_from_function(main))
        with pytest.raises(DisabledThreadError,
                           match=r"threading\.Event\.wait"):
            ex.step(0)


# ---------------------------------------------------------------------------
# primitive behaviour
# ---------------------------------------------------------------------------

class TestPrimitives:
    def test_lock_context_manager(self):
        def main():
            c = Cell()
            lock = shim_threading.Lock()

            def worker():
                with lock:
                    c.value += 1

            ts = [shim_threading.Thread(target=worker) for _ in range(2)]
            for t in ts:
                t.start()
            for t in ts:
                t.join()
            assert c.value == 2

        stats = run_single(program_from_function(main), "dpor", LIM)
        assert not stats.errors

    def test_rlock_reentrancy_emits_single_pair(self):
        def main():
            rl = shim_threading.RLock()
            with rl:
                with rl:
                    pass

        result = run_ok(main)
        kinds = [e.kind.name for e in result.events]
        assert kinds.count("LOCK") == 1
        assert kinds.count("UNLOCK") == 1

    def test_rlock_release_unowned_crashes(self):
        def main():
            rl = shim_threading.RLock()
            rl.release()

        err = run_error(main)
        assert isinstance(err, GuestCrashError)
        assert "cannot release un-acquired lock" in str(err)

    def test_condition_notify_requires_lock(self):
        def main():
            cond = shim_threading.Condition()
            cond.notify()

        err = run_error(main)
        assert isinstance(err, GuestCrashError)
        assert "un-acquired lock" in str(err)

    def test_condition_wait_for(self):
        def main():
            slot = Cell()
            cond = shim_threading.Condition()

            def producer():
                with cond:
                    slot.value = 7
                    cond.notify_all()

            t = shim_threading.Thread(target=producer)
            t.start()
            with cond:
                got = cond.wait_for(lambda: slot.value)
            t.join()
            assert got == 7

        stats = run_single(program_from_function(main), "dpor", LIM)
        assert not stats.errors

    def test_condition_rejects_foreign_lock(self):
        def main():
            shim_threading.Condition(lock=object())

        with pytest.raises(ShimUsageError, match="shim Lock or RLock"):
            execute(program_from_function(main))

    def test_semaphore_multi_release(self):
        def main():
            sem = shim_threading.Semaphore(0)

            def releaser():
                sem.release(2)

            t = shim_threading.Thread(target=releaser)
            t.start()
            sem.acquire()
            sem.acquire()
            t.join()

        stats = run_single(program_from_function(main), "dpor", LIM)
        assert not stats.errors

    def test_bounded_semaphore_over_release(self):
        def main():
            sem = shim_threading.BoundedSemaphore(1)
            sem.release()

        err = run_error(main)
        assert isinstance(err, GuestCrashError)
        assert "released too many times" in str(err)

    def test_barrier_returns_distinct_indices(self):
        def main():
            b = shim_threading.Barrier(2)
            seen = []

            def worker():
                seen.append(b.wait())

            t1 = shim_threading.Thread(target=worker)
            t2 = shim_threading.Thread(target=worker)
            t1.start()
            t2.start()
            t1.join()
            t2.join()
            assert sorted(seen) == [0, 1], seen

        stats = run_single(program_from_function(main), "dfs", LIM)
        assert not stats.errors

    def test_event_set_clear(self):
        def main():
            ev = shim_threading.Event()
            assert not ev.is_set()
            ev.set()
            assert ev.is_set()
            ev.clear()
            assert not ev.is_set()

        run_ok(main)

    def test_queue_fifo_and_join(self):
        def main():
            q = shim_queue.Queue()

            def producer():
                q.put("a")
                q.put("b")

            t = shim_threading.Thread(target=producer)
            t.start()
            first = q.get()
            q.task_done()
            second = q.get()
            q.task_done()
            q.join()
            t.join()
            assert (first, second) == ("a", "b")

        stats = run_single(program_from_function(main), "dpor", LIM)
        assert not stats.errors

    def test_queue_task_done_too_many(self):
        def main():
            q = shim_queue.Queue()
            q.task_done()

        err = run_error(main)
        assert isinstance(err, GuestCrashError)
        assert "task_done" in str(err)

    def test_queue_nonblocking_get_rejected(self):
        def main():
            shim_queue.Queue().get(block=False)

        with pytest.raises(ShimUsageError):
            execute(program_from_function(main))

    def test_queue_exports_stdlib_exceptions(self):
        import queue as stdlib_queue
        assert shim_queue.Empty is stdlib_queue.Empty
        assert shim_queue.Full is stdlib_queue.Full


# ---------------------------------------------------------------------------
# threads
# ---------------------------------------------------------------------------

class TestThread:
    def test_target_args_kwargs(self):
        def main():
            c = Cell()

            def worker(amount, *, extra=0):
                c.value += amount + extra

            t = shim_threading.Thread(target=worker, args=(3,),
                                      kwargs={"extra": 4})
            t.start()
            t.join()
            assert c.value == 7

        run_ok(main)

    def test_run_override(self):
        def main():
            c = Cell()

            class MyThread(shim_threading.Thread):
                def run(self):
                    c.value = 11

            t = MyThread()
            t.start()
            t.join()
            assert c.value == 11

        run_ok(main)

    def test_double_start_crashes(self):
        def main():
            t = shim_threading.Thread(target=None)
            t.start()
            t.start()

        err = run_error(main)
        assert isinstance(err, GuestCrashError)
        assert "started once" in str(err)

    def test_join_before_start_crashes(self):
        def main():
            t = shim_threading.Thread(target=None)
            t.join()

        err = run_error(main)
        assert isinstance(err, GuestCrashError)
        assert "before it is started" in str(err)

    def test_current_thread_and_ident(self):
        def main():
            names = []

            def worker():
                me = shim_threading.current_thread()
                names.append((me.name, me.ident))

            names.append(shim_threading.current_thread().name)
            t = shim_threading.Thread(target=worker)
            t.start()
            t.join()
            assert names[0] == "MainThread"
            assert names[1] == (f"Thread-T{t.ident}", t.ident)

        run_ok(main)

    def test_group_rejected(self):
        def main():
            shim_threading.Thread(group=object())

        with pytest.raises(ShimUsageError, match="group"):
            execute(program_from_function(main))


# ---------------------------------------------------------------------------
# shared state
# ---------------------------------------------------------------------------

class TestShared:
    def test_lost_update_found_by_dpor(self):
        def main():
            c = Cell()

            def worker():
                c.value += 1

            t1 = shim_threading.Thread(target=worker)
            t2 = shim_threading.Thread(target=worker)
            t1.start()
            t2.start()
            t1.join()
            t2.join()
            assert c.value == 2, c.value

        stats = run_single(program_from_function(main), "dpor", LIM)
        kinds = {e.kind for e in stats.errors}
        assert kinds == {"GuestCrashError"}

    def test_augassign_is_two_events(self):
        def main():
            c = Cell()
            c.value += 1

        result = run_ok(main)
        kinds = [e.kind.name for e in result.events]
        assert kinds.count("READ") == 1
        assert kinds.count("WRITE") == 1

    def test_cells_named_after_class_and_attr(self):
        def main():
            c = Cell()
            c.value += 1

        program = program_from_function(main)
        ex = Executor(program)
        while not ex.is_done():
            ex.step(ex.enabled()[0])
        names = [o.name for o in ex.instance.registry.objects]
        assert "Cell.value#0" in names
