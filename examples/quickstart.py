#!/usr/bin/env python3
"""Quickstart: the paper's Figure 1, end to end.

Builds the two-thread program from the paper, shows the regular and
lazy happens-before relations of one schedule, and then lets every
exploration strategy loose on it — reproducing the headline numbers:
72 schedules, 2 HBR classes, 1 lazy HBR class, 1 final state.

Run:  python examples/quickstart.py
"""

from repro import Program, execute
from repro.core.relations import PartialOrder
from repro.explore import (
    DFSExplorer,
    DPORExplorer,
    HBRCachingExplorer,
    LazyDPORExplorer,
)


def build(p):
    """T1: lock(m); read(x); unlock(m); write(y)
    T2: write(z); lock(m); read(x); unlock(m)"""
    m = p.mutex("m")
    x = p.var("x", 0)
    y = p.var("y", 0)
    z = p.var("z", 0)

    def t1(api):
        yield api.lock(m)
        v = yield api.read(x)
        yield api.unlock(m)
        yield api.write(y, v + 1)

    def t2(api):
        yield api.write(z, 7)
        yield api.lock(m)
        yield api.read(x)
        yield api.unlock(m)

    p.thread(t1, name="T1")
    p.thread(t2, name="T2")


def main():
    program = Program("figure1", build)

    print("=" * 64)
    print("One schedule (T1 runs first), and its two relations")
    print("=" * 64)
    result = execute(program, schedule=[0, 0, 0, 0, 0, 1])
    print(f"final state: {result.final_state}")
    print()
    print("regular happens-before relation:")
    print(PartialOrder(result.events, lazy=False).render())
    print()
    print("lazy happens-before relation (mutex edges removed):")
    print(PartialOrder(result.events, lazy=True).render())
    print()

    print("=" * 64)
    print("Exploration: who needs how many schedules?")
    print("=" * 64)
    for explorer in (
        DFSExplorer(program),
        DPORExplorer(program),
        HBRCachingExplorer(program),
        HBRCachingExplorer(program, lazy=True),
        LazyDPORExplorer(program),
    ):
        stats = explorer.run()
        stats.verify_inequality()
        print(stats.summary())

    print()
    print("Reading: DFS proves there are 72 interleavings but only ONE")
    print("final state.  DPOR needs 2 schedules (one per HBR class).")
    print("The lazy HBR recognises that the two lock orders are")
    print("equivalent, collapsing everything to a single class — the")
    print("paper's key observation.")


if __name__ == "__main__":
    main()
