#!/usr/bin/env python3
"""Regenerate the paper's Figure 3: terminal lazy HBRs explored by
regular HBR caching vs lazy HBR caching, over all 79 suite benchmarks.

Usage:
    python examples/run_figure3.py [schedule_limit] [seconds_per_benchmark] [jobs]

Defaults: limit 2000, 10 s per benchmark (per explorer), 1 job.  With
``jobs > 1`` the per-benchmark cells are sharded across a process pool
(same rows bit-for-bit when only the schedule limit binds; a binding
wall-clock cap is load-dependent either way — see
``python -m repro campaign``).
"""

import sys

from repro.analysis import figure3_report, run_figure3


def main():
    limit = int(sys.argv[1]) if len(sys.argv) > 1 else 2_000
    seconds = float(sys.argv[2]) if len(sys.argv) > 2 else 10.0
    jobs = int(sys.argv[3]) if len(sys.argv) > 3 else 1
    rows = run_figure3(
        schedule_limit=limit,
        seconds_per_benchmark=seconds,
        progress=print,
        jobs=jobs,
    )
    print()
    print(figure3_report(rows, limit))


if __name__ == "__main__":
    main()
