#!/usr/bin/env python3
"""Scenario: hunting real concurrency bugs with SCT.

Three buggy programs from the suite — an AB-BA deadlock, a racy bank
whose audit fails, and a broken Peterson lock — are explored with DPOR.
For each bug found, the reported schedule is replayed to demonstrate
deterministic reproduction (the whole point of *systematic* testing:
no flaky reruns, the failing interleaving is a first-class artefact).

Run:  python examples/find_the_bug.py
"""

from repro import execute
from repro.explore import DPORExplorer, ExplorationLimits
from repro.suite.bank import bank_racy
from repro.suite.locks import lock_order_deadlock
from repro.suite.mutual_exclusion import peterson


def hunt(program, limits):
    print(f"--- {program.name} ---")
    print(f"    {program.description}")
    stats = DPORExplorer(program, limits).run()
    if not stats.errors:
        print(f"    no bugs in {stats.num_schedules} schedules "
              f"({'exhaustive' if stats.exhausted else 'limit hit'})\n")
        return
    for finding in stats.errors:
        print(f"    FOUND {finding.kind}: {finding.message}")
        print(f"    schedule: {finding.schedule}")
        replay = execute(program, schedule=finding.schedule)
        assert replay.error is not None, "bug must reproduce!"
        print(f"    replayed -> {type(replay.error).__name__}: "
              f"{replay.error} (deterministic)")
    print(f"    ({stats.num_schedules} schedules explored, "
          f"{len(stats.errors)} distinct failures)\n")


def main():
    limits = ExplorationLimits(max_schedules=20_000)
    hunt(lock_order_deadlock(fixed=False), limits)
    hunt(bank_racy(2), limits)
    hunt(peterson(buggy=True), limits)

    print("and the fixed versions come back clean:")
    hunt(lock_order_deadlock(fixed=True), limits)
    hunt(peterson(buggy=False), limits)


if __name__ == "__main__":
    main()
