#!/usr/bin/env python3
"""Regenerate the paper's Figure 2: #HBRs vs #lazy HBRs under DPOR,
over all 79 suite benchmarks.

Usage:
    python examples/run_figure2.py [schedule_limit] [seconds_per_benchmark]

Defaults: limit 2000, 10 s per benchmark.  The paper used 100,000
schedules on an instrumented JVM; every counted quantity grows
monotonically with the limit, so the diagonal structure is unchanged —
see EXPERIMENTS.md for the calibration discussion.
"""

import sys

from repro.analysis import figure2_report, run_figure2


def main():
    limit = int(sys.argv[1]) if len(sys.argv) > 1 else 2_000
    seconds = float(sys.argv[2]) if len(sys.argv) > 2 else 10.0
    rows = run_figure2(
        schedule_limit=limit,
        seconds_per_benchmark=seconds,
        progress=print,
    )
    print()
    print(figure2_report(rows, limit))


if __name__ == "__main__":
    main()
