#!/usr/bin/env python3
"""Regenerate the paper's Figure 2: #HBRs vs #lazy HBRs under DPOR,
over all 79 suite benchmarks.

Usage:
    python examples/run_figure2.py [schedule_limit] [seconds_per_benchmark] [jobs]

Defaults: limit 2000, 10 s per benchmark, 1 job.  The paper used
100,000 schedules on an instrumented JVM; every counted quantity grows
monotonically with the limit, so the diagonal structure is unchanged —
see EXPERIMENTS.md for the calibration discussion.  With ``jobs > 1``
the benchmarks are sharded across a process pool (same rows bit-for-bit
when only the schedule limit binds; a binding wall-clock cap is
load-dependent either way — see ``python -m repro campaign``).
"""

import sys

from repro.analysis import figure2_report, run_figure2


def main():
    limit = int(sys.argv[1]) if len(sys.argv) > 1 else 2_000
    seconds = float(sys.argv[2]) if len(sys.argv) > 2 else 10.0
    jobs = int(sys.argv[3]) if len(sys.argv) > 3 else 1
    rows = run_figure2(
        schedule_limit=limit,
        seconds_per_benchmark=seconds,
        progress=print,
        jobs=jobs,
    )
    print()
    print(figure2_report(rows, limit))


if __name__ == "__main__":
    main()
