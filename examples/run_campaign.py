#!/usr/bin/env python3
"""Sharded campaign over the full suite, programmatically.

Runs the ``dpor`` / ``hbr-caching`` / ``lazy-hbr-caching`` cells for
every benchmark across a worker pool, checkpointing to
``campaign.ckpt.json`` (interrupt and re-run to resume), then derives
the Figure 2 and Figure 3 reports from the same results — no second
pass over the suite.

Usage:
    python examples/run_campaign.py [schedule_limit] [jobs]

Equivalent CLI:
    python -m repro campaign --jobs 8 --resume campaign.ckpt.json \
        --out report.json
"""

import sys

from repro.analysis import (
    figure2_report,
    figure2_rows_from_cells,
    figure3_report,
    figure3_rows_from_cells,
)
from repro.campaign import ResultStore, build_cells, run_campaign
from repro.explore import ExplorationLimits
from repro.suite import REGISTRY


def main():
    limit = int(sys.argv[1]) if len(sys.argv) > 1 else 2_000
    jobs = int(sys.argv[2]) if len(sys.argv) > 2 else 4

    cells = build_cells(
        sorted(REGISTRY), ["dpor", "hbr-caching", "lazy-hbr-caching"]
    )
    store = ResultStore("campaign.ckpt.json")
    campaign = run_campaign(
        cells,
        ExplorationLimits(max_schedules=limit, max_seconds=10.0),
        jobs=jobs,
        store=store,
        progress=print,
    )
    print(
        f"\n{len(campaign.results)} cells "
        f"({campaign.num_cached} from checkpoint) in "
        f"{campaign.elapsed:.1f}s with {jobs} jobs\n"
    )
    for failure in campaign.failures:
        print(f"FAILED {failure.cell.key}: {failure.error}")

    print(figure2_report(figure2_rows_from_cells(campaign.results), limit))
    print()
    print(figure3_report(figure3_rows_from_cells(campaign.results), limit))


if __name__ == "__main__":
    main()
