#!/usr/bin/env python3
"""Scenario: testing a coarse-locked in-memory KV "server".

The paper's motivation: well-engineered code often uses one big lock
around a shared structure even when requests touch disjoint keys.  The
regular happens-before relation must order every pair of critical
sections, so DPOR has to explore every permutation of requests; the
lazy HBR sees through the lock and collapses the disjoint ones.

This example builds a little KV store handling a mixed request load
(disjoint PUTs, shared-counter bumps), explores it with DPOR vs the
lazy strategies, and verifies a consistency property on every schedule.

Run:  python examples/coarse_grained_server.py
"""

from repro import Program
from repro.explore import (
    DPORExplorer,
    ExplorationLimits,
    HBRCachingExplorer,
    LazyDPORExplorer,
)

NUM_CLIENTS = 3


def build(p):
    big_lock = p.mutex("big_lock")
    store = p.dict("store")
    request_count = p.var("request_count", 0)

    def client(api, me):
        # request 1: PUT to the client's own key (disjoint across clients)
        yield api.lock(big_lock)
        yield api.write(store, f"value-{me}", key=me)
        yield api.unlock(big_lock)
        # request 2: bump the global request counter (shared)
        yield api.lock(big_lock)
        n = yield api.read(request_count)
        yield api.write(request_count, n + 1)
        yield api.unlock(big_lock)

    def invariant_checker(api, clients):
        # runs last in program order per thread; checks under the lock
        yield api.lock(big_lock)
        n = yield api.read(request_count)
        yield api.unlock(big_lock)
        api.guest_assert(0 <= n <= clients, "counter out of range")

    for me in range(NUM_CLIENTS):
        p.thread(client, me)
    p.thread(invariant_checker, NUM_CLIENTS)


def main():
    program = Program("kv_server", build)
    limits = ExplorationLimits(max_schedules=50_000)

    print("coarse-locked KV server, "
          f"{NUM_CLIENTS} clients x 2 requests each\n")
    header = f"{'strategy':<20} {'schedules':>10} {'#HBRs':>8} {'#lazy':>8} {'#states':>8} {'errors':>7}"
    print(header)
    print("-" * len(header))
    for explorer in (
        DPORExplorer(program, limits),
        HBRCachingExplorer(program, limits, lazy=False),
        HBRCachingExplorer(program, limits, lazy=True),
        LazyDPORExplorer(program, limits),
    ):
        stats = explorer.run()
        stats.verify_inequality()
        print(
            f"{stats.explorer_name:<20} {stats.num_schedules:>10} "
            f"{stats.num_hbrs:>8} {stats.num_lazy_hbrs:>8} "
            f"{stats.num_states:>8} {len(stats.errors):>7}"
        )

    print()
    print("The PUTs to disjoint keys make most HBR classes collapse")
    print("into far fewer lazy classes; only the counter bumps (true")
    print("data conflicts) keep schedules genuinely distinct.")


if __name__ == "__main__":
    main()
