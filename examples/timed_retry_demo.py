#!/usr/bin/env python3
"""Scenario: a retry-with-timeout worker, checked on the virtual clock.

``lease_worker()`` below is ordinary ``threading`` code with the
imports switched to ``repro.shim``: a holder works under a lock (the
"lease") while a contender retries ``lock.acquire(timeout=)`` with an
``Event.wait(timeout=)`` backoff between attempts.  The seeded bug is
the classic distributed-systems sin — after the retries run out the
contender assumes the holder is dead and writes ownership *without*
the lock.

Under real threading this failure needs the wall clock to land inside
the holder's critical section — a flaky, unreproducible race.  Here
every ``timeout=`` runs on the executor's deterministic virtual clock
(DESIGN.md §12), so "the deadline fired while the holder was mid-work"
is just another scheduling branch: DPOR enumerates it, finds the
stolen lease, and minimizes a schedule that replays it every time.

Run:  python examples/timed_retry_demo.py
CLI:  python -m repro check examples.timed_retry_demo:lease_worker --expect bug
"""

import sys

import repro
from repro.shim import threading


@repro.shared
class Lease:
    """Attribute accesses on @repro.shared objects are scheduling
    points, so the unlocked ownership write stays visible to DPOR."""

    def __init__(self):
        self.owner = 0


def lease_worker():
    lease = Lease()
    lock = threading.Lock()
    backoff = threading.Event()  # never set: pure timed backoff

    def holder():
        with lock:
            lease.owner = 1
            # work under the lease; virtual time may run past the
            # contender's deadlines while this thread is mid-section
            assert lease.owner == 1, "lease stolen while still held"

    def contender():
        for _ in range(2):
            if lock.acquire(timeout=0.05):
                lease.owner = 2          # took over cleanly
                lock.release()
                return
            backoff.wait(timeout=0.01)   # retry backoff (virtual)
        # BUG: retries exhausted, so "the holder must be dead" —
        # writes ownership without holding the lock
        lease.owner = 2

    threads = [threading.Thread(target=holder),
               threading.Thread(target=contender)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()


def main():
    limit = int(sys.argv[1]) if len(sys.argv) > 1 else 20_000
    result = repro.check(lease_worker, explorer="dpor",
                         max_schedules=max(limit, 2_000))
    print(result.summary())
    assert result.bug_found, "DPOR must find the stolen lease"
    assert result.minimized_schedule is not None
    assert len(result.minimized_schedule) <= len(result.schedule)

    print()
    print("shortest reproduction timeline:")
    for line in result.trace:
        print(f"  {line}")


if __name__ == "__main__":
    main()
