#!/usr/bin/env python3
"""Scenario: checking *real* threading/queue code, not DSL guests.

``pipeline()`` below is an ordinary worker-pool program — the kind of
code you would write against the standard library, with the imports
switched to ``repro.shim``.  Two workers pull jobs from a
``queue.Queue`` and update a shared counter *without holding a lock*
(the seeded bug: the ``+=`` is a read-modify-write, so two interleaved
workers can lose an update).

``repro.check()`` explores the program with DPOR, finds the lost
update, minimizes the failing schedule by replay, and renders the
shortest reproduction as a per-thread timeline.  A second invocation
produces the identical result — systematic testing has no flaky reruns.

Run:  python examples/real_code_demo.py
"""

import repro
from repro.shim import queue, threading


@repro.shared
class Stats:
    """Attribute accesses on @repro.shared objects are scheduling
    points, so the data race below stays visible to DPOR."""

    def __init__(self):
        self.processed = 0


def pipeline():
    stats = Stats()
    jobs = queue.Queue()

    def worker():
        item = jobs.get()
        # BUG: unsynchronized read-modify-write on the shared counter —
        # two workers can both read 0 and both write back item, losing
        # one update.
        stats.processed += item
        jobs.task_done()

    workers = [threading.Thread(target=worker) for _ in range(2)]
    for t in workers:
        t.start()
    for item in (1, 1):
        jobs.put(item)
    jobs.join()
    for t in workers:
        t.join()
    assert stats.processed == 2, f"lost update: {stats.processed}"


def normalized(result):
    """The result minus wall-clock noise, for the determinism check."""
    d = result.to_dict()
    d["elapsed"] = 0.0
    d["stats"]["elapsed"] = 0.0
    return d


def main():
    result = repro.check(pipeline, explorer="dpor", max_schedules=20_000)
    print(result.summary())
    assert result.bug_found, "DPOR must find the seeded lost update"
    assert result.minimized_schedule is not None
    assert len(result.minimized_schedule) <= len(result.schedule)

    print()
    print("shortest reproduction timeline:")
    for line in result.trace:
        print(f"  {line}")

    again = repro.check(pipeline, explorer="dpor", max_schedules=20_000)
    assert normalized(again) == normalized(result)
    print()
    print("identical result across two invocations (deterministic)")


if __name__ == "__main__":
    main()
