#!/usr/bin/env python3
"""Scenario: the full SCT debugging workflow on one bug.

1. **Detect** — run happens-before race detection to see which accesses
   are unsynchronised.
2. **Expose** — explore with DPOR until the property violation fires.
3. **Minimize** — shrink the failing schedule with delta debugging.
4. **Understand** — render the minimized schedule as a per-thread
   timeline, the artefact you would paste into a bug report.

The subject is the racy bank: two unlocked transfers plus an auditor
asserting conservation of money.

Run:  python examples/debugging_workflow.py
"""

from repro import execute
from repro.analysis.races import find_races, race_summary
from repro.analysis.traceviz import names_of, render_timeline
from repro.explore import (
    DPORExplorer,
    ExplorationLimits,
    minimize_schedule,
)
from repro.suite.bank import bank_racy


def main():
    program = bank_racy(2)
    limits = ExplorationLimits(max_schedules=30_000)

    print("=" * 70)
    print("step 1: race detection (sync-only happens-before)")
    print("=" * 70)
    report = find_races(program, limits)
    names = names_of(program)
    print(race_summary(report, names))
    print()

    print("=" * 70)
    print("step 2: systematic exploration until the assertion fires")
    print("=" * 70)
    stats = DPORExplorer(program, limits).run()
    finding = stats.errors[0]
    print(f"{stats.num_schedules} schedules explored, "
          f"{len(stats.errors)} distinct violations")
    print(f"first: {finding.kind}: {finding.message}")
    print(f"schedule ({len(finding.schedule)} choices): {finding.schedule}")
    print()

    print("=" * 70)
    print("step 3: schedule minimization")
    print("=" * 70)
    result = minimize_schedule(program, finding.schedule)
    print(f"minimized to {len(result.schedule)} choices "
          f"({result.reduction_pct:.0f}% shorter, "
          f"{result.replays} replays): {result.schedule}")
    print()

    print("=" * 70)
    print("step 4: the failing interleaving, human-readable")
    print("=" * 70)
    replay = execute(program, schedule=result.schedule)
    assert replay.error is not None
    print(render_timeline(replay, names))


if __name__ == "__main__":
    main()
