"""Shared configuration for the benchmark harness.

Environment knobs:

* ``REPRO_BENCH_LIMIT``   — schedule limit per benchmark instance
  (default 500; the paper used 100,000 — see EXPERIMENTS.md for why a
  lower default preserves the figures' shape).
* ``REPRO_BENCH_SECONDS`` — wall-clock cap per benchmark instance
  (default 5 s).
* ``REPRO_BENCH_FULL``    — set to 1 to run over all 79 benchmarks
  instead of the representative subset.

Artefacts (the regenerated figure reports) are written to
``benchmarks/output/``.
"""

from __future__ import annotations

import os
import pathlib

import pytest

BENCH_LIMIT = int(os.environ.get("REPRO_BENCH_LIMIT", "500"))
BENCH_SECONDS = float(os.environ.get("REPRO_BENCH_SECONDS", "5"))
BENCH_FULL = os.environ.get("REPRO_BENCH_FULL", "0") == "1"

OUTPUT_DIR = pathlib.Path(__file__).parent / "output"


@pytest.fixture(scope="session")
def output_dir() -> pathlib.Path:
    OUTPUT_DIR.mkdir(exist_ok=True)
    return OUTPUT_DIR


def selected_benchmarks():
    """All 79 under REPRO_BENCH_FULL=1, else a representative subset
    spanning every behaviour class (diagonal, lazy-win, condvar,
    semaphore, buggy)."""
    from repro.suite import all_benchmarks, REGISTRY
    if BENCH_FULL:
        return all_benchmarks()
    subset_ids = [1, 3, 4, 6, 8, 11, 12, 13, 15, 17, 18, 19, 22, 24, 28,
                  30, 32, 36, 38, 40, 43, 45, 47, 48, 52, 54, 55, 56, 59,
                  62, 64, 66, 69, 71, 73, 75, 77, 78, 79]
    return [REGISTRY[i] for i in subset_ids]
