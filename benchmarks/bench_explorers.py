"""Explorer ablation benchmarks — the design-decision measurements
called out in DESIGN.md §5:

* DPOR with vs without sleep sets (schedules explored);
* lazy-DPOR vs plain DPOR (events executed to full state coverage);
* regular vs lazy HBR caching under a fixed budget;
* PCT / random walk baselines for context.
"""

from __future__ import annotations

import pytest

from repro.explore import (
    DFSExplorer,
    DPORExplorer,
    ExplorationLimits,
    HBRCachingExplorer,
    LazyDPORExplorer,
    PCTExplorer,
    RandomWalkExplorer,
)
from repro.suite import REGISTRY

LIM = ExplorationLimits(max_schedules=20_000)

#: (bench id, label) — one diagonal program, one lazy-win program,
#: one condvar program
CASES = [
    (4, "racy_counter"),
    (13, "disjoint_coarse"),
    (24, "bounded_buffer"),
]


@pytest.mark.parametrize("bid,label", CASES)
def test_dpor_with_sleep_sets(benchmark, bid, label):
    program = REGISTRY[bid].program
    stats = benchmark.pedantic(
        lambda: DPORExplorer(program, LIM, sleep_sets=True).run(),
        rounds=1, iterations=1,
    )
    assert stats.num_states >= 1
    benchmark.extra_info["schedules"] = stats.num_schedules


@pytest.mark.parametrize("bid,label", CASES)
def test_dpor_without_sleep_sets(benchmark, bid, label):
    program = REGISTRY[bid].program
    stats = benchmark.pedantic(
        lambda: DPORExplorer(program, LIM, sleep_sets=False).run(),
        rounds=1, iterations=1,
    )
    benchmark.extra_info["schedules"] = stats.num_schedules


@pytest.mark.parametrize("bid,label", CASES)
def test_lazy_dpor(benchmark, bid, label):
    program = REGISTRY[bid].program
    stats = benchmark.pedantic(
        lambda: LazyDPORExplorer(program, LIM).run(),
        rounds=1, iterations=1,
    )
    benchmark.extra_info["schedules"] = stats.num_schedules
    benchmark.extra_info["events"] = stats.num_events


def test_sleep_sets_reduce_work():
    """Ablation assertion: sleep sets never increase the schedule count
    and typically cut it substantially on symmetric programs."""
    program = REGISTRY[4].program  # racy_counter 3x1
    with_sleep = DPORExplorer(program, LIM, sleep_sets=True).run()
    without = DPORExplorer(program, LIM, sleep_sets=False).run()
    assert with_sleep.num_schedules <= without.num_schedules
    assert with_sleep.num_states == without.num_states


def test_lazy_dpor_cuts_events_on_coarse_locks():
    """Ablation assertion: on a coarse-lock/disjoint-data program the
    lazy prefix pruning cuts the executed events versus plain DPOR
    while reaching the same states."""
    program = REGISTRY[13].program  # disjoint_coarse 3x2
    dpor = DPORExplorer(program, LIM).run()
    lazy = LazyDPORExplorer(program, LIM).run()
    assert lazy.num_events < dpor.num_events
    assert lazy.num_states == dpor.num_states


@pytest.mark.parametrize("lazy", [False, True], ids=["regular", "lazy"])
def test_caching_budget_race(benchmark, lazy):
    """Figure 3's mechanism, head to head: distinct lazy HBRs reached
    under an identical tight budget."""
    program = REGISTRY[13].program
    lim = ExplorationLimits(max_schedules=60)
    stats = benchmark.pedantic(
        lambda: HBRCachingExplorer(program, lim, lazy=lazy).run(),
        rounds=1, iterations=1,
    )
    benchmark.extra_info["lazy_hbrs"] = stats.num_lazy_hbrs


def test_baselines_for_context(benchmark):
    """Random walk + PCT on the figure1 program (sanity context row)."""
    program = REGISTRY[1].program
    lim = ExplorationLimits(max_schedules=200)

    def run_baselines():
        rw = RandomWalkExplorer(program, lim, seed=1).run()
        pct = PCTExplorer(program, lim, depth=3, seed=1).run()
        return rw, pct

    rw, pct = benchmark.pedantic(run_baselines, rounds=1, iterations=1)
    assert rw.num_states == pct.num_states == 1


def test_dfs_baseline(benchmark):
    program = REGISTRY[1].program
    stats = benchmark.pedantic(
        lambda: DFSExplorer(program, LIM).run(), rounds=1, iterations=1
    )
    assert stats.num_schedules == 72
