"""Section 3 inequality benchmark:

    #states <= #lazy HBRs <= #HBRs <= #schedules <= limit

The paper *assumes* this chain (their tool cannot observe JVM states);
our simulator hashes real final states, so the chain is measured and
asserted for every benchmark instance.  Writes
benchmarks/output/inequality.md.
"""

from __future__ import annotations

from repro.analysis import inequality_report, run_inequality_table

from conftest import BENCH_LIMIT, BENCH_SECONDS, selected_benchmarks


def _run_table():
    return run_inequality_table(
        selected_benchmarks(),
        schedule_limit=BENCH_LIMIT,
        seconds_per_benchmark=BENCH_SECONDS,
    )


def test_inequality_chain(benchmark, output_dir):
    rows = benchmark.pedantic(_run_table, rounds=1, iterations=1)
    report = inequality_report(rows)
    (output_dir / "inequality.md").write_text(report)

    for row in rows:
        s = row.stats
        assert s.num_states <= s.num_lazy_hbrs, row.name
        assert s.num_lazy_hbrs <= s.num_hbrs, row.name
        assert s.num_hbrs <= s.num_schedules, row.name
        assert s.num_schedules <= BENCH_LIMIT, row.name
