"""Figure 2 regeneration benchmark: DPOR over the suite, counting
terminal HBRs vs terminal lazy HBRs.

Run:   pytest benchmarks/bench_figure2.py --benchmark-only
Full:  REPRO_BENCH_FULL=1 REPRO_BENCH_LIMIT=100000 pytest ...

Writes the rendered report (scatter + table + paper comparison) to
benchmarks/output/figure2.md and asserts the qualitative claims:
a substantial fraction of benchmarks falls strictly below the diagonal,
and among those a large share of the explored HBRs is redundant.
"""

from __future__ import annotations

from repro.analysis import figure2_report, redundancy_summary, run_figure2

from conftest import BENCH_LIMIT, BENCH_SECONDS, selected_benchmarks


def _run_figure2():
    return run_figure2(
        selected_benchmarks(),
        schedule_limit=BENCH_LIMIT,
        seconds_per_benchmark=BENCH_SECONDS,
    )


def test_figure2(benchmark, output_dir):
    rows = benchmark.pedantic(_run_figure2, rounds=1, iterations=1)
    report = figure2_report(rows, BENCH_LIMIT)
    (output_dir / "figure2.md").write_text(report)

    points = [r.as_point() for r in rows]
    summary = redundancy_summary(points)

    # Shape assertions mirroring the paper's Figure 2 findings:
    # (1) every benchmark satisfies #lazy <= #HBRs (no point above the
    #     diagonal), which run_figure2 verifies internally;
    # (2) a sizeable fraction of benchmarks lies strictly below the
    #     diagonal (paper: 33/79 ~ 42%);
    frac_below = summary["num_below_diagonal"] / summary["num_benchmarks"]
    assert frac_below >= 0.25, f"only {frac_below:.0%} below the diagonal"
    # (3) among those, most explored HBRs are redundant (paper: 80%).
    assert summary["redundant_pct"] >= 50.0, (
        f"only {summary['redundant_pct']:.0f}% of HBRs redundant"
    )


def test_figure2_monotone_in_limit(benchmark):
    """Calibration: all counted quantities grow monotonically with the
    schedule limit, so a lower limit preserves diagonal structure."""
    from repro.suite import REGISTRY

    def run_two_limits():
        bench = [REGISTRY[13]]  # disjoint_coarse 3x2: limit is binding
        small = run_figure2(bench, schedule_limit=50)[0]
        large = run_figure2(bench, schedule_limit=200)[0]
        return small, large

    small, large = benchmark.pedantic(run_two_limits, rounds=1, iterations=1)
    assert small.num_hbrs <= large.num_hbrs
    assert small.num_lazy_hbrs <= large.num_lazy_hbrs
    assert small.num_states <= large.num_states
