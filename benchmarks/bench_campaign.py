"""Campaign sharding benchmark: the same cell matrix executed serially
and across a worker pool.

Run:   pytest benchmarks/bench_campaign.py --benchmark-only
Full:  REPRO_BENCH_FULL=1 pytest benchmarks/bench_campaign.py ...

Asserts the contract the campaign subsystem is built on: the parallel
run must produce bit-for-bit the aggregated statistics of the serial
run (wall-clock is the only thing allowed to differ).
"""

from __future__ import annotations

import os

from repro.campaign import build_cells, comparison_rows, run_campaign
from repro.explore import ExplorationLimits
from repro.explore.controller import matrix_report

from conftest import BENCH_LIMIT, selected_benchmarks

JOBS = int(os.environ.get("REPRO_BENCH_JOBS", str(os.cpu_count() or 2)))
EXPLORERS = ["dpor", "hbr-caching", "lazy-hbr-caching"]


def _cells():
    return build_cells(
        [b.bench_id for b in selected_benchmarks()], EXPLORERS
    )


def _limits():
    # schedule-limit bound only: a binding wall-clock cap would make
    # limit_hit depend on machine load and break the serial/sharded
    # bit-for-bit comparison below
    return ExplorationLimits(max_schedules=BENCH_LIMIT)


def test_campaign_serial(benchmark):
    campaign = benchmark.pedantic(
        lambda: run_campaign(_cells(), _limits(), jobs=1),
        rounds=1, iterations=1,
    )
    assert not campaign.failures


def test_campaign_sharded(benchmark, output_dir):
    campaign = benchmark.pedantic(
        lambda: run_campaign(_cells(), _limits(), jobs=JOBS),
        rounds=1, iterations=1,
    )
    assert not campaign.failures

    report = matrix_report(comparison_rows(campaign.results))
    (output_dir / "campaign.md").write_text(report)

    # the sharded run must agree with the serial one bit-for-bit
    serial = run_campaign(_cells(), _limits(), jobs=1)
    assert report == matrix_report(comparison_rows(serial.results))
