"""Figure 3 regeneration benchmark: regular vs lazy HBR caching,
counting the distinct terminal lazy HBRs each reaches within the
schedule budget.

Run:   pytest benchmarks/bench_figure3.py --benchmark-only

Writes benchmarks/output/figure3.md and asserts the qualitative claims:
lazy HBR caching never reaches *fewer* lazy HBRs on exhausted
benchmarks, and on budget-limited lock-heavy benchmarks it reaches
more (the paper: 18/79 benchmarks, +84%).
"""

from __future__ import annotations

from repro.analysis import caching_gain_summary, figure3_report, run_figure3

from conftest import BENCH_LIMIT, BENCH_SECONDS, selected_benchmarks


def _run_figure3():
    return run_figure3(
        selected_benchmarks(),
        schedule_limit=BENCH_LIMIT,
        seconds_per_benchmark=BENCH_SECONDS,
    )


def test_figure3(benchmark, output_dir):
    rows = benchmark.pedantic(_run_figure3, rounds=1, iterations=1)
    report = figure3_report(rows, BENCH_LIMIT)
    (output_dir / "figure3.md").write_text(report)

    # On benchmarks both explorers exhausted, the sets of reachable lazy
    # HBRs coincide (both are sound + complete), so counts must agree.
    for r in rows:
        if not r.limit_hit:
            assert r.lazy_hbrs_lazy_caching >= r.lazy_hbrs_regular_caching, r

    # Across the suite, lazy caching must show a strict gain somewhere
    # (the paper's 18/79) — *provided* the budget is binding anywhere.
    # The gain is a budget effect: when neither explorer hits the limit,
    # both enumerate the complete set of lazy HBRs and tie (the paper's
    # other 61 benchmarks).  On benchmarks where the schedule budget
    # runs out, the lazy variant's earlier pruning reaches more of them.
    summary = caching_gain_summary([r.as_point() for r in rows])
    any_limited = any(r.limit_hit for r in rows)
    if any_limited:
        assert summary["num_gaining"] >= 1, (
            "budget was binding yet no benchmark gained from lazy caching"
        )


def test_figure3_gain_concentrates_on_coarse_locks(benchmark):
    """The gain mechanism: under a tight budget, lazy caching reaches
    states regular caching cannot, specifically on coarse-lock
    benchmarks with disjoint data."""
    from repro.suite import REGISTRY

    def run_tight():
        # disjoint_coarse_t3_k2 under a tight budget
        return run_figure3([REGISTRY[13]], schedule_limit=60)[0]

    row = benchmark.pedantic(run_tight, rounds=1, iterations=1)
    assert row.lazy_hbrs_lazy_caching >= row.lazy_hbrs_regular_caching


def test_figure3_stress_strict_gain(benchmark):
    """A scaled-up work-queue instance (coarse lock + data-dependent
    outcomes, the paper's gaining profile): lazy HBR caching must reach
    STRICTLY more terminal lazy HBRs within the same budget.

    This is the magnitude experiment for EXPERIMENTS.md: the shipped
    79-instance suite is smaller than the paper's Java programs, so the
    budget effect shows on few registry instances; scaling one instance
    up reproduces the paper's strict separation."""
    from repro.explore import ExplorationLimits, HBRCachingExplorer
    from repro.suite.collections_prog import work_queue_shared

    program = work_queue_shared(2, 4)
    lim = ExplorationLimits(max_schedules=2_000, max_seconds=60)

    def run_pair():
        regular = HBRCachingExplorer(program, lim, lazy=False).run()
        lazy = HBRCachingExplorer(program, lim, lazy=True).run()
        return regular, lazy

    regular, lazy = benchmark.pedantic(run_pair, rounds=1, iterations=1)
    assert regular.limit_hit and lazy.limit_hit, "budget must be binding"
    assert lazy.num_lazy_hbrs > regular.num_lazy_hbrs, (
        f"expected strict gain, got {regular.num_lazy_hbrs} vs "
        f"{lazy.num_lazy_hbrs}"
    )
