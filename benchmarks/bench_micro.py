"""Micro-benchmarks of the hot paths (per the profiling guidance: the
measured bottlenecks are clock joins, fingerprint updates, and the
executor's step loop — these benches track their throughput)."""

from __future__ import annotations

from repro.core.fingerprint import FingerprintChain
from repro.core.vector_clock import VectorClock, tuple_leq
from repro.runtime.executor import Executor
from repro.runtime.schedule import execute
from repro.suite.counters import disjoint_coarse


def test_vector_clock_join(benchmark):
    a = VectorClock(8, range(8))
    b = VectorClock(8, reversed(range(8)))

    def join():
        c = a.copy()
        for _ in range(100):
            c.join_inplace(b)
        return c

    result = benchmark(join)
    assert result.snapshot()[0] == 7


def test_vector_clock_snapshot(benchmark):
    a = VectorClock(16, range(16))
    benchmark(lambda: [a.snapshot() for _ in range(100)])


def test_tuple_leq(benchmark):
    a = tuple(range(16))
    b = tuple(v + 1 for v in range(16))
    benchmark(lambda: [tuple_leq(a, b) for _ in range(100)])


def test_fingerprint_update(benchmark):
    def run():
        chain = FingerprintChain()
        clock = tuple(range(8))
        for i in range(1000):
            chain.update(i % 4, (i % 19, i % 7, None), clock)
        return chain.prefix_fingerprint()

    benchmark(run)


def test_executor_throughput(benchmark):
    """Events per second through the full executor + dual clock engine."""
    program = disjoint_coarse(4, 4)

    def run_once():
        return execute(program)

    result = benchmark(run_once)
    assert result.ok


def test_executor_stepping_overhead(benchmark):
    """Step-by-step driving (the explorer-facing interface)."""
    program = disjoint_coarse(3, 3)

    def run_steps():
        ex = Executor(program)
        n = 0
        while not ex.is_done():
            ex.step(ex.enabled()[0])
            n += 1
        return n

    n = benchmark(run_steps)
    assert n > 0


def test_program_instantiation(benchmark):
    """Cost of rebuilding a program instance (paid once per schedule)."""
    program = disjoint_coarse(4, 2)
    benchmark(lambda: Executor(program))
