"""Micro-benchmarks of the hot paths (per the profiling guidance: the
measured bottlenecks are clock joins, fingerprint updates, and the
executor's step loop — these benches track their throughput)."""

from __future__ import annotations

import pytest

from repro.core.engines import create_clock_engine
from repro.core.events import OpKind
from repro.core.fingerprint import FingerprintChain
from repro.core.vector_clock import VectorClock, tuple_leq
from repro.runtime.executor import Executor
from repro.runtime.schedule import execute
from repro.suite.counters import disjoint_coarse


def test_vector_clock_join(benchmark):
    a = VectorClock(8, range(8))
    b = VectorClock(8, reversed(range(8)))

    def join():
        c = a.copy()
        for _ in range(100):
            c.join_inplace(b)
        return c

    result = benchmark(join)
    assert result.snapshot()[0] == 7


def test_vector_clock_snapshot(benchmark):
    a = VectorClock(16, range(16))
    benchmark(lambda: [a.snapshot() for _ in range(100)])


def test_tuple_leq(benchmark):
    a = tuple(range(16))
    b = tuple(v + 1 for v in range(16))
    benchmark(lambda: [tuple_leq(a, b) for _ in range(100)])


def test_fingerprint_update(benchmark):
    def run():
        chain = FingerprintChain()
        clock = tuple(range(8))
        for i in range(1000):
            chain.update(i % 4, (i % 19, i % 7, None), clock)
        return chain.prefix_fingerprint()

    benchmark(run)


#: A representative per-event mix for the observe() isolation bench:
#: reads/writes on two variables (both dominance branches), a mutex
#: pair (the lazy side's skip path) and a keyed channel op.
_OBSERVE_MIX = (
    (OpKind.READ, 0, None), (OpKind.WRITE, 0, None),
    (OpKind.LOCK, 2, None), (OpKind.RMW, 1, None),
    (OpKind.UNLOCK, 2, None), (OpKind.CHAN_SEND, 3, 0),
)


@pytest.mark.parametrize("engine", ["ref", "accel"])
def test_observe_isolated(benchmark, engine):
    """observe() alone — THE replay hot path — per backend, with the
    executor, scheduler and program machinery stripped away."""
    nthreads = 3

    def run():
        eng = create_clock_engine(engine)
        eng.reserve(nthreads)
        observe = eng.observe
        for i in range(600):
            kind, oid, key = _OBSERVE_MIX[i % len(_OBSERVE_MIX)]
            observe(i % nthreads, int(kind), oid, key)
        return eng.hbr_fingerprint()

    benchmark(run)


@pytest.mark.parametrize("engine", ["ref", "accel"])
def test_engine_fork(benchmark, engine):
    """Engine fork — paid once per snapshot restore — per backend."""
    eng = create_clock_engine(engine)
    eng.reserve(4)
    for i in range(40):
        kind, oid, key = _OBSERVE_MIX[i % len(_OBSERVE_MIX)]
        eng.observe(i % 4, int(kind), oid, key)
    benchmark(lambda: [eng.fork() for _ in range(50)])


@pytest.mark.parametrize("engine", ["ref", "accel"])
def test_executor_step_isolated(benchmark, engine):
    """The fast-replay executor step loop per backend (accel additionally
    installs the specialized stepper)."""
    program = disjoint_coarse(3, 3)

    def run_steps():
        ex = Executor(program, fast_replay=True, engine=engine)
        n = 0
        while not ex.is_done():
            ex.step(ex.enabled()[0])
            n += 1
        return n

    n = benchmark(run_steps)
    assert n > 0


def test_executor_throughput(benchmark):
    """Events per second through the full executor + dual clock engine."""
    program = disjoint_coarse(4, 4)

    def run_once():
        return execute(program)

    result = benchmark(run_once)
    assert result.ok


def test_executor_stepping_overhead(benchmark):
    """Step-by-step driving (the explorer-facing interface)."""
    program = disjoint_coarse(3, 3)

    def run_steps():
        ex = Executor(program)
        n = 0
        while not ex.is_done():
            ex.step(ex.enabled()[0])
            n += 1
        return n

    n = benchmark(run_steps)
    assert n > 0


def test_program_instantiation(benchmark):
    """Cost of rebuilding a program instance (paid once per schedule)."""
    program = disjoint_coarse(4, 2)
    benchmark(lambda: Executor(program))
