"""One clock protocol for every part of the toolkit that asks "what
time is it?".

Three subsystems used to carry their own ad-hoc notion of time:

* the executor's new deterministic **virtual clock** (integer ticks,
  advanced only by executed time events — see DESIGN.md §12);
* the distributed campaign's lease/heartbeat clock
  (:mod:`repro.campaign.distributed` takes an injectable
  ``clock: Clock``, defaulting to :class:`SystemClock`);
* the chaos/fault-injection tests, which drive lease expiry with a
  hand-cranked test clock (now :class:`ManualClock`).

They now share this one shape: **a clock is a zero-argument callable
returning seconds as a float**.  ``time.monotonic`` already satisfies
it; :class:`SystemClock` wraps it explicitly, :class:`ManualClock` is
the deterministic test double, and :class:`VirtualClock` is the
executor's tick-based clock exposing the same callable face (so lease
logic could, in principle, run on virtual time unchanged).
"""

from __future__ import annotations

import time
from typing import Protocol, runtime_checkable

from .core.events import TICKS_PER_SECOND


@runtime_checkable
class Clock(Protocol):
    """Anything that can be asked for the current time in seconds."""

    def __call__(self) -> float: ...


class SystemClock:
    """Wall time via ``time.monotonic`` — the production default."""

    __slots__ = ()

    def __call__(self) -> float:
        return time.monotonic()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "SystemClock()"


class ManualClock:
    """A hand-cranked clock for deterministic tests: time moves only
    when the test calls :meth:`advance` (or :meth:`set`)."""

    __slots__ = ("_now",)

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)

    def __call__(self) -> float:
        return self._now

    def advance(self, seconds: float) -> float:
        if seconds < 0:
            raise ValueError(f"cannot advance by {seconds!r} seconds")
        self._now += seconds
        return self._now

    def set(self, now: float) -> None:
        if now < self._now:
            raise ValueError(
                f"clock cannot go backwards ({now!r} < {self._now!r})"
            )
        self._now = float(now)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"ManualClock({self._now!r})"


class VirtualClock:
    """The executor's deterministic logical clock.

    Time is an integer tick count (1 tick = 1µs, see
    :data:`~repro.core.events.TICKS_PER_SECOND`) that only ever moves
    forward, and only when the scheduler executes a time event (SLEEP,
    TIME_FIRE, TIMER_TICK) — never from the wall clock.  Calling it
    returns seconds, satisfying the :class:`Clock` protocol.
    """

    __slots__ = ("now_ticks",)

    def __init__(self, start_ticks: int = 0) -> None:
        self.now_ticks = start_ticks

    def __call__(self) -> float:
        return self.now_ticks / TICKS_PER_SECOND

    def advance_to(self, deadline_ticks: int) -> int:
        """Advance to ``deadline_ticks`` (monotone: never backwards)."""
        if deadline_ticks > self.now_ticks:
            self.now_ticks = deadline_ticks
        return self.now_ticks

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"VirtualClock({self.now_ticks})"
