"""``repro.check`` — the one-call front door.

Every way of running the toolkit converges here: hand ``check()`` a
real-code function (explored through the shim frontend), a DSL
:class:`~repro.runtime.program.Program`, or a suite
:class:`~repro.suite.base.Benchmark`, and get back a typed
:class:`CheckResult` — bug or no bug, the minimized reproduction
schedule, a rendered trace, and the full
:class:`~repro.explore.base.ExplorationStats`.

    import repro

    def main():
        ...  # ordinary threading/queue code via repro.shim

    result = repro.check(main)
    if result.bug_found:
        print(result.summary())

Determinism: for a fixed target, explorer and seeds, two invocations
produce identical results (schedules, fingerprints, minimization) — the
explorers are deterministic and seeded randomness is the only
randomness there is.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from .errors import ReproError
from .explore.base import ExplorationLimits, ExplorationStats
from .explore.controller import SEEDED_EXPLORERS, STANDARD_EXPLORERS, run_single
from .explore.minimize import minimize_schedule
from .runtime.program import Program


@dataclass
class CheckResult:
    """Outcome of one :func:`check` call — the single result currency
    shared by the CLI, the campaign driver and the analysis runners."""

    program_name: str
    explorer: str
    seeds: Tuple[int, ...]
    bug_found: bool
    error_kind: Optional[str] = None          #: exception type name
    error_message: Optional[str] = None
    schedule: Optional[List[int]] = None      #: schedule that found the bug
    minimized_schedule: Optional[List[int]] = None
    minimize_replays: int = 0
    minimize_reduction_pct: float = 0.0
    stats: Optional[ExplorationStats] = None
    trace: List[str] = field(default_factory=list)  #: rendered timeline
    elapsed: float = 0.0

    @property
    def repro_schedule(self) -> Optional[List[int]]:
        """The schedule to hand to ``execute(program, schedule=...)`` —
        minimized when minimization succeeded, else the original."""
        if self.minimized_schedule is not None:
            return self.minimized_schedule
        return self.schedule

    def summary(self) -> str:
        lines = [
            f"program {self.program_name!r}: "
            + (f"BUG ({self.error_kind})" if self.bug_found else "no bug found")
        ]
        s = self.stats
        if s is not None:
            lines.append(
                f"  explorer {self.explorer}: {s.num_schedules} schedules, "
                f"{s.num_states} states, {s.num_events} events"
                + (" (limit hit)" if s.limit_hit else "")
            )
        if self.bug_found:
            lines.append(f"  error: {self.error_message}")
            if self.schedule is not None:
                lines.append(f"  schedule: {len(self.schedule)} events")
            if self.minimized_schedule is not None:
                lines.append(
                    f"  minimized: {len(self.minimized_schedule)} events "
                    f"({self.minimize_reduction_pct:.0f}% shorter, "
                    f"{self.minimize_replays} replays)"
                )
        lines.append(f"  elapsed: {self.elapsed:.2f}s")
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "program": self.program_name,
            "explorer": self.explorer,
            "seeds": list(self.seeds),
            "bug_found": self.bug_found,
            "error_kind": self.error_kind,
            "error_message": self.error_message,
            "schedule": list(self.schedule) if self.schedule is not None else None,
            "minimized_schedule": (
                list(self.minimized_schedule)
                if self.minimized_schedule is not None else None
            ),
            "minimize_replays": self.minimize_replays,
            "minimize_reduction_pct": self.minimize_reduction_pct,
            "stats": self.stats.to_dict() if self.stats is not None else None,
            "trace": list(self.trace),
            "elapsed": self.elapsed,
        }

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "CheckResult":
        stats = d.get("stats")
        return cls(
            program_name=d["program"],
            explorer=d["explorer"],
            seeds=tuple(d.get("seeds", ())),
            bug_found=d["bug_found"],
            error_kind=d.get("error_kind"),
            error_message=d.get("error_message"),
            schedule=(
                list(d["schedule"]) if d.get("schedule") is not None else None
            ),
            minimized_schedule=(
                list(d["minimized_schedule"])
                if d.get("minimized_schedule") is not None else None
            ),
            minimize_replays=d.get("minimize_replays", 0),
            minimize_reduction_pct=d.get("minimize_reduction_pct", 0.0),
            stats=ExplorationStats.from_dict(stats) if stats else None,
            trace=list(d.get("trace", ())),
            elapsed=d.get("elapsed", 0.0),
        )


def _resolve_program(target, name, args, kwargs) -> Program:
    if isinstance(target, Program):
        return target
    prog = getattr(target, "program", None)
    if isinstance(prog, Program):  # suite Benchmark (or anything shaped like it)
        return prog
    if callable(target):
        from .shim import program_from_function
        return program_from_function(target, name=name, args=args,
                                     kwargs=kwargs)
    raise TypeError(
        f"check() target must be a Program, a suite Benchmark or a "
        f"callable, not {type(target).__name__}"
    )


def check(
    target,
    *,
    explorer: str = "dpor",
    limits: Optional[ExplorationLimits] = None,
    max_schedules: Optional[int] = None,
    max_seconds: Optional[float] = None,
    seeds: Sequence[int] = (0,),
    name: Optional[str] = None,
    args: Tuple[Any, ...] = (),
    kwargs: Optional[dict] = None,
    minimize: bool = True,
    trace: bool = True,
    verify: bool = True,
    engine: Optional[str] = None,
) -> CheckResult:
    """Explore ``target`` and report what was found.

    ``target``: a plain function (checked through the shim frontend; may
    use ``repro.shim.threading``/``queue`` and ``@repro.shared``), a DSL
    :class:`Program`, or a suite :class:`Benchmark`.

    ``explorer`` is any registered explorer name (``dpor`` default, see
    ``python -m repro list``); for the seeded explorers (``random``,
    ``pct``) each seed in ``seeds`` is run and the stats are merged.
    ``max_schedules``/``max_seconds`` are shorthand overrides applied on
    top of ``limits``.

    On a finding, the first error's schedule is minimized by replay
    (delta-debugging style) and re-executed to render a per-thread
    timeline of the shortest reproduction.

    ``engine`` pins the clock-engine backend (``"ref"``/``"accel"``;
    ``None`` = auto) for the exploration; findings and statistics are
    identical either way (see :mod:`repro.core.engines`).
    """
    if explorer not in STANDARD_EXPLORERS:
        raise ValueError(
            f"unknown explorer {explorer!r}; available: "
            + ", ".join(sorted(STANDARD_EXPLORERS))
        )
    program = _resolve_program(target, name, args, kwargs)

    lim = limits or ExplorationLimits()
    if max_schedules is not None or max_seconds is not None:
        lim = ExplorationLimits(
            max_schedules=(max_schedules if max_schedules is not None
                           else lim.max_schedules),
            max_seconds=(max_seconds if max_seconds is not None
                         else lim.max_seconds),
            max_events_per_schedule=lim.max_events_per_schedule,
            snapshot_budget_bytes=lim.snapshot_budget_bytes,
        )

    seed_list = tuple(seeds) if explorer in SEEDED_EXPLORERS else (tuple(seeds)[:1] or (0,))
    start = time.monotonic()
    stats: Optional[ExplorationStats] = None
    for seed in seed_list:
        run = run_single(program, explorer, lim, seed=seed, verify=verify,
                         engine=engine)
        stats = run if stats is None else stats.merge(run)

    finding = stats.errors[0] if stats.errors else None
    result = CheckResult(
        program_name=program.name,
        explorer=explorer,
        seeds=seed_list,
        bug_found=finding is not None,
        stats=stats,
    )
    if finding is not None:
        result.error_kind = finding.kind
        result.error_message = finding.message
        result.schedule = list(finding.schedule)
        if minimize:
            try:
                mini = minimize_schedule(program, finding.schedule)
                result.minimized_schedule = list(mini.schedule)
                result.minimize_replays = mini.replays
                result.minimize_reduction_pct = mini.reduction_pct
            except (ValueError, ReproError):
                pass  # keep the original schedule as the reproduction
        if trace:
            result.trace = _render_repro_trace(program, result.repro_schedule,
                                               lim)
    result.elapsed = time.monotonic() - start
    return result


def _render_repro_trace(program: Program, schedule: Optional[List[int]],
                        lim: ExplorationLimits) -> List[str]:
    """Replay the reproduction schedule and render its timeline.

    Object names come from the *executed* run's registry: shim programs
    create their objects while running, so a fresh instantiation (as
    ``traceviz.names_of`` does) would see an empty registry.
    """
    if schedule is None:
        return []
    from .analysis.traceviz import render_timeline
    from .runtime.executor import Executor
    from .runtime.schedule import ReplayScheduler

    ex = Executor(program, max_events=lim.max_events_per_schedule)
    sched = ReplayScheduler(schedule)
    try:
        while not ex.is_done():
            ex.step(sched.choose(ex))
    except ReproError as exc:
        return [f"(trace replay failed: {exc})"]
    names = {o.oid: o.name for o in ex.instance.registry.objects}
    return render_timeline(ex.finish(), names).splitlines()
