"""Fingerprint caches for HBR caching (Musuvathi–Qadeer) and the lazy
variant contributed by the paper.

A cache is conceptually a set of fingerprints of (lazy) HBRs of
executed prefixes.  ``insert`` returns whether the fingerprint was new;
a hit means the current prefix is redundant — some earlier feasible
prefix had the same (lazy) HBR, hence by Theorem 2.1 (regular) or
Theorem 2.2 (lazy) reaches the same state, and the continuation can be
pruned.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Set


class FingerprintCache:
    """A set of fingerprints with hit/miss statistics.

    Parameters
    ----------
    capacity:
        Optional upper bound on the number of stored fingerprints.  When
        the bound is reached, further *new* fingerprints are reported as
        misses but not stored (pruning then under-approximates, which is
        sound: fewer prunes, never wrong ones).
    """

    __slots__ = ("_set", "hits", "misses", "capacity", "overflowed")

    def __init__(self, capacity: Optional[int] = None) -> None:
        self._set: Set[int] = set()
        self.hits = 0
        self.misses = 0
        self.capacity = capacity
        self.overflowed = False

    def insert(self, fingerprint: int) -> bool:
        """Record ``fingerprint``; return True when it was not seen before."""
        s = self._set
        if fingerprint in s:
            self.hits += 1
            return False
        self.misses += 1
        if self.capacity is not None and len(s) >= self.capacity:
            self.overflowed = True
            return True
        s.add(fingerprint)
        return True

    def unrecord(self, fingerprint: int) -> None:
        """Roll back one fresh :meth:`insert` (the exploration kernel
        undoes an abandoned schedule's insertions so the re-executed
        schedule is not pruned by its own stale entries).  Only valid
        for a fingerprint whose insert returned True."""
        self._set.discard(fingerprint)
        self.misses -= 1

    def __contains__(self, fingerprint: int) -> bool:
        return fingerprint in self._set

    def __len__(self) -> int:
        return len(self._set)

    def clear(self) -> None:
        self._set.clear()
        self.hits = 0
        self.misses = 0
        self.overflowed = False

    # -- serialization (explorer snapshot/restore) -------------------------
    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe contents + statistics (fingerprints sorted, so
        equal caches serialize identically)."""
        return {
            "fingerprints": sorted(self._set),
            "hits": self.hits,
            "misses": self.misses,
            "overflowed": self.overflowed,
            "capacity": self.capacity,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "FingerprintCache":
        cache = cls(payload.get("capacity"))
        cache._set = set(payload.get("fingerprints", ()))
        cache.hits = payload.get("hits", 0)
        cache.misses = payload.get("misses", 0)
        cache.overflowed = payload.get("overflowed", False)
        return cache
