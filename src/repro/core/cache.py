"""Fingerprint caches for HBR caching (Musuvathi–Qadeer) and the lazy
variant contributed by the paper.

A cache is conceptually a set of fingerprints of (lazy) HBRs of
executed prefixes.  ``insert`` returns whether the fingerprint was new;
a hit means the current prefix is redundant — some earlier feasible
prefix had the same (lazy) HBR, hence by Theorem 2.1 (regular) or
Theorem 2.2 (lazy) reaches the same state, and the continuation can be
pruned.
"""

from __future__ import annotations

from typing import Optional, Set


class FingerprintCache:
    """A set of fingerprints with hit/miss statistics.

    Parameters
    ----------
    capacity:
        Optional upper bound on the number of stored fingerprints.  When
        the bound is reached, further *new* fingerprints are reported as
        misses but not stored (pruning then under-approximates, which is
        sound: fewer prunes, never wrong ones).
    """

    __slots__ = ("_set", "hits", "misses", "capacity", "overflowed")

    def __init__(self, capacity: Optional[int] = None) -> None:
        self._set: Set[int] = set()
        self.hits = 0
        self.misses = 0
        self.capacity = capacity
        self.overflowed = False

    def insert(self, fingerprint: int) -> bool:
        """Record ``fingerprint``; return True when it was not seen before."""
        s = self._set
        if fingerprint in s:
            self.hits += 1
            return False
        self.misses += 1
        if self.capacity is not None and len(s) >= self.capacity:
            self.overflowed = True
            return True
        s.add(fingerprint)
        return True

    def __contains__(self, fingerprint: int) -> bool:
        return fingerprint in self._set

    def __len__(self) -> int:
        return len(self._set)

    def clear(self) -> None:
        self._set.clear()
        self.hits = 0
        self.misses = 0
        self.overflowed = False
