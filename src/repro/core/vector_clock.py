"""Dense vector clocks.

Vector clocks order events: event ``e1`` happens-before ``e2`` iff
``e1.clock <= e2.clock`` component-wise (and the events differ).  The
executor knows the full set of threads up front for static programs and
grows clocks on demand when threads are spawned dynamically.

The implementation favours the hot path of the executor: clocks are
plain Python lists wrapped in a thin class, joins are in-place, and the
immutable snapshot used in fingerprints is a tuple.  (Per the
optimisation guides: make it correct and legible first; the only
measured hot operations — ``join_inplace`` and ``snapshot`` — are kept
allocation-light.)
"""

from __future__ import annotations

from typing import Iterable, List, Tuple


class VectorClock:
    """A mutable dense vector clock over thread ids ``0..n-1``."""

    __slots__ = ("_c",)

    def __init__(self, size: int = 0, init: Iterable[int] = ()):
        c = list(init)
        if len(c) < size:
            c.extend([0] * (size - len(c)))
        self._c: List[int] = c

    # -- growth -----------------------------------------------------------
    def ensure_size(self, size: int) -> None:
        """Grow the clock with zero entries so it covers ``size`` threads."""
        c = self._c
        if len(c) < size:
            c.extend([0] * (size - len(c)))

    def __len__(self) -> int:
        return len(self._c)

    # -- accessors ---------------------------------------------------------
    def __getitem__(self, tid: int) -> int:
        c = self._c
        return c[tid] if tid < len(c) else 0

    def __setitem__(self, tid: int, value: int) -> None:
        self.ensure_size(tid + 1)
        self._c[tid] = value

    def snapshot(self) -> Tuple[int, ...]:
        """An immutable copy, suitable for hashing and storage on events."""
        return tuple(self._c)

    def copy(self) -> "VectorClock":
        return VectorClock(init=self._c)

    # -- lattice operations -------------------------------------------------
    def tick(self, tid: int) -> None:
        """Advance this thread's own component by one."""
        self.ensure_size(tid + 1)
        self._c[tid] += 1

    def join_inplace(self, other: "VectorClock") -> None:
        """Component-wise maximum, stored in ``self``."""
        oc = other._c
        self.ensure_size(len(oc))
        c = self._c
        for i, v in enumerate(oc):
            if v > c[i]:
                c[i] = v

    def join_tuple_inplace(self, other: Tuple[int, ...]) -> None:
        """Join with an immutable snapshot."""
        self.ensure_size(len(other))
        c = self._c
        for i, v in enumerate(other):
            if v > c[i]:
                c[i] = v

    # -- comparisons ---------------------------------------------------------
    def leq(self, other: "VectorClock") -> bool:
        """Pointwise ``self <= other`` (the happens-before test)."""
        oc = other._c
        olen = len(oc)
        for i, v in enumerate(self._c):
            if v and (i >= olen or v > oc[i]):
                return False
        return True

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, VectorClock):
            return NotImplemented
        a, b = self._c, other._c
        if len(a) < len(b):
            a, b = b, a
        return a[: len(b)] == b and not any(a[len(b):])

    def __hash__(self):  # pragma: no cover - clocks are not dict keys
        raise TypeError("VectorClock is mutable; hash its snapshot() instead")

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"VC{self._c!r}"


def tuple_leq(a: Tuple[int, ...], b: Tuple[int, ...]) -> bool:
    """Pointwise ``a <= b`` for snapshot tuples (missing entries are 0)."""
    bl = len(b)
    for i, v in enumerate(a):
        if v and (i >= bl or v > b[i]):
            return False
    return True


def tuple_concurrent(a: Tuple[int, ...], b: Tuple[int, ...]) -> bool:
    """True when neither snapshot dominates the other."""
    return not tuple_leq(a, b) and not tuple_leq(b, a)
