"""Dense vector clocks.

Vector clocks order events: event ``e1`` happens-before ``e2`` iff
``e1.clock <= e2.clock`` component-wise (and the events differ).  The
executor knows the full set of threads up front for static programs and
grows clocks on demand when threads are spawned dynamically.

The hot path of the clock engine (:mod:`repro.core.hb`) works on plain
``list``-of-int clocks through the module-level mutator below
(:func:`join_tuple_into`), so one executed event costs zero wrapper
allocations.  Published (immutable) clocks are plain
tuples created exactly once per event: *copy-on-publish*.

:class:`VectorClock` remains as a thin wrapper over the same
representation for callers that want an object API (analysis code,
tests, DPOR's clock lookups); its :meth:`~VectorClock.snapshot` caches
the published tuple and only re-copies after a mutation.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Tuple

# ---------------------------------------------------------------------------
# Hot-path helpers over raw representations (lists mutate, tuples publish).


def join_tuple_into(c: List[int], t) -> None:
    """Component-wise max of sequence ``t`` (snapshot tuple or another
    list clock) into list clock ``c``, growing ``c`` with zeros if
    ``t`` is longer."""
    n = len(c)
    if len(t) > n:
        c.extend([0] * (len(t) - n))
    for i, v in enumerate(t):
        if v > c[i]:
            c[i] = v


def tuple_join(a: Tuple[int, ...], b: Tuple[int, ...]) -> Tuple[int, ...]:
    """Component-wise max of two snapshots (missing entries are 0)."""
    if len(a) == len(b):
        return tuple(map(max, a, b))  # common case, C-speed
    if len(a) < len(b):
        a, b = b, a
    return tuple(map(max, a, b)) + a[len(b):]


def tuple_dominates(a: Tuple[int, ...], b: Tuple[int, ...]) -> bool:
    """Pointwise ``a >= b`` — i.e. joining ``b`` into ``a`` is a no-op."""
    al = len(a)
    for i, v in enumerate(b):
        if v and (i >= al or v > a[i]):
            return False
    return True


def tuple_leq(a: Tuple[int, ...], b: Tuple[int, ...]) -> bool:
    """Pointwise ``a <= b`` for snapshot tuples (missing entries are 0)."""
    bl = len(b)
    for i, v in enumerate(a):
        if v and (i >= bl or v > b[i]):
            return False
    return True


def tuple_concurrent(a: Tuple[int, ...], b: Tuple[int, ...]) -> bool:
    """True when neither snapshot dominates the other."""
    return not tuple_leq(a, b) and not tuple_leq(b, a)


# ---------------------------------------------------------------------------


class VectorClock:
    """A mutable dense vector clock over thread ids ``0..n-1``.

    The published form (:meth:`snapshot`) is cached and invalidated on
    mutation, so repeated publication of an unchanged clock allocates
    nothing.
    """

    __slots__ = ("_c", "_snap")

    def __init__(self, size: int = 0, init: Iterable[int] = ()):
        c = list(init)
        if len(c) < size:
            c.extend([0] * (size - len(c)))
        self._c: List[int] = c
        self._snap: Optional[Tuple[int, ...]] = None

    # -- growth -----------------------------------------------------------
    def ensure_size(self, size: int) -> None:
        """Grow the clock with zero entries so it covers ``size`` threads."""
        c = self._c
        if len(c) < size:
            c.extend([0] * (size - len(c)))
            self._snap = None

    def __len__(self) -> int:
        return len(self._c)

    # -- accessors ---------------------------------------------------------
    def __getitem__(self, tid: int) -> int:
        c = self._c
        return c[tid] if tid < len(c) else 0

    def __setitem__(self, tid: int, value: int) -> None:
        self.ensure_size(tid + 1)
        self._c[tid] = value
        self._snap = None

    def snapshot(self) -> Tuple[int, ...]:
        """An immutable copy, suitable for hashing and storage on events.

        Copy-on-publish: the tuple is only rebuilt after a mutation.
        """
        snap = self._snap
        if snap is None:
            snap = self._snap = tuple(self._c)
        return snap

    def copy(self) -> "VectorClock":
        return VectorClock(init=self._c)

    # -- lattice operations -------------------------------------------------
    def tick(self, tid: int) -> None:
        """Advance this thread's own component by one."""
        self.ensure_size(tid + 1)
        self._c[tid] += 1
        self._snap = None

    def join_inplace(self, other: "VectorClock") -> None:
        """Component-wise maximum, stored in ``self``."""
        join_tuple_into(self._c, other._c)
        self._snap = None

    def join_tuple_inplace(self, other: Tuple[int, ...]) -> None:
        """Join with an immutable snapshot."""
        join_tuple_into(self._c, other)
        self._snap = None

    # -- comparisons ---------------------------------------------------------
    def leq(self, other: "VectorClock") -> bool:
        """Pointwise ``self <= other`` (the happens-before test)."""
        oc = other._c
        olen = len(oc)
        for i, v in enumerate(self._c):
            if v and (i >= olen or v > oc[i]):
                return False
        return True

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, VectorClock):
            return NotImplemented
        a, b = self._c, other._c
        if len(a) < len(b):
            a, b = b, a
        return a[: len(b)] == b and not any(a[len(b):])

    def __hash__(self):  # pragma: no cover - clocks are not dict keys
        raise TypeError("VectorClock is mutable; hash its snapshot() instead")

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"VC{self._c!r}"
