"""Empirical checkers for the paper's two theorems.

These functions *validate* (on concrete programs) the guarantees the
algorithms rely on:

* **Theorem 2.1** — every linearization of a schedule's (regular) HBR
  is itself feasible and reaches the same final state.
* **Theorem 2.2** — any two *feasible* schedules with equal lazy HBRs
  reach the same final state (not every linearization of a lazy HBR is
  feasible, so feasibility is checked, not assumed).

They are used by the hypothesis-driven property tests and are part of
the public API so users can sanity-check their own programs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import SchedulerError
from ..runtime.executor import Executor
from ..runtime.program import Program
from ..runtime.schedule import ReplayScheduler
from ..runtime.trace import TraceResult
from .relations import PartialOrder


@dataclass
class TheoremReport:
    """Outcome of one empirical theorem check."""

    holds: bool
    checked: int = 0
    detail: str = ""
    counterexample: Optional[Tuple[List[int], List[int]]] = None


def _execute_exact(program: Program, schedule: Sequence[int],
                   max_events: int = 20_000) -> Optional[TraceResult]:
    """Run ``schedule`` exactly; None when infeasible."""
    ex = Executor(program, max_events=max_events)
    sched = ReplayScheduler(schedule, strict=True)
    try:
        while not ex.is_done():
            ex.step(sched.choose(ex))
    except SchedulerError:
        return None
    if sched.pos != len(sched.prefix):
        return None
    return ex.finish()


def check_theorem_2_1(
    program: Program,
    schedule: Sequence[int],
    max_linearizations: int = 500,
) -> TheoremReport:
    """All linearizations of the schedule's HBR are feasible and reach
    the same state (checking at most ``max_linearizations`` of them)."""
    base = _execute_exact(program, list(schedule))
    if base is None:
        raise ValueError("the given schedule is not feasible")
    po = PartialOrder(base.events, lazy=False)
    checked = 0
    for lin in po.linearizations(limit=max_linearizations):
        alt_schedule = po.thread_schedule(lin)
        alt = _execute_exact(program, alt_schedule)
        if alt is None:
            return TheoremReport(
                False, checked,
                "linearization of the HBR was infeasible",
                (list(base.schedule), alt_schedule),
            )
        if alt.state_hash != base.state_hash:
            return TheoremReport(
                False, checked,
                "linearization reached a different state",
                (list(base.schedule), alt_schedule),
            )
        if alt.hbr_fp != base.hbr_fp:
            return TheoremReport(
                False, checked,
                "linearization produced a different HBR fingerprint",
                (list(base.schedule), alt_schedule),
            )
        checked += 1
    return TheoremReport(True, checked)


def check_theorem_2_2(
    program: Program,
    schedules: Sequence[Sequence[int]],
) -> TheoremReport:
    """Among the given feasible schedules, any two with equal lazy HBR
    fingerprints reach equal states (and equal regular HBR implies equal
    lazy HBR — the containment that makes #lazy <= #HBRs)."""
    by_lazy: Dict[int, TraceResult] = {}
    by_hbr: Dict[int, TraceResult] = {}
    checked = 0
    for schedule in schedules:
        r = _execute_exact(program, list(schedule))
        if r is None:
            continue
        checked += 1
        prev = by_lazy.get(r.lazy_fp)
        if prev is not None and prev.state_hash != r.state_hash:
            return TheoremReport(
                False, checked,
                "equal lazy HBR but different final states",
                (list(prev.schedule), list(r.schedule)),
            )
        by_lazy.setdefault(r.lazy_fp, r)
        prev_h = by_hbr.get(r.hbr_fp)
        if prev_h is not None and prev_h.lazy_fp != r.lazy_fp:
            return TheoremReport(
                False, checked,
                "equal regular HBR but different lazy HBRs "
                "(breaks #lazy <= #HBRs)",
                (list(prev_h.schedule), list(r.schedule)),
            )
        by_hbr.setdefault(r.hbr_fp, r)
    return TheoremReport(True, checked)


def check_inequality_chain(
    program: Program,
    schedules: Sequence[Sequence[int]],
) -> TheoremReport:
    """#states <= #lazy HBRs <= #HBRs <= #schedules over the given
    feasible schedules."""
    states, lazies, hbrs = set(), set(), set()
    n = 0
    for schedule in schedules:
        r = _execute_exact(program, list(schedule))
        if r is None:
            continue
        n += 1
        states.add(r.state_hash)
        lazies.add(r.lazy_fp)
        hbrs.add(r.hbr_fp)
    ok = len(states) <= len(lazies) <= len(hbrs) <= n
    return TheoremReport(
        ok, n,
        f"states={len(states)} lazy={len(lazies)} hbrs={len(hbrs)} "
        f"schedules={n}",
    )
