"""Operations and events.

A guest thread communicates with the runtime by ``yield``-ing
:class:`Op` objects (constructed through
:class:`repro.runtime.thread_api.ThreadAPI`).  When the scheduler picks
the thread, the executor performs the operation and the resulting
:class:`Event` is appended to the trace.

Terminology follows the paper: an executed operation is an *event*; a
total order of events is a *schedule*.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

from .fingerprint import fingerprint_label


class OpKind(enum.IntEnum):
    """Kinds of visible operations.

    The integer values are stable and are used inside fingerprints, so
    they must not be reordered; new kinds are only ever *appended*.
    """

    READ = 0          #: read a shared variable
    WRITE = 1         #: write a shared variable
    RMW = 2           #: atomic read-modify-write (CAS, fetch_add, ...)
    LOCK = 3          #: acquire a mutex
    UNLOCK = 4        #: release a mutex
    WAIT = 5          #: condition-variable wait (releases the mutex)
    NOTIFY = 6        #: condition-variable notify (one waiter)
    NOTIFY_ALL = 7    #: condition-variable notify (all waiters)
    SEM_ACQUIRE = 8   #: semaphore P
    SEM_RELEASE = 9   #: semaphore V
    BARRIER_WAIT = 10 #: cyclic barrier arrival
    SPAWN = 11        #: create a new guest thread
    JOIN = 12         #: wait for a guest thread to terminate
    EXIT = 13         #: implicit final event of every thread
    RLOCK = 14        #: acquire a read-write lock in shared (reader) mode
    RUNLOCK = 15      #: release reader mode
    WLOCK = 16        #: acquire a read-write lock in exclusive mode
    WUNLOCK = 17      #: release exclusive mode
    YIELD = 18        #: pure scheduling point, no shared access
    CHAN_SEND = 19    #: deposit a value into a channel
    CHAN_RECV = 20    #: take a value from a channel
    CHAN_CLOSE = 21   #: close a channel
    FUT_SET = 22      #: complete a future with a value
    FUT_GET = 23      #: read a completed future's value
    SLEEP = 24        #: advance virtual time by a fixed duration
    TIME_FIRE = 25    #: a pending timeout fired instead of its operation
    TIMER_TICK = 26   #: one period of a periodic timer thread elapsed


class HBClass(enum.IntEnum):
    """How one operation kind participates in the happens-before
    relations — the per-kind half of the sync-primitive protocol (the
    per-object half lives on :class:`~repro.runtime.objects
    .SharedObject`).

    The clock engine and the dependence predicates are driven entirely
    by this classification; no component outside the primitive's own
    module needs to enumerate its kinds.

    * ``ACQUIRE`` — a non-modifying access: it observes the object
      (ordered after all prior modifications) but does not conflict
      with other ACQUIRE accesses.  READ, JOIN, FUT_GET.
    * ``RELEASE`` — a modifying access that additionally hands state to
      other threads (the runtime may inject explicit release edges to
      woken threads): NOTIFY, SEM_RELEASE, CHAN_SEND, FUT_SET, SPAWN.
      Clock treatment equals ``BOTH``; the distinction is semantic and
      feeds diagnostics/analysis, not the engine.
    * ``BOTH`` — a modifying access plain and simple: conflicts with
      every other access to the same location, in both relations.
    * ``LOCAL`` — a *mutex-class* modification: a full conflict edge in
      the regular HBR, but no inter-thread edge in the **lazy** HBR
      (paper, Section 2: "lock and unlock events do not introduce
      inter-thread edges").  Only LOCK/UNLOCK, per Theorem 2.2.
    """

    ACQUIRE = 0
    RELEASE = 1
    BOTH = 2
    LOCAL = 3


@dataclass(frozen=True)
class KindSpec:
    """Declarative semantics of one operation kind.

    ``hb`` drives the clock engines and the dependence predicates;
    ``blocking`` marks kinds with an enabledness condition (used for
    diagnostics and analysis, never for dispatch); ``disturbing``
    marks kinds whose execution can change *another* thread's
    enabledness (the executor's memoised enabled list survives steps
    of non-disturbing kinds); ``arrival_sensitive`` marks kinds whose
    mere *pendingness* can enable another thread (a new arrival forces
    an enabled-list rebuild: barrier cohorts, rendezvous receivers);
    ``data`` marks plain data-access kinds that key events on the
    op's ``arg`` (sub-object locations).
    """

    hb: HBClass
    blocking: bool = False
    disturbing: bool = True
    arrival_sensitive: bool = False
    data: bool = False


#: The kind registry: one declarative row per operation kind.  Adding a
#: primitive = appending its kinds above and its rows here; every kind
#: table the engines use is derived from this single source.
KIND_SPEC: Dict[OpKind, KindSpec] = {
    # plain data (sharedvar / atomic); WRITE/RMW only disturb threads
    # pending an ``await_value`` predicate, which the executor tracks
    # with a dedicated counter — so they are declared non-disturbing
    OpKind.READ: KindSpec(HBClass.ACQUIRE, disturbing=False, data=True),
    OpKind.WRITE: KindSpec(HBClass.BOTH, disturbing=False, data=True),
    OpKind.RMW: KindSpec(HBClass.BOTH, disturbing=False, data=True),
    # mutex: the only LOCAL (lazy-invisible) kinds, per Theorem 2.2
    OpKind.LOCK: KindSpec(HBClass.LOCAL, blocking=True),
    OpKind.UNLOCK: KindSpec(HBClass.LOCAL),
    # condition variables
    OpKind.WAIT: KindSpec(HBClass.BOTH, blocking=True),
    OpKind.NOTIFY: KindSpec(HBClass.RELEASE),
    OpKind.NOTIFY_ALL: KindSpec(HBClass.RELEASE),
    # semaphores
    OpKind.SEM_ACQUIRE: KindSpec(HBClass.BOTH, blocking=True),
    OpKind.SEM_RELEASE: KindSpec(HBClass.RELEASE),
    # barriers: a new pending arrival can complete a cohort
    OpKind.BARRIER_WAIT: KindSpec(
        HBClass.BOTH, blocking=True, arrival_sensitive=True
    ),
    # thread lifecycle (executor-core semantics).  SPAWN/EXIT modify
    # the target thread's pseudo-object; JOIN only observes it, so
    # concurrent joins of a finished thread do not conflict.
    OpKind.SPAWN: KindSpec(HBClass.RELEASE),
    OpKind.JOIN: KindSpec(HBClass.ACQUIRE, blocking=True, disturbing=False),
    OpKind.EXIT: KindSpec(HBClass.BOTH),
    # reader-writer locks (kept in the lazy HBR: the paper's theorem
    # covers plain mutexes only)
    OpKind.RLOCK: KindSpec(HBClass.BOTH, blocking=True),
    OpKind.RUNLOCK: KindSpec(HBClass.BOTH),
    OpKind.WLOCK: KindSpec(HBClass.BOTH, blocking=True),
    OpKind.WUNLOCK: KindSpec(HBClass.BOTH),
    # pure scheduling point
    OpKind.YIELD: KindSpec(HBClass.ACQUIRE, disturbing=False),
    # channels: send/recv/close all modify the FIFO, so a recv is
    # ordered after its matching send by ordinary conflict edges in
    # both relations; a rendezvous send is enabled only while a
    # receiver is *pending*, hence recv's arrival sensitivity
    OpKind.CHAN_SEND: KindSpec(HBClass.RELEASE, blocking=True),
    OpKind.CHAN_RECV: KindSpec(
        HBClass.BOTH, blocking=True, arrival_sensitive=True
    ),
    OpKind.CHAN_CLOSE: KindSpec(HBClass.BOTH),
    # futures: set modifies, get observes (concurrent gets independent)
    OpKind.FUT_SET: KindSpec(HBClass.RELEASE),
    OpKind.FUT_GET: KindSpec(HBClass.ACQUIRE, blocking=True,
                             disturbing=False),
    # virtual time: every time event modifies the program's clock
    # object in BOTH relations, so time events are totally ordered and
    # the virtual now is a function of the happens-before fingerprint
    # (which keeps the fingerprint-caching explorers sound).  SLEEP and
    # TIMER_TICK only advance the clock (the stepped thread stays
    # enabled); TIME_FIRE also withdraws the timed-out operation, which
    # can disable another thread (a rendezvous sender loses its pending
    # receiver), hence disturbing.
    OpKind.SLEEP: KindSpec(HBClass.BOTH, blocking=True, disturbing=False),
    OpKind.TIME_FIRE: KindSpec(HBClass.BOTH, blocking=True),
    OpKind.TIMER_TICK: KindSpec(HBClass.BOTH, blocking=True,
                                disturbing=False),
}

assert set(KIND_SPEC) == set(OpKind), "every OpKind needs a KindSpec row"

#: Kinds the lazy HBR ignores when computing inter-thread edges
#: (mutex-class operations), derived from the kind registry.
MUTEX_KINDS = frozenset(
    k for k, spec in KIND_SPEC.items() if spec.hb is HBClass.LOCAL
)

#: Kinds that *modify* the object they touch, for condition (b) of the
#: happens-before definition ("at least one access is a modification").
MODIFYING_KINDS = frozenset(
    k for k, spec in KIND_SPEC.items() if spec.hb is not HBClass.ACQUIRE
)

#: Kinds that may block (have an enabledness condition).
BLOCKING_KINDS = frozenset(
    k for k, spec in KIND_SPEC.items() if spec.blocking
)

#: Plain data-access kinds (events keyed on the op's ``arg``).
DATA_KINDS = frozenset(k for k, spec in KIND_SPEC.items() if spec.data)

#: Virtual-time kinds: events that advance the program's clock object.
TIME_KINDS = frozenset(
    {OpKind.SLEEP, OpKind.TIME_FIRE, OpKind.TIMER_TICK}
)

#: Dense bool tables indexed by ``int(kind)`` — O(1) list indexing beats
#: frozenset hashing on the per-event hot path of the clock engine.
IS_MODIFYING = tuple(k in MODIFYING_KINDS for k in OpKind)
IS_MUTEX = tuple(k in MUTEX_KINDS for k in OpKind)
IS_DISTURBING = tuple(KIND_SPEC[k].disturbing for k in OpKind)
IS_ARRIVAL_SENSITIVE = tuple(
    KIND_SPEC[k].arrival_sensitive for k in OpKind
)
IS_DATA = tuple(KIND_SPEC[k].data for k in OpKind)
IS_TIME = tuple(k in TIME_KINDS for k in OpKind)


#: One virtual tick is one microsecond; durations cross the API as
#: seconds (matching the stdlib signatures) and live in the runtime as
#: integer ticks so virtual time is exact, portable and hashable.
TICKS_PER_SECOND = 1_000_000


def to_ticks(seconds: float) -> int:
    """Convert a stdlib-style ``seconds`` duration to integer ticks
    (non-negative; sub-tick durations round to nearest)."""
    ticks = int(round(seconds * TICKS_PER_SECOND))
    return ticks if ticks > 0 else 0


class _TimedOutType:
    """The singleton sentinel a guest receives when a timed operation's
    timeout fired instead of the operation succeeding.  Identity is
    preserved across pickling (snapshots, campaign workers)."""

    _instance: Optional["_TimedOutType"] = None
    __slots__ = ()

    def __new__(cls) -> "_TimedOutType":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "TIMED_OUT"

    def __reduce__(self):
        return (_TimedOutType, ())


TIMED_OUT = _TimedOutType()


class Op:
    """A pending operation yielded by a guest thread.

    ``target`` is the :class:`~repro.runtime.objects.SharedObject` the
    operation acts on (``None`` for YIELD/SPAWN/EXIT).  ``arg`` carries
    the operation payload: the value for WRITE, the update function for
    RMW, the body for SPAWN, the thread id for JOIN, the paired mutex
    for WAIT.

    A hand-rolled ``__slots__`` class rather than a frozen dataclass:
    one ``Op`` is allocated per guest yield — twice per event once
    snapshot fast-forward re-feeds generator tapes — so construction is
    on the replay hot path.  Fields are write-once by construction
    discipline; a ``__setattr__`` guard enforcing it was measured at
    +400ns per Op (4 ``object.__setattr__`` calls) and dropped.  The
    slots still reject foreign attributes.
    """

    __slots__ = ("kind", "target", "arg", "arg2", "timeout")

    def __init__(self, kind: OpKind, target: Any = None, arg: Any = None,
                 arg2: Any = None, timeout: Optional[int] = None) -> None:
        self.kind = kind
        self.target = target
        self.arg = arg
        self.arg2 = arg2
        #: virtual-time budget in ticks for a blocking op (``None`` =
        #: wait forever); for SLEEP/TIMER_TICK, the duration itself
        self.timeout = timeout

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        t = getattr(self.target, "name", self.target)
        return f"Op({self.kind.name}, {t})"


@dataclass(slots=True)
class Event:
    """An executed operation, as recorded in the trace.

    ``oid`` is the integer id of the shared object touched (``-1`` when
    no object is touched).  ``tindex`` is the event's position within
    its own thread (0-based).  ``clock`` / ``lazy_clock`` are the
    event's vector clocks under the regular and lazy happens-before
    relations; they are filled in by the
    :class:`~repro.core.hb.DualClockEngine` as the event executes.
    """

    index: int                      #: position in the schedule (0-based)
    tid: int                        #: executing thread
    tindex: int                     #: position within the thread
    kind: OpKind
    oid: int                        #: shared-object id, or -1
    key: Any = None                 #: sub-object key (array index, dict key)
    value: Any = None               #: result / written value (informational)
    clock: Optional[Tuple[int, ...]] = None
    lazy_clock: Optional[Tuple[int, ...]] = None
    #: for WAIT events: the oid of the mutex released by the wait, so the
    #: regular HBR can order subsequent lock() events after the wait.
    released_mutex_oid: Optional[int] = None
    extra: Any = field(default=None, repr=False)

    @property
    def is_mutex_op(self) -> bool:
        """True when this event is a pure mutex lock/unlock."""
        return self.kind in MUTEX_KINDS

    @property
    def is_modification(self) -> bool:
        """True when this event modifies its target object."""
        return self.kind in MODIFYING_KINDS

    def label(self) -> Tuple[int, int, Any]:
        """The event's fingerprint label ``(kind, oid, key)``, with a
        missing key normalised to ``-1`` (see
        :func:`~repro.core.fingerprint.fingerprint_label`).

        Labels deliberately exclude data values: the happens-before
        relation is a partial order over *operations*; in a
        deterministic program the values are a function of the partial
        order, so including them would be redundant.
        """
        return fingerprint_label(self.kind, self.oid, self.key)

    def location(self) -> Tuple[int, Any]:
        """The memory location touched, as an ``(oid, key)`` pair."""
        return (self.oid, self.key)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Event(#{self.index} T{self.tid}.{self.tindex} "
            f"{self.kind.name} oid={self.oid})"
        )
