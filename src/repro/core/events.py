"""Operations and events.

A guest thread communicates with the runtime by ``yield``-ing
:class:`Op` objects (constructed through
:class:`repro.runtime.thread_api.ThreadAPI`).  When the scheduler picks
the thread, the executor performs the operation and the resulting
:class:`Event` is appended to the trace.

Terminology follows the paper: an executed operation is an *event*; a
total order of events is a *schedule*.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Optional, Tuple

from .fingerprint import fingerprint_label


class OpKind(enum.IntEnum):
    """Kinds of visible operations.

    The integer values are stable and are used inside fingerprints, so
    they must not be reordered.
    """

    READ = 0          #: read a shared variable
    WRITE = 1         #: write a shared variable
    RMW = 2           #: atomic read-modify-write (CAS, fetch_add, ...)
    LOCK = 3          #: acquire a mutex
    UNLOCK = 4        #: release a mutex
    WAIT = 5          #: condition-variable wait (releases the mutex)
    NOTIFY = 6        #: condition-variable notify (one waiter)
    NOTIFY_ALL = 7    #: condition-variable notify (all waiters)
    SEM_ACQUIRE = 8   #: semaphore P
    SEM_RELEASE = 9   #: semaphore V
    BARRIER_WAIT = 10 #: cyclic barrier arrival
    SPAWN = 11        #: create a new guest thread
    JOIN = 12         #: wait for a guest thread to terminate
    EXIT = 13         #: implicit final event of every thread
    RLOCK = 14        #: acquire a read-write lock in shared (reader) mode
    RUNLOCK = 15      #: release reader mode
    WLOCK = 16        #: acquire a read-write lock in exclusive mode
    WUNLOCK = 17      #: release exclusive mode
    YIELD = 18        #: pure scheduling point, no shared access


#: Kinds that are pure mutex operations.  These are exactly the kinds the
#: lazy HBR ignores when computing inter-thread edges (paper, Section 2:
#: "lock and unlock events do not introduce inter-thread edges").
MUTEX_KINDS = frozenset({OpKind.LOCK, OpKind.UNLOCK})

#: Kinds that *modify* the object they touch, for condition (b) of the
#: happens-before definition ("at least one access is a modification").
MODIFYING_KINDS = frozenset(
    {
        OpKind.WRITE,
        OpKind.RMW,
        OpKind.LOCK,
        OpKind.UNLOCK,
        OpKind.WAIT,
        OpKind.NOTIFY,
        OpKind.NOTIFY_ALL,
        OpKind.SEM_ACQUIRE,
        OpKind.SEM_RELEASE,
        OpKind.BARRIER_WAIT,
        OpKind.RLOCK,
        OpKind.RUNLOCK,
        OpKind.WLOCK,
        OpKind.WUNLOCK,
        # Thread lifecycle events modify the target thread's pseudo-object:
        # SPAWN creates it, EXIT completes it.  JOIN only observes it (a
        # read), so concurrent joins of a finished thread do not conflict.
        OpKind.SPAWN,
        OpKind.EXIT,
    }
)

#: Kinds that may block (have an enabledness condition).
BLOCKING_KINDS = frozenset(
    {
        OpKind.LOCK,
        OpKind.WAIT,
        OpKind.SEM_ACQUIRE,
        OpKind.BARRIER_WAIT,
        OpKind.JOIN,
        OpKind.RLOCK,
        OpKind.WLOCK,
    }
)

#: Dense bool tables indexed by ``int(kind)`` — O(1) list indexing beats
#: frozenset hashing on the per-event hot path of the clock engine.
IS_MODIFYING = tuple(k in MODIFYING_KINDS for k in OpKind)
IS_MUTEX = tuple(k in MUTEX_KINDS for k in OpKind)


class Op:
    """A pending operation yielded by a guest thread.

    ``target`` is the :class:`~repro.runtime.objects.SharedObject` the
    operation acts on (``None`` for YIELD/SPAWN/EXIT).  ``arg`` carries
    the operation payload: the value for WRITE, the update function for
    RMW, the body for SPAWN, the thread id for JOIN, the paired mutex
    for WAIT.

    A hand-rolled ``__slots__`` class rather than a frozen dataclass:
    one ``Op`` is allocated per guest yield — twice per event once
    snapshot fast-forward re-feeds generator tapes — so construction is
    on the replay hot path.  Fields are write-once by construction
    discipline; a ``__setattr__`` guard enforcing it was measured at
    +400ns per Op (4 ``object.__setattr__`` calls) and dropped.  The
    slots still reject foreign attributes.
    """

    __slots__ = ("kind", "target", "arg", "arg2")

    def __init__(self, kind: OpKind, target: Any = None, arg: Any = None,
                 arg2: Any = None) -> None:
        self.kind = kind
        self.target = target
        self.arg = arg
        self.arg2 = arg2

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        t = getattr(self.target, "name", self.target)
        return f"Op({self.kind.name}, {t})"


@dataclass(slots=True)
class Event:
    """An executed operation, as recorded in the trace.

    ``oid`` is the integer id of the shared object touched (``-1`` when
    no object is touched).  ``tindex`` is the event's position within
    its own thread (0-based).  ``clock`` / ``lazy_clock`` are the
    event's vector clocks under the regular and lazy happens-before
    relations; they are filled in by the
    :class:`~repro.core.hb.DualClockEngine` as the event executes.
    """

    index: int                      #: position in the schedule (0-based)
    tid: int                        #: executing thread
    tindex: int                     #: position within the thread
    kind: OpKind
    oid: int                        #: shared-object id, or -1
    key: Any = None                 #: sub-object key (array index, dict key)
    value: Any = None               #: result / written value (informational)
    clock: Optional[Tuple[int, ...]] = None
    lazy_clock: Optional[Tuple[int, ...]] = None
    #: for WAIT events: the oid of the mutex released by the wait, so the
    #: regular HBR can order subsequent lock() events after the wait.
    released_mutex_oid: Optional[int] = None
    extra: Any = field(default=None, repr=False)

    @property
    def is_mutex_op(self) -> bool:
        """True when this event is a pure mutex lock/unlock."""
        return self.kind in MUTEX_KINDS

    @property
    def is_modification(self) -> bool:
        """True when this event modifies its target object."""
        return self.kind in MODIFYING_KINDS

    def label(self) -> Tuple[int, int, Any]:
        """The event's fingerprint label ``(kind, oid, key)``, with a
        missing key normalised to ``-1`` (see
        :func:`~repro.core.fingerprint.fingerprint_label`).

        Labels deliberately exclude data values: the happens-before
        relation is a partial order over *operations*; in a
        deterministic program the values are a function of the partial
        order, so including them would be redundant.
        """
        return fingerprint_label(self.kind, self.oid, self.key)

    def location(self) -> Tuple[int, Any]:
        """The memory location touched, as an ``(oid, key)`` pair."""
        return (self.oid, self.key)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Event(#{self.index} T{self.tid}.{self.tindex} "
            f"{self.kind.name} oid={self.oid})"
        )
