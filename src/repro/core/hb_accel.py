"""The accelerated clock engine (``engine="accel"``).

Drop-in replacement for :class:`~repro.core.hb.DualClockEngine` on the
replay hot path, byte-identical by contract (same published snapshot
tuples, same fingerprints, same clock values — the equivalence suite
and ``bench --engine both`` enforce it) but laid out for speed:

* **flat ``array('q')`` clock storage** — each relation keeps all
  thread clocks in one machine-int array of ``cap``-wide rows (thread
  ``t``'s clock occupies ``[t*cap, t*cap + len_t)``; slots past the
  logical length are zero).  Forking a side is two C-level ``memcpy``
  slice copies instead of one list copy per thread — the dominant cost
  of :meth:`fork` under snapshot-heavy exploration;
* **copy-on-publish at the array level** — the per-event published
  tuple is built straight from the array row (``tuple(buf[b:b+n])``),
  and the logical row lengths replicate the reference engine's
  grow-on-join rule exactly, so published tuples are value- and
  length-identical to the reference;
* **split location tables** — whole-object locations (``key is
  None``, the overwhelmingly common case) live in int-keyed dicts, so
  the hot path never allocates or hashes an ``(oid, key)`` tuple;
  element accesses keep tuple-keyed tables;
* **fused dominance-or-join publish** — the non-modifying table
  update does one pass that either proves dominance (plain pointer
  replacement) or falls back to a genuine join;
* **optional numpy bulk joins** — rows at least :data:`_NP_MIN` wide
  are joined via ``np.maximum`` over a zero-copy ``frombuffer`` view;
  narrow clocks (every suite program) stay on the scalar loop, which
  measures faster below that width.  Stdlib-only fallback when numpy
  is missing.

The engine does not implement ``canonical=True`` — exact
:class:`~repro.core.fingerprint.CanonicalHBR` forms are theorem-checker
machinery; the registry (:mod:`repro.core.engines`) builds the
reference engine for canonical callers.

See DESIGN.md §11.
"""

from __future__ import annotations

from array import array
from typing import Dict, List, Optional, Tuple

from .events import IS_MODIFYING, IS_MUTEX, Event
from .fingerprint import _SEED
from .vector_clock import VectorClock, tuple_dominates, tuple_join

try:  # optional fast path; the scalar loop below is the contract
    import numpy as _np
except ImportError:  # pragma: no cover - numpy present in dev envs
    _np = None

#: Minimum row width for the numpy join path.  Below this, ufunc call
#: overhead loses to the scalar loop (suite clocks are 2–10 wide).
_NP_MIN = 32

#: Initial per-row capacity (threads).  Covers every suite program
#: without growth; dynamic spawns past it trigger one rebuild.
_INITIAL_CAP = 8


def _join_row(buf: array, base: int, tlen: int, tup) -> int:
    """Join snapshot ``tup`` into the row at ``base``; returns the new
    logical row length (the reference engine's grow-on-join rule)."""
    n = len(tup)
    if _np is not None and n >= _NP_MIN:
        row = _np.frombuffer(buf, dtype=_np.int64, count=n, offset=base * 8)
        _np.maximum(row, tup, out=row)
    else:
        i = base
        for v in tup:
            if v > buf[i]:
                buf[i] = v
            i += 1
    return n if n > tlen else tlen


class AccelClockEngine:
    """Accelerated dual happens-before clock engine.

    Public API mirrors :class:`~repro.core.hb.DualClockEngine`; state
    layout is flat (per-side buffers and tables live directly on the
    engine) so :meth:`observe` runs with minimal attribute chasing.
    """

    backend = "accel"

    __slots__ = (
        "_cap", "_nthreads", "_pending_sync",
        # regular relation
        "_rbuf", "_rlens", "_rchains", "_rcount",
        "_raccess_o", "_rmodify_o", "_raccess_k", "_rmodify_k",
        # lazy relation
        "_lbuf", "_llens", "_lchains", "_lcount",
        "_laccess_o", "_lmodify_o", "_laccess_k", "_lmodify_k",
    )

    def __init__(self) -> None:
        cap = _INITIAL_CAP
        self._cap = cap
        self._nthreads = 0
        self._pending_sync: Dict[
            int, List[Tuple[Tuple[int, ...], Tuple[int, ...]]]
        ] = {}
        self._rbuf = array("q", bytes(8 * cap * cap))
        self._lbuf = array("q", bytes(8 * cap * cap))
        self._rlens: List[int] = []
        self._llens: List[int] = []
        self._rchains: List[int] = []
        self._lchains: List[int] = []
        self._rcount = 0
        self._lcount = 0
        self._raccess_o: Dict[int, Tuple[int, ...]] = {}
        self._rmodify_o: Dict[int, Tuple[int, ...]] = {}
        self._raccess_k: Dict[Tuple[int, object], Tuple[int, ...]] = {}
        self._rmodify_k: Dict[Tuple[int, object], Tuple[int, ...]] = {}
        self._laccess_o: Dict[int, Tuple[int, ...]] = {}
        self._lmodify_o: Dict[int, Tuple[int, ...]] = {}
        self._laccess_k: Dict[Tuple[int, object], Tuple[int, ...]] = {}
        self._lmodify_k: Dict[Tuple[int, object], Tuple[int, ...]] = {}

    # ------------------------------------------------------------------
    def _ensure(self, tid: int) -> None:
        """Declare threads ``0..tid`` in both relations (the reference
        engine's per-side ``ensure_thread``, fused)."""
        if tid >= self._cap:
            self._grow(tid + 1)
        n = self._nthreads
        if n > tid:
            return
        rlens, llens = self._rlens, self._llens
        rchains, lchains = self._rchains, self._lchains
        while n <= tid:
            # a fresh thread's clock is [0] * (index + 1), and its
            # fingerprint chain is seeded exactly like FingerprintChain
            rlens.append(n + 1)
            llens.append(n + 1)
            seed = hash((_SEED, n))
            rchains.append(seed)
            lchains.append(seed)
            n += 1
        self._nthreads = n

    def _grow(self, need: int) -> None:
        """Rebuild both buffers with a wider row stride (rare: only
        dynamic spawns past the reserve can trigger it)."""
        old_cap = self._cap
        new_cap = old_cap
        while new_cap < need:
            new_cap *= 2
        for attr, lens in (("_rbuf", self._rlens), ("_lbuf", self._llens)):
            old = getattr(self, attr)
            new = array("q", bytes(8 * new_cap * new_cap))
            for t, ln in enumerate(lens):
                new[t * new_cap:t * new_cap + ln] = \
                    old[t * old_cap:t * old_cap + ln]
            setattr(self, attr, new)
        self._cap = new_cap

    # ------------------------------------------------------------------
    def fork(self) -> "AccelClockEngine":
        """An independent engine continuing from this one's state.

        The buffer copies are single C-level memcpys; published tuples
        in the location tables are shared (copy-on-publish discipline,
        exactly like the reference engine's fork)."""
        eng = AccelClockEngine.__new__(AccelClockEngine)
        eng._cap = self._cap
        eng._nthreads = self._nthreads
        eng._rbuf = self._rbuf[:]
        eng._lbuf = self._lbuf[:]
        eng._rlens = self._rlens[:]
        eng._llens = self._llens[:]
        eng._rchains = self._rchains[:]
        eng._lchains = self._lchains[:]
        eng._rcount = self._rcount
        eng._lcount = self._lcount
        eng._raccess_o = dict(self._raccess_o)
        eng._rmodify_o = dict(self._rmodify_o)
        eng._raccess_k = dict(self._raccess_k)
        eng._rmodify_k = dict(self._rmodify_k)
        eng._laccess_o = dict(self._laccess_o)
        eng._lmodify_o = dict(self._lmodify_o)
        eng._laccess_k = dict(self._laccess_k)
        eng._lmodify_k = dict(self._lmodify_k)
        eng._pending_sync = {
            tid: list(edges) for tid, edges in self._pending_sync.items()
        }
        return eng

    # ------------------------------------------------------------------
    def reserve(self, n: int) -> None:
        if n > 0:
            self._ensure(n - 1)

    def register_thread(
        self, tid: int, parent_spawn_event: Optional[Event] = None
    ) -> None:
        if parent_spawn_event is not None:
            assert parent_spawn_event.clock is not None
            self.register_thread_clocks(
                tid, parent_spawn_event.clock, parent_spawn_event.lazy_clock
            )
        else:
            self._ensure(tid)

    def register_thread_clocks(
        self,
        tid: int,
        spawn_clock: Tuple[int, ...],
        spawn_lazy_clock: Tuple[int, ...],
    ) -> None:
        self._ensure(tid)
        base = tid * self._cap
        self._rlens[tid] = _join_row(
            self._rbuf, base, self._rlens[tid], spawn_clock
        )
        self._llens[tid] = _join_row(
            self._lbuf, base, self._llens[tid], spawn_lazy_clock
        )

    def add_release_edge(self, event: Event, released_tid: int) -> None:
        assert event.clock is not None and event.lazy_clock is not None
        self.add_release_edge_clocks(
            event.clock, event.lazy_clock, released_tid
        )

    def add_release_edge_clocks(
        self,
        clock: Tuple[int, ...],
        lazy_clock: Tuple[int, ...],
        released_tid: int,
    ) -> None:
        self._pending_sync.setdefault(released_tid, []).append(
            (clock, lazy_clock)
        )

    # ------------------------------------------------------------------
    def on_event(self, event: Event) -> None:
        event.clock, event.lazy_clock = self.observe(
            event.tid, event.kind, event.oid, event.key,
            event.released_mutex_oid,
        )

    def observe(
        self,
        tid: int,
        kind: int,
        oid: int,
        key: object,
        released_mutex_oid: Optional[int] = None,
    ) -> Tuple[Tuple[int, ...], Tuple[int, ...]]:
        """Fold one executed operation into both relations; identical
        observable behaviour to the reference engine's ``observe``."""
        ps = self._pending_sync
        pending = ps.pop(tid, None) if ps else None
        modifying = IS_MODIFYING[kind]
        keyless = key is None
        cap = self._cap
        base = tid * cap

        # -- regular relation ------------------------------------------
        buf = self._rbuf
        tlen = self._rlens[tid]
        if pending:
            for edge in pending:
                tlen = _join_row(buf, base, tlen, edge[0])
        access_o = self._raccess_o
        if oid >= 0:
            if keyless:
                prev = (access_o if modifying else self._rmodify_o).get(oid)
            else:
                prev = (self._raccess_k if modifying
                        else self._rmodify_k).get((oid, key))
            if prev is not None:
                tlen = _join_row(buf, base, tlen, prev)
        # A WAIT event releases its paired mutex: regular side only.
        if released_mutex_oid is not None:
            prev = access_o.get(released_mutex_oid)
            if prev is not None:
                tlen = _join_row(buf, base, tlen, prev)
        p = base + tid
        buf[p] += 1
        self._rlens[tid] = tlen
        snap = tuple(buf[base:base + tlen])  # copy-on-publish
        if oid >= 0:
            if modifying:
                # joined A[loc] above, then ticked: plain replacement
                if keyless:
                    access_o[oid] = snap
                    self._rmodify_o[oid] = snap
                else:
                    loc = (oid, key)
                    self._raccess_k[loc] = snap
                    self._rmodify_k[loc] = snap
            elif keyless:
                old = access_o.get(oid)
                if old is None or tuple_dominates(snap, old):
                    access_o[oid] = snap
                else:  # concurrent readers: genuine join
                    access_o[oid] = tuple_join(snap, old)
            else:
                loc = (oid, key)
                access_k = self._raccess_k
                old = access_k.get(loc)
                if old is None or tuple_dominates(snap, old):
                    access_k[loc] = snap
                else:
                    access_k[loc] = tuple_join(snap, old)
        if released_mutex_oid is not None:
            access_o[released_mutex_oid] = snap
            self._rmodify_o[released_mutex_oid] = snap

        # -- lazy relation (mutex ops induce no inter-thread edges) ----
        buf = self._lbuf
        tlen = self._llens[tid]
        if pending:
            for edge in pending:
                tlen = _join_row(buf, base, tlen, edge[1])
        track = oid >= 0 and not IS_MUTEX[kind]
        if track:
            if keyless:
                prev = (self._laccess_o if modifying
                        else self._lmodify_o).get(oid)
            else:
                prev = (self._laccess_k if modifying
                        else self._lmodify_k).get((oid, key))
            if prev is not None:
                tlen = _join_row(buf, base, tlen, prev)
        buf[p] += 1
        self._llens[tid] = tlen
        lazy_snap = tuple(buf[base:base + tlen])
        if track:
            if modifying:
                if keyless:
                    self._laccess_o[oid] = lazy_snap
                    self._lmodify_o[oid] = lazy_snap
                else:
                    loc = (oid, key)
                    self._laccess_k[loc] = lazy_snap
                    self._lmodify_k[loc] = lazy_snap
            elif keyless:
                access_o = self._laccess_o
                old = access_o.get(oid)
                if old is None or tuple_dominates(lazy_snap, old):
                    access_o[oid] = lazy_snap
                else:
                    access_o[oid] = tuple_join(lazy_snap, old)
            else:
                loc = (oid, key)
                access_k = self._laccess_k
                old = access_k.get(loc)
                if old is None or tuple_dominates(lazy_snap, old):
                    access_k[loc] = lazy_snap
                else:
                    access_k[loc] = tuple_join(lazy_snap, old)

        # -- fingerprints (the chained-hash formula of FingerprintChain)
        if key is None:
            key = -1
        chains = self._rchains
        chains[tid] = hash((chains[tid], kind, oid, key, snap))
        self._rcount += 1
        chains = self._lchains
        chains[tid] = hash((chains[tid], kind, oid, key, lazy_snap))
        self._lcount += 1
        return snap, lazy_snap

    # ------------------------------------------------------------------
    # Fingerprint accessors
    def hbr_fingerprint(self) -> int:
        return hash((self._rcount, tuple(self._rchains)))

    def lazy_fingerprint(self) -> int:
        return hash((self._lcount, tuple(self._lchains)))

    def canonical_hbr(self):
        raise ValueError("engine was created with canonical=False")

    def canonical_lazy_hbr(self):
        raise ValueError("engine was created with canonical=False")

    # ------------------------------------------------------------------
    def thread_clock(self, tid: int, lazy: bool = False) -> VectorClock:
        self._ensure(tid)
        base = tid * self._cap
        if lazy:
            row = self._lbuf[base:base + self._llens[tid]]
        else:
            row = self._rbuf[base:base + self._rlens[tid]]
        return VectorClock(init=row)

    def thread_clock_raw(self, tid: int, lazy: bool = False):
        """The thread's clock as an int sequence (supports ``len`` and
        indexing, the DPOR happens-before test's needs).  A zero-copy
        live view, like the reference engine's list — valid until the
        engine's next mutation (``_grow`` swaps buffers but the
        exported view stays on the old one, so no BufferError)."""
        self._ensure(tid)
        base = tid * self._cap
        if lazy:
            return memoryview(self._lbuf)[base:base + self._llens[tid]]
        return memoryview(self._rbuf)[base:base + self._rlens[tid]]

    # ------------------------------------------------------------------
    def table_stats(self) -> Tuple[int, int]:
        """(published table entries, thread count) — snapshot sizing."""
        entries = (
            len(self._raccess_o) + len(self._rmodify_o)
            + len(self._raccess_k) + len(self._rmodify_k)
            + len(self._laccess_o) + len(self._lmodify_o)
            + len(self._laccess_k) + len(self._lmodify_k)
        )
        return entries, self._nthreads
