"""Explicit partial-order view of a trace.

The exploration hot path only ever touches vector clocks and
fingerprints; this module materialises the happens-before relation as a
DAG for the benefit of tests, theorem checkers and pretty-printing.

An event ``i`` precedes ``j`` under the relation iff ``clock(i) <=
clock(j)`` pointwise and ``i != j`` — the vector clocks computed by
:class:`~repro.core.hb.DualClockEngine` encode exactly the transitive
closure, so no graph search is needed.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Sequence, Tuple

from .events import Event
from .vector_clock import tuple_leq


class PartialOrder:
    """A partial order over the events of one executed trace."""

    __slots__ = ("events", "lazy", "_clocks")

    def __init__(self, events: Sequence[Event], lazy: bool = False) -> None:
        self.events: Tuple[Event, ...] = tuple(events)
        self.lazy = lazy
        clocks = []
        for e in self.events:
            c = e.lazy_clock if lazy else e.clock
            if c is None:
                raise ValueError("events must carry vector clocks; run them "
                                 "through an Executor first")
            clocks.append(c)
        self._clocks: List[Tuple[int, ...]] = clocks

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.events)

    def precedes(self, i: int, j: int) -> bool:
        """True when event ``i`` happens-before event ``j``."""
        return i != j and tuple_leq(self._clocks[i], self._clocks[j])

    def concurrent(self, i: int, j: int) -> bool:
        """True when neither event is ordered before the other."""
        return not self.precedes(i, j) and not self.precedes(j, i)

    def predecessors(self, j: int) -> List[int]:
        """All events ordered before ``j`` (transitively)."""
        return [i for i in range(len(self.events)) if self.precedes(i, j)]

    def immediate_predecessors(self, j: int) -> List[int]:
        """Covering relation: predecessors with no intermediate event."""
        preds = set(self.predecessors(j))
        return [
            i
            for i in preds
            if not any(self.precedes(i, k) and self.precedes(k, j) for k in preds)
        ]

    def inter_thread_edges(self) -> List[Tuple[int, int]]:
        """Covering edges between events of different threads — the
        arrows drawn in the paper's Figure 1."""
        out = []
        for j in range(len(self.events)):
            for i in self.immediate_predecessors(j):
                if self.events[i].tid != self.events[j].tid:
                    out.append((i, j))
        return out

    # ------------------------------------------------------------------
    def linearizations(self, limit: Optional[int] = None) -> Iterator[List[int]]:
        """Enumerate topological orders of the relation (all of them, or
        at most ``limit``).  Exponential; only for small traces."""
        n = len(self.events)
        # direct successor counts via pairwise test; fine for test sizes
        indeg = [0] * n
        succs: List[List[int]] = [[] for _ in range(n)]
        for i in range(n):
            for j in range(n):
                if i != j and self.precedes(i, j):
                    succs[i].append(j)
                    indeg[j] += 1
        emitted = 0
        order: List[int] = []

        def rec(avail: List[int]) -> Iterator[List[int]]:
            nonlocal emitted
            if limit is not None and emitted >= limit:
                return
            if len(order) == n:
                emitted += 1
                yield list(order)
                return
            for v in avail:
                next_avail = [w for w in avail if w != v]
                for w in succs[v]:
                    indeg[w] -= 1
                    if indeg[w] == 0:
                        next_avail.append(w)
                order.append(v)
                yield from rec(next_avail)
                order.pop()
                for w in succs[v]:
                    indeg[w] += 1
                if limit is not None and emitted >= limit:
                    return

        yield from rec(sorted(i for i in range(n) if indeg[i] == 0))

    def thread_schedule(self, linearization: Sequence[int]) -> List[int]:
        """Convert a linearization (event indices) to the list of thread
        ids, i.e. a replayable schedule."""
        return [self.events[i].tid for i in linearization]

    # ------------------------------------------------------------------
    def render(self) -> str:
        """Multi-column text rendering in the style of the paper's
        Figure 1: one column per thread, inter-thread arrows listed."""
        tids = sorted({e.tid for e in self.events})
        cols = {t: [] for t in tids}
        names = {}
        for i, e in enumerate(self.events):
            names[i] = f"{e.kind.name.lower()}(o{e.oid})" if e.oid >= 0 else e.kind.name.lower()
            cols[e.tid].append(f"[{i:>3}] {names[i]}")
        width = max((len(s) for col in cols.values() for s in col), default=10) + 2
        height = max(len(c) for c in cols.values())
        lines = ["".join(f"T{t}".ljust(width) for t in tids)]
        for row in range(height):
            lines.append(
                "".join(
                    (cols[t][row] if row < len(cols[t]) else "").ljust(width)
                    for t in tids
                )
            )
        edges = self.inter_thread_edges()
        lines.append("")
        lines.append(f"{'lazy ' if self.lazy else ''}inter-thread edges: "
                     + (", ".join(f"{i}->{j}" for i, j in edges) or "(none)"))
        return "\n".join(lines)
