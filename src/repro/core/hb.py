"""Online computation of the regular and lazy happens-before relations.

The :class:`DualClockEngine` is fed every event as the executor performs
it and maintains, in a single pass:

* per-thread vector clocks under the **regular** HBR (condition (b):
  same variable *or mutex*, at least one modification);
* per-thread vector clocks under the **lazy** HBR (condition (b'):
  same *non-mutex* variable, at least one modification — lock/unlock
  events induce no inter-thread edges);
* incremental fingerprints of both relations
  (:class:`~repro.core.fingerprint.FingerprintChain`).

Runtime-enforced synchronisation that is *not* a data conflict —
spawn/join edges, condition-variable wakeups, semaphore hand-offs,
barrier releases — is injected through :meth:`add_release_edge` and
participates in **both** relations: the lazy HBR only drops edges whose
sole cause is mutual exclusion on a mutex (paper, Section 2).

Per-object state follows the classic two-clock scheme: ``A[o]`` is the
join of the clocks of all accesses to ``o`` so far and ``M[o]`` the join
of the modifying accesses.  A read must happen-after all prior
modifications (join ``M[o]``); a modification must happen-after all
prior accesses (join ``A[o]``).  This yields exactly the transitive
closure of program order plus condition-(b) edges.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from .events import Event, MODIFYING_KINDS, MUTEX_KINDS
from .fingerprint import CanonicalHBR, FingerprintChain
from .vector_clock import VectorClock


class _ClockSide:
    """Clock state for one of the two relations (regular or lazy)."""

    __slots__ = ("thread_clocks", "access", "modify", "chain", "canonical")

    def __init__(self, canonical: bool) -> None:
        self.thread_clocks: List[VectorClock] = []
        self.access: Dict[int, VectorClock] = {}
        self.modify: Dict[int, VectorClock] = {}
        self.chain = FingerprintChain()
        self.canonical: Optional[CanonicalHBR] = CanonicalHBR() if canonical else None

    def ensure_thread(self, tid: int) -> None:
        clocks = self.thread_clocks
        while len(clocks) <= tid:
            clocks.append(VectorClock(len(clocks) + 1))
        self.chain.ensure_thread(tid)


class DualClockEngine:
    """Computes regular and lazy HB clocks plus fingerprints, online.

    Parameters
    ----------
    canonical:
        When true, also build the exact :class:`CanonicalHBR` forms
        (slower; used by theorem checkers and tests, never by the
        exploration hot path).
    """

    __slots__ = ("regular", "lazy", "_pending_sync", "_canonical")

    def __init__(self, canonical: bool = False) -> None:
        self._canonical = canonical
        self.regular = _ClockSide(canonical)
        self.lazy = _ClockSide(canonical)
        # tid -> list of (regular snapshot, lazy snapshot) to join before
        # the thread's next event (release edges from other threads).
        self._pending_sync: Dict[int, List[Tuple[Tuple[int, ...], Tuple[int, ...]]]] = {}

    # ------------------------------------------------------------------
    def register_thread(self, tid: int, parent_spawn_event: Optional[Event] = None) -> None:
        """Declare a thread.  If it was spawned by another thread, its
        clock starts from the spawning event's clock (a spawn edge)."""
        self.regular.ensure_thread(tid)
        self.lazy.ensure_thread(tid)
        if parent_spawn_event is not None:
            assert parent_spawn_event.clock is not None
            self.regular.thread_clocks[tid].join_tuple_inplace(parent_spawn_event.clock)
            self.lazy.thread_clocks[tid].join_tuple_inplace(parent_spawn_event.lazy_clock)

    def add_release_edge(self, event: Event, released_tid: int) -> None:
        """Record that ``event`` unblocked ``released_tid`` (condvar
        notify, semaphore release, barrier completion, thread exit
        observed by join).  The released thread's next event will
        happen-after ``event`` in both relations."""
        assert event.clock is not None and event.lazy_clock is not None
        self._pending_sync.setdefault(released_tid, []).append(
            (event.clock, event.lazy_clock)
        )

    # ------------------------------------------------------------------
    def on_event(self, event: Event) -> None:
        """Execute the clock updates for ``event`` and stamp it with its
        regular and lazy clocks.  Must be called in schedule order."""
        tid = event.tid
        self.regular.ensure_thread(tid)
        self.lazy.ensure_thread(tid)

        pending = self._pending_sync.pop(tid, None)

        event.clock = self._advance(self.regular, event, pending, lazy=False)
        event.lazy_clock = self._advance(self.lazy, event, pending, lazy=True)

        label = event.label()
        self.regular.chain.update(tid, label, event.clock)
        self.lazy.chain.update(tid, label, event.lazy_clock)
        if self._canonical:
            self.regular.canonical.update(tid, label, event.clock)
            self.lazy.canonical.update(tid, label, event.lazy_clock)

    @staticmethod
    def _advance(side: _ClockSide, event: Event, pending, lazy: bool) -> Tuple[int, ...]:
        tc = side.thread_clocks[event.tid]
        if pending:
            idx = 1 if lazy else 0
            for snap in pending:
                tc.join_tuple_inplace(snap[idx])

        kind = event.kind
        skip_edges = lazy and kind in MUTEX_KINDS
        loc = (event.oid, event.key) if event.oid >= 0 else None
        # A WAIT event releases its paired mutex: on the regular side it
        # behaves like an unlock of that mutex as well (so later lock()
        # events are ordered after it).  The lazy side ignores mutexes.
        mutex_loc = None
        if event.released_mutex_oid is not None and not lazy:
            mutex_loc = (event.released_mutex_oid, None)

        if loc is not None and not skip_edges:
            if kind in MODIFYING_KINDS:
                prev = side.access.get(loc)
            else:
                prev = side.modify.get(loc)
            if prev is not None:
                tc.join_inplace(prev)
        if mutex_loc is not None:
            prev = side.access.get(mutex_loc)
            if prev is not None:
                tc.join_inplace(prev)

        tc.tick(event.tid)
        snap_clock = tc.snapshot()

        if loc is not None and not skip_edges:
            DualClockEngine._bump(side.access, loc, snap_clock)
            if kind in MODIFYING_KINDS:
                DualClockEngine._bump(side.modify, loc, snap_clock)
        if mutex_loc is not None:
            DualClockEngine._bump(side.access, mutex_loc, snap_clock)
            DualClockEngine._bump(side.modify, mutex_loc, snap_clock)
        return snap_clock

    @staticmethod
    def _bump(table: Dict, loc, snap_clock: Tuple[int, ...]) -> None:
        vc = table.get(loc)
        if vc is None:
            vc = VectorClock(len(snap_clock))
            table[loc] = vc
        vc.join_tuple_inplace(snap_clock)

    # ------------------------------------------------------------------
    # Fingerprint accessors
    def hbr_fingerprint(self) -> int:
        """Fingerprint of the regular HBR of the trace so far."""
        return self.regular.chain.prefix_fingerprint()

    def lazy_fingerprint(self) -> int:
        """Fingerprint of the lazy HBR of the trace so far."""
        return self.lazy.chain.prefix_fingerprint()

    def canonical_hbr(self):
        """Exact canonical regular HBR (requires ``canonical=True``)."""
        if self.regular.canonical is None:
            raise ValueError("engine was created with canonical=False")
        return self.regular.canonical.freeze()

    def canonical_lazy_hbr(self):
        """Exact canonical lazy HBR (requires ``canonical=True``)."""
        if self.lazy.canonical is None:
            raise ValueError("engine was created with canonical=False")
        return self.lazy.canonical.freeze()

    def thread_clock(self, tid: int, lazy: bool = False) -> VectorClock:
        side = self.lazy if lazy else self.regular
        side.ensure_thread(tid)
        return side.thread_clocks[tid]
