"""Online computation of the regular and lazy happens-before relations.

The :class:`DualClockEngine` is fed every event as the executor performs
it and maintains, in a single pass:

* per-thread vector clocks under the **regular** HBR (condition (b):
  same variable *or mutex*, at least one modification);
* per-thread vector clocks under the **lazy** HBR (condition (b'):
  same *non-mutex* variable, at least one modification — lock/unlock
  events induce no inter-thread edges);
* incremental fingerprints of both relations
  (:class:`~repro.core.fingerprint.FingerprintChain`).

Runtime-enforced synchronisation that is *not* a data conflict —
spawn/join edges, condition-variable wakeups, semaphore hand-offs,
barrier releases — is injected through :meth:`add_release_edge` and
participates in **both** relations: the lazy HBR only drops edges whose
sole cause is mutual exclusion on a mutex (paper, Section 2).

Per-object state follows the classic two-clock scheme: ``A[o]`` is the
join of the clocks of all accesses to ``o`` so far and ``M[o]`` the join
of the modifying accesses.  A read must happen-after all prior
modifications (join ``M[o]``); a modification must happen-after all
prior accesses (join ``A[o]``).  This yields exactly the transitive
closure of program order plus condition-(b) edges.

Hot-path layout (the replay loop executes :meth:`observe` once per
event, thousands of times per schedule):

* thread clocks are plain ``list``-of-int, mutated in place
  (:func:`~repro.core.vector_clock.join_tuple_into`); the only
  allocation per event per relation is the published snapshot tuple —
  copy-on-publish;
* the ``A``/``M`` tables store published *tuples*, not clock objects.
  A modifying access first joins ``A[o]`` into its thread clock and
  then ticks, so its snapshot dominates both table entries and can
  simply **replace** them — no join, no allocation.  Only the
  ``A[o]`` update of a non-modifying access (concurrent readers) can
  need a real join.

Edge classification is driven by the per-kind happens-before classes
(:class:`~repro.core.events.HBClass`, declared in
:data:`~repro.core.events.KIND_SPEC`): the ``IS_MODIFYING``/
``IS_MUTEX`` tables indexed below are derived from those declarations,
so the engine never enumerates primitive kinds — a new primitive
participates in both relations by declaring its classes.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from .events import Event, IS_MODIFYING, IS_MUTEX
from .fingerprint import CanonicalHBR, FingerprintChain
from .vector_clock import (
    VectorClock,
    join_tuple_into,
    tuple_dominates,
    tuple_join,
)


class _ClockSide:
    """Clock state for one of the two relations (regular or lazy).

    ``thread_clocks`` are raw int lists (mutable working clocks);
    ``access``/``modify`` map a location to the published snapshot
    tuple of the join of its (modifying) accesses.
    """

    __slots__ = ("thread_clocks", "access", "modify", "chain", "canonical")

    def __init__(self, canonical: bool) -> None:
        self.thread_clocks: List[List[int]] = []
        self.access: Dict[Tuple[int, object], Tuple[int, ...]] = {}
        self.modify: Dict[Tuple[int, object], Tuple[int, ...]] = {}
        self.chain = FingerprintChain()
        self.canonical: Optional[CanonicalHBR] = CanonicalHBR() if canonical else None

    def ensure_thread(self, tid: int) -> None:
        clocks = self.thread_clocks
        while len(clocks) <= tid:
            clocks.append([0] * (len(clocks) + 1))
        self.chain.ensure_thread(tid)

    def fork(self) -> "_ClockSide":
        """An independent copy of this side's state.

        Cheap by construction: the ``access``/``modify`` tables hold
        *published* snapshot tuples — immutable by the engine's
        copy-on-publish discipline — so forking shares every tuple and
        copies only the two dicts, the short mutable working clocks and
        the fingerprint chain."""
        side = _ClockSide.__new__(_ClockSide)
        side.thread_clocks = [list(c) for c in self.thread_clocks]
        side.access = dict(self.access)
        side.modify = dict(self.modify)
        side.chain = self.chain.fork()
        side.canonical = None
        return side


class DualClockEngine:
    """Computes regular and lazy HB clocks plus fingerprints, online.

    Parameters
    ----------
    canonical:
        When true, also build the exact :class:`CanonicalHBR` forms
        (slower; used by theorem checkers and tests, never by the
        exploration hot path).
    """

    backend = "ref"

    __slots__ = ("regular", "lazy", "_pending_sync", "_canonical")

    def __init__(self, canonical: bool = False) -> None:
        self._canonical = canonical
        self.regular = _ClockSide(canonical)
        self.lazy = _ClockSide(canonical)
        # tid -> list of (regular snapshot, lazy snapshot) to join before
        # the thread's next event (release edges from other threads).
        self._pending_sync: Dict[int, List[Tuple[Tuple[int, ...], Tuple[int, ...]]]] = {}

    # ------------------------------------------------------------------
    def fork(self) -> "DualClockEngine":
        """An independent engine continuing from this one's state.

        Both relations fork via :meth:`_ClockSide.fork` (published
        tuples shared, mutable working state copied); pending release
        edges are copied as well.  Canonical engines do not fork — the
        exact HBR forms are test/analysis machinery, never part of the
        exploration hot path that snapshots executors."""
        if self._canonical:
            raise ValueError("canonical engines cannot fork")
        eng = DualClockEngine.__new__(DualClockEngine)
        eng._canonical = False
        eng.regular = self.regular.fork()
        eng.lazy = self.lazy.fork()
        eng._pending_sync = {
            tid: list(edges) for tid, edges in self._pending_sync.items()
        }
        return eng

    # ------------------------------------------------------------------
    def reserve(self, n: int) -> None:
        """Pre-size both relations for ``n`` statically known threads —
        one bulk call at executor construction instead of per-thread
        incremental growth (executors are built once per schedule)."""
        if n > 0:
            self.regular.ensure_thread(n - 1)
            self.lazy.ensure_thread(n - 1)

    def register_thread(self, tid: int, parent_spawn_event: Optional[Event] = None) -> None:
        """Declare a thread.  If it was spawned by another thread, its
        clock starts from the spawning event's clock (a spawn edge)."""
        if parent_spawn_event is not None:
            assert parent_spawn_event.clock is not None
            self.register_thread_clocks(
                tid, parent_spawn_event.clock, parent_spawn_event.lazy_clock
            )
        else:
            self.regular.ensure_thread(tid)
            self.lazy.ensure_thread(tid)

    def register_thread_clocks(
        self,
        tid: int,
        spawn_clock: Tuple[int, ...],
        spawn_lazy_clock: Tuple[int, ...],
    ) -> None:
        """Raw-value form of :meth:`register_thread` for a spawned
        thread: the child's clocks start from the published snapshots of
        the SPAWN event."""
        self.regular.ensure_thread(tid)
        self.lazy.ensure_thread(tid)
        join_tuple_into(self.regular.thread_clocks[tid], spawn_clock)
        join_tuple_into(self.lazy.thread_clocks[tid], spawn_lazy_clock)

    def add_release_edge(self, event: Event, released_tid: int) -> None:
        """Record that ``event`` unblocked ``released_tid`` (condvar
        notify, semaphore release, barrier completion, thread exit
        observed by join).  The released thread's next event will
        happen-after ``event`` in both relations."""
        assert event.clock is not None and event.lazy_clock is not None
        self.add_release_edge_clocks(event.clock, event.lazy_clock, released_tid)

    def add_release_edge_clocks(
        self,
        clock: Tuple[int, ...],
        lazy_clock: Tuple[int, ...],
        released_tid: int,
    ) -> None:
        """Raw-value form of :meth:`add_release_edge`."""
        self._pending_sync.setdefault(released_tid, []).append(
            (clock, lazy_clock)
        )

    # ------------------------------------------------------------------
    def on_event(self, event: Event) -> None:
        """Execute the clock updates for ``event`` and stamp it with its
        regular and lazy clocks.  Must be called in schedule order."""
        event.clock, event.lazy_clock = self.observe(
            event.tid, event.kind, event.oid, event.key,
            event.released_mutex_oid,
        )

    def observe(
        self,
        tid: int,
        kind: int,
        oid: int,
        key: object,
        released_mutex_oid: Optional[int] = None,
    ) -> Tuple[Tuple[int, ...], Tuple[int, ...]]:
        """Fold one executed operation into both relations and return
        its published ``(regular, lazy)`` clock snapshots.

        This is THE replay hot path (executed once per event, millions
        of times per campaign): both relations are advanced in one
        straight-line body, the fingerprint chains are updated inline,
        and beyond the two published snapshot tuples (plus the label)
        nothing is allocated.
        """
        ps = self._pending_sync
        pending = ps.pop(tid, None) if ps else None
        regular = self.regular
        lazy = self.lazy
        modifying = IS_MODIFYING[kind]
        is_mutex = IS_MUTEX[kind]
        loc = (oid, key) if oid >= 0 else None

        # -- regular relation ------------------------------------------
        tc = regular.thread_clocks[tid]
        access = regular.access
        if pending:
            for edge in pending:
                join_tuple_into(tc, edge[0])
        if loc is not None:
            prev = (access if modifying else regular.modify).get(loc)
            if prev is not None:
                join_tuple_into(tc, prev)
        # A WAIT event releases its paired mutex: on the regular side it
        # behaves like an unlock of that mutex as well (so later lock()
        # events are ordered after it).  The lazy side ignores mutexes.
        mutex_loc = None
        if released_mutex_oid is not None:
            mutex_loc = (released_mutex_oid, None)
            prev = access.get(mutex_loc)
            if prev is not None:
                join_tuple_into(tc, prev)
        tc[tid] += 1
        snap = tuple(tc)  # copy-on-publish: the per-event allocation
        if loc is not None:
            if modifying:
                # joined A[loc] above, then ticked: snap dominates both
                # table entries, so publication is plain replacement.
                access[loc] = snap
                regular.modify[loc] = snap
            else:
                old = access.get(loc)
                if old is None or tuple_dominates(snap, old):
                    access[loc] = snap
                else:  # concurrent readers: genuine join
                    access[loc] = tuple_join(snap, old)
        if mutex_loc is not None:
            # joined A[mutex] above: replacement is sound here too.
            access[mutex_loc] = snap
            regular.modify[mutex_loc] = snap

        # -- lazy relation (mutex ops induce no inter-thread edges) ----
        tc = lazy.thread_clocks[tid]
        if pending:
            for edge in pending:
                join_tuple_into(tc, edge[1])
        if loc is not None and not is_mutex:
            prev = (lazy.access if modifying else lazy.modify).get(loc)
            if prev is not None:
                join_tuple_into(tc, prev)
        tc[tid] += 1
        lazy_snap = tuple(tc)
        if loc is not None and not is_mutex:
            access = lazy.access
            if modifying:
                access[loc] = lazy_snap
                lazy.modify[loc] = lazy_snap
            else:
                old = access.get(loc)
                if old is None or tuple_dominates(lazy_snap, old):
                    access[loc] = lazy_snap
                else:
                    access[loc] = tuple_join(lazy_snap, old)

        # -- fingerprints (chain update inlined — see FingerprintChain;
        # the (label, clock) pair is hashed as one flat tuple to avoid
        # materialising the label)
        if key is None:
            key = -1
        rchain = regular.chain
        chains = rchain._chains
        chains[tid] = hash((chains[tid], kind, oid, key, snap))
        rchain._count += 1
        lchain = lazy.chain
        chains = lchain._chains
        chains[tid] = hash((chains[tid], kind, oid, key, lazy_snap))
        lchain._count += 1
        if self._canonical:
            label = (kind, oid, key)
            regular.canonical.update(tid, label, snap)
            lazy.canonical.update(tid, label, lazy_snap)
        return snap, lazy_snap

    #: No-return variant for callers that drop the published snapshots
    #: (the fused step loop).  A plain alias here; the compiled native
    #: kernel's version skips the tuple materialisations.
    observe_fast = observe

    # ------------------------------------------------------------------
    # Fingerprint accessors
    def hbr_fingerprint(self) -> int:
        """Fingerprint of the regular HBR of the trace so far."""
        return self.regular.chain.prefix_fingerprint()

    def lazy_fingerprint(self) -> int:
        """Fingerprint of the lazy HBR of the trace so far."""
        return self.lazy.chain.prefix_fingerprint()

    def canonical_hbr(self):
        """Exact canonical regular HBR (requires ``canonical=True``)."""
        if self.regular.canonical is None:
            raise ValueError("engine was created with canonical=False")
        return self.regular.canonical.freeze()

    def canonical_lazy_hbr(self):
        """Exact canonical lazy HBR (requires ``canonical=True``)."""
        if self.lazy.canonical is None:
            raise ValueError("engine was created with canonical=False")
        return self.lazy.canonical.freeze()

    def thread_clock(self, tid: int, lazy: bool = False) -> VectorClock:
        """The thread's current clock, as an independent
        :class:`VectorClock` copy (API for analysis code and tests)."""
        side = self.lazy if lazy else self.regular
        side.ensure_thread(tid)
        return VectorClock(init=side.thread_clocks[tid])

    def thread_clock_raw(self, tid: int, lazy: bool = False) -> List[int]:
        """The live, mutable list clock of ``tid`` — read-only use
        (DPOR's happens-before tests).  No defensive copy."""
        side = self.lazy if lazy else self.regular
        side.ensure_thread(tid)
        return side.thread_clocks[tid]

    # ------------------------------------------------------------------
    def table_stats(self) -> Tuple[int, int]:
        """(published table entries, thread count) — the backend-neutral
        sizing hook snapshot memory estimation uses (the accelerated
        engine exposes the same signature over its own layout)."""
        r, z = self.regular, self.lazy
        entries = (
            len(r.access) + len(r.modify) + len(z.access) + len(z.modify)
        )
        return entries, len(r.thread_clocks)
