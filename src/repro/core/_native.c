/* The compiled native clock-engine kernel (repro.core._native).
 *
 * C twin of the pure-Python kernel in repro/core/hb_native.py: the
 * dual-side clock join of DualClockEngine.observe(), the
 * dominance-based A/M table replacement, and the flat fingerprint
 * chains, laid out as raw machine-int rows.  Byte-identity with the
 * pure engines is a hard contract: fingerprints are computed with a
 * re-implementation of CPython's own int hash (61-bit Mersenne
 * modulus) and tuple hash (the xxPRIME combiner of pyhash.c, CPython
 * 3.8+), verified against the running interpreter at first use
 * (hb_native.self_test) and suite-wide by the equivalence tests.
 *
 * Layout notes
 * ------------
 * - Thread clocks are contiguous int64 rows of stride `cap` per
 *   relation; a row's logical length replicates the reference
 *   engine's grow-on-join rule exactly (published snapshot LENGTHS
 *   feed the fingerprint hash, so they must match bit-for-bit).
 *   Physical cells past the logical length are always zero.
 * - Whole-object locations (key is None — the hot case) live in
 *   C arrays indexed by oid holding refcounted Snap rows: publishing
 *   allocates one Snap, not a Python tuple, and observe_fast()
 *   allocates no Python object at all on the keyless path.
 * - Element locations ((oid, key) with a real key) stay in Python
 *   dicts of published tuples, like the pure kernels.
 * - fork() is a handful of memcpys plus table copies that bump Snap
 *   refcounts — the copy-on-publish discipline of the reference
 *   engine at the machine level.
 *
 * The Python-visible class (hb_native.NativeClockEngine) subclasses
 * EngineCore to add the thin conveniences (register_thread from a
 * spawn event, on_event stamping, VectorClock views); everything on
 * the per-event path lives here.
 */

#define PY_SSIZE_T_CLEAN
#include <Python.h>
#include <stdint.h>
#include <string.h>

#if SIZEOF_VOID_P < 8
#error "repro.core._native requires a 64-bit CPython (Py_hash_t == int64)"
#endif

/* ------------------------------------------------------------------ */
/* CPython-identical hashing                                          */

#define PYHASH_MODULUS (((uint64_t)1 << 61) - 1)

static inline Py_hash_t
i64_hash(int64_t v)
{
    /* CPython's long_hash for values that fit in 64 bits. */
    uint64_t u = (v >= 0) ? (uint64_t)v : 0ULL - (uint64_t)v;
    uint64_t m = u % PYHASH_MODULUS;
    if (v < 0) {
        Py_hash_t h = -(Py_hash_t)m;
        if (h == -1)
            h = -2;
        return h;
    }
    return (Py_hash_t)m;
}

/* The xxPRIME-based tuple hash of Objects/tupleobject.c (3.8+). */
#define XXPRIME_1 ((uint64_t)11400714785074694791ULL)
#define XXPRIME_2 ((uint64_t)14029467366897019727ULL)
#define XXPRIME_5 ((uint64_t)2870177450012600261ULL)
#define XXROTATE(x) ((x << 31) | (x >> 33))

static inline uint64_t
tup_lane(uint64_t acc, uint64_t lane)
{
    acc += lane * XXPRIME_2;
    acc = XXROTATE(acc);
    acc *= XXPRIME_1;
    return acc;
}

static inline Py_hash_t
tup_fini(uint64_t acc, Py_ssize_t len)
{
    acc += ((uint64_t)len) ^ (XXPRIME_5 ^ 3527539ULL);
    if (acc == (uint64_t)-1)
        acc = 1546275796;
    return (Py_hash_t)acc;
}

/* Hash of tuple(row[:len]) without building the tuple. */
static inline Py_hash_t
row_hash(const int64_t *row, int32_t len)
{
    uint64_t acc = XXPRIME_5;
    int32_t i;
    for (i = 0; i < len; i++)
        acc = tup_lane(acc, (uint64_t)i64_hash(row[i]));
    return tup_fini(acc, (Py_ssize_t)len);
}

/* ------------------------------------------------------------------ */
/* Snap: refcounted published clock row (keyless location tables)     */

typedef struct {
    Py_ssize_t rc;
    int32_t len;
    int64_t v[1];
} Snap;

static Snap *
snap_from_row(const int64_t *row, int32_t len)
{
    Snap *s = (Snap *)PyMem_Malloc(sizeof(Snap) + (size_t)(len > 0 ? len - 1 : 0) * sizeof(int64_t));
    if (s == NULL)
        return (Snap *)PyErr_NoMemory();
    s->rc = 1;
    s->len = len;
    memcpy(s->v, row, (size_t)len * sizeof(int64_t));
    return s;
}

static inline void
snap_decref(Snap *s)
{
    if (s != NULL && --s->rc == 0)
        PyMem_Free(s);
}

static inline Snap *
snap_incref(Snap *s)
{
    if (s != NULL)
        s->rc++;
    return s;
}

/* Does the live row (physical zeros past len) dominate `old`?
 * Mirrors vector_clock.tuple_dominates: zero entries never block. */
static inline int
row_dominates_snap(const int64_t *row, const Snap *old)
{
    int32_t i;
    for (i = 0; i < old->len; i++) {
        int64_t v = old->v[i];
        if (v && v > row[i])
            return 0;
    }
    return 1;
}

/* max(len, old->len)-long elementwise max of row and old. */
static Snap *
snap_join_row(const int64_t *row, int32_t len, const Snap *old)
{
    int32_t n = len > old->len ? len : old->len;
    Snap *s = (Snap *)PyMem_Malloc(sizeof(Snap) + (size_t)(n > 0 ? n - 1 : 0) * sizeof(int64_t));
    int32_t i;
    if (s == NULL)
        return (Snap *)PyErr_NoMemory();
    s->rc = 1;
    s->len = n;
    for (i = 0; i < n; i++) {
        int64_t a = i < len ? row[i] : 0;
        int64_t b = i < old->len ? old->v[i] : 0;
        s->v[i] = a > b ? a : b;
    }
    return s;
}

static PyObject *
tuple_from_row(const int64_t *row, int32_t len)
{
    PyObject *t = PyTuple_New(len);
    int32_t i;
    if (t == NULL)
        return NULL;
    for (i = 0; i < len; i++) {
        PyObject *x = PyLong_FromLongLong(row[i]);
        if (x == NULL) {
            Py_DECREF(t);
            return NULL;
        }
        PyTuple_SET_ITEM(t, i, x);
    }
    return t;
}

/* ------------------------------------------------------------------ */
/* Kind tables, copied once from repro.core.events at module import   */

#define MAX_KINDS 64
static unsigned char IS_MOD[MAX_KINDS];
static unsigned char IS_MUT[MAX_KINDS];
static int NKINDS = 0;

/* ------------------------------------------------------------------ */
/* EngineCore                                                         */

#define INITIAL_CAP 8
#define INITIAL_LOCAP 32

static PyTypeObject EngineCore_Type;

typedef struct {
    PyObject_HEAD
    int32_t cap;       /* row stride (thread capacity)                */
    int32_t nthreads;
    int32_t locap;     /* keyless-table capacity (oids)               */
    int32_t pending_n; /* tids with queued release edges              */
    int64_t *rbuf, *lbuf;
    int32_t *rlens, *llens;
    int64_t *rchains, *lchains; /* Py_hash_t chain values             */
    int64_t rcount, lcount;
    Snap **raccess_o, **rmodify_o, **laccess_o, **lmodify_o;
    PyObject *raccess_k, *rmodify_k, *laccess_k, *lmodify_k;
    PyObject *pending; /* dict: tid -> list[(clock, lazy_clock)]      */
} EngineCore;

static int
engine_alloc_buffers(EngineCore *self, int32_t cap, int32_t locap)
{
    size_t rowbytes = (size_t)cap * (size_t)cap * sizeof(int64_t);
    self->rbuf = (int64_t *)PyMem_Calloc(1, rowbytes);
    self->lbuf = (int64_t *)PyMem_Calloc(1, rowbytes);
    self->rlens = (int32_t *)PyMem_Calloc((size_t)cap, sizeof(int32_t));
    self->llens = (int32_t *)PyMem_Calloc((size_t)cap, sizeof(int32_t));
    self->rchains = (int64_t *)PyMem_Calloc((size_t)cap, sizeof(int64_t));
    self->lchains = (int64_t *)PyMem_Calloc((size_t)cap, sizeof(int64_t));
    self->raccess_o = (Snap **)PyMem_Calloc((size_t)locap, sizeof(Snap *));
    self->rmodify_o = (Snap **)PyMem_Calloc((size_t)locap, sizeof(Snap *));
    self->laccess_o = (Snap **)PyMem_Calloc((size_t)locap, sizeof(Snap *));
    self->lmodify_o = (Snap **)PyMem_Calloc((size_t)locap, sizeof(Snap *));
    if (!self->rbuf || !self->lbuf || !self->rlens || !self->llens ||
        !self->rchains || !self->lchains || !self->raccess_o ||
        !self->rmodify_o || !self->laccess_o || !self->lmodify_o) {
        PyErr_NoMemory();
        return -1;
    }
    self->cap = cap;
    self->locap = locap;
    return 0;
}

static void
engine_free_buffers(EngineCore *self)
{
    int32_t i;
    PyMem_Free(self->rbuf);
    PyMem_Free(self->lbuf);
    PyMem_Free(self->rlens);
    PyMem_Free(self->llens);
    PyMem_Free(self->rchains);
    PyMem_Free(self->lchains);
    if (self->raccess_o)
        for (i = 0; i < self->locap; i++)
            snap_decref(self->raccess_o[i]);
    if (self->rmodify_o)
        for (i = 0; i < self->locap; i++)
            snap_decref(self->rmodify_o[i]);
    if (self->laccess_o)
        for (i = 0; i < self->locap; i++)
            snap_decref(self->laccess_o[i]);
    if (self->lmodify_o)
        for (i = 0; i < self->locap; i++)
            snap_decref(self->lmodify_o[i]);
    PyMem_Free(self->raccess_o);
    PyMem_Free(self->rmodify_o);
    PyMem_Free(self->laccess_o);
    PyMem_Free(self->lmodify_o);
    self->rbuf = self->lbuf = NULL;
    self->rlens = self->llens = NULL;
    self->rchains = self->lchains = NULL;
    self->raccess_o = self->rmodify_o = NULL;
    self->laccess_o = self->lmodify_o = NULL;
}

static PyObject *
engine_new(PyTypeObject *type, PyObject *args, PyObject *kwds)
{
    EngineCore *self = (EngineCore *)type->tp_alloc(type, 0);
    if (self == NULL)
        return NULL;
    if (engine_alloc_buffers(self, INITIAL_CAP, INITIAL_LOCAP) < 0) {
        Py_DECREF(self);
        return NULL;
    }
    self->nthreads = 0;
    self->pending_n = 0;
    self->rcount = self->lcount = 0;
    self->raccess_k = PyDict_New();
    self->rmodify_k = PyDict_New();
    self->laccess_k = PyDict_New();
    self->lmodify_k = PyDict_New();
    self->pending = PyDict_New();
    if (!self->raccess_k || !self->rmodify_k || !self->laccess_k ||
        !self->lmodify_k || !self->pending) {
        Py_DECREF(self);
        return NULL;
    }
    return (PyObject *)self;
}

static void
engine_dealloc(EngineCore *self)
{
    engine_free_buffers(self);
    Py_XDECREF(self->raccess_k);
    Py_XDECREF(self->rmodify_k);
    Py_XDECREF(self->laccess_k);
    Py_XDECREF(self->lmodify_k);
    Py_XDECREF(self->pending);
    Py_TYPE(self)->tp_free((PyObject *)self);
}

/* Widen the row stride (rare: dynamic spawns past the reserve). */
static int
engine_grow_cap(EngineCore *self, int32_t need)
{
    int32_t new_cap = self->cap;
    int64_t *nr, *nl;
    int32_t *nrl, *nll;
    int64_t *nrc, *nlc;
    int32_t t;
    while (new_cap < need)
        new_cap *= 2;
    nr = (int64_t *)PyMem_Calloc(1, (size_t)new_cap * new_cap * sizeof(int64_t));
    nl = (int64_t *)PyMem_Calloc(1, (size_t)new_cap * new_cap * sizeof(int64_t));
    nrl = (int32_t *)PyMem_Calloc((size_t)new_cap, sizeof(int32_t));
    nll = (int32_t *)PyMem_Calloc((size_t)new_cap, sizeof(int32_t));
    nrc = (int64_t *)PyMem_Calloc((size_t)new_cap, sizeof(int64_t));
    nlc = (int64_t *)PyMem_Calloc((size_t)new_cap, sizeof(int64_t));
    if (!nr || !nl || !nrl || !nll || !nrc || !nlc) {
        PyMem_Free(nr); PyMem_Free(nl); PyMem_Free(nrl);
        PyMem_Free(nll); PyMem_Free(nrc); PyMem_Free(nlc);
        PyErr_NoMemory();
        return -1;
    }
    for (t = 0; t < self->nthreads; t++) {
        memcpy(nr + (size_t)t * new_cap, self->rbuf + (size_t)t * self->cap,
               (size_t)self->rlens[t] * sizeof(int64_t));
        memcpy(nl + (size_t)t * new_cap, self->lbuf + (size_t)t * self->cap,
               (size_t)self->llens[t] * sizeof(int64_t));
    }
    memcpy(nrl, self->rlens, (size_t)self->nthreads * sizeof(int32_t));
    memcpy(nll, self->llens, (size_t)self->nthreads * sizeof(int32_t));
    memcpy(nrc, self->rchains, (size_t)self->nthreads * sizeof(int64_t));
    memcpy(nlc, self->lchains, (size_t)self->nthreads * sizeof(int64_t));
    PyMem_Free(self->rbuf); PyMem_Free(self->lbuf);
    PyMem_Free(self->rlens); PyMem_Free(self->llens);
    PyMem_Free(self->rchains); PyMem_Free(self->lchains);
    self->rbuf = nr; self->lbuf = nl;
    self->rlens = nrl; self->llens = nll;
    self->rchains = nrc; self->lchains = nlc;
    self->cap = new_cap;
    return 0;
}

static int
engine_grow_locap(EngineCore *self, int32_t need)
{
    int32_t new_cap = self->locap;
    Snap ***tables[4] = {&self->raccess_o, &self->rmodify_o,
                         &self->laccess_o, &self->lmodify_o};
    int i;
    while (new_cap < need)
        new_cap *= 2;
    for (i = 0; i < 4; i++) {
        Snap **nt = (Snap **)PyMem_Calloc((size_t)new_cap, sizeof(Snap *));
        if (nt == NULL) {
            PyErr_NoMemory();
            return -1;
        }
        memcpy(nt, *tables[i], (size_t)self->locap * sizeof(Snap *));
        PyMem_Free(*tables[i]);
        *tables[i] = nt;
    }
    self->locap = new_cap;
    return 0;
}

/* Declare threads 0..tid in both relations (fused ensure_thread).
 * A fresh thread's clock is [0]*(index+1); its chain is seeded
 * hash((_SEED, index)) exactly like FingerprintChain.  _SEED
 * (0x9E3779B97F4A7C15) exceeds INT64_MAX, so its CPython hash is
 * computed here in unsigned arithmetic: positive int -> value mod
 * (2^61 - 1).                                                      */
#define FP_SEED_LANE ((uint64_t)(0x9E3779B97F4A7C15ULL % PYHASH_MODULUS))

static int
engine_ensure(EngineCore *self, int32_t tid)
{
    int32_t n = self->nthreads;
    if (n > tid)
        return 0;
    if (tid >= self->cap && engine_grow_cap(self, tid + 1) < 0)
        return -1;
    while (n <= tid) {
        uint64_t acc = XXPRIME_5;
        Py_hash_t seed;
        self->rlens[n] = n + 1;
        self->llens[n] = n + 1;
        acc = tup_lane(acc, FP_SEED_LANE);
        acc = tup_lane(acc, (uint64_t)i64_hash(n));
        seed = tup_fini(acc, 2);
        self->rchains[n] = seed;
        self->lchains[n] = seed;
        n++;
    }
    self->nthreads = n;
    return 0;
}

/* Join a Python snapshot tuple into a row; returns new logical length
 * or -1 on error.  Grows cap first if the tuple is wider.           */
static int32_t
join_pytuple_row(EngineCore *self, int side_lazy, int32_t tid, PyObject *tup,
                 int32_t tlen)
{
    Py_ssize_t n = PyTuple_GET_SIZE(tup);
    int64_t *row;
    Py_ssize_t i;
    if ((int32_t)n > self->cap) {
        if (engine_grow_cap(self, (int32_t)n) < 0)
            return -1;
    }
    row = (side_lazy ? self->lbuf : self->rbuf) + (size_t)tid * self->cap;
    for (i = 0; i < n; i++) {
        int64_t v = PyLong_AsLongLong(PyTuple_GET_ITEM(tup, i));
        if (v == -1 && PyErr_Occurred())
            return -1;
        if (v > row[i])
            row[i] = v;
    }
    return (int32_t)n > tlen ? (int32_t)n : tlen;
}

static inline int32_t
join_snap_row(int64_t *row, int32_t tlen, const Snap *s)
{
    int32_t i;
    for (i = 0; i < s->len; i++)
        if (s->v[i] > row[i])
            row[i] = s->v[i];
    return s->len > tlen ? s->len : tlen;
}

/* -- keyed-table helpers (element locations stay on Python dicts) -- */

static int
keyed_publish(PyObject *access, PyObject *modify, PyObject *loc,
              PyObject *snap, int modifying, const int64_t *row, int32_t tlen)
{
    if (modifying) {
        if (PyDict_SetItem(access, loc, snap) < 0)
            return -1;
        return PyDict_SetItem(modify, loc, snap);
    }
    else {
        PyObject *old = PyDict_GetItemWithError(access, loc);
        if (old == NULL) {
            if (PyErr_Occurred())
                return -1;
            return PyDict_SetItem(access, loc, snap);
        }
        /* dominance test of the live row against the old tuple */
        {
            Py_ssize_t olen = PyTuple_GET_SIZE(old);
            Py_ssize_t i;
            int dominates = 1;
            for (i = 0; i < olen; i++) {
                int64_t v = PyLong_AsLongLong(PyTuple_GET_ITEM(old, i));
                if (v == -1 && PyErr_Occurred())
                    return -1;
                if (v && (i >= (Py_ssize_t)tlen || v > row[i])) {
                    dominates = 0;
                    break;
                }
            }
            if (dominates)
                return PyDict_SetItem(access, loc, snap);
            /* genuine join (concurrent readers) */
            {
                Py_ssize_t n = olen > (Py_ssize_t)tlen ? olen : (Py_ssize_t)tlen;
                PyObject *joined = PyTuple_New(n);
                int rc;
                if (joined == NULL)
                    return -1;
                for (i = 0; i < n; i++) {
                    int64_t a = i < (Py_ssize_t)tlen ? row[i] : 0;
                    int64_t b = 0;
                    PyObject *x;
                    if (i < olen) {
                        b = PyLong_AsLongLong(PyTuple_GET_ITEM(old, i));
                        if (b == -1 && PyErr_Occurred()) {
                            Py_DECREF(joined);
                            return -1;
                        }
                    }
                    x = PyLong_FromLongLong(a > b ? a : b);
                    if (x == NULL) {
                        Py_DECREF(joined);
                        return -1;
                    }
                    PyTuple_SET_ITEM(joined, i, x);
                }
                rc = PyDict_SetItem(access, loc, joined);
                Py_DECREF(joined);
                return rc;
            }
        }
    }
}

/* ------------------------------------------------------------------ */
/* observe                                                            */

static PyObject *
engine_observe_impl(EngineCore *self, PyObject *const *args, Py_ssize_t nargs,
                    PyObject *kwnames, int want_tuples)
{
    long tid, kind, oid;
    long rmo = -1;
    int has_rmo = 0;
    PyObject *key;
    PyObject *pending_edges = NULL;
    int modifying, ismutex, keyless;
    int64_t *row;
    int32_t tlen;
    size_t base;
    PyObject *snap_t = NULL, *lazy_t = NULL; /* built lazily */
    Snap *snap_s = NULL;                     /* keyless published row */
    Py_hash_t snap_h, lazy_h;
    uint64_t keylane;

    if (nargs < 4 || nargs > 5) {
        PyErr_SetString(PyExc_TypeError,
                        "observe(tid, kind, oid, key[, released_mutex_oid])");
        return NULL;
    }
    if (kwnames != NULL && PyTuple_GET_SIZE(kwnames) > 0) {
        /* only released_mutex_oid may be passed by keyword */
        PyObject *name;
        if (PyTuple_GET_SIZE(kwnames) != 1 || nargs != 4) {
            PyErr_SetString(PyExc_TypeError,
                            "observe() unexpected keyword arguments");
            return NULL;
        }
        name = PyTuple_GET_ITEM(kwnames, 0);
        if (PyUnicode_CompareWithASCIIString(name, "released_mutex_oid") != 0) {
            PyErr_SetString(PyExc_TypeError,
                            "observe() unexpected keyword argument");
            return NULL;
        }
        nargs = 5; /* args[4] holds the keyword value (FASTCALL layout) */
    }
    tid = PyLong_AsLong(args[0]);
    kind = PyLong_AsLong(args[1]);
    oid = PyLong_AsLong(args[2]);
    if ((tid == -1 || kind == -1 || oid == -1) && PyErr_Occurred())
        return NULL;
    key = args[3];
    if (nargs == 5 && args[4] != Py_None) {
        rmo = PyLong_AsLong(args[4]);
        if (rmo == -1 && PyErr_Occurred())
            return NULL;
        has_rmo = 1;
    }
    if (kind < 0 || kind >= NKINDS) {
        PyErr_Format(PyExc_ValueError, "unknown kind %ld", kind);
        return NULL;
    }
    if (engine_ensure(self, (int32_t)tid) < 0)
        return NULL;
    {
        int32_t need = (int32_t)(oid >= 0 ? oid : 0);
        if (has_rmo && (int32_t)rmo > need)
            need = (int32_t)rmo;
        if (need >= self->locap && engine_grow_locap(self, need + 1) < 0)
            return NULL;
    }
    modifying = IS_MOD[kind];
    ismutex = IS_MUT[kind];
    keyless = (key == Py_None);

    if (self->pending_n > 0) {
        PyObject *tk = PyLong_FromLong(tid);
        if (tk == NULL)
            return NULL;
        pending_edges = PyDict_GetItemWithError(self->pending, tk);
        if (pending_edges != NULL) {
            Py_INCREF(pending_edges);
            if (PyDict_DelItem(self->pending, tk) < 0) {
                Py_DECREF(pending_edges);
                Py_DECREF(tk);
                return NULL;
            }
            self->pending_n--;
        }
        else if (PyErr_Occurred()) {
            Py_DECREF(tk);
            return NULL;
        }
        Py_DECREF(tk);
    }

    /* -- regular relation ------------------------------------------ */
    base = (size_t)tid * self->cap;
    row = self->rbuf + base;
    tlen = self->rlens[tid];
    if (pending_edges != NULL) {
        Py_ssize_t n = PyList_GET_SIZE(pending_edges);
        Py_ssize_t i;
        for (i = 0; i < n; i++) {
            PyObject *edge = PyList_GET_ITEM(pending_edges, i);
            tlen = join_pytuple_row(self, 0, (int32_t)tid,
                                    PyTuple_GET_ITEM(edge, 0), tlen);
            if (tlen < 0)
                goto error;
            row = self->rbuf + (size_t)tid * self->cap; /* cap may grow */
        }
        base = (size_t)tid * self->cap;
    }
    if (oid >= 0) {
        if (keyless) {
            Snap *prev = (modifying ? self->raccess_o
                                    : self->rmodify_o)[oid];
            if (prev != NULL)
                tlen = join_snap_row(row, tlen, prev);
        }
        else {
            PyObject *loc = PyTuple_Pack(2, args[2], key);
            PyObject *prev;
            if (loc == NULL)
                goto error;
            prev = PyDict_GetItemWithError(
                modifying ? self->raccess_k : self->rmodify_k, loc);
            Py_DECREF(loc);
            if (prev != NULL) {
                tlen = join_pytuple_row(self, 0, (int32_t)tid, prev, tlen);
                if (tlen < 0)
                    goto error;
                row = self->rbuf + (size_t)tid * self->cap;
                base = (size_t)tid * self->cap;
            }
            else if (PyErr_Occurred())
                goto error;
        }
    }
    /* A WAIT event releases its paired mutex: regular side only. */
    if (has_rmo) {
        Snap *prev = self->raccess_o[rmo];
        if (prev != NULL)
            tlen = join_snap_row(row, tlen, prev);
    }
    row[tid] += 1;
    self->rlens[tid] = tlen;
    snap_h = row_hash(row, tlen);

    /* publication (regular) */
    if (oid >= 0) {
        if (keyless) {
            if (modifying) {
                snap_s = snap_from_row(row, tlen);
                if (snap_s == NULL)
                    goto error;
                snap_decref(self->raccess_o[oid]);
                snap_decref(self->rmodify_o[oid]);
                self->raccess_o[oid] = snap_incref(snap_s);
                self->rmodify_o[oid] = snap_incref(snap_s);
            }
            else {
                Snap *old = self->raccess_o[oid];
                if (old == NULL || row_dominates_snap(row, old)) {
                    Snap *s = snap_from_row(row, tlen);
                    if (s == NULL)
                        goto error;
                    snap_decref(old);
                    self->raccess_o[oid] = s;
                }
                else { /* concurrent readers: genuine join */
                    Snap *s = snap_join_row(row, tlen, old);
                    if (s == NULL)
                        goto error;
                    snap_decref(old);
                    self->raccess_o[oid] = s;
                }
            }
        }
        else {
            PyObject *loc = PyTuple_Pack(2, args[2], key);
            int rc;
            if (loc == NULL)
                goto error;
            snap_t = tuple_from_row(row, tlen);
            if (snap_t == NULL) {
                Py_DECREF(loc);
                goto error;
            }
            rc = keyed_publish(self->raccess_k, self->rmodify_k, loc,
                               snap_t, modifying, row, tlen);
            Py_DECREF(loc);
            if (rc < 0)
                goto error;
        }
    }
    if (has_rmo) {
        /* joined A[mutex] above: replacement is sound here too. */
        Snap *s = snap_s != NULL ? snap_incref(snap_s)
                                 : snap_from_row(row, tlen);
        if (s == NULL)
            goto error;
        snap_decref(self->raccess_o[rmo]);
        snap_decref(self->rmodify_o[rmo]);
        self->raccess_o[rmo] = s;
        self->rmodify_o[rmo] = snap_incref(s);
    }
    if (want_tuples && snap_t == NULL) {
        snap_t = tuple_from_row(row, tlen);
        if (snap_t == NULL)
            goto error;
    }
    snap_decref(snap_s);
    snap_s = NULL;

    /* -- lazy relation (mutex ops induce no inter-thread edges) ---- */
    row = self->lbuf + base;
    tlen = self->llens[tid];
    if (pending_edges != NULL) {
        Py_ssize_t n = PyList_GET_SIZE(pending_edges);
        Py_ssize_t i;
        for (i = 0; i < n; i++) {
            PyObject *edge = PyList_GET_ITEM(pending_edges, i);
            tlen = join_pytuple_row(self, 1, (int32_t)tid,
                                    PyTuple_GET_ITEM(edge, 1), tlen);
            if (tlen < 0)
                goto error;
            row = self->lbuf + (size_t)tid * self->cap;
        }
        base = (size_t)tid * self->cap;
        Py_CLEAR(pending_edges);
    }
    {
        int track = (oid >= 0) && !ismutex;
        if (track) {
            if (keyless) {
                Snap *prev = (modifying ? self->laccess_o
                                        : self->lmodify_o)[oid];
                if (prev != NULL)
                    tlen = join_snap_row(row, tlen, prev);
            }
            else {
                PyObject *loc = PyTuple_Pack(2, args[2], key);
                PyObject *prev;
                if (loc == NULL)
                    goto error;
                prev = PyDict_GetItemWithError(
                    modifying ? self->laccess_k : self->lmodify_k, loc);
                Py_DECREF(loc);
                if (prev != NULL) {
                    tlen = join_pytuple_row(self, 1, (int32_t)tid, prev,
                                            tlen);
                    if (tlen < 0)
                        goto error;
                    row = self->lbuf + (size_t)tid * self->cap;
                }
                else if (PyErr_Occurred())
                    goto error;
            }
        }
        row[tid] += 1;
        self->llens[tid] = tlen;
        lazy_h = row_hash(row, tlen);
        if (track) {
            if (keyless) {
                if (modifying) {
                    Snap *s = snap_from_row(row, tlen);
                    if (s == NULL)
                        goto error;
                    snap_decref(self->laccess_o[oid]);
                    snap_decref(self->lmodify_o[oid]);
                    self->laccess_o[oid] = s;
                    self->lmodify_o[oid] = snap_incref(s);
                }
                else {
                    Snap *old = self->laccess_o[oid];
                    if (old == NULL || row_dominates_snap(row, old)) {
                        Snap *s = snap_from_row(row, tlen);
                        if (s == NULL)
                            goto error;
                        snap_decref(old);
                        self->laccess_o[oid] = s;
                    }
                    else {
                        Snap *s = snap_join_row(row, tlen, old);
                        if (s == NULL)
                            goto error;
                        snap_decref(old);
                        self->laccess_o[oid] = s;
                    }
                }
            }
            else {
                PyObject *loc = PyTuple_Pack(2, args[2], key);
                int rc;
                if (loc == NULL)
                    goto error;
                lazy_t = tuple_from_row(row, tlen);
                if (lazy_t == NULL) {
                    Py_DECREF(loc);
                    goto error;
                }
                rc = keyed_publish(self->laccess_k, self->lmodify_k, loc,
                                   lazy_t, modifying, row, tlen);
                Py_DECREF(loc);
                if (rc < 0)
                    goto error;
            }
        }
    }
    if (want_tuples && lazy_t == NULL) {
        lazy_t = tuple_from_row(row, tlen);
        if (lazy_t == NULL)
            goto error;
    }

    /* -- fingerprints (the chained-hash formula of FingerprintChain,
     * key None hashed as -1) -------------------------------------- */
    if (keyless)
        keylane = (uint64_t)(Py_hash_t)-2; /* hash(-1) == -2 */
    else if (PyLong_CheckExact(key)) {
        int overflow;
        long long kv = PyLong_AsLongLongAndOverflow(key, &overflow);
        if (overflow == 0) {
            if (kv == -1 && PyErr_Occurred())
                goto error;
            keylane = (uint64_t)i64_hash((int64_t)kv);
        }
        else {
            Py_hash_t kh = PyObject_Hash(key);
            if (kh == -1 && PyErr_Occurred())
                goto error;
            keylane = (uint64_t)kh;
        }
    }
    else {
        Py_hash_t kh = PyObject_Hash(key);
        if (kh == -1 && PyErr_Occurred())
            goto error;
        keylane = (uint64_t)kh;
    }
    {
        uint64_t acc = XXPRIME_5;
        acc = tup_lane(acc, (uint64_t)i64_hash(self->rchains[tid]));
        acc = tup_lane(acc, (uint64_t)i64_hash(kind));
        acc = tup_lane(acc, (uint64_t)i64_hash(oid));
        acc = tup_lane(acc, keylane);
        acc = tup_lane(acc, (uint64_t)snap_h);
        self->rchains[tid] = tup_fini(acc, 5);
        self->rcount++;
        acc = XXPRIME_5;
        acc = tup_lane(acc, (uint64_t)i64_hash(self->lchains[tid]));
        acc = tup_lane(acc, (uint64_t)i64_hash(kind));
        acc = tup_lane(acc, (uint64_t)i64_hash(oid));
        acc = tup_lane(acc, keylane);
        acc = tup_lane(acc, (uint64_t)lazy_h);
        self->lchains[tid] = tup_fini(acc, 5);
        self->lcount++;
    }

    if (want_tuples) {
        PyObject *out = PyTuple_Pack(2, snap_t, lazy_t);
        Py_DECREF(snap_t);
        Py_DECREF(lazy_t);
        return out;
    }
    Py_XDECREF(snap_t);
    Py_XDECREF(lazy_t);
    Py_RETURN_NONE;

error:
    Py_XDECREF(pending_edges);
    Py_XDECREF(snap_t);
    Py_XDECREF(lazy_t);
    snap_decref(snap_s);
    return NULL;
}

static PyObject *
engine_observe(EngineCore *self, PyObject *const *args, Py_ssize_t nargs,
               PyObject *kwnames)
{
    return engine_observe_impl(self, args, nargs, kwnames, 1);
}

static PyObject *
engine_observe_fast(EngineCore *self, PyObject *const *args, Py_ssize_t nargs,
                    PyObject *kwnames)
{
    return engine_observe_impl(self, args, nargs, kwnames, 0);
}

/* ------------------------------------------------------------------ */
/* Registration / edges                                               */

static PyObject *
engine_reserve(EngineCore *self, PyObject *arg)
{
    long n = PyLong_AsLong(arg);
    if (n == -1 && PyErr_Occurred())
        return NULL;
    if (n > 0 && engine_ensure(self, (int32_t)(n - 1)) < 0)
        return NULL;
    Py_RETURN_NONE;
}

static PyObject *
engine_register_thread_clocks(EngineCore *self, PyObject *const *args,
                              Py_ssize_t nargs)
{
    long tid;
    int32_t tlen;
    if (nargs != 3) {
        PyErr_SetString(PyExc_TypeError,
                        "register_thread_clocks(tid, clock, lazy_clock)");
        return NULL;
    }
    tid = PyLong_AsLong(args[0]);
    if (tid == -1 && PyErr_Occurred())
        return NULL;
    if (!PyTuple_Check(args[1]) || !PyTuple_Check(args[2])) {
        PyErr_SetString(PyExc_TypeError, "clock snapshots must be tuples");
        return NULL;
    }
    if (engine_ensure(self, (int32_t)tid) < 0)
        return NULL;
    tlen = join_pytuple_row(self, 0, (int32_t)tid, args[1],
                            self->rlens[tid]);
    if (tlen < 0)
        return NULL;
    self->rlens[tid] = tlen;
    tlen = join_pytuple_row(self, 1, (int32_t)tid, args[2],
                            self->llens[tid]);
    if (tlen < 0)
        return NULL;
    self->llens[tid] = tlen;
    Py_RETURN_NONE;
}

static PyObject *
engine_add_release_edge_clocks(EngineCore *self, PyObject *const *args,
                               Py_ssize_t nargs)
{
    PyObject *tk, *lst, *pair;
    if (nargs != 3) {
        PyErr_SetString(
            PyExc_TypeError,
            "add_release_edge_clocks(clock, lazy_clock, released_tid)");
        return NULL;
    }
    tk = args[2];
    lst = PyDict_GetItemWithError(self->pending, tk);
    if (lst == NULL) {
        if (PyErr_Occurred())
            return NULL;
        lst = PyList_New(0);
        if (lst == NULL)
            return NULL;
        if (PyDict_SetItem(self->pending, tk, lst) < 0) {
            Py_DECREF(lst);
            return NULL;
        }
        Py_DECREF(lst);
        self->pending_n++;
    }
    pair = PyTuple_Pack(2, args[0], args[1]);
    if (pair == NULL)
        return NULL;
    if (PyList_Append(lst, pair) < 0) {
        Py_DECREF(pair);
        return NULL;
    }
    Py_DECREF(pair);
    Py_RETURN_NONE;
}

/* ------------------------------------------------------------------ */
/* Accessors                                                          */

static PyObject *
engine_hbr_fingerprint(EngineCore *self, PyObject *noarg)
{
    uint64_t inner = XXPRIME_5, outer = XXPRIME_5;
    int32_t i;
    Py_hash_t ih;
    (void)noarg;
    for (i = 0; i < self->nthreads; i++)
        inner = tup_lane(inner, (uint64_t)i64_hash(self->rchains[i]));
    ih = tup_fini(inner, (Py_ssize_t)self->nthreads);
    outer = tup_lane(outer, (uint64_t)i64_hash(self->rcount));
    outer = tup_lane(outer, (uint64_t)ih);
    return PyLong_FromSsize_t((Py_ssize_t)tup_fini(outer, 2));
}

static PyObject *
engine_lazy_fingerprint(EngineCore *self, PyObject *noarg)
{
    uint64_t inner = XXPRIME_5, outer = XXPRIME_5;
    int32_t i;
    Py_hash_t ih;
    (void)noarg;
    for (i = 0; i < self->nthreads; i++)
        inner = tup_lane(inner, (uint64_t)i64_hash(self->lchains[i]));
    ih = tup_fini(inner, (Py_ssize_t)self->nthreads);
    outer = tup_lane(outer, (uint64_t)i64_hash(self->lcount));
    outer = tup_lane(outer, (uint64_t)ih);
    return PyLong_FromSsize_t((Py_ssize_t)tup_fini(outer, 2));
}

static PyObject *
engine_thread_clock_raw(EngineCore *self, PyObject *const *args,
                        Py_ssize_t nargs)
{
    long tid;
    int lazy = 0;
    if (nargs < 1 || nargs > 2) {
        PyErr_SetString(PyExc_TypeError, "thread_clock_raw(tid, lazy=False)");
        return NULL;
    }
    tid = PyLong_AsLong(args[0]);
    if (tid == -1 && PyErr_Occurred())
        return NULL;
    if (nargs == 2) {
        lazy = PyObject_IsTrue(args[1]);
        if (lazy < 0)
            return NULL;
    }
    if (engine_ensure(self, (int32_t)tid) < 0)
        return NULL;
    if (lazy)
        return tuple_from_row(self->lbuf + (size_t)tid * self->cap,
                              self->llens[tid]);
    return tuple_from_row(self->rbuf + (size_t)tid * self->cap,
                          self->rlens[tid]);
}

static PyObject *
engine_table_stats(EngineCore *self, PyObject *noarg)
{
    Py_ssize_t entries = 0;
    int32_t i;
    (void)noarg;
    for (i = 0; i < self->locap; i++) {
        entries += (self->raccess_o[i] != NULL);
        entries += (self->rmodify_o[i] != NULL);
        entries += (self->laccess_o[i] != NULL);
        entries += (self->lmodify_o[i] != NULL);
    }
    entries += PyDict_GET_SIZE(self->raccess_k);
    entries += PyDict_GET_SIZE(self->rmodify_k);
    entries += PyDict_GET_SIZE(self->laccess_k);
    entries += PyDict_GET_SIZE(self->lmodify_k);
    return Py_BuildValue("(nl)", entries, (long)self->nthreads);
}

/* Copy all state from `src` into self (the fork body; self must be
 * freshly constructed).                                              */
static PyObject *
engine_adopt(EngineCore *self, PyObject *arg)
{
    EngineCore *src;
    int32_t i;
    PyObject *nd;
    if (!PyObject_TypeCheck(arg, &EngineCore_Type)) {
        PyErr_SetString(PyExc_TypeError, "_adopt expects an EngineCore");
        return NULL;
    }
    src = (EngineCore *)arg;
    engine_free_buffers(self);
    if (engine_alloc_buffers(self, src->cap, src->locap) < 0)
        return NULL;
    self->nthreads = src->nthreads;
    memcpy(self->rbuf, src->rbuf,
           (size_t)src->cap * src->cap * sizeof(int64_t));
    memcpy(self->lbuf, src->lbuf,
           (size_t)src->cap * src->cap * sizeof(int64_t));
    memcpy(self->rlens, src->rlens, (size_t)src->cap * sizeof(int32_t));
    memcpy(self->llens, src->llens, (size_t)src->cap * sizeof(int32_t));
    memcpy(self->rchains, src->rchains, (size_t)src->cap * sizeof(int64_t));
    memcpy(self->lchains, src->lchains, (size_t)src->cap * sizeof(int64_t));
    self->rcount = src->rcount;
    self->lcount = src->lcount;
    for (i = 0; i < src->locap; i++) {
        self->raccess_o[i] = snap_incref(src->raccess_o[i]);
        self->rmodify_o[i] = snap_incref(src->rmodify_o[i]);
        self->laccess_o[i] = snap_incref(src->laccess_o[i]);
        self->lmodify_o[i] = snap_incref(src->lmodify_o[i]);
    }
    nd = PyDict_Copy(src->raccess_k);
    if (nd == NULL) return NULL;
    Py_SETREF(self->raccess_k, nd);
    nd = PyDict_Copy(src->rmodify_k);
    if (nd == NULL) return NULL;
    Py_SETREF(self->rmodify_k, nd);
    nd = PyDict_Copy(src->laccess_k);
    if (nd == NULL) return NULL;
    Py_SETREF(self->laccess_k, nd);
    nd = PyDict_Copy(src->lmodify_k);
    if (nd == NULL) return NULL;
    Py_SETREF(self->lmodify_k, nd);
    /* pending edges: fresh lists, shared snapshot tuples */
    nd = PyDict_New();
    if (nd == NULL)
        return NULL;
    {
        PyObject *k, *v;
        Py_ssize_t pos = 0;
        while (PyDict_Next(src->pending, &pos, &k, &v)) {
            PyObject *copy = PyList_GetSlice(v, 0, PyList_GET_SIZE(v));
            if (copy == NULL || PyDict_SetItem(nd, k, copy) < 0) {
                Py_XDECREF(copy);
                Py_DECREF(nd);
                return NULL;
            }
            Py_DECREF(copy);
        }
    }
    Py_SETREF(self->pending, nd);
    self->pending_n = src->pending_n;
    Py_RETURN_NONE;
}

/* ------------------------------------------------------------------ */

static PyMethodDef engine_methods[] = {
    {"observe", (PyCFunction)(void (*)(void))engine_observe,
     METH_FASTCALL | METH_KEYWORDS,
     "Fold one executed operation into both relations; returns the "
     "published (regular, lazy) snapshot tuples."},
    {"observe_fast", (PyCFunction)(void (*)(void))engine_observe_fast,
     METH_FASTCALL | METH_KEYWORDS,
     "observe() without materialising the snapshot tuples."},
    {"reserve", (PyCFunction)engine_reserve, METH_O,
     "Pre-size both relations for n statically known threads."},
    {"register_thread_clocks",
     (PyCFunction)(void (*)(void))engine_register_thread_clocks,
     METH_FASTCALL,
     "Start a spawned thread's clocks from the SPAWN event snapshots."},
    {"add_release_edge_clocks",
     (PyCFunction)(void (*)(void))engine_add_release_edge_clocks,
     METH_FASTCALL,
     "Queue a release edge joined before the released thread's next "
     "event."},
    {"hbr_fingerprint", (PyCFunction)engine_hbr_fingerprint, METH_NOARGS,
     "Fingerprint of the regular HBR of the trace so far."},
    {"lazy_fingerprint", (PyCFunction)engine_lazy_fingerprint, METH_NOARGS,
     "Fingerprint of the lazy HBR of the trace so far."},
    {"thread_clock_raw", (PyCFunction)(void (*)(void))engine_thread_clock_raw,
     METH_FASTCALL,
     "The thread's clock as an int tuple (DPOR's happens-before test)."},
    {"table_stats", (PyCFunction)engine_table_stats, METH_NOARGS,
     "(published table entries, thread count) — snapshot sizing."},
    {"_adopt", (PyCFunction)engine_adopt, METH_O,
     "Copy all state from another EngineCore (the fork body)."},
    {NULL, NULL, 0, NULL},
};

static PyTypeObject EngineCore_Type = {
    PyVarObject_HEAD_INIT(NULL, 0)
    .tp_name = "repro.core._native.EngineCore",
    .tp_basicsize = sizeof(EngineCore),
    .tp_dealloc = (destructor)engine_dealloc,
    .tp_flags = Py_TPFLAGS_DEFAULT | Py_TPFLAGS_BASETYPE,
    .tp_doc = "Compiled dual happens-before clock kernel.",
    .tp_methods = engine_methods,
    .tp_new = engine_new,
};

/* ------------------------------------------------------------------ */
/* Module-level self-test hooks                                       */

static PyObject *
mod_int_hash(PyObject *mod, PyObject *arg)
{
    int overflow;
    long long v = PyLong_AsLongLongAndOverflow(arg, &overflow);
    (void)mod;
    if (overflow != 0) {
        PyErr_SetString(PyExc_OverflowError,
                        "int_hash probe must fit in 64 bits");
        return NULL;
    }
    if (v == -1 && PyErr_Occurred())
        return NULL;
    return PyLong_FromSsize_t((Py_ssize_t)i64_hash((int64_t)v));
}

static PyObject *
mod_tuple_hash_probe(PyObject *mod, PyObject *arg)
{
    uint64_t acc = XXPRIME_5;
    Py_ssize_t i, n;
    (void)mod;
    if (!PyTuple_Check(arg)) {
        PyErr_SetString(PyExc_TypeError, "expected a tuple");
        return NULL;
    }
    n = PyTuple_GET_SIZE(arg);
    for (i = 0; i < n; i++) {
        Py_hash_t h = PyObject_Hash(PyTuple_GET_ITEM(arg, i));
        if (h == -1 && PyErr_Occurred())
            return NULL;
        acc = tup_lane(acc, (uint64_t)h);
    }
    return PyLong_FromSsize_t((Py_ssize_t)tup_fini(acc, n));
}

static PyMethodDef module_methods[] = {
    {"int_hash", mod_int_hash, METH_O,
     "CPython-identical hash of a 64-bit int (self-test hook)."},
    {"tuple_hash_probe", mod_tuple_hash_probe, METH_O,
     "This kernel's tuple-hash combiner over element hashes "
     "(self-test hook)."},
    {NULL, NULL, 0, NULL},
};

static struct PyModuleDef native_module = {
    PyModuleDef_HEAD_INIT,
    .m_name = "repro.core._native",
    .m_doc = "Compiled native clock-engine kernel (see hb_native.py).",
    .m_size = -1,
    .m_methods = module_methods,
};

PyMODINIT_FUNC
PyInit__native(void)
{
    PyObject *mod, *events, *table;
    Py_ssize_t i, n;

    /* Copy the KindSpec-derived dense tables once; they are immutable
     * import-time tuples in repro.core.events. */
    events = PyImport_ImportModule("repro.core.events");
    if (events == NULL)
        return NULL;
    table = PyObject_GetAttrString(events, "IS_MODIFYING");
    if (table == NULL) {
        Py_DECREF(events);
        return NULL;
    }
    n = PySequence_Size(table);
    if (n < 0 || n > MAX_KINDS) {
        Py_DECREF(table);
        Py_DECREF(events);
        PyErr_SetString(PyExc_ImportError, "unexpected IS_MODIFYING size");
        return NULL;
    }
    NKINDS = (int)n;
    for (i = 0; i < n; i++) {
        PyObject *x = PySequence_GetItem(table, i);
        int truth;
        if (x == NULL) {
            Py_DECREF(table);
            Py_DECREF(events);
            return NULL;
        }
        truth = PyObject_IsTrue(x);
        Py_DECREF(x);
        if (truth < 0) {
            Py_DECREF(table);
            Py_DECREF(events);
            return NULL;
        }
        IS_MOD[i] = (unsigned char)truth;
    }
    Py_DECREF(table);
    table = PyObject_GetAttrString(events, "IS_MUTEX");
    Py_DECREF(events);
    if (table == NULL)
        return NULL;
    if (PySequence_Size(table) != n) {
        Py_DECREF(table);
        PyErr_SetString(PyExc_ImportError, "IS_MUTEX size mismatch");
        return NULL;
    }
    for (i = 0; i < n; i++) {
        PyObject *x = PySequence_GetItem(table, i);
        int truth;
        if (x == NULL) {
            Py_DECREF(table);
            return NULL;
        }
        truth = PyObject_IsTrue(x);
        Py_DECREF(x);
        if (truth < 0) {
            Py_DECREF(table);
            return NULL;
        }
        IS_MUT[i] = (unsigned char)truth;
    }
    Py_DECREF(table);

    if (PyType_Ready(&EngineCore_Type) < 0)
        return NULL;
    mod = PyModule_Create(&native_module);
    if (mod == NULL)
        return NULL;
    Py_INCREF(&EngineCore_Type);
    if (PyModule_AddObject(mod, "EngineCore",
                           (PyObject *)&EngineCore_Type) < 0) {
        Py_DECREF(&EngineCore_Type);
        Py_DECREF(mod);
        return NULL;
    }
#ifdef __VERSION__
    if (PyModule_AddStringConstant(mod, "COMPILER", "gcc " __VERSION__) < 0) {
        Py_DECREF(mod);
        return NULL;
    }
#else
    if (PyModule_AddStringConstant(mod, "COMPILER", "unknown") < 0) {
        Py_DECREF(mod);
        return NULL;
    }
#endif
    return mod;
}
