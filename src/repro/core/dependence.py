"""Dependence (conflict) predicates between events.

Condition (b) of the happens-before definition (paper, Section 2):
``e1`` and ``e2`` conflict when they access the same variable/mutex and
at least one access is a modification.  The *lazy* variant drops the
clause for mutexes: two lock/unlock events never conflict, no matter
the mutex.

These predicates drive both the online clock engines (which edges to
add) and DPOR (which pairs of events race).  Neither enumerates
operation kinds: ``MODIFYING_KINDS``/``MUTEX_KINDS`` are derived from
the per-kind :class:`~repro.core.events.HBClass` declarations in
:data:`~repro.core.events.KIND_SPEC`, so a new primitive participates
in dependence — and hence in DPOR's independence reasoning — by
declaring its kinds' HB classes, with no edits here.
"""

from __future__ import annotations

from .events import Event, MODIFYING_KINDS, MUTEX_KINDS, OpKind


def conflicts(e1: Event, e2: Event) -> bool:
    """Regular dependence: same location, at least one modification.

    A WAIT event also behaves as an unlock of its paired mutex, so it
    additionally conflicts with lock/unlock events on that mutex.
    """
    if e1.tid == e2.tid:
        return True  # program order: same-thread events are always dependent
    if _touches_common_location(e1, e2):
        return e1.kind in MODIFYING_KINDS or e2.kind in MODIFYING_KINDS
    return False


def _touches_common_location(e1: Event, e2: Event) -> bool:
    if e1.oid >= 0 and (e1.oid, e1.key) == (e2.oid, e2.key):
        return True
    # Secondary locations.  A WAIT event releases a mutex, so it
    # conflicts with operations on that mutex; a TIME_FIRE event
    # withdraws a timed operation from its awaited object (and a timed
    # pending op may yet fire), so it conflicts with operations on that
    # object.  Matching on the oid alone is conservative and therefore
    # sound: extra conflicts only cost DPOR extra backtracking.
    if e1.released_mutex_oid is not None and \
            e2.oid == e1.released_mutex_oid:
        return True
    if e2.released_mutex_oid is not None and \
            e1.oid == e2.released_mutex_oid:
        return True
    return False


def conflicts_lazy(e1: Event, e2: Event) -> bool:
    """Lazy dependence: like :func:`conflicts` but mutex lock/unlock
    events never conflict with anything from another thread.

    Note the asymmetry-free formulation: if *either* event is a pure
    mutex operation the pair is independent, because mutex operations
    only ever touch their mutex (so a conflicting pair involving one
    mutex op must involve two).
    """
    if e1.tid == e2.tid:
        return True
    if e1.kind in MUTEX_KINDS or e2.kind in MUTEX_KINDS:
        return False
    return conflicts(e1, e2)


def may_be_coenabled(e1: Event, e2: Event) -> bool:
    """Conservative co-enabledness approximation for DPOR.

    Returning ``True`` too often only costs extra backtracking (still
    sound).  We rule out the one cheap, certain case: a ``LOCK`` and the
    ``UNLOCK`` of the same mutex can never be simultaneously enabled —
    the unlock is pending only while the lock is blocked.
    """
    if e1.oid >= 0 and e1.oid == e2.oid:
        kinds = {e1.kind, e2.kind}
        if kinds == {OpKind.LOCK, OpKind.UNLOCK}:
            # ... except that a *timed* lock acquisition is always
            # enabled (its timeout may fire instead), so it genuinely
            # races with the unlock.  Events never carry ``timed``;
            # PendingInfo does.
            if getattr(e1, "timed", False) or getattr(e2, "timed", False):
                return True
            return False
        if kinds == {OpKind.WAIT, OpKind.NOTIFY} or kinds == {
            OpKind.WAIT,
            OpKind.NOTIFY_ALL,
        }:
            # a pending WAIT is always enabled (it releases the mutex);
            # keep conservative True for these.
            return True
    return True
