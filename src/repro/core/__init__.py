"""Core algorithms: events, vector clocks, the regular and lazy
happens-before relations, fingerprints, caches and theorem checkers."""

from .cache import FingerprintCache
from .dependence import conflicts, conflicts_lazy, may_be_coenabled
from .events import (
    BLOCKING_KINDS,
    Event,
    MODIFYING_KINDS,
    MUTEX_KINDS,
    Op,
    OpKind,
)
from .fingerprint import CanonicalHBR, FingerprintChain
from .hb import DualClockEngine
from .relations import PartialOrder
from .vector_clock import VectorClock, tuple_concurrent, tuple_leq

__all__ = [
    "BLOCKING_KINDS",
    "CanonicalHBR",
    "DualClockEngine",
    "Event",
    "FingerprintCache",
    "FingerprintChain",
    "MODIFYING_KINDS",
    "MUTEX_KINDS",
    "Op",
    "OpKind",
    "PartialOrder",
    "VectorClock",
    "conflicts",
    "conflicts_lazy",
    "may_be_coenabled",
    "tuple_concurrent",
    "tuple_leq",
]
