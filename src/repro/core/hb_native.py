"""The native clock engine (``engine="native"``): compiled kernel with
a byte-identical pure-Python fallback.

This module is the *frontend* for the third backend in the registry
(:mod:`repro.core.engines`).  The hot-path kernel — the dual-side clock
join of :meth:`~repro.core.hb.DualClockEngine.observe`, the
dominance-based table replacement, and the flat fingerprint hashing —
exists twice:

* :class:`PyNativeClockEngine` (below) — the pure-Python kernel,
  written in a compilation-friendly style (flat layout, machine ints,
  no closures, split int-keyed location tables).  This is the
  always-correct fallback: it runs uncompiled on any interpreter and
  is what ``engine="native"`` builds when the compiled artifact is
  absent.
* ``repro.core._native`` — the compiled C twin of the same kernel
  (built by ``python setup.py build_ext --inplace``; see DESIGN.md
  §13).  When it imports, :data:`NativeClockEngine` points at it and
  :data:`NATIVE_COMPILED` is true — and the registry's ``auto`` pick
  resolves to ``native``.

Byte-identity between the two (and against ``ref``/``accel``) is not
aspirational: the compiled kernel re-implements CPython's own int and
tuple hashing (``pyhash.c``'s xxPRIME tuple hash over 61-bit-modulus
int hashes), so fingerprints, published clock snapshots, schedules and
state hashes are bit-for-bit identical, enforced suite-wide by the
equivalence tests, the three-engine hypothesis property and the
``bench --engine both`` harness.

The one hashed value the C kernel delegates back to CPython is a
non-int element key (``PyObject_Hash``), so string-keyed locations
inherit the process's randomized string hash exactly like the
reference engine — fingerprints were never stable across processes for
those, by design.
"""

from __future__ import annotations

import platform
import sys
from typing import Dict, List, Optional, Tuple

from .events import Event, IS_MODIFYING, IS_MUTEX
from .fingerprint import _SEED
from .vector_clock import (
    VectorClock,
    join_tuple_into,
    tuple_dominates,
    tuple_join,
)

try:  # the compiled kernel; absence is not an error (pure fallback)
    from . import _native as _C  # type: ignore[attr-defined]
except ImportError:  # pragma: no cover - exercised by the CI fallback job
    _C = None


class PyNativeClockEngine:
    """Pure-Python native kernel: the uncompiled fallback.

    Same observable behaviour as :class:`~repro.core.hb.DualClockEngine`
    (the equivalence suite enforces it); laid out the way the compiled
    kernel is laid out — flat per-side state, split location tables
    (int-keyed dicts for whole-object locations, tuple-keyed dicts for
    element locations), inline fingerprint chains — so the two sources
    stay line-for-line comparable.
    """

    backend = "native"
    compiled = False

    __slots__ = (
        "_pending_sync",
        # regular relation
        "_rclocks", "_rchains", "_rcount",
        "_raccess_o", "_rmodify_o", "_raccess_k", "_rmodify_k",
        # lazy relation
        "_lclocks", "_lchains", "_lcount",
        "_laccess_o", "_lmodify_o", "_laccess_k", "_lmodify_k",
    )

    def __init__(self) -> None:
        self._pending_sync: Dict[
            int, List[Tuple[Tuple[int, ...], Tuple[int, ...]]]
        ] = {}
        self._rclocks: List[List[int]] = []
        self._lclocks: List[List[int]] = []
        self._rchains: List[int] = []
        self._lchains: List[int] = []
        self._rcount = 0
        self._lcount = 0
        self._raccess_o: Dict[int, Tuple[int, ...]] = {}
        self._rmodify_o: Dict[int, Tuple[int, ...]] = {}
        self._raccess_k: Dict[Tuple[int, object], Tuple[int, ...]] = {}
        self._rmodify_k: Dict[Tuple[int, object], Tuple[int, ...]] = {}
        self._laccess_o: Dict[int, Tuple[int, ...]] = {}
        self._lmodify_o: Dict[int, Tuple[int, ...]] = {}
        self._laccess_k: Dict[Tuple[int, object], Tuple[int, ...]] = {}
        self._lmodify_k: Dict[Tuple[int, object], Tuple[int, ...]] = {}

    # ------------------------------------------------------------------
    def _ensure(self, tid: int) -> None:
        """Declare threads ``0..tid`` in both relations (the reference
        engine's per-side ``ensure_thread``, fused)."""
        rclocks = self._rclocks
        n = len(rclocks)
        if n > tid:
            return
        lclocks = self._lclocks
        rchains, lchains = self._rchains, self._lchains
        while n <= tid:
            rclocks.append([0] * (n + 1))
            lclocks.append([0] * (n + 1))
            seed = hash((_SEED, n))
            rchains.append(seed)
            lchains.append(seed)
            n += 1

    # ------------------------------------------------------------------
    def fork(self) -> "PyNativeClockEngine":
        """An independent engine continuing from this one's state.
        Published tuples in the location tables are shared
        (copy-on-publish discipline, exactly like the reference)."""
        eng = PyNativeClockEngine.__new__(PyNativeClockEngine)
        eng._rclocks = [list(c) for c in self._rclocks]
        eng._lclocks = [list(c) for c in self._lclocks]
        eng._rchains = self._rchains[:]
        eng._lchains = self._lchains[:]
        eng._rcount = self._rcount
        eng._lcount = self._lcount
        eng._raccess_o = dict(self._raccess_o)
        eng._rmodify_o = dict(self._rmodify_o)
        eng._raccess_k = dict(self._raccess_k)
        eng._rmodify_k = dict(self._rmodify_k)
        eng._laccess_o = dict(self._laccess_o)
        eng._lmodify_o = dict(self._lmodify_o)
        eng._laccess_k = dict(self._laccess_k)
        eng._lmodify_k = dict(self._lmodify_k)
        eng._pending_sync = {
            tid: list(edges) for tid, edges in self._pending_sync.items()
        }
        return eng

    # ------------------------------------------------------------------
    def reserve(self, n: int) -> None:
        if n > 0:
            self._ensure(n - 1)

    def register_thread(
        self, tid: int, parent_spawn_event: Optional[Event] = None
    ) -> None:
        if parent_spawn_event is not None:
            assert parent_spawn_event.clock is not None
            self.register_thread_clocks(
                tid, parent_spawn_event.clock, parent_spawn_event.lazy_clock
            )
        else:
            self._ensure(tid)

    def register_thread_clocks(
        self,
        tid: int,
        spawn_clock: Tuple[int, ...],
        spawn_lazy_clock: Tuple[int, ...],
    ) -> None:
        self._ensure(tid)
        join_tuple_into(self._rclocks[tid], spawn_clock)
        join_tuple_into(self._lclocks[tid], spawn_lazy_clock)

    def add_release_edge(self, event: Event, released_tid: int) -> None:
        assert event.clock is not None and event.lazy_clock is not None
        self.add_release_edge_clocks(
            event.clock, event.lazy_clock, released_tid
        )

    def add_release_edge_clocks(
        self,
        clock: Tuple[int, ...],
        lazy_clock: Tuple[int, ...],
        released_tid: int,
    ) -> None:
        self._pending_sync.setdefault(released_tid, []).append(
            (clock, lazy_clock)
        )

    # ------------------------------------------------------------------
    def on_event(self, event: Event) -> None:
        event.clock, event.lazy_clock = self.observe(
            event.tid, event.kind, event.oid, event.key,
            event.released_mutex_oid,
        )

    def observe(
        self,
        tid: int,
        kind: int,
        oid: int,
        key: object,
        released_mutex_oid: Optional[int] = None,
    ) -> Tuple[Tuple[int, ...], Tuple[int, ...]]:
        """Fold one executed operation into both relations; identical
        observable behaviour to the reference engine's ``observe``."""
        ps = self._pending_sync
        pending = ps.pop(tid, None) if ps else None
        modifying = IS_MODIFYING[kind]
        keyless = key is None

        # -- regular relation ------------------------------------------
        tc = self._rclocks[tid]
        if pending:
            for edge in pending:
                join_tuple_into(tc, edge[0])
        access_o = self._raccess_o
        if oid >= 0:
            if keyless:
                prev = (access_o if modifying else self._rmodify_o).get(oid)
            else:
                prev = (self._raccess_k if modifying
                        else self._rmodify_k).get((oid, key))
            if prev is not None:
                join_tuple_into(tc, prev)
        # A WAIT event releases its paired mutex: regular side only.
        if released_mutex_oid is not None:
            prev = access_o.get(released_mutex_oid)
            if prev is not None:
                join_tuple_into(tc, prev)
        tc[tid] += 1
        snap = tuple(tc)  # copy-on-publish
        if oid >= 0:
            if modifying:
                # joined A[loc] above, then ticked: plain replacement
                if keyless:
                    access_o[oid] = snap
                    self._rmodify_o[oid] = snap
                else:
                    loc = (oid, key)
                    self._raccess_k[loc] = snap
                    self._rmodify_k[loc] = snap
            elif keyless:
                old = access_o.get(oid)
                if old is None or tuple_dominates(snap, old):
                    access_o[oid] = snap
                else:  # concurrent readers: genuine join
                    access_o[oid] = tuple_join(snap, old)
            else:
                loc = (oid, key)
                access_k = self._raccess_k
                old = access_k.get(loc)
                if old is None or tuple_dominates(snap, old):
                    access_k[loc] = snap
                else:
                    access_k[loc] = tuple_join(snap, old)
        if released_mutex_oid is not None:
            access_o[released_mutex_oid] = snap
            self._rmodify_o[released_mutex_oid] = snap

        # -- lazy relation (mutex ops induce no inter-thread edges) ----
        tc = self._lclocks[tid]
        if pending:
            for edge in pending:
                join_tuple_into(tc, edge[1])
        track = oid >= 0 and not IS_MUTEX[kind]
        if track:
            if keyless:
                prev = (self._laccess_o if modifying
                        else self._lmodify_o).get(oid)
            else:
                prev = (self._laccess_k if modifying
                        else self._lmodify_k).get((oid, key))
            if prev is not None:
                join_tuple_into(tc, prev)
        tc[tid] += 1
        lazy_snap = tuple(tc)
        if track:
            if modifying:
                if keyless:
                    self._laccess_o[oid] = lazy_snap
                    self._lmodify_o[oid] = lazy_snap
                else:
                    loc = (oid, key)
                    self._laccess_k[loc] = lazy_snap
                    self._lmodify_k[loc] = lazy_snap
            elif keyless:
                access_o = self._laccess_o
                old = access_o.get(oid)
                if old is None or tuple_dominates(lazy_snap, old):
                    access_o[oid] = lazy_snap
                else:
                    access_o[oid] = tuple_join(lazy_snap, old)
            else:
                loc = (oid, key)
                access_k = self._laccess_k
                old = access_k.get(loc)
                if old is None or tuple_dominates(lazy_snap, old):
                    access_k[loc] = lazy_snap
                else:
                    access_k[loc] = tuple_join(lazy_snap, old)

        # -- fingerprints (the chained-hash formula of FingerprintChain)
        if key is None:
            key = -1
        chains = self._rchains
        chains[tid] = hash((chains[tid], kind, oid, key, snap))
        self._rcount += 1
        chains = self._lchains
        chains[tid] = hash((chains[tid], kind, oid, key, lazy_snap))
        self._lcount += 1
        return snap, lazy_snap

    #: The no-return variant the fused step loop calls when the caller
    #: has no use for the published snapshots.  The compiled kernel
    #: skips the two tuple materialisations entirely; here it is a
    #: plain alias (the tuples are built for publication anyway).
    observe_fast = observe

    # ------------------------------------------------------------------
    # Fingerprint accessors
    def hbr_fingerprint(self) -> int:
        return hash((self._rcount, tuple(self._rchains)))

    def lazy_fingerprint(self) -> int:
        return hash((self._lcount, tuple(self._lchains)))

    def canonical_hbr(self):
        raise ValueError("engine was created with canonical=False")

    def canonical_lazy_hbr(self):
        raise ValueError("engine was created with canonical=False")

    # ------------------------------------------------------------------
    def thread_clock(self, tid: int, lazy: bool = False) -> VectorClock:
        self._ensure(tid)
        clocks = self._lclocks if lazy else self._rclocks
        return VectorClock(init=clocks[tid])

    def thread_clock_raw(self, tid: int, lazy: bool = False) -> List[int]:
        """The live, mutable list clock of ``tid`` — read-only use
        (DPOR's happens-before tests).  No defensive copy."""
        self._ensure(tid)
        clocks = self._lclocks if lazy else self._rclocks
        return clocks[tid]

    # ------------------------------------------------------------------
    def table_stats(self) -> Tuple[int, int]:
        """(published table entries, thread count) — snapshot sizing."""
        entries = (
            len(self._raccess_o) + len(self._rmodify_o)
            + len(self._raccess_k) + len(self._rmodify_k)
            + len(self._laccess_o) + len(self._lmodify_o)
            + len(self._laccess_k) + len(self._lmodify_k)
        )
        return entries, len(self._rclocks)


#: True when the compiled C kernel imported: the registry's ``auto``
#: resolves to ``native`` exactly when this is true.
NATIVE_COMPILED = _C is not None

if NATIVE_COMPILED:

    class NativeClockEngine(_C.EngineCore):  # type: ignore[misc, name-defined]
        """The compiled kernel, plus the thin conveniences the rest of
        the runtime expects (everything on the per-event path lives in
        C; these wrappers are called at spawn/snapshot frequency)."""

        backend = "native"
        compiled = True

        def fork(self) -> "NativeClockEngine":
            eng = type(self)()
            eng._adopt(self)
            return eng

        def register_thread(
            self, tid: int, parent_spawn_event: Optional[Event] = None
        ) -> None:
            if parent_spawn_event is not None:
                assert parent_spawn_event.clock is not None
                self.register_thread_clocks(
                    tid,
                    parent_spawn_event.clock,
                    parent_spawn_event.lazy_clock,
                )
            else:
                self.reserve(tid + 1)

        def add_release_edge(self, event: Event, released_tid: int) -> None:
            assert event.clock is not None and event.lazy_clock is not None
            self.add_release_edge_clocks(
                event.clock, event.lazy_clock, released_tid
            )

        def on_event(self, event: Event) -> None:
            event.clock, event.lazy_clock = self.observe(
                event.tid, event.kind, event.oid, event.key,
                event.released_mutex_oid,
            )

        def canonical_hbr(self):
            raise ValueError("engine was created with canonical=False")

        def canonical_lazy_hbr(self):
            raise ValueError("engine was created with canonical=False")

        def thread_clock(self, tid: int, lazy: bool = False) -> VectorClock:
            return VectorClock(init=self.thread_clock_raw(tid, lazy))

else:
    #: The engine class ``create_clock_engine("native")`` instantiates.
    NativeClockEngine = PyNativeClockEngine  # type: ignore[assignment, misc]


def provenance() -> Dict[str, object]:
    """How this process's ``native`` backend was built — recorded per
    bench case row so reports cannot silently mix compiled and fallback
    numbers (the ``bench --baseline`` comparison warns on mismatch)."""
    return {
        "compiled": NATIVE_COMPILED,
        "compiler": (_C.COMPILER if NATIVE_COMPILED else None),
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
    }


_SELF_TESTED = False


def self_test() -> None:
    """Assert the compiled kernel's re-implementation of CPython's int
    and tuple hashing agrees with this interpreter (no-op uncompiled).
    Cheap, and run once per process — on the first compiled-engine
    construction — so a miscompiled artifact is loud at selection
    time, not wrong at fingerprint time."""
    global _SELF_TESTED
    if not NATIVE_COMPILED or _SELF_TESTED:
        return
    _SELF_TESTED = True
    probes = (
        0, 1, -1, -2, 7, 2**60, 2**61 - 1, 2**61, 2**61 + 5,
        -(2**61) - 7, 2**63 - 1, -(2**63),
    )
    for v in probes:
        got = _C.int_hash(v)
        want = hash(v)
        if got != want:
            raise ImportError(
                f"_native int_hash({v}) = {got} != hash() = {want}; "
                f"rebuild the extension for this interpreter "
                f"(python {sys.version.split()[0]})"
            )
    samples = (
        (), (0,), (1, 2, 3), (-1, -2, 2**62, 5),
        (hash((_SEED, 0)), 3, 0, -1, (1, 0, 2)),
    )
    for t in samples:
        got = _C.tuple_hash_probe(t)
        want = hash(t)
        if got != want:
            raise ImportError(
                f"_native tuple hash of {t!r} = {got} != hash() = {want}"
            )
