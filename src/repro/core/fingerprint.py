"""Canonical fingerprints of (lazy) happens-before relations.

A happens-before relation is identified, up to equality, by the
per-thread sequence of event labels together with each event's vector
clock under that relation: two schedules have the same HBR iff every
thread performs the same labelled events and each event has the same
clock.  (The clock of an event encodes exactly the set of events that
happen-before it.)

For counting and caching we do not materialise that structure; instead
each thread maintains a *chained hash* updated per event::

    h_t  <-  hash((h_t, kind, oid, key, clock))      # flat label form

(:meth:`FingerprintChain.update` accepts the label as a tuple and
flattens it into exactly this form; the clock engine inlines the same
formula to avoid per-event call overhead, so API-built and
engine-built chains produce identical fingerprints — the equivalence
tests assert it.)

and a prefix fingerprint is ``hash((n_events, h_0, ..., h_k))``.  All
hashed values are tuples of ints, for which CPython's ``hash`` is
deterministic across processes (hash randomisation only affects strings
and bytes), so fingerprints are stable and reproducible.  Event labels
are normalised by :func:`fingerprint_label` before hashing: a missing
sub-object key becomes ``-1``, because ``hash(None)`` is id-derived on
CPython < 3.12 and therefore differs between processes.  (Programs
using *string* dict keys still get per-process fingerprints — see
``SharedDict`` — which is fine within one exploration.)

The exact, collision-free canonical form (used by the theorem checkers
in :mod:`repro.core.theorems`) is produced by :class:`CanonicalHBR`.
"""

from __future__ import annotations

from typing import List, Tuple

_SEED = 0x9E3779B97F4A7C15  # golden-ratio constant; any fixed seed works


def fingerprint_label(kind: int, oid: int, key) -> Tuple[int, int, object]:
    """The hashable label of an executed operation.

    ``key=None`` (whole-object access) maps to ``-1`` so the label is a
    pure int tuple for every non-dict program, making its hash — and so
    the fingerprints — stable across worker processes.  (``-1`` cannot
    collide with a real key: array indices are non-negative and
    whole-object accesses never carry a key.)
    """
    return (int(kind), oid, -1 if key is None else key)


class FingerprintChain:
    """Incremental per-thread chained hashes for one HB relation."""

    __slots__ = ("_chains", "_count")

    def __init__(self) -> None:
        self._chains: List[int] = []
        self._count = 0

    def ensure_thread(self, tid: int) -> None:
        chains = self._chains
        while len(chains) <= tid:
            chains.append(hash((_SEED, len(chains))))

    def update(self, tid: int, label: Tuple[int, int, object],
               clock: Tuple[int, ...]) -> None:
        """Fold one executed event into thread ``tid``'s chain.

        Hashes the flat ``(h, kind, oid, key, clock)`` form — the same
        formula :meth:`DualClockEngine.observe` inlines — with a
        ``None`` key normalised to ``-1``, so chains built through this
        public API (e.g. via :meth:`fork`) stay comparable with
        engine-produced fingerprints.
        """
        chains = self._chains
        if tid >= len(chains):
            self.ensure_thread(tid)
        kind, oid, key = label
        if key is None:
            key = -1
        chains[tid] = hash((chains[tid], kind, oid, key, clock))
        self._count += 1

    def prefix_fingerprint(self) -> int:
        """Fingerprint of the HBR of the trace executed so far."""
        return hash((self._count, tuple(self._chains)))

    @property
    def event_count(self) -> int:
        return self._count

    def fork(self) -> "FingerprintChain":
        """An independent copy (used by explorers that branch in-memory)."""
        c = FingerprintChain.__new__(FingerprintChain)
        c._chains = list(self._chains)
        c._count = self._count
        return c


class CanonicalHBR:
    """Exact canonical representation of an HBR (no hash collisions).

    Stores, per thread, the full sequence of ``(label, clock)`` pairs.
    Equality of two :class:`CanonicalHBR` values is exactly equality of
    the underlying happens-before relations.
    """

    __slots__ = ("_threads",)

    def __init__(self) -> None:
        self._threads: List[List[Tuple[Tuple[int, int], Tuple[int, ...]]]] = []

    def update(self, tid: int, label: Tuple[int, int], clock: Tuple[int, ...]) -> None:
        threads = self._threads
        while len(threads) <= tid:
            threads.append([])
        threads[tid].append((label, clock))

    def freeze(self) -> Tuple[Tuple[Tuple[Tuple[int, int], Tuple[int, ...]], ...], ...]:
        """An immutable, hashable value identifying the relation.

        Trailing empty threads are stripped so that programs differing
        only in how many thread slots were pre-allocated compare equal.
        """
        threads = list(self._threads)
        while threads and not threads[-1]:
            threads.pop()
        return tuple(tuple(seq) for seq in threads)
