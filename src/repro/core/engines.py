"""The engine backend registry: pluggable clock-engine implementations.

The replay hot path — :meth:`~repro.core.hb.DualClockEngine.observe`
plus the executor step loop driving it — exists in three
implementations:

* ``ref`` — the pure-Python reference (:class:`~repro.core.hb
  .DualClockEngine`): list-of-list clocks, always correct, always
  available.  The only backend that supports ``canonical=True``.
* ``accel`` — the accelerated engine (:class:`~repro.core.hb_accel
  .AccelClockEngine`): flat ``array('q')`` clock storage with
  copy-on-publish at the array level, int-keyed location tables, an
  optional numpy bulk-join path for wide clocks, and a specialized
  executor step loop (:mod:`repro.runtime.stepper`).
* ``native`` — the compiled kernel (:mod:`repro.core.hb_native`):
  the ``observe`` dual-clock join, dominance tables and fingerprint
  chains as a C extension (``repro.core._native``), fused with the
  specialized step loop.  Always *available* — when the compiled
  artifact has not been built for this interpreter, ``native`` falls
  back to the byte-identical pure-Python kernel in the same module
  (``PyNativeClockEngine``; :func:`native_compiled` tells the two
  apart, and bench rows record the provenance).

All backends are byte-identical by contract: fingerprints, state
hashes, schedules and clock snapshots must match suite-wide (the
equivalence tests, the three-engine hypothesis property and the
``bench --engine both`` harness enforce it).

Selection is runtime, with this precedence:

1. an explicit name (``--engine`` on the ``bench``/``campaign``/
   ``check`` CLIs, or the ``engine=`` parameter threaded through
   :class:`~repro.runtime.executor.Executor` and the explorers);
2. the ``REPRO_ENGINE`` environment variable (``ref``, ``accel`` or
   ``native``);
3. ``auto`` — the measured-fastest default for this machine class.

Auto resolves to ``native`` exactly when the compiled artifact
imports, and to ``ref`` otherwise: at suite thread counts (3–6
threads) the reference's plain-list clocks measure faster than both
pure-Python alternative layouts (boxing machine ints out of an
``array('q')`` on every scalar read costs more than the batched joins
save), while the compiled kernel beats everything by integer factors
(the committed ``BENCH_baseline.json`` and DESIGN.md §13 carry the
measured numbers).  The interleaved A/B harness (``bench --engine
both``) is the evidence, and re-running it is how this default should
be revisited.  The ``fast_replay`` hint threaded into
:func:`resolve_engine` is the routing hook for per-mode auto picks.

An *explicit* name (CLI flag or ``REPRO_ENGINE``) always wins, so
``REPRO_ENGINE=ref`` pins the reference even where auto would pick the
compiled kernel, and ``REPRO_ENGINE=native`` forces the native kernel
(compiled or fallback) everywhere.  See DESIGN.md §11 and §13.
"""

from __future__ import annotations

import os
from typing import Callable, Dict, Optional

from .hb import DualClockEngine

#: Environment variable consulted when no explicit engine is requested.
ENGINE_ENV = "REPRO_ENGINE"

#: Name resolved when neither an explicit request nor the environment
#: names a backend.
AUTO = "auto"

#: name -> zero-arg availability probe.  ``ref`` is always available;
#: ``accel`` degrades to unavailable if its module fails to import
#: (the registry then auto-picks ``ref``).
_BACKENDS: Dict[str, Callable[[], bool]] = {}


def register_backend(name: str, available: Callable[[], bool]) -> None:
    _BACKENDS[name] = available


def _accel_importable() -> bool:
    try:
        from . import hb_accel  # noqa: F401
    except Exception:  # pragma: no cover - accel ships with the package
        return False
    return True


def _native_importable() -> bool:
    # the native *backend* is always available: hb_native carries a
    # pure-Python fallback kernel.  Whether the compiled artifact
    # loaded is a provenance question (native_compiled()), not an
    # availability one.
    try:
        from . import hb_native  # noqa: F401
    except Exception:  # pragma: no cover - ships with the package
        return False
    return True


register_backend("ref", lambda: True)
register_backend("accel", _accel_importable)
register_backend("native", _native_importable)


_NATIVE_COMPILED: Optional[bool] = None


def native_compiled() -> bool:
    """True when the ``native`` backend's compiled C kernel imported
    (vs the pure-Python fallback).  Drives the ``auto`` pick and the
    bench provenance rows.  Memoised: every executor construction asks
    (via :func:`resolve_engine`), and the answer is fixed per process
    once :mod:`~repro.core.hb_native` has imported."""
    global _NATIVE_COMPILED
    if _NATIVE_COMPILED is None:
        try:
            from .hb_native import NATIVE_COMPILED
        except Exception:  # pragma: no cover - ships with the package
            _NATIVE_COMPILED = False
        else:
            _NATIVE_COMPILED = NATIVE_COMPILED
    return _NATIVE_COMPILED


def engine_provenance(name: str) -> dict:
    """Provenance of a resolved backend, recorded per bench case row:
    how the kernel executing the measurement was actually built."""
    import platform

    if name == "native":
        from .hb_native import provenance

        return dict(provenance())
    return {
        "compiled": False,
        "compiler": None,
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
    }


def backend_names() -> tuple:
    """Registered backend names, reference first."""
    return tuple(_BACKENDS)


def available_backends() -> tuple:
    """The subset of registered backends that can actually be built."""
    return tuple(n for n, probe in _BACKENDS.items() if probe())


#: (requested name, REPRO_ENGINE value) -> resolved backend.  Every
#: executor construction resolves; the answer only changes when the
#: environment variable does, so the pair is the full cache key.
_RESOLVE_CACHE: Dict[tuple, str] = {}


def resolve_engine(
    name: Optional[str] = None, fast_replay: bool = True
) -> str:
    """Resolve a requested engine name to a concrete backend.

    ``None``/``"auto"`` consults :data:`ENGINE_ENV`, then falls back
    to the measured-fastest default — ``native`` when its compiled
    kernel imported, ``ref`` otherwise (see the module docstring;
    ``fast_replay`` is the hook that lets auto route per mode if that
    measurement changes).  An explicit unknown or unavailable name
    raises ``ValueError`` (misconfiguration should be loud, not a
    silent fallback).
    """
    env = os.environ.get(ENGINE_ENV)
    cached = _RESOLVE_CACHE.get((name, env))
    if cached is not None:
        return cached
    requested = name
    if name is None or name == "" or name == AUTO:
        name = env or AUTO
    if name == AUTO:
        resolved = "native" if native_compiled() else "ref"
    else:
        if name not in _BACKENDS:
            raise ValueError(
                f"unknown engine {name!r}; available: "
                f"{sorted(_BACKENDS)} (or 'auto')"
            )
        if not _BACKENDS[name]():
            raise ValueError(f"engine {name!r} is not available in this "
                             f"environment")
        resolved = name
    _RESOLVE_CACHE[(requested, env)] = resolved
    return resolved


def create_clock_engine(
    name: Optional[str] = None, canonical: bool = False,
    fast_replay: bool = True,
):
    """Build a clock engine for the resolved backend.

    ``canonical=True`` always builds the reference engine: the exact
    :class:`~repro.core.fingerprint.CanonicalHBR` forms are theorem
    checker/test machinery, never part of the replay hot path, and only
    the reference implementation carries them.
    """
    resolved = resolve_engine(name, fast_replay=fast_replay)
    if canonical or resolved == "ref":
        return DualClockEngine(canonical=canonical)
    if resolved == "native":
        from .hb_native import NativeClockEngine, self_test

        self_test()
        return NativeClockEngine()
    from .hb_accel import AccelClockEngine

    return AccelClockEngine()
