"""The engine backend registry: pluggable clock-engine implementations.

The replay hot path — :meth:`~repro.core.hb.DualClockEngine.observe`
plus the executor step loop driving it — exists in two implementations:

* ``ref`` — the pure-Python reference (:class:`~repro.core.hb
  .DualClockEngine`): list-of-list clocks, always correct, always
  available.  The only backend that supports ``canonical=True``.
* ``accel`` — the accelerated engine (:class:`~repro.core.hb_accel
  .AccelClockEngine`): flat ``array('q')`` clock storage with
  copy-on-publish at the array level, int-keyed location tables, an
  optional numpy bulk-join path for wide clocks, and a specialized
  executor step loop (:mod:`repro.runtime.stepper`).  Byte-identical
  to ``ref`` by contract: fingerprints, state hashes, schedules and
  clock snapshots must match suite-wide (the equivalence tests and the
  ``bench --engine both`` harness enforce it).

Selection is runtime, with this precedence:

1. an explicit name (``--engine`` on the ``bench``/``campaign``/
   ``check`` CLIs, or the ``engine=`` parameter threaded through
   :class:`~repro.runtime.executor.Executor` and the explorers);
2. the ``REPRO_ENGINE`` environment variable (``ref`` or ``accel``);
3. ``auto`` — the measured-fastest default for this machine class.

Auto currently resolves to ``ref`` in **both** executor modes: at
suite thread counts (3–6 threads) the reference's plain-list clocks
measure faster than the array engine on this harness — boxing machine
ints out of an ``array('q')`` on every scalar read costs more than the
batched joins save, and the numpy bulk-join path only engages at ≥ 32
wide.  The interleaved A/B harness (``bench --engine both``) is the
evidence, and re-running it is how this default should be revisited if
the balance changes (wider programs, a faster buffer protocol, a
C extension).  The ``fast_replay`` hint threaded into
:func:`resolve_engine` is the routing hook for that future: auto may
pick per-mode without touching any caller.

An *explicit* name (CLI flag or ``REPRO_ENGINE``) always wins, so
``REPRO_ENGINE=accel`` forces the array engine everywhere —
byte-identical results, enforced by the equivalence suite and the
``bench --engine both`` harness — and ``REPRO_ENGINE=ref`` pins the
reference even where a future auto would disagree.  See DESIGN.md §11.
"""

from __future__ import annotations

import os
from typing import Callable, Dict, Optional

from .hb import DualClockEngine

#: Environment variable consulted when no explicit engine is requested.
ENGINE_ENV = "REPRO_ENGINE"

#: Name resolved when neither an explicit request nor the environment
#: names a backend.
AUTO = "auto"

#: name -> zero-arg availability probe.  ``ref`` is always available;
#: ``accel`` degrades to unavailable if its module fails to import
#: (the registry then auto-picks ``ref``).
_BACKENDS: Dict[str, Callable[[], bool]] = {}


def register_backend(name: str, available: Callable[[], bool]) -> None:
    _BACKENDS[name] = available


def _accel_importable() -> bool:
    try:
        from . import hb_accel  # noqa: F401
    except Exception:  # pragma: no cover - accel ships with the package
        return False
    return True


register_backend("ref", lambda: True)
register_backend("accel", _accel_importable)


def backend_names() -> tuple:
    """Registered backend names, reference first."""
    return tuple(_BACKENDS)


def available_backends() -> tuple:
    """The subset of registered backends that can actually be built."""
    return tuple(n for n, probe in _BACKENDS.items() if probe())


def resolve_engine(
    name: Optional[str] = None, fast_replay: bool = True
) -> str:
    """Resolve a requested engine name to a concrete backend.

    ``None``/``"auto"`` consults :data:`ENGINE_ENV`, then falls back
    to the measured-fastest default — currently ``ref`` in both
    executor modes (see the module docstring; ``fast_replay`` is the
    hook that lets auto route per mode if that measurement changes).
    An explicit unknown or unavailable name raises ``ValueError``
    (misconfiguration should be loud, not a silent fallback).
    """
    if name is None or name == "" or name == AUTO:
        name = os.environ.get(ENGINE_ENV) or AUTO
    if name == AUTO:
        return "ref"
    if name not in _BACKENDS:
        raise ValueError(
            f"unknown engine {name!r}; available: "
            f"{sorted(_BACKENDS)} (or 'auto')"
        )
    if not _BACKENDS[name]():
        raise ValueError(f"engine {name!r} is not available in this "
                         f"environment")
    return name


def create_clock_engine(
    name: Optional[str] = None, canonical: bool = False,
    fast_replay: bool = True,
):
    """Build a clock engine for the resolved backend.

    ``canonical=True`` always builds the reference engine: the exact
    :class:`~repro.core.fingerprint.CanonicalHBR` forms are theorem
    checker/test machinery, never part of the replay hot path, and only
    the reference implementation carries them.
    """
    resolved = resolve_engine(name, fast_replay=fast_replay)
    if canonical or resolved == "ref":
        return DualClockEngine(canonical=canonical)
    from .hb_accel import AccelClockEngine

    return AccelClockEngine()
