"""Exception hierarchy for the ``repro`` library.

Errors are split into two families:

* *Host* errors (:class:`ReproError` subclasses other than
  :class:`GuestError`) indicate misuse of the library or internal
  invariant violations — they propagate to the caller.
* *Guest* errors (:class:`GuestError` subclasses) represent property
  violations of the program under test — deadlocks, failed guest
  assertions.  Explorers record these as findings rather than crashing.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class InvalidOpError(ReproError):
    """A guest thread yielded an operation that is illegal in the current
    runtime state (e.g. unlocking a mutex it does not hold)."""


class SchedulerError(ReproError):
    """A scheduler selected a thread that is not currently enabled, or a
    replay schedule diverged from the program's behaviour."""


class DisabledThreadError(SchedulerError):
    """A scheduler selected a thread whose pending operation is not
    enabled.  Carries the enabled tid set and the selected thread's
    blocking reason (from the primitive's ``blocking_desc``), so a
    diverged replay reports *why* the choice is infeasible rather than
    just that it is."""

    def __init__(self, tid: int, enabled, reason: str = ""):
        self.tid = tid
        self.enabled = tuple(enabled)
        self.reason = reason
        detail = f": {reason}" if reason else ""
        super().__init__(
            f"thread {tid} is not enabled{detail} "
            f"(enabled tids: {list(self.enabled)})"
        )


class ExplorationLimitError(ReproError):
    """An exploration exceeded a hard limit that was configured to raise
    instead of truncate."""


class ShimUsageError(ReproError):
    """Shim-frontend misuse by the *harness author*: constructing shim
    objects outside a checked program, creating shared state from a
    worker thread or after ``Thread.start()`` (which would make object
    ids schedule-dependent), or calling an API the shim cannot model.
    Host error: propagates instead of being recorded as a finding."""


class UnsupportedTimeoutError(ShimUsageError):
    """A ``timeout=`` argument at a shim call site the virtual clock
    cannot model (e.g. ``Barrier(timeout=...)``).  Most blocking shim
    calls — ``Lock.acquire``, ``Condition.wait``, ``Queue.get``,
    ``Event.wait``, ... — accept timeouts and route them onto the
    deterministic virtual clock; the few that do not raise this error
    naming the call site and the nearest supported alternative, instead
    of silently falling back to wall time."""

    def __init__(self, where: str, alternative: str):
        self.where = where
        self.alternative = alternative
        super().__init__(
            f"{where}: timeout is not supported under systematic "
            f"exploration at this call site; nearest supported "
            f"alternative: {alternative}"
        )


class InstrumentError(ReproError):
    """``repro.instrument`` could not rewrite a function into a guest
    (no retrievable source, an async/generator target, or a construct
    the AST pass does not support)."""


class GuestError(ReproError):
    """Base class for property violations of the program under test."""


class DeadlockError(GuestError):
    """No runnable thread remains but some threads have not terminated."""

    def __init__(self, blocked_threads, message: str = ""):
        self.blocked_threads = tuple(blocked_threads)
        super().__init__(
            message or f"deadlock: threads {list(self.blocked_threads)} blocked"
        )


class GuestAssertionError(GuestError):
    """A guest-level assertion (``api.guest_assert``) failed."""

    def __init__(self, thread_id: int, message: str = ""):
        self.thread_id = thread_id
        super().__init__(message or f"guest assertion failed in thread {thread_id}")


class GuestCrashError(GuestError):
    """An ordinary (non-``repro``) Python exception escaped a shim-guest
    thread — a plain ``assert``, ``ValueError``, ....  The shim driver
    wraps it so real-code bugs surface as per-thread findings, exactly
    like failed guest assertions, instead of crashing the host."""

    def __init__(self, thread_id: int, original: BaseException):
        self.thread_id = thread_id
        self.original_type = type(original).__name__
        super().__init__(
            f"T{thread_id} crashed: {self.original_type}: {original}"
        )


class ChannelError(GuestError):
    """Illegal channel use by the program under test: sending on a
    closed channel, or closing a channel twice.  Like an assertion
    failure, this crashes only the offending thread — explorers record
    it as a property violation of the schedule that exposed the race."""


class FutureError(GuestError):
    """Illegal future use by the program under test: completing an
    already-completed future.  Per-thread crash semantics, like
    :class:`ChannelError`."""
