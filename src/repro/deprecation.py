"""Warn-once deprecated aliases for renamed public API.

PR 6 consolidated the operation vocabulary: channel verbs carry a
``chan_`` prefix and semaphore verbs a ``sem_`` prefix (mirroring the
``fut_`` future verbs), and the builder constructor for condition
variables is ``condition`` (matching the primitive's stdlib name).
The old spellings keep working through aliases installed here; each
alias warns once per process and then stays silent.

The alias tables are public so tests can assert they stay complete:
every alias must exist, forward to its canonical method, and be
discoverable via ``__deprecated_alias_for__``.
"""

from __future__ import annotations

import warnings
from typing import Dict, Set, Tuple

#: (owner kind, alias name) pairs that have already warned.
_warned: Set[Tuple[str, str]] = set()


def reset_warnings() -> None:
    """Forget which aliases have warned (tests only)."""
    _warned.clear()


def warn_once(owner: str, alias: str, canonical: str) -> None:
    key = (owner, alias)
    if key in _warned:
        return
    _warned.add(key)
    warnings.warn(
        f"{owner}.{alias}() is deprecated; use {owner}.{canonical}()",
        DeprecationWarning,
        stacklevel=3,
    )


def install_aliases(cls: type, table: Dict[str, str]) -> None:
    """Install a warn-once alias method on ``cls`` for every
    ``alias -> canonical`` entry in ``table``."""
    owner = cls.__name__
    for alias, canonical in table.items():
        target = getattr(cls, canonical)

        def wrapper(self, *args, _t=target, _a=alias, _c=canonical,
                    _o=owner, **kwargs):
            warn_once(_o, _a, _c)
            return _t(self, *args, **kwargs)

        wrapper.__name__ = alias
        wrapper.__qualname__ = f"{owner}.{alias}"
        wrapper.__doc__ = f"Deprecated alias for :meth:`{canonical}`."
        wrapper.__deprecated_alias_for__ = canonical
        setattr(cls, alias, wrapper)
