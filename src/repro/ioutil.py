"""Crash-safe file writes: the one atomic-JSON helper.

Every durable artifact the toolkit writes — campaign stores, partial
checkpoints, ``BENCH_*.json`` reports, campaign reports, coordinator
state — goes through :func:`atomic_write_json`, so a process killed at
*any* instruction boundary can never leave a torn or truncated JSON
document behind.  The recipe is the standard one:

1. serialize into a sibling temp file (same directory, so the final
   rename never crosses a filesystem boundary);
2. ``flush`` + ``os.fsync`` the temp file, so the *contents* are
   durable before the name is;
3. ``os.replace`` onto the destination (atomic on POSIX and Windows);
4. best-effort ``fsync`` of the containing directory, so the rename
   itself survives power loss.

Readers therefore observe either the complete old document or the
complete new one, never a prefix.  Temp names embed the writer's PID,
so concurrent writers of *different* documents in one directory never
collide (two writers racing on the *same* path last-write-wins, which
is the same guarantee ``os.replace`` gives).
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Union


def atomic_write_text(path: Union[str, Path], text: str,
                      fsync: bool = True) -> None:
    """Atomically replace ``path`` with ``text`` (see module doc)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.parent / f"{path.name}.{os.getpid()}.tmp"
    try:
        with open(tmp, "w", encoding="utf-8") as fh:
            fh.write(text)
            if fsync:
                fh.flush()
                os.fsync(fh.fileno())
        os.replace(tmp, path)
    except BaseException:
        # a failed write must not leave temp litter that a later
        # directory scan could mistake for real data
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    if fsync:
        _fsync_dir(path.parent)


def atomic_write_json(
    path: Union[str, Path],
    payload: Any,
    indent: int = 1,
    sort_keys: bool = True,
    fsync: bool = True,
) -> None:
    """Atomically replace ``path`` with ``payload`` serialized as JSON.

    ``sort_keys`` defaults on so that equal payloads serialize to equal
    bytes — the property the campaign's bit-identical-report tests
    compare on.
    """
    atomic_write_text(
        path,
        json.dumps(payload, indent=indent, sort_keys=sort_keys),
        fsync=fsync,
    )


def read_json(path: Union[str, Path]) -> Any:
    """Best-effort JSON read: ``None`` for a missing, unreadable or
    malformed file (an atomic writer never produces a malformed file,
    so ``None`` means "not written yet" or "foreign data")."""
    try:
        return json.loads(Path(path).read_text())
    except (OSError, ValueError):
        return None


def _fsync_dir(directory: Path) -> None:
    """Durably record the rename in the directory; best effort (some
    filesystems and platforms do not support opening directories)."""
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)
