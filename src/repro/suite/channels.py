"""Message-passing scenarios: channel pipelines, fan-in/fan-out,
producer–consumer over a bounded channel (with a seeded bug variant),
future DAGs, and channel-close races.

These open the scenario family the fixed mutex/condvar vocabulary
could not express: inter-thread ordering established purely by message
passing, which exercises the lazy HBR on edges mutexes — by the
paper's own design — never create.
"""

from __future__ import annotations

from ..runtime.channel import CLOSED
from ..runtime.program import Program, ProgramBuilder


def chan_pipeline(stages: int, items: int, capacity: int = 1) -> Program:
    """A chain of stages connected by bounded channels.

    The source sends ``items`` tokens into the first channel; each
    stage receives, increments, and forwards; the sink accumulates.
    Every stage closes its output once its input closes, so shutdown
    propagates down the chain.
    """

    def build(p: ProgramBuilder) -> None:
        chans = [
            p.channel(f"ch{i}", capacity) for i in range(stages + 1)
        ]
        out = p.var("out", 0)

        def source(api):
            for i in range(items):
                yield api.chan_send(chans[0], i + 1)
            yield api.chan_close(chans[0])

        def stage(api, i):
            while True:
                v = yield api.chan_recv(chans[i])
                if v is CLOSED:
                    break
                yield api.chan_send(chans[i + 1], v + 1)
            yield api.chan_close(chans[i + 1])

        def sink(api):
            acc = 0
            while True:
                v = yield api.chan_recv(chans[stages])
                if v is CLOSED:
                    break
                acc += v
            yield api.write(out, acc)
            # every token is incremented once per stage
            api.guest_assert(
                acc == sum(range(1, items + 1)) + stages * items,
                "pipeline lost or corrupted a token",
            )

        p.thread(source)
        for i in range(stages):
            p.thread(stage, i)
        p.thread(sink)

    return Program(
        f"chan_pipeline_s{stages}_k{items}_cap{capacity}",
        build,
        description="token pipeline over bounded channels",
    )


def chan_fan_in(producers: int, items: int, capacity: int = 1) -> Program:
    """Fan-in: ``producers`` threads send into one bounded channel; a
    single consumer drains it.  An atomic join counter tracks finished
    producers, and the last one to finish closes the channel."""

    def build(p: ProgramBuilder) -> None:
        ch = p.channel("ch", capacity)
        done = p.atomic("done", 0)
        out = p.var("out", 0)

        def producer(api, me):
            for i in range(items):
                yield api.chan_send(ch, me * items + i + 1)
            n = yield api.add_fetch(done, 1)
            if n == producers:  # last one out closes the channel
                yield api.chan_close(ch)

        def consumer(api):
            acc = 0
            while True:
                v = yield api.chan_recv(ch)
                if v is CLOSED:
                    break
                acc += v
            yield api.write(out, acc)
            total = producers * items
            api.guest_assert(
                acc == total * (total + 1) // 2,
                "fan-in dropped or duplicated a message",
            )

        for me in range(producers):
            p.thread(producer, me)
        p.thread(consumer)

    return Program(
        f"chan_fan_in_p{producers}_k{items}_cap{capacity}",
        build,
        description="multi-producer fan-in over one bounded channel",
    )


def chan_fan_out(consumers: int, items: int, capacity: int = 1) -> Program:
    """Fan-out: one producer feeds a bounded channel drained by
    ``consumers`` competing receivers (MPMC wakeup nondeterminism);
    per-consumer sums land in an array whose total must be conserved."""

    def build(p: ProgramBuilder) -> None:
        ch = p.channel("ch", capacity)
        sums = p.array("sums", [0] * consumers)
        total = p.var("total", 0)

        def producer(api):
            for i in range(items):
                yield api.chan_send(ch, i + 1)
            yield api.chan_close(ch)

        def consumer(api, me):
            acc = 0
            while True:
                v = yield api.chan_recv(ch)
                if v is CLOSED:
                    break
                acc += v
            yield api.write(sums, acc, key=me)

        def auditor(api):
            yield api.join(0)  # producer
            acc = 0
            for me in range(consumers):
                yield api.join(1 + me)
                s = yield api.read(sums, key=me)
                acc += s
            yield api.write(total, acc)
            api.guest_assert(
                acc == items * (items + 1) // 2,
                "fan-out lost or duplicated a message",
            )

        p.thread(producer)
        for me in range(consumers):
            p.thread(consumer, me)
        p.thread(auditor)

    return Program(
        f"chan_fan_out_c{consumers}_k{items}_cap{capacity}",
        build,
        description="single-producer fan-out to competing receivers",
    )


def chan_producer_consumer(items: int, capacity: int,
                           buggy: bool = False) -> Program:
    """Producer–consumer over a bounded channel, with a seeded bug.

    The correct variant tracks the sent count with an atomic.  The
    buggy variant "optimises" the counter into two plain read/write
    events on a shared variable — a lost-update race: schedules that
    interleave the unlocked increments under-count, and the consumer's
    final conservation assertion fails.  DPOR must find it; the
    minimizer must shrink the witness schedule.

    Each producer counts *before* sending, so every counter update
    happens-before its message's receipt: once the consumer has drained
    everything, the only way the count can disagree is the seeded lost
    update itself.
    """

    def build(p: ProgramBuilder) -> None:
        ch = p.channel("ch", capacity)
        sent = p.var("sent", 0)
        counted = p.atomic("counted", 0)

        def producer(api, me):
            for i in range(items):
                if buggy:
                    # seeded lost-update: read and write as two events
                    s = yield api.read(sent)
                    yield api.write(sent, s + 1)
                else:
                    yield api.fetch_add(counted, 1)
                yield api.chan_send(ch, me * items + i + 1)

        def consumer(api):
            got = 0
            for _ in range(2 * items):
                v = yield api.chan_recv(ch)
                api.guest_assert(v is not CLOSED, "channel closed early")
                got += 1
            if buggy:
                s = yield api.read(sent)
                api.guest_assert(
                    s == got, "producer count lost an update"
                )
            else:
                s = yield api.load(counted)
                api.guest_assert(s == got, "atomic count diverged")

        p.thread(producer, 0)
        p.thread(producer, 1)
        p.thread(consumer)

    tag = "buggy" if buggy else "ok"
    return Program(
        f"chan_pc_k{items}_cap{capacity}_{tag}",
        build,
        description="producer-consumer over a bounded channel"
        + (" with a seeded lost-update bug" if buggy else ""),
    )


def future_dag(width: int = 2) -> Program:
    """A diamond dependency DAG computed through futures: ``width``
    middle threads each combine the source future into their own;
    the sink gets them all and checks the deterministic total."""

    def build(p: ProgramBuilder) -> None:
        src = p.future("src")
        mids = [p.future(f"mid{i}") for i in range(width)]
        out = p.var("out", 0)

        def source(api):
            yield api.fut_set(src, 10)

        def middle(api, i):
            v = yield api.fut_get(src)
            yield api.fut_set(mids[i], v + i)

        def sink(api):
            acc = 0
            for i in range(width):
                v = yield api.fut_get(mids[i])
                acc += v
            yield api.write(out, acc)
            api.guest_assert(
                acc == 10 * width + width * (width - 1) // 2,
                "future DAG combined wrong values",
            )

        p.thread(source)
        for i in range(width):
            p.thread(middle, i)
        p.thread(sink)

    return Program(
        f"future_dag_w{width}",
        build,
        description="diamond dependency DAG over write-once futures",
    )


def chan_close_race(eager_close: bool = True) -> Program:
    """A close/send race: the producer sends while a controller closes
    the channel after seeing the first value.

    With ``eager_close`` the controller closes as soon as it has
    received one value, so schedules where the producer's second send
    lands after the close crash the producer with a
    :class:`~repro.errors.ChannelError` — a property violation the
    explorers must find.  The fixed variant closes only after draining
    both values, which no schedule can break.
    """

    def build(p: ProgramBuilder) -> None:
        ch = p.channel("ch", 2)
        got = p.var("got", 0)

        def producer(api):
            yield api.chan_send(ch, 1)
            yield api.chan_send(ch, 2)

        def controller(api):
            v = yield api.chan_recv(ch)
            if not eager_close:
                w = yield api.chan_recv(ch)
                v += w
            yield api.chan_close(ch)
            yield api.write(got, v)

        p.thread(producer)
        p.thread(controller)

    tag = "eager" if eager_close else "fixed"
    return Program(
        f"chan_close_race_{tag}",
        build,
        description="producer racing a channel close",
    )


def rendezvous_handshake(rounds: int = 2) -> Program:
    """Strict alternation over a rendezvous (capacity-0) channel: each
    send synchronises with a pending receive, so the reply a client
    reads is always the echo of its own request."""

    def build(p: ProgramBuilder) -> None:
        req = p.channel("req", 0)
        rsp = p.channel("rsp", 0)
        out = p.var("out", 0)

        def server(api):
            for _ in range(rounds):
                v = yield api.chan_recv(req)
                yield api.chan_send(rsp, v * 10)

        def client(api):
            acc = 0
            for i in range(rounds):
                yield api.chan_send(req, i + 1)
                r = yield api.chan_recv(rsp)
                api.guest_assert(r == (i + 1) * 10,
                                 "rendezvous echoed a stale request")
                acc += r
            yield api.write(out, acc)

        p.thread(server)
        p.thread(client)

    return Program(
        f"rendezvous_handshake_r{rounds}",
        build,
        description="request/response over rendezvous channels",
    )
