"""Counter families: the spectrum from "no lazy benefit" to "maximal
lazy benefit".

* ``racy_counter`` — unsynchronised read/increment/write: every
  interleaving of the data accesses matters; no locks, so the lazy HBR
  equals the regular HBR (points on the Figure 2 diagonal).
* ``locked_counter`` — the same increments under a coarse mutex: lock
  order and data order coincide, so again no lazy reduction — but no
  lost updates either (a single final state).
* ``atomic_counter`` — fetch_add increments; RMW events conflict, no
  mutexes anywhere.
* ``disjoint_coarse`` — a coarse mutex protecting *per-thread* data:
  the textbook case for the lazy HBR.  Regular DPOR must explore every
  ordering of the critical sections; the lazy HBR sees completely
  independent threads and collapses everything to one class.
* ``readonly_coarse`` — critical sections that only read shared data:
  same collapse, via the read-only rather than disjointness argument.
"""

from __future__ import annotations

from ..runtime.program import Program, ProgramBuilder


def racy_counter(threads: int, increments: int) -> Program:
    """``threads`` threads each do ``increments`` unprotected ++."""

    def build(p: ProgramBuilder) -> None:
        c = p.var("c", 0)

        def worker(api):
            for _ in range(increments):
                v = yield api.read(c)
                yield api.write(c, v + 1)

        for _ in range(threads):
            p.thread(worker)

    return Program(
        f"racy_counter_t{threads}_k{increments}",
        build,
        description="unsynchronised counter increments (lost updates)",
    )


def locked_counter(threads: int, increments: int) -> Program:
    """The same counter, increments under a coarse mutex."""

    def build(p: ProgramBuilder) -> None:
        m = p.mutex("m")
        c = p.var("c", 0)

        def worker(api):
            for _ in range(increments):
                yield api.lock(m)
                v = yield api.read(c)
                yield api.write(c, v + 1)
                yield api.unlock(m)

        for _ in range(threads):
            p.thread(worker)

    return Program(
        f"locked_counter_t{threads}_k{increments}",
        build,
        description="coarse-locked counter increments",
    )


def atomic_counter(threads: int, increments: int) -> Program:
    """fetch_add increments on an AtomicInt (single final state)."""

    def build(p: ProgramBuilder) -> None:
        c = p.atomic("c", 0)

        def worker(api):
            for _ in range(increments):
                yield api.fetch_add(c, 1)

        for _ in range(threads):
            p.thread(worker)

    return Program(
        f"atomic_counter_t{threads}_k{increments}",
        build,
        description="atomic fetch_add increments",
    )


def disjoint_coarse(threads: int, sections: int) -> Program:
    """A coarse mutex around updates of per-thread variables.

    The paper's motivating pattern: well-engineered code with a simple
    locking discipline.  Every interleaving of the critical sections is
    a distinct HBR; all of them are one lazy HBR.
    """

    def build(p: ProgramBuilder) -> None:
        m = p.mutex("m")
        slots = p.array("slots", [0] * threads)

        def worker(api, me):
            for _ in range(sections):
                yield api.lock(m)
                v = yield api.read(slots, key=me)
                yield api.write(slots, v + 1, key=me)
                yield api.unlock(m)

        for tid in range(threads):
            p.thread(worker, tid)

    return Program(
        f"disjoint_coarse_t{threads}_k{sections}",
        build,
        description="coarse lock over disjoint per-thread data",
    )


def readonly_coarse(threads: int, reads: int) -> Program:
    """Critical sections that only *read* shared configuration."""

    def build(p: ProgramBuilder) -> None:
        m = p.mutex("m")
        config = p.var("config", 42)
        results = p.array("results", [0] * threads)

        def worker(api, me):
            acc = 0
            for _ in range(reads):
                yield api.lock(m)
                v = yield api.read(config)
                yield api.unlock(m)
                acc += v
            yield api.write(results, acc, key=me)

        for tid in range(threads):
            p.thread(worker, tid)

    return Program(
        f"readonly_coarse_t{threads}_k{reads}",
        build,
        description="coarse lock around read-only critical sections",
    )


def mixed_coarse(threads: int) -> Program:
    """Half the critical sections touch shared data, half are disjoint —
    a partial lazy-HBR win (between the diagonal and the floor)."""

    def build(p: ProgramBuilder) -> None:
        m = p.mutex("m")
        shared = p.var("shared", 0)
        slots = p.array("slots", [0] * threads)

        def worker(api, me):
            yield api.lock(m)
            v = yield api.read(slots, key=me)
            yield api.write(slots, v + 1, key=me)
            yield api.unlock(m)
            yield api.lock(m)
            s = yield api.read(shared)
            yield api.write(shared, s + 1)
            yield api.unlock(m)

        for tid in range(threads):
            p.thread(worker, tid)

    return Program(
        f"mixed_coarse_t{threads}",
        build,
        description="coarse lock, mixed disjoint and shared sections",
    )
