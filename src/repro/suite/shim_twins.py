"""Shim-authored fixture programs paired with hand-built DSL twins.

Each :class:`TwinPair` holds the *same* concurrent program twice:

* ``shim``  — written as ordinary Python against
  :mod:`repro.shim.threading` / :mod:`repro.shim.queue` (with
  ``@repro.shared`` state) and packaged via
  :func:`~repro.shim.program_from_function`;
* ``dsl``   — written directly in the generator DSL, structured the way
  the shim frontend structures programs: a single static root thread
  that creates the runtime objects mid-run (closure over the builder's
  registry) and spawns workers with ``api.spawn``/``api.join``.

The pairs are the golden-equivalence fixtures: for every explorer the
two sides must produce *identical* schedules, fingerprint sets, state
hashes and error kinds — byte-for-byte, which pins down the entire
instrumentation pipeline (object-id assignment, op streams, error
wrapping).  ``equivalence_report`` computes the comparison; the test
suite and the ``shim-equivalence`` CLI command both consume it.

Not imported by ``repro.suite.__init__`` — pairs are fixtures for the
equivalence harness, not members of the paper's benchmark collection.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..errors import GuestCrashError
from ..explore.base import ExplorationLimits
from ..explore.controller import run_single
from ..runtime.atomic import AtomicInt
from ..runtime.barrier import Barrier as RtBarrier
from ..runtime.channel import Channel as RtChannel
from ..runtime.condvar import CondVar as RtCondVar
from ..runtime.mutex import Mutex as RtMutex
from ..runtime.program import Program, ProgramBuilder
from ..runtime.schedule import execute
from ..runtime.semaphore import Semaphore as RtSemaphore
from ..runtime.sharedvar import SharedVar
from ..shim import program_from_function, shared
from ..shim import queue as shim_queue
from ..shim import threading as shim_threading
from ..shim.queue import _is_zero, _task_done_apply
from ..shim.threading import _truthy


# ---------------------------------------------------------------------------
# shared state classes used by the shim sides
# ---------------------------------------------------------------------------

@shared
class Counter:
    def __init__(self):
        self.value = 0


@shared
class Box:
    def __init__(self):
        self.data = 0


@shared
class Pair:
    def __init__(self):
        self.x = 0
        self.y = 0


@shared
class Slot:
    def __init__(self):
        self.ready = 0


# ---------------------------------------------------------------------------
# 1. racy counter — the classic lost update (expected bug)
# ---------------------------------------------------------------------------

def shim_racy_counter():
    c = Counter()

    def worker():
        c.value += 1

    t1 = shim_threading.Thread(target=worker)
    t2 = shim_threading.Thread(target=worker)
    t1.start()
    t2.start()
    t1.join()
    t2.join()
    v = c.value
    if v != 2:
        raise ValueError(f"lost update: {v}")


def _dsl_racy_counter(p: ProgramBuilder) -> None:
    def worker(api, cell):
        v = yield api.read(cell)
        yield api.write(cell, v + 1)

    def main(api):
        cell = SharedVar(p.registry, 0, "Counter.value#0")
        t1 = yield api.spawn(worker, cell)
        t2 = yield api.spawn(worker, cell)
        yield api.join(t1)
        yield api.join(t2)
        v = yield api.read(cell)
        if v != 2:
            raise GuestCrashError(api.tid, ValueError(f"lost update: {v}"))

    p.thread(main, name="main")


# ---------------------------------------------------------------------------
# 2. locked counter — same workload, mutex-protected (clean)
# ---------------------------------------------------------------------------

def shim_locked_counter():
    c = Counter()
    lock = shim_threading.Lock()

    def worker():
        with lock:
            c.value += 1

    t1 = shim_threading.Thread(target=worker)
    t2 = shim_threading.Thread(target=worker)
    t1.start()
    t2.start()
    t1.join()
    t2.join()
    v = c.value
    if v != 2:
        raise ValueError(f"lost update: {v}")


def _dsl_locked_counter(p: ProgramBuilder) -> None:
    def worker(api, cell, m):
        yield api.lock(m)
        v = yield api.read(cell)
        yield api.write(cell, v + 1)
        yield api.unlock(m)

    def main(api):
        cell = SharedVar(p.registry, 0, "Counter.value#0")
        m = RtMutex(p.registry, "threading.Lock#0")
        t1 = yield api.spawn(worker, cell, m)
        t2 = yield api.spawn(worker, cell, m)
        yield api.join(t1)
        yield api.join(t2)
        v = yield api.read(cell)
        if v != 2:
            raise GuestCrashError(api.tid, ValueError(f"lost update: {v}"))

    p.thread(main, name="main")


# ---------------------------------------------------------------------------
# 3. event handshake — publish data, then signal (clean)
# ---------------------------------------------------------------------------

def shim_event_handshake():
    box = Box()
    ev = shim_threading.Event()

    def setter():
        box.data = 42
        ev.set()

    t = shim_threading.Thread(target=setter)
    t.start()
    ev.wait()
    v = box.data
    t.join()
    if v != 42:
        raise ValueError(f"handshake saw {v}")


def _dsl_event_handshake(p: ProgramBuilder) -> None:
    def setter(api, cell, flag):
        yield api.write(cell, 42)
        yield api.write(flag, True)

    def main(api):
        cell = SharedVar(p.registry, 0, "Box.data#0")
        flag = SharedVar(p.registry, False, "threading.Event#0")
        t = yield api.spawn(setter, cell, flag)
        yield api.await_value(flag, _truthy)
        v = yield api.read(cell)
        yield api.join(t)
        if v != 42:
            raise GuestCrashError(api.tid, ValueError(f"handshake saw {v}"))

    p.thread(main, name="main")


# ---------------------------------------------------------------------------
# 4. semaphore pair — binary semaphore as a lock (clean)
# ---------------------------------------------------------------------------

def shim_semaphore_pair():
    c = Counter()
    sem = shim_threading.Semaphore(1)

    def worker():
        sem.acquire()
        c.value += 1
        sem.release()

    t1 = shim_threading.Thread(target=worker)
    t2 = shim_threading.Thread(target=worker)
    t1.start()
    t2.start()
    t1.join()
    t2.join()
    v = c.value
    if v != 2:
        raise ValueError(f"lost update: {v}")


def _dsl_semaphore_pair(p: ProgramBuilder) -> None:
    def worker(api, cell, sem):
        yield api.sem_acquire(sem)
        v = yield api.read(cell)
        yield api.write(cell, v + 1)
        yield api.sem_release(sem)

    def main(api):
        cell = SharedVar(p.registry, 0, "Counter.value#0")
        sem = RtSemaphore(p.registry, 1, "threading.Semaphore#0")
        t1 = yield api.spawn(worker, cell, sem)
        t2 = yield api.spawn(worker, cell, sem)
        yield api.join(t1)
        yield api.join(t2)
        v = yield api.read(cell)
        if v != 2:
            raise GuestCrashError(api.tid, ValueError(f"lost update: {v}"))

    p.thread(main, name="main")


# ---------------------------------------------------------------------------
# 5. barrier phases — write, meet, read the other's write (clean)
# ---------------------------------------------------------------------------

def shim_barrier_phases():
    pr = Pair()
    b = shim_threading.Barrier(2)

    def w1():
        pr.x = 1
        b.wait()
        v = pr.y
        if v != 2:
            raise ValueError(f"w1 saw {v}")

    def w2():
        pr.y = 2
        b.wait()
        v = pr.x
        if v != 1:
            raise ValueError(f"w2 saw {v}")

    t1 = shim_threading.Thread(target=w1)
    t2 = shim_threading.Thread(target=w2)
    t1.start()
    t2.start()
    t1.join()
    t2.join()


def _dsl_barrier_phases(p: ProgramBuilder) -> None:
    def w1(api, x, y, b):
        yield api.write(x, 1)
        yield api.barrier_wait(b)
        v = yield api.read(y)
        if v != 2:
            raise GuestCrashError(api.tid, ValueError(f"w1 saw {v}"))

    def w2(api, x, y, b):
        yield api.write(y, 2)
        yield api.barrier_wait(b)
        v = yield api.read(x)
        if v != 1:
            raise GuestCrashError(api.tid, ValueError(f"w2 saw {v}"))

    def main(api):
        x = SharedVar(p.registry, 0, "Pair.x#0")
        y = SharedVar(p.registry, 0, "Pair.y#0")
        b = RtBarrier(p.registry, 2, "threading.Barrier#0")
        t1 = yield api.spawn(w1, x, y, b)
        t2 = yield api.spawn(w2, x, y, b)
        yield api.join(t1)
        yield api.join(t2)

    p.thread(main, name="main")


# ---------------------------------------------------------------------------
# 6. queue pipeline — bounded queue with task accounting (clean)
# ---------------------------------------------------------------------------

def shim_queue_pipeline():
    q = shim_queue.Queue(maxsize=1)

    def producer():
        q.put(1)
        q.put(2)

    t = shim_threading.Thread(target=producer)
    t.start()
    a = q.get()
    q.task_done()
    b = q.get()
    q.task_done()
    q.join()
    t.join()
    if (a, b) != (1, 2):
        raise ValueError(f"pipeline saw {(a, b)}")


def _dsl_queue_pipeline(p: ProgramBuilder) -> None:
    def producer(api, ch, unfinished):
        yield api.fetch_add(unfinished, 1)
        yield api.chan_send(ch, 1)
        yield api.fetch_add(unfinished, 1)
        yield api.chan_send(ch, 2)

    def main(api):
        ch = RtChannel(p.registry, 1, "queue.Queue#0")
        unfinished = AtomicInt(p.registry, 0, "queue.Queue.unfinished#0")
        t = yield api.spawn(producer, ch, unfinished)
        a = yield api.chan_recv(ch)
        yield api.rmw(unfinished, _task_done_apply)
        b = yield api.chan_recv(ch)
        yield api.rmw(unfinished, _task_done_apply)
        yield api.await_value(unfinished, _is_zero)
        yield api.join(t)
        if (a, b) != (1, 2):
            raise GuestCrashError(api.tid, ValueError(f"pipeline saw {(a, b)}"))

    p.thread(main, name="main")


# ---------------------------------------------------------------------------
# 7. condition handoff — monitor-style wait loop (clean)
# ---------------------------------------------------------------------------

def shim_condition_handoff():
    slot = Slot()
    cond = shim_threading.Condition(shim_threading.Lock())

    def producer():
        with cond:
            slot.ready = 1
            cond.notify()

    t = shim_threading.Thread(target=producer)
    t.start()
    with cond:
        while not slot.ready:
            cond.wait()
    t.join()


def _dsl_condition_handoff(p: ProgramBuilder) -> None:
    def producer(api, ready, m, cv):
        yield api.lock(m)
        yield api.write(ready, 1)
        yield api.notify(cv)
        yield api.unlock(m)

    def main(api):
        ready = SharedVar(p.registry, 0, "Slot.ready#0")
        m = RtMutex(p.registry, "threading.Lock#0")
        cv = RtCondVar(p.registry, "threading.Condition#0")
        t = yield api.spawn(producer, ready, m, cv)
        yield api.lock(m)
        v = yield api.read(ready)
        while not v:
            yield api.wait(cv, m)
            v = yield api.read(ready)
        yield api.unlock(m)
        yield api.join(t)

    p.thread(main, name="main")


# ---------------------------------------------------------------------------
# 8. rlock reentrant — nested acquires are shim-local (clean)
# ---------------------------------------------------------------------------

def shim_rlock_reentrant():
    c = Counter()
    rl = shim_threading.RLock()

    def inner():
        with rl:  # reentrant: no runtime events
            c.value += 1

    def outer():
        with rl:
            inner()

    t1 = shim_threading.Thread(target=outer)
    t2 = shim_threading.Thread(target=outer)
    t1.start()
    t2.start()
    t1.join()
    t2.join()
    v = c.value
    if v != 2:
        raise ValueError(f"lost update: {v}")


def _dsl_rlock_reentrant(p: ProgramBuilder) -> None:
    def worker(api, cell, m):
        yield api.lock(m)
        v = yield api.read(cell)
        yield api.write(cell, v + 1)
        yield api.unlock(m)

    def main(api):
        cell = SharedVar(p.registry, 0, "Counter.value#0")
        m = RtMutex(p.registry, "threading.RLock#0")
        t1 = yield api.spawn(worker, cell, m)
        t2 = yield api.spawn(worker, cell, m)
        yield api.join(t1)
        yield api.join(t2)
        v = yield api.read(cell)
        if v != 2:
            raise GuestCrashError(api.tid, ValueError(f"lost update: {v}"))

    p.thread(main, name="main")


# ---------------------------------------------------------------------------
# 9. timed lease — lock-acquire timeout as an explorable branch
#    (expected bug: the contender steals after its deadline fires)
# ---------------------------------------------------------------------------

def shim_timed_lease():
    box = Box()
    lock = shim_threading.Lock()

    def holder():
        lock.acquire()
        box.data = 1
        v = box.data
        lock.release()
        if v != 1:
            raise ValueError(f"lease stolen: {v}")

    def contender():
        got = lock.acquire(timeout=0.02)
        if got:
            lock.release()
        else:
            box.data = 2  # assumes the holder died; writes without the lease

    t1 = shim_threading.Thread(target=holder)
    t2 = shim_threading.Thread(target=contender)
    t1.start()
    t2.start()
    t1.join()
    t2.join()


def _dsl_timed_lease(p: ProgramBuilder) -> None:
    def holder(api, cell, m):
        yield api.lock(m)
        yield api.write(cell, 1)
        v = yield api.read(cell)
        yield api.unlock(m)
        if v != 1:
            raise GuestCrashError(api.tid, ValueError(f"lease stolen: {v}"))

    def contender(api, cell, m):
        got = yield api.lock(m, timeout=0.02)
        if got is not False:
            yield api.unlock(m)
        else:
            yield api.write(cell, 2)

    def main(api):
        cell = SharedVar(p.registry, 0, "Box.data#0")
        m = RtMutex(p.registry, "threading.Lock#0")
        t1 = yield api.spawn(holder, cell, m)
        t2 = yield api.spawn(contender, cell, m)
        yield api.join(t1)
        yield api.join(t2)

    p.thread(main, name="main")


# ---------------------------------------------------------------------------
# the pair registry
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class TwinPair:
    """One program authored twice: shim frontend vs generator DSL."""

    name: str
    shim: Program
    dsl: Program
    expect_error: Optional[str] = None   #: expected error kind, or None
    small: bool = True                   #: cheap enough for exhaustive dfs


def _pair(name, shim_fn, dsl_build, expect_error=None) -> TwinPair:
    return TwinPair(
        name=name,
        shim=program_from_function(shim_fn, name=f"{name}__shim"),
        dsl=Program(f"{name}__dsl", dsl_build,
                    description=f"hand-built DSL twin of {name}"),
        expect_error=expect_error,
    )


def make_twins() -> List[TwinPair]:
    """Fresh TwinPair fixtures (programs are stateless recipes, but a
    fresh list keeps callers from depending on shared identity)."""
    return [
        _pair("racy_counter", shim_racy_counter, _dsl_racy_counter,
              expect_error="GuestCrashError"),
        _pair("locked_counter", shim_locked_counter, _dsl_locked_counter),
        _pair("event_handshake", shim_event_handshake, _dsl_event_handshake),
        _pair("semaphore_pair", shim_semaphore_pair, _dsl_semaphore_pair),
        _pair("barrier_phases", shim_barrier_phases, _dsl_barrier_phases),
        _pair("queue_pipeline", shim_queue_pipeline, _dsl_queue_pipeline),
        _pair("condition_handoff", shim_condition_handoff,
              _dsl_condition_handoff),
        _pair("rlock_reentrant", shim_rlock_reentrant, _dsl_rlock_reentrant),
        _pair("timed_lease", shim_timed_lease, _dsl_timed_lease,
              expect_error="GuestCrashError"),
    ]


# ---------------------------------------------------------------------------
# the equivalence harness
# ---------------------------------------------------------------------------

def _single_run_signature(program: Program) -> Dict:
    """Signature of one deterministic (first-enabled) execution."""
    result = execute(program)
    return {
        "events": [
            (e.tid, e.kind.name, e.oid, e.key) for e in result.events
        ],
        "schedule": list(result.schedule),
        "hbr_fp": result.hbr_fp,
        "lazy_fp": result.lazy_fp,
        "state_hash": result.state_hash,
        "error": type(result.error).__name__ if result.error else None,
    }


def _explorer_signature(program: Program, explorer: str,
                        limits: ExplorationLimits) -> Dict:
    stats = run_single(program, explorer, limits, seed=0, verify=True)
    return {
        "num_schedules": stats.num_schedules,
        "num_complete": stats.num_complete,
        "num_hbrs": stats.num_hbrs,
        "num_lazy_hbrs": stats.num_lazy_hbrs,
        "num_states": stats.num_states,
        "hbr_fps": sorted(stats.hbr_fps),
        "lazy_fps": sorted(stats.lazy_fps),
        "state_hashes": sorted(stats.state_hashes),
        "error_kinds": sorted({e.kind for e in stats.errors}),
        "error_schedules": sorted(
            tuple(e.schedule) for e in stats.errors
        ),
        "limit_hit": stats.limit_hit,
    }


def equivalence_report(
    limits: Optional[ExplorationLimits] = None,
    explorers: Tuple[str, ...] = ("dfs", "dpor", "pct"),
) -> Dict:
    """Compare every twin pair under every explorer.

    Returns a JSON-able report; ``report["all_equal"]`` summarises it.
    """
    lim = limits or ExplorationLimits(max_schedules=3000)
    pairs = {}
    all_equal = True
    for pair in make_twins():
        entry: Dict = {"expect_error": pair.expect_error, "explorers": {}}
        shim_single = _single_run_signature(pair.shim)
        dsl_single = _single_run_signature(pair.dsl)
        entry["single_run_equal"] = shim_single == dsl_single
        entry["single_run"] = {"shim": shim_single, "dsl": dsl_single}
        for explorer in explorers:
            shim_sig = _explorer_signature(pair.shim, explorer, lim)
            dsl_sig = _explorer_signature(pair.dsl, explorer, lim)
            equal = shim_sig == dsl_sig
            entry["explorers"][explorer] = {
                "equal": equal, "shim": shim_sig, "dsl": dsl_sig,
            }
            all_equal = all_equal and equal
        all_equal = all_equal and entry["single_run_equal"]
        pairs[pair.name] = entry
    return {
        "kind": "repro-shim-equivalence",
        "version": 1,
        "explorers": list(explorers),
        "all_equal": all_equal,
        "pairs": pairs,
    }
