"""The benchmark suite: 96 program instances, ids 1..96.

The paper evaluated 79 open-source multithreaded Java benchmarks; this
suite substitutes instances drawn from classic concurrency program
families spanning the same behavioural spectrum (see DESIGN.md §2):
pure data races (no lazy-HBR benefit), coarse locks over disjoint or
read-only data (maximal benefit), fine-grained locking, condition
variables / semaphores / barriers (conservatively kept in the lazy
relation), lock-free CAS algorithms, mutual-exclusion protocols,
known-buggy programs (deadlocks, assertion violations, channel misuse)
that the explorers must find, and — since the sync-primitive protocol
opened the vocabulary — message-passing workloads over channels and
futures (ids 80-88: pipelines, fan-in/fan-out, producer–consumer,
future DAGs, close races, rendezvous), and virtual-time workloads
(ids 89-96: leases, watchdogs, retry storms, timed message passing)
whose timeouts are explorable scheduling branches on the deterministic
clock.

``REGISTRY`` maps bench id -> :class:`~repro.suite.base.Benchmark`;
``small`` instances have DFS-exhaustible state spaces and are used as
ground truth in soundness tests.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from .bank import bank_global_lock, bank_per_account, bank_racy
from .base import Benchmark
from .buffers import bounded_buffer, pingpong, pipeline
from .channels import (
    chan_close_race,
    chan_fan_in,
    chan_fan_out,
    chan_pipeline,
    chan_producer_consumer,
    future_dag,
    rendezvous_handshake,
)
from .collections_prog import (
    coarse_dict,
    striped_map,
    treiber_stack,
    work_queue_private,
    work_queue_shared,
)
from .counters import (
    atomic_counter,
    disjoint_coarse,
    locked_counter,
    mixed_coarse,
    racy_counter,
    readonly_coarse,
)
from .figure1 import figure1
from .indexer import filesystem, indexer
from .locks import (
    lock_order_deadlock,
    philosophers,
    readers_writers,
    ticket_lock,
)
from .mutual_exclusion import bakery, dekker, peterson
from .sync_patterns import (
    barrier_phases,
    condvar_broadcast,
    double_checked_locking,
    flags_handshake,
    message_passing_litmus,
    semaphore_pool,
    spawn_join_tree,
    store_buffer_litmus,
    token_ring,
)
from .timed import (
    heartbeat_watchdog,
    lease_expiry,
    retry_backoff,
    sleepy_producer_consumer,
    timed_handshake,
)

__all__ = [
    "Benchmark",
    "REGISTRY",
    "all_benchmarks",
    "get_benchmark",
    "small_benchmarks",
]


def _build_registry() -> Dict[int, Benchmark]:
    entries: List[Benchmark] = []

    def add(family: str, program, small: bool = False,
            expect_error: Optional[str] = None, notes: str = "") -> None:
        entries.append(
            Benchmark(
                bench_id=len(entries) + 1,
                family=family,
                program=program,
                small=small,
                expect_error=expect_error,
                notes=notes,
            )
        )

    # -- 1: the paper's running example ---------------------------------
    add("figure1", figure1(), small=True, notes="paper Figure 1")

    # -- 2-4: racy counters (diagonal points: no locks) -------------------
    add("racy_counter", racy_counter(2, 1), small=True)
    add("racy_counter", racy_counter(2, 2), small=True)
    add("racy_counter", racy_counter(3, 1), small=True)

    # -- 5-7: coarse-locked counters (locks, but data follows locks) ------
    add("locked_counter", locked_counter(2, 1), small=True)
    add("locked_counter", locked_counter(2, 2), small=True)
    add("locked_counter", locked_counter(3, 1), small=True)

    # -- 8-9: atomic counters ------------------------------------------------
    add("atomic_counter", atomic_counter(2, 2), small=True)
    add("atomic_counter", atomic_counter(3, 1), small=True)

    # -- 10-13: coarse lock over disjoint data (maximal lazy win) ----------
    add("disjoint_coarse", disjoint_coarse(2, 1), small=True)
    add("disjoint_coarse", disjoint_coarse(2, 2), small=True)
    add("disjoint_coarse", disjoint_coarse(3, 1), small=True)
    add("disjoint_coarse", disjoint_coarse(3, 2))

    # -- 14-16: read-only critical sections ---------------------------------
    add("readonly_coarse", readonly_coarse(2, 1), small=True)
    add("readonly_coarse", readonly_coarse(2, 2), small=True)
    add("readonly_coarse", readonly_coarse(3, 2))

    # -- 17-18: mixed disjoint/shared sections -------------------------------
    add("mixed_coarse", mixed_coarse(2), small=True)
    add("mixed_coarse", mixed_coarse(3))

    # -- 19-21: DPOR-paper indexer --------------------------------------------
    add("indexer", indexer(2, 2, 8), small=True)
    add("indexer", indexer(3, 1, 8))
    add("indexer", indexer(2, 2, 4, mult=2),
        notes="even multiplier forces collisions")

    # -- 22-23: DPOR-paper filesystem -------------------------------------------
    add("filesystem", filesystem(2))
    add("filesystem", filesystem(3))

    # -- 24-27: bounded buffer ----------------------------------------------------
    add("bounded_buffer", bounded_buffer(1, 1, 2, 1), small=True)
    add("bounded_buffer", bounded_buffer(1, 1, 2, 2), small=True)
    add("bounded_buffer", bounded_buffer(2, 1, 1, 2))
    add("bounded_buffer", bounded_buffer(1, 2, 2, 2))

    # -- 28-29: condvar ping-pong ---------------------------------------------------
    add("pingpong", pingpong(1), small=True)
    add("pingpong", pingpong(2), small=True)

    # -- 30-31: semaphore pipeline -----------------------------------------------------
    add("pipeline", pipeline(2, 2), small=True)
    add("pipeline", pipeline(3, 1), small=True)

    # -- 32-35: dining philosophers ------------------------------------------------------
    add("philosophers", philosophers(2, ordered=False), small=True,
        expect_error="deadlock")
    add("philosophers", philosophers(3, ordered=False),
        expect_error="deadlock")
    add("philosophers", philosophers(2, ordered=True), small=True)
    add("philosophers", philosophers(3, ordered=True))

    # -- 36-37: AB-BA lock order ------------------------------------------------------------
    add("lock_order", lock_order_deadlock(fixed=False), small=True,
        expect_error="deadlock")
    add("lock_order", lock_order_deadlock(fixed=True), small=True)

    # -- 38-39: ticket lock -------------------------------------------------------------------
    add("ticket_lock", ticket_lock(2), small=True)
    add("ticket_lock", ticket_lock(3))

    # -- 40-42: readers/writers -----------------------------------------------------------------
    add("readers_writers", readers_writers(1, 1), small=True)
    add("readers_writers", readers_writers(2, 1))
    add("readers_writers", readers_writers(1, 2), small=True)

    # -- 43-44: bank, global lock ------------------------------------------------------------------
    add("bank_global", bank_global_lock(2), small=True)
    add("bank_global", bank_global_lock(3))

    # -- 45-46: bank, per-account locks ----------------------------------------------------------------
    add("bank_per_account", bank_per_account(2), small=True)
    add("bank_per_account", bank_per_account(3))

    # -- 47: racy bank (assertion violable) ------------------------------------------------------------
    add("bank_racy", bank_racy(2), small=True, expect_error="assertion")

    # -- 48-49: Peterson -----------------------------------------------------------------------------------
    add("peterson", peterson(buggy=False), small=True)
    add("peterson", peterson(buggy=True), small=True,
        expect_error="assertion")

    # -- 50-51: Dekker ----------------------------------------------------------------------------------------
    add("dekker", dekker(buggy=False), small=True)
    add("dekker", dekker(buggy=True), small=True, expect_error="assertion")

    # -- 52-53: bakery ------------------------------------------------------------------------------------------
    add("bakery", bakery(2), small=True)
    add("bakery", bakery(3))

    # -- 54-55: shared work queue ----------------------------------------------------------------------------------
    add("work_queue", work_queue_shared(2, 1), small=True)
    add("work_queue", work_queue_shared(2, 2))

    # -- 56-58: private queues under one lock ----------------------------------------------------------------------
    add("work_queue_private", work_queue_private(2, 2), small=True)
    add("work_queue_private", work_queue_private(3, 1), small=True)
    add("work_queue_private", work_queue_private(3, 2))

    # -- 59-61: coarse-locked dict, disjoint inserts ----------------------------------------------------------------
    add("coarse_dict", coarse_dict(2, 2), small=True)
    add("coarse_dict", coarse_dict(3, 1), small=True)
    add("coarse_dict", coarse_dict(3, 2))

    # -- 62-63: striped map ---------------------------------------------------------------------------------------------
    add("striped_map", striped_map(2), small=True)
    add("striped_map", striped_map(3))

    # -- 64-65: Treiber stack ----------------------------------------------------------------------------------------------
    add("treiber_stack", treiber_stack(2, 1), small=True)
    add("treiber_stack", treiber_stack(2, 2))

    # -- 66-68: barrier phases ----------------------------------------------------------------------------------------------
    add("barrier_phases", barrier_phases(2, 1), small=True)
    add("barrier_phases", barrier_phases(2, 2))
    add("barrier_phases", barrier_phases(3, 1))

    # -- 69-70: semaphore pool ------------------------------------------------------------------------------------------------
    add("semaphore_pool", semaphore_pool(2, 1), small=True)
    add("semaphore_pool", semaphore_pool(3, 2))

    # -- 71-72: token ring -------------------------------------------------------------------------------------------------------
    add("token_ring", token_ring(2, 1), small=True)
    add("token_ring", token_ring(3, 1), small=True)

    # -- 73-74: double-checked locking -----------------------------------------------------------------------------------------------
    add("dcl", double_checked_locking(2, buggy=False), small=True)
    add("dcl", double_checked_locking(2, buggy=True), small=True,
        expect_error="assertion")

    # -- 75-76: SC litmus tests --------------------------------------------------------------------------------------------------------
    add("litmus", store_buffer_litmus(), small=True)
    add("litmus", message_passing_litmus(), small=True)

    # -- 77: dynamic spawn/join ----------------------------------------------------------------------------------------------------------
    add("spawn_join", spawn_join_tree(2), small=True)

    # -- 78: condvar broadcast ------------------------------------------------------------------------------------------------------------
    add("condvar_broadcast", condvar_broadcast(2), small=True)

    # -- 79: flag handshake -----------------------------------------------------------------------------------------------------------------
    add("flags_handshake", flags_handshake(), small=True)

    # -- 80-88: message passing (channels + futures, the first
    # protocol-native primitives; see suite/channels.py) ----------------------------------------------------------
    add("chan_pipeline", chan_pipeline(1, 2), small=True)
    add("chan_pipeline", chan_pipeline(2, 2),
        notes="deep: two stages, DFS-infeasible, for budgeted cells")
    add("chan_fan_in", chan_fan_in(2, 1), small=True)
    add("chan_fan_out", chan_fan_out(2, 1), small=True)
    add("chan_pc", chan_producer_consumer(1, 1, buggy=True), small=True,
        expect_error="assertion",
        notes="seeded lost-update on the producers' counter")
    add("chan_pc", chan_producer_consumer(1, 2, buggy=False), small=True)
    add("future_dag", future_dag(2), small=True)
    add("chan_close_race", chan_close_race(eager_close=True), small=True,
        expect_error="channel",
        notes="send racing a close; some schedules crash the producer")
    add("rendezvous", rendezvous_handshake(2), small=True)

    # -- 89-96: virtual time (timeouts as explorable branches on the
    # deterministic clock; see suite/timed.py) ---------------------------
    add("lease_expiry", lease_expiry(buggy=True), small=True,
        expect_error="assertion",
        notes="seeded steal-without-lease after an acquire timeout")
    add("lease_expiry", lease_expiry(buggy=False), small=True)
    add("heartbeat_watchdog", heartbeat_watchdog(2, buggy=True), small=True,
        expect_error="assertion",
        notes="watchdog deadline racing a live worker's heartbeats")
    add("heartbeat_watchdog", heartbeat_watchdog(2, buggy=False), small=True)
    add("retry_backoff", retry_backoff(2, buggy=True), small=True,
        expect_error="assertion",
        notes="client exhausts timed-lock retries and writes unlocked")
    add("retry_backoff", retry_backoff(2, buggy=False), small=True)
    add("sleepy_pc", sleepy_producer_consumer(2), small=True)
    add("timed_handshake", timed_handshake(2), small=True)

    assert len(entries) == 96, f"registry has {len(entries)} entries, not 96"
    return {b.bench_id: b for b in entries}


REGISTRY: Dict[int, Benchmark] = _build_registry()


def all_benchmarks() -> List[Benchmark]:
    """All 96 suite entries, ordered by id."""
    return [REGISTRY[i] for i in sorted(REGISTRY)]


def small_benchmarks() -> List[Benchmark]:
    """The DFS-exhaustible subset used for ground-truth comparisons."""
    return [b for b in all_benchmarks() if b.small]


def get_benchmark(bench_id: int) -> Benchmark:
    return REGISTRY[bench_id]


def by_family(families: Iterable[str]) -> List[Benchmark]:
    wanted = set(families)
    return [b for b in all_benchmarks() if b.family in wanted]
