"""Shared-collection benchmarks: work queues, a coarse-locked map, a
stripe-locked map, and a Treiber stack."""

from __future__ import annotations

from ..runtime.program import Program, ProgramBuilder


def work_queue_shared(workers: int, items: int) -> Program:
    """One shared queue under a coarse lock; workers drain it.

    Which worker pops which item *matters* (per-worker sums differ), so
    even the lazy HBR keeps the pop-order distinctions: the reduction
    here comes only from the items' payload processing being local.
    """
    total = workers * items

    def build(p: ProgramBuilder) -> None:
        m = p.mutex("m")
        head = p.var("head", 0)
        sums = p.array("sums", [0] * workers)

        def worker(api, me):
            acc = 0
            while True:
                yield api.lock(m)
                h = yield api.read(head)
                if h < total:
                    yield api.write(head, h + 1)
                yield api.unlock(m)
                if h >= total:
                    break
                acc += h + 1
            yield api.write(sums, acc, key=me)

        for me in range(workers):
            p.thread(worker, me)

    return Program(
        f"work_queue_shared_w{workers}_k{items}",
        build,
        description="coarse-locked shared work queue",
    )


def work_queue_private(workers: int, items: int) -> Program:
    """Per-worker queues protected by ONE big lock — the common
    "one lock for everything" anti-pattern.  The critical sections touch
    disjoint data, so the lazy HBR collapses all lock orders."""

    def build(p: ProgramBuilder) -> None:
        m = p.mutex("m")
        heads = p.array("heads", [0] * workers)
        sums = p.array("sums", [0] * workers)

        def worker(api, me):
            acc = 0
            for _ in range(items):
                yield api.lock(m)
                h = yield api.read(heads, key=me)
                yield api.write(heads, h + 1, key=me)
                yield api.unlock(m)
                acc += h + 1
            yield api.write(sums, acc, key=me)

        for me in range(workers):
            p.thread(worker, me)

    return Program(
        f"work_queue_private_w{workers}_k{items}",
        build,
        description="per-worker queues under one coarse lock",
    )


def coarse_dict(threads: int, inserts: int) -> Program:
    """Threads insert disjoint keys into one map under a global lock —
    the final map is schedule-independent, so there is exactly one
    state, one lazy HBR, and many regular HBRs."""

    def build(p: ProgramBuilder) -> None:
        m = p.mutex("m")
        table = p.dict("table")

        def worker(api, me):
            for i in range(inserts):
                key = me * inserts + i
                yield api.lock(m)
                yield api.write(table, key * key, key=key)
                yield api.unlock(m)

        for me in range(threads):
            p.thread(worker, me)

    return Program(
        f"coarse_dict_t{threads}_k{inserts}",
        build,
        description="coarse-locked map, disjoint key inserts",
    )


def striped_map(threads: int, stripes: int = 2) -> Program:
    """A stripe-locked hash map; each thread hammers the stripe of its
    own key plus one shared hot key."""

    def build(p: ProgramBuilder) -> None:
        locks = [p.mutex(f"stripe{s}") for s in range(stripes)]
        table = p.dict("table")
        hot_key = 0

        def worker(api, me):
            own_key = me + 1
            for key in (own_key, hot_key):
                s = key % stripes
                yield api.lock(locks[s])
                old = yield api.read(table, key=key)
                yield api.write(table, (old or 0) + me + 1, key=key)
                yield api.unlock(locks[s])

        for me in range(threads):
            p.thread(worker, me)

    return Program(
        f"striped_map_t{threads}_s{stripes}",
        build,
        description="stripe-locked map with one hot key",
    )


def treiber_stack(threads: int, pushes: int = 1) -> Program:
    """Lock-free Treiber stack: CAS on the top-of-stack pointer, with
    the retry loop exposed to the scheduler.

    Nodes are identified by their value (1-based); ``nexts[v]`` is node
    v's next pointer (0 = nil).  Each thread only ever writes its own
    nodes' next pointers, exactly like the real algorithm, so a failed
    CAS leaves no stray writes behind.  No mutexes at all: the lazy HBR
    coincides with the regular one (a diagonal point)."""
    capacity = threads * pushes + 1

    def build(p: ProgramBuilder) -> None:
        top = p.atomic("top", 0)  # value id of the top node, 0 = empty
        nexts = p.array("nexts", [0] * capacity)

        def worker(api, me):
            for i in range(pushes):
                value = me * pushes + i + 1
                while True:
                    t = yield api.load(top)
                    yield api.write(nexts, t, key=value)
                    ok = yield api.cas(top, t, value)
                    if ok:
                        break

        for me in range(threads):
            p.thread(worker, me)

    return Program(
        f"treiber_stack_t{threads}_k{pushes}",
        build,
        description="Treiber stack pushes via CAS",
    )
