"""Benchmark metadata and shared guest-code helpers."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..runtime.program import Program


@dataclass(frozen=True)
class Benchmark:
    """One suite entry: a program plus evaluation metadata.

    ``small`` marks instances whose full state space is cheap enough for
    exhaustive DFS, used as ground truth in the soundness tests.
    ``expect_error`` names the property violation some schedule of the
    program exhibits (``"deadlock"``, ``"assertion"``, or ``"channel"``
    for channel-misuse crashes; the mapping to error classes lives in
    ``tests/test_bug_finding.py``'s ``EXPECTED_KIND``), or None for
    correct programs.
    """

    bench_id: int
    family: str
    program: Program
    small: bool = False
    expect_error: Optional[str] = None
    notes: str = ""

    @property
    def name(self) -> str:
        return self.program.name


# ---------------------------------------------------------------------------
# Guest-code helpers (composed into thread bodies with `yield from`)

def locked_increment(api, mutex, var, delta=1):
    """lock; var += delta; unlock."""
    yield api.lock(mutex)
    v = yield api.read(var)
    yield api.write(var, v + delta)
    yield api.unlock(mutex)


def locked_read(api, mutex, var):
    """lock; read; unlock; returns the value."""
    yield api.lock(mutex)
    v = yield api.read(var)
    yield api.unlock(mutex)
    return v


def locked_write(api, mutex, var, value, key=None):
    """lock; write; unlock."""
    yield api.lock(mutex)
    yield api.write(var, value, key=key)
    yield api.unlock(mutex)
