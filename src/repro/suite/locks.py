"""Lock-discipline benchmarks: dining philosophers, AB-BA deadlocks,
ticket locks, and readers–writers."""

from __future__ import annotations

from ..runtime.program import Program, ProgramBuilder


def philosophers(n: int, ordered: bool = False) -> Program:
    """Dining philosophers with per-fork mutexes.

    The naive version (every philosopher picks the left fork first) can
    deadlock; ``ordered=True`` applies the standard fix (global fork
    ordering) and is deadlock-free.
    """

    def build(p: ProgramBuilder) -> None:
        forks = [p.mutex(f"fork{i}") for i in range(n)]
        meals = p.array("meals", [0] * n)

        def phil(api, i):
            left, right = forks[i], forks[(i + 1) % n]
            first, second = (left, right)
            if ordered and left.oid > right.oid:
                first, second = (right, left)
            yield api.lock(first)
            yield api.lock(second)
            v = yield api.read(meals, key=i)
            yield api.write(meals, v + 1, key=i)
            yield api.unlock(second)
            yield api.unlock(first)

        for i in range(n):
            p.thread(phil, i)

    suffix = "ordered" if ordered else "naive"
    return Program(
        f"philosophers_n{n}_{suffix}",
        build,
        description=f"dining philosophers ({suffix})",
    )


def lock_order_deadlock(fixed: bool = False) -> Program:
    """The minimal AB-BA deadlock: T0 takes a then b, T1 takes b then a.
    ``fixed=True`` orders both the same way (deadlock-free)."""

    def build(p: ProgramBuilder) -> None:
        a = p.mutex("a")
        b = p.mutex("b")
        x = p.var("x", 0)

        def t0(api):
            yield api.lock(a)
            yield api.lock(b)
            v = yield api.read(x)
            yield api.write(x, v + 1)
            yield api.unlock(b)
            yield api.unlock(a)

        def t1(api):
            first, second = (a, b) if fixed else (b, a)
            yield api.lock(first)
            yield api.lock(second)
            v = yield api.read(x)
            yield api.write(x, v + 10)
            yield api.unlock(second)
            yield api.unlock(first)

        p.thread(t0)
        p.thread(t1)

    return Program(
        f"lock_order_{'fixed' if fixed else 'deadlock'}",
        build,
        description="AB-BA lock ordering" + ("" if fixed else " (deadlocks)"),
    )


def ticket_lock(threads: int) -> Program:
    """A ticket lock built from two atomics; each thread increments a
    shared counter inside the home-grown critical section."""

    def build(p: ProgramBuilder) -> None:
        next_ticket = p.atomic("next_ticket", 0)
        serving = p.var("serving", 0)
        c = p.var("c", 0)

        def worker(api):
            t = yield api.fetch_add(next_ticket, 1)
            yield api.await_value(serving, lambda s, t=t: s == t)
            v = yield api.read(c)
            yield api.write(c, v + 1)
            yield api.write(serving, t + 1)

        for _ in range(threads):
            p.thread(worker)

    return Program(
        f"ticket_lock_t{threads}",
        build,
        description="ticket lock from atomics",
    )


def readers_writers(readers: int, writers: int, rounds: int = 1) -> Program:
    """RWLock-protected shared cell: writers bump it, readers copy it to
    their own slot."""

    def build(p: ProgramBuilder) -> None:
        rw = p.rwlock("rw")
        data = p.var("data", 0)
        seen = p.array("seen", [0] * readers)

        def reader(api, me):
            for _ in range(rounds):
                yield api.rlock(rw)
                v = yield api.read(data)
                yield api.runlock(rw)
                s = yield api.read(seen, key=me)
                yield api.write(seen, s + v, key=me)

        def writer(api):
            for _ in range(rounds):
                yield api.wlock(rw)
                v = yield api.read(data)
                yield api.write(data, v + 1)
                yield api.wunlock(rw)

        for me in range(readers):
            p.thread(reader, me)
        for _ in range(writers):
            p.thread(writer)

    return Program(
        f"readers_writers_r{readers}_w{writers}_k{rounds}",
        build,
        description="reader/writer lock over one cell",
    )
