"""Software mutual-exclusion protocols: Peterson, Dekker, and a tiny
Lamport bakery.

Modelling note.  The runtime's blocking ``await_value`` predicate reads
a *single* location (this keeps the happens-before bookkeeping exact).
These protocols wait on conditions spanning two variables, so each
protocol packs its protocol state (flags + turn) into one shared
variable updated through atomic ``rmw`` events.  The accesses remain
separate events with the same interleavings as the two-variable
formulation under sequential consistency; only the *location* is
shared, which is conservative for POR (more conflicts, never fewer).

Each protocol's critical section increments an occupancy gauge and
asserts it was free — the buggy variants violate the assertion.
"""

from __future__ import annotations

from ..runtime.program import Program, ProgramBuilder


def _set_field(idx, value):
    def apply(old):
        new = list(old)
        new[idx] = value
        return tuple(new), tuple(new)
    return apply


def peterson(buggy: bool = False) -> Program:
    """Peterson's algorithm for two threads.

    State tuple: (flag0, flag1, turn).  The buggy variant omits the
    ``turn`` handover, so both threads can enter the critical section.
    """

    def build(p: ProgramBuilder) -> None:
        st = p.var("st", (False, False, 0))
        gauge = p.var("gauge", 0)
        c = p.var("c", 0)

        def worker(api, me):
            other = 1 - me
            yield api.rmw(st, _set_field(me, True))
            if not buggy:
                yield api.rmw(st, _set_field(2, other))
            yield api.await_value(
                st, lambda s, other=other, me=me: not s[other] or s[2] == me
            )
            # critical section
            g = yield api.read(gauge)
            api.guest_assert(g == 0, "mutual exclusion violated")
            yield api.write(gauge, g + 1)
            v = yield api.read(c)
            yield api.write(c, v + 1)
            yield api.write(gauge, 0)
            # exit protocol
            yield api.rmw(st, _set_field(me, False))

        p.thread(worker, 0)
        p.thread(worker, 1)

    name = "peterson_buggy" if buggy else "peterson"
    return Program(name, build, description="Peterson mutual exclusion")


def dekker(buggy: bool = False) -> Program:
    """Dekker's algorithm (simplified bounded form).

    State tuple: (want0, want1, turn).  The buggy variant skips the
    politeness backoff, allowing both threads into the critical section
    when both want it and ignore the turn.
    """

    def build(p: ProgramBuilder) -> None:
        st = p.var("st", (False, False, 0))
        gauge = p.var("gauge", 0)
        c = p.var("c", 0)

        def worker(api, me):
            other = 1 - me
            yield api.rmw(st, _set_field(me, True))
            if buggy:
                # no backoff: barge straight in once the flag is up
                pass
            else:
                s = yield api.read(st)
                if s[other]:
                    t = s[2]
                    if t != me:
                        yield api.rmw(st, _set_field(me, False))
                        yield api.await_value(st, lambda s, me=me: s[2] == me)
                        yield api.rmw(st, _set_field(me, True))
                    yield api.await_value(
                        st, lambda s, other=other: not s[other]
                    )
            # critical section
            g = yield api.read(gauge)
            api.guest_assert(g == 0, "mutual exclusion violated")
            yield api.write(gauge, g + 1)
            v = yield api.read(c)
            yield api.write(c, v + 1)
            yield api.write(gauge, 0)
            # exit: hand over the turn, drop the flag
            yield api.rmw(st, _set_field(2, other))
            yield api.rmw(st, _set_field(me, False))

        p.thread(worker, 0)
        p.thread(worker, 1)

    name = "dekker_buggy" if buggy else "dekker"
    return Program(name, build, description="Dekker mutual exclusion")


def bakery(threads: int = 2) -> Program:
    """Lamport's bakery for a small fixed thread count.

    State tuple: tickets per thread (0 = not competing).  ``choosing``
    flags are folded away by taking the ticket with one atomic rmw —
    Lamport's algorithm without the choosing flag is correct when
    ticket-taking is atomic.
    """

    def build(p: ProgramBuilder) -> None:
        tickets = p.var("tickets", (0,) * threads)
        gauge = p.var("gauge", 0)
        c = p.var("c", 0)

        def take_ticket(me):
            def apply(old):
                new = list(old)
                new[me] = max(old) + 1
                return tuple(new), tuple(new)
            return apply

        def my_turn(s, me):
            mine = s[me]
            for j, t in enumerate(s):
                if j == me or t == 0:
                    continue
                if (t, j) < (mine, me):
                    return False
            return True

        def worker(api, me):
            yield api.rmw(tickets, take_ticket(me))
            yield api.await_value(tickets, lambda s, me=me: my_turn(s, me))
            g = yield api.read(gauge)
            api.guest_assert(g == 0, "mutual exclusion violated")
            yield api.write(gauge, g + 1)
            v = yield api.read(c)
            yield api.write(c, v + 1)
            yield api.write(gauge, 0)
            yield api.rmw(tickets, _set_field(me, 0))

        for me in range(threads):
            p.thread(worker, me)

    return Program(
        f"bakery_t{threads}", build, description="Lamport bakery (atomic tickets)"
    )
