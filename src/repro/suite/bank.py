"""Bank-account transfer benchmarks: global lock, per-account locks,
and a racy variant whose balance invariant some schedules break."""

from __future__ import annotations

from ..runtime.program import Program, ProgramBuilder


def _transfers_for(threads: int, accounts: int):
    """Deterministic transfer list per thread: (src, dst, amount)."""
    plans = []
    for tid in range(threads):
        src = tid % accounts
        dst = (tid + 1) % accounts
        plans.append((src, dst, 10 + tid))
    return plans


def bank_global_lock(threads: int, accounts: int = 2) -> Program:
    """Transfers under a single coarse lock, plus a final audit thread
    asserting conservation of money.

    Because every transfer touches shared balances, the data conflicts
    persist in the lazy HBR; the coarse lock adds *extra* mutex edges
    for the disjoint transfers, which the lazy HBR removes.
    """
    initial = 100
    plans = _transfers_for(threads, accounts)

    def build(p: ProgramBuilder) -> None:
        m = p.mutex("bank")
        balances = p.array("balances", [initial] * accounts)

        def transfer(api, src, dst, amount):
            yield api.lock(m)
            s = yield api.read(balances, key=src)
            yield api.write(balances, s - amount, key=src)
            d = yield api.read(balances, key=dst)
            yield api.write(balances, d + amount, key=dst)
            yield api.unlock(m)

        def auditor(api):
            yield api.lock(m)
            total = 0
            for a in range(accounts):
                v = yield api.read(balances, key=a)
                total += v
            yield api.unlock(m)
            api.guest_assert(
                total == initial * accounts,
                f"money not conserved: {total}",
            )

        for src, dst, amount in plans:
            p.thread(transfer, src, dst, amount)
        p.thread(auditor)

    return Program(
        f"bank_global_t{threads}_a{accounts}",
        build,
        description="bank transfers under one global lock + audit",
    )


def bank_per_account(threads: int, accounts: int = 3) -> Program:
    """Fine-grained locking: each transfer takes the two account locks
    in index order (deadlock-free)."""
    initial = 100
    plans = _transfers_for(threads, accounts)

    def build(p: ProgramBuilder) -> None:
        locks = [p.mutex(f"acct{a}") for a in range(accounts)]
        balances = p.array("balances", [initial] * accounts)

        def transfer(api, src, dst, amount):
            first, second = min(src, dst), max(src, dst)
            yield api.lock(locks[first])
            yield api.lock(locks[second])
            s = yield api.read(balances, key=src)
            yield api.write(balances, s - amount, key=src)
            d = yield api.read(balances, key=dst)
            yield api.write(balances, d + amount, key=dst)
            yield api.unlock(locks[second])
            yield api.unlock(locks[first])

        for src, dst, amount in plans:
            p.thread(transfer, src, dst, amount)

    return Program(
        f"bank_per_account_t{threads}_a{accounts}",
        build,
        description="bank transfers with ordered per-account locks",
    )


def bank_racy(threads: int = 2, accounts: int = 2) -> Program:
    """Transfers with NO locking: lost updates break conservation, so
    the audit assertion fails on some schedules (a bug SCT must find)."""
    initial = 100
    plans = _transfers_for(threads, accounts)

    def build(p: ProgramBuilder) -> None:
        balances = p.array("balances", [initial] * accounts)
        done = p.atomic("done", 0)

        def transfer(api, src, dst, amount):
            s = yield api.read(balances, key=src)
            yield api.write(balances, s - amount, key=src)
            d = yield api.read(balances, key=dst)
            yield api.write(balances, d + amount, key=dst)
            yield api.fetch_add(done, 1)

        def auditor(api):
            yield api.await_value(done, lambda v: v == threads)
            total = 0
            for a in range(accounts):
                v = yield api.read(balances, key=a)
                total += v
            api.guest_assert(
                total == initial * accounts,
                f"money not conserved: {total}",
            )

        for src, dst, amount in plans:
            p.thread(transfer, src, dst, amount)
        p.thread(auditor)

    return Program(
        f"bank_racy_t{threads}_a{accounts}",
        build,
        description="unlocked bank transfers (assertion violable)",
    )
