"""Synchronisation-pattern benchmarks: barrier phases, semaphore pools,
token rings, double-checked locking, litmus tests, spawn/join trees and
condvar broadcast."""

from __future__ import annotations

from ..runtime.program import Program, ProgramBuilder


def barrier_phases(threads: int, phases: int) -> Program:
    """SPMD-style computation: in each phase every thread reads its left
    neighbour's previous value, then all meet at a barrier."""

    def build(p: ProgramBuilder) -> None:
        b = p.barrier("b", threads)
        cells = p.array("cells", list(range(threads)))
        scratch = p.array("scratch", [0] * threads)

        def worker(api, me):
            left = (me - 1) % threads
            for _ in range(phases):
                v = yield api.read(cells, key=left)
                yield api.write(scratch, v + 1, key=me)
                yield api.barrier_wait(b)
                s = yield api.read(scratch, key=me)
                yield api.write(cells, s, key=me)
                yield api.barrier_wait(b)

        for me in range(threads):
            p.thread(worker, me)

    return Program(
        f"barrier_phases_t{threads}_p{phases}",
        build,
        description="neighbour exchange with barrier phases",
    )


def semaphore_pool(threads: int, permits: int) -> Program:
    """A resource pool guarded by a counting semaphore; each thread
    takes a permit, bumps its own usage slot, and returns the permit."""

    def build(p: ProgramBuilder) -> None:
        sem = p.semaphore("pool", permits)
        used = p.array("used", [0] * threads)

        def worker(api, me):
            yield api.sem_acquire(sem)
            v = yield api.read(used, key=me)
            yield api.write(used, v + 1, key=me)
            yield api.sem_release(sem)

        for me in range(threads):
            p.thread(worker, me)

    return Program(
        f"semaphore_pool_t{threads}_p{permits}",
        build,
        description="counting-semaphore resource pool",
    )


def token_ring(threads: int, laps: int = 1) -> Program:
    """A token circulates: thread i waits for token == i, works, passes
    it on.  Fully sequentialised — one state, one schedule class."""

    def build(p: ProgramBuilder) -> None:
        token = p.var("token", 0)
        work = p.array("work", [0] * threads)

        def worker(api, me):
            for lap in range(laps):
                target = lap * threads + me
                yield api.await_value(token, lambda t, target=target: t == target)
                w = yield api.read(work, key=me)
                yield api.write(work, w + 1, key=me)
                yield api.write(token, target + 1)

        for me in range(threads):
            p.thread(worker, me)

    return Program(
        f"token_ring_t{threads}_l{laps}",
        build,
        description="token passing ring via awaits",
    )


def double_checked_locking(readers: int, buggy: bool = False) -> Program:
    """Lazy initialisation.  The correct variant re-checks under the
    lock; the buggy variant publishes the "initialised" flag *before*
    filling the payload, so a reader can observe a half-built object."""

    def build(p: ProgramBuilder) -> None:
        m = p.mutex("m")
        ready = p.var("ready", 0)
        payload = p.var("payload", 0)

        def reader(api, me):
            r = yield api.read(ready)
            if not r:
                yield api.lock(m)
                r = yield api.read(ready)
                if not r:
                    if buggy:
                        yield api.write(ready, 1)
                        yield api.write(payload, 42)
                    else:
                        yield api.write(payload, 42)
                        yield api.write(ready, 1)
                yield api.unlock(m)
                v = yield api.read(payload)
            else:
                v = yield api.read(payload)
            api.guest_assert(v == 42, "observed uninitialised payload")

        for me in range(readers):
            p.thread(reader, me)

    name = f"dcl_{'buggy' if buggy else 'ok'}_r{readers}"
    return Program(name, build, description="double-checked locking")


def store_buffer_litmus() -> Program:
    """The SB litmus test: under sequential consistency (which this
    runtime provides) at least one thread must see the other's write,
    so (r0, r1) == (0, 0) is unreachable — asserted."""

    def build(p: ProgramBuilder) -> None:
        x = p.var("x", 0)
        y = p.var("y", 0)
        r = p.array("r", [-1, -1])
        done = p.atomic("done", 0)

        def t0(api):
            yield api.write(x, 1)
            v = yield api.read(y)
            yield api.write(r, v, key=0)
            yield api.fetch_add(done, 1)

        def t1(api):
            yield api.write(y, 1)
            v = yield api.read(x)
            yield api.write(r, v, key=1)
            yield api.fetch_add(done, 1)

        def checker(api):
            yield api.await_value(done, lambda d: d == 2)
            a = yield api.read(r, key=0)
            b = yield api.read(r, key=1)
            api.guest_assert(a == 1 or b == 1, "SB: both threads read 0")

        p.thread(t0)
        p.thread(t1)
        p.thread(checker)

    return Program("store_buffer_litmus", build,
                   description="SB litmus under sequential consistency")


def message_passing_litmus() -> Program:
    """MP litmus: consumer awaits the flag, then must see the data."""

    def build(p: ProgramBuilder) -> None:
        data = p.var("data", 0)
        flag = p.var("flag", 0)

        def producer(api):
            yield api.write(data, 42)
            yield api.write(flag, 1)

        def consumer(api):
            yield api.await_value(flag, lambda f: f == 1)
            v = yield api.read(data)
            api.guest_assert(v == 42, "MP: stale data after flag")

        p.thread(producer)
        p.thread(consumer)

    return Program("message_passing_litmus", build,
                   description="MP litmus under sequential consistency")


def spawn_join_tree(width: int) -> Program:
    """A main thread spawns ``width`` children and joins them in order;
    children fill disjoint slots."""

    def build(p: ProgramBuilder) -> None:
        out = p.array("out", [0] * width)

        def child(api, me):
            yield api.write(out, me + 1, key=me)

        def main(api):
            kids = []
            for i in range(width):
                tid = yield api.spawn(child, i)
                kids.append(tid)
            for tid in kids:
                yield api.join(tid)

        p.thread(main)

    return Program(f"spawn_join_tree_w{width}", build,
                   description="dynamic spawn/join fan-out")


def condvar_broadcast(waiters: int) -> Program:
    """One announcer notifies all waiters; each waiter re-checks its
    predicate (monitor discipline) and records what it saw."""

    def build(p: ProgramBuilder) -> None:
        m = p.mutex("m")
        cv = p.condition("cv")
        announced = p.var("announced", 0)
        seen = p.array("seen", [0] * waiters)

        def waiter(api, me):
            yield api.lock(m)
            while True:
                a = yield api.read(announced)
                if a:
                    break
                yield api.wait(cv, m)
            yield api.unlock(m)
            yield api.write(seen, a, key=me)

        def announcer(api):
            yield api.lock(m)
            yield api.write(announced, 1)
            yield api.notify_all(cv)
            yield api.unlock(m)

        for me in range(waiters):
            p.thread(waiter, me)
        p.thread(announcer)

    return Program(f"condvar_broadcast_w{waiters}", build,
                   description="notify_all broadcast to waiters")


def flags_handshake() -> Program:
    """Two-phase flag handshake: each side raises its flag, awaits the
    peer's, and then both proceed — a pure await/visibility pattern."""

    def build(p: ProgramBuilder) -> None:
        fa = p.var("fa", 0)
        fb = p.var("fb", 0)
        out = p.array("out", [0, 0])

        def left(api):
            yield api.write(fa, 1)
            yield api.await_value(fb, lambda v: v == 1)
            yield api.write(out, 1, key=0)

        def right(api):
            yield api.write(fb, 1)
            yield api.await_value(fa, lambda v: v == 1)
            yield api.write(out, 1, key=1)

        p.thread(left)
        p.thread(right)

    return Program("flags_handshake", build,
                   description="symmetric flag handshake")
