"""Producer/consumer patterns: bounded buffer, condvar ping-pong, and a
semaphore pipeline."""

from __future__ import annotations

from ..runtime.program import Program, ProgramBuilder


def bounded_buffer(producers: int, consumers: int, items: int, capacity: int) -> Program:
    """The classic monitor-style bounded buffer.

    Each producer deposits ``items`` values; consumers drain the buffer
    (total items split round-robin between consumers).  Uses one mutex
    and two condition variables (not_full / not_empty).
    """
    total = producers * items
    per_consumer, rem = divmod(total, consumers)

    def build(p: ProgramBuilder) -> None:
        m = p.mutex("m")
        not_full = p.condition("not_full")
        not_empty = p.condition("not_empty")
        buf = p.array("buf", [0] * capacity)
        count = p.var("count", 0)
        put_idx = p.var("put_idx", 0)
        take_idx = p.var("take_idx", 0)
        sums = p.array("sums", [0] * consumers)

        def producer(api, me):
            for i in range(items):
                value = me * items + i + 1
                yield api.lock(m)
                while True:
                    c = yield api.read(count)
                    if c < capacity:
                        break
                    yield api.wait(not_full, m)
                idx = yield api.read(put_idx)
                yield api.write(buf, value, key=idx)
                yield api.write(put_idx, (idx + 1) % capacity)
                yield api.write(count, c + 1)
                yield api.notify(not_empty)
                yield api.unlock(m)

        def consumer(api, me, n):
            acc = 0
            for _ in range(n):
                yield api.lock(m)
                while True:
                    c = yield api.read(count)
                    if c > 0:
                        break
                    yield api.wait(not_empty, m)
                idx = yield api.read(take_idx)
                v = yield api.read(buf, key=idx)
                yield api.write(take_idx, (idx + 1) % capacity)
                yield api.write(count, c - 1)
                yield api.notify(not_full)
                yield api.unlock(m)
                acc += v
            yield api.write(sums, acc, key=me)

        for me in range(producers):
            p.thread(producer, me)
        for me in range(consumers):
            n = per_consumer + (1 if me < rem else 0)
            p.thread(consumer, me, n)

    return Program(
        f"bounded_buffer_p{producers}_c{consumers}_k{items}_cap{capacity}",
        build,
        description="monitor bounded buffer with two condvars",
    )


def pingpong(rounds: int) -> Program:
    """Two threads alternate strictly via a condvar-protected turn flag."""

    def build(p: ProgramBuilder) -> None:
        m = p.mutex("m")
        cv = p.condition("cv")
        turn = p.var("turn", 0)
        hits = p.array("hits", [0, 0])

        def player(api, me):
            for _ in range(rounds):
                yield api.lock(m)
                while True:
                    t = yield api.read(turn)
                    if t == me:
                        break
                    yield api.wait(cv, m)
                h = yield api.read(hits, key=me)
                yield api.write(hits, h + 1, key=me)
                yield api.write(turn, 1 - me)
                yield api.notify(cv)
                yield api.unlock(m)

        p.thread(player, 0)
        p.thread(player, 1)

    return Program(
        f"pingpong_r{rounds}",
        build,
        description="strict alternation via condition variable",
    )


def pipeline(stages: int, items: int) -> Program:
    """A chain of stages passing tokens via semaphores.

    Stage ``i`` acquires its input semaphore, transforms a shared cell,
    and releases the next stage's semaphore.
    """

    def build(p: ProgramBuilder) -> None:
        sems = [
            p.semaphore(f"s{i}", items if i == 0 else 0) for i in range(stages)
        ]
        done = p.semaphore("done", 0)
        cell = p.var("cell", 0)
        work = p.array("work", [0] * stages)

        def stage(api, i):
            for _ in range(items):
                yield api.sem_acquire(sems[i])
                v = yield api.read(cell)
                yield api.write(cell, v + 1)
                w = yield api.read(work, key=i)
                yield api.write(work, w + 1, key=i)
                if i + 1 < stages:
                    yield api.sem_release(sems[i + 1])
                else:
                    yield api.sem_release(done)

        for i in range(stages):
            p.thread(stage, i)

    return Program(
        f"pipeline_s{stages}_k{items}",
        build,
        description="semaphore-linked processing pipeline",
    )
