"""Extension workloads beyond the 79-instance registry.

These programs serve three purposes: classic synchronisation-theory
exercises that stress corners the registry does not (multi-party
condvar protocols, generalised rendezvous), *scaled* instances used by
the stress benchmarks (where the schedule budget must be binding, as in
the paper's larger Java programs), and a seqlock — a lock-free reader
protocol whose benign races the race detector must still flag.
"""

from __future__ import annotations

from ..runtime.program import Program, ProgramBuilder


def sleeping_barber(customers: int, chairs: int = 1) -> Program:
    """The sleeping-barber problem (Dijkstra) with semaphores.

    ``customers`` arrive; at most ``chairs`` wait; excess customers are
    turned away (recorded).  The barber serves exactly the admitted
    customers and then is shut down via a poison pill.
    """

    def build(p: ProgramBuilder) -> None:
        m = p.mutex("m")
        waiting = p.var("waiting", 0)
        ready = p.semaphore("ready", 0)       # customers ready to be served
        done = p.semaphore("done", 0)         # haircut finished handshake
        served = p.var("served", 0)
        turned_away = p.var("turned_away", 0)
        admitted = p.var("admitted", 0)

        def customer(api, me):
            yield api.lock(m)
            w = yield api.read(waiting)
            if w < chairs:
                yield api.write(waiting, w + 1)
                a = yield api.read(admitted)
                yield api.write(admitted, a + 1)
                yield api.unlock(m)
                yield api.sem_release(ready)
                yield api.sem_acquire(done)
            else:
                t = yield api.read(turned_away)
                yield api.write(turned_away, t + 1)
                yield api.unlock(m)

        def barber(api):
            while True:
                yield api.sem_acquire(ready)
                yield api.lock(m)
                w = yield api.read(waiting)
                yield api.write(waiting, w - 1)
                s = yield api.read(served)
                yield api.write(served, s + 1)
                yield api.unlock(m)
                yield api.sem_release(done)
                # shut down once every customer is accounted for
                yield api.lock(m)
                s = yield api.read(served)
                t = yield api.read(turned_away)
                yield api.unlock(m)
                if s + t >= customers and s >= 1:
                    a = yield api.read(admitted)
                    if s >= a and s + t >= customers:
                        break

        for me in range(customers):
            p.thread(customer, me)
        p.thread(barber)

    return Program(
        f"sleeping_barber_c{customers}_ch{chairs}",
        build,
        description="sleeping barber with bounded waiting room",
    )


def cigarette_smokers(rounds: int = 1) -> Program:
    """The cigarette-smokers problem: an agent repeatedly offers one of
    three ingredient pairs; exactly the matching smoker may smoke.
    Modelled with one await-guarded offer slot (0 = none, 1..3 = which
    smoker's pair is on the table)."""

    def build(p: ProgramBuilder) -> None:
        table = p.var("table", 0)   # 0 empty, k = offer for smoker k
        smoked = p.array("smoked", [0, 0, 0])

        def agent(api):
            for r in range(rounds * 3):
                offer = (r % 3) + 1
                yield api.await_value(table, lambda t: t == 0)
                yield api.write(table, offer)

        def smoker(api, k):
            for _ in range(rounds):
                yield api.await_value(table, lambda t, k=k: t == k)
                s = yield api.read(smoked, key=k - 1)
                yield api.write(smoked, s + 1, key=k - 1)
                yield api.write(table, 0)

        p.thread(agent)
        for k in (1, 2, 3):
            p.thread(smoker, k)

    return Program(
        f"cigarette_smokers_r{rounds}",
        build,
        description="cigarette smokers via guarded offers",
    )


def h2o(molecules: int = 1) -> Program:
    """The H2O rendezvous: hydrogen and oxygen threads group 2H+1O.

    Uses a shared counter tuple updated by RMW plus awaits — each atom
    waits until a full molecule including itself is formable, then
    bonds; the molecule counter advances when the last atom bonds.
    """
    n_h, n_o = 2 * molecules, molecules

    def build(p: ProgramBuilder) -> None:
        # state: (h_arrived, o_arrived, bonded)
        st = p.var("st", (0, 0, 0))
        bonds = p.atomic("bonds", 0)

        def arrive(kind):
            def apply(old):
                h, o, b = old
                if kind == "h":
                    h += 1
                else:
                    o += 1
                return (h, o, b), (h, o, b)
            return apply

        def hydrogen(api):
            yield api.rmw(st, arrive("h"))
            # wait until at least one full molecule is present
            yield api.await_value(st, lambda s: s[0] >= 2 and s[1] >= 1)
            yield api.fetch_add(bonds, 1)

        def oxygen(api):
            yield api.rmw(st, arrive("o"))
            yield api.await_value(st, lambda s: s[0] >= 2 and s[1] >= 1)
            yield api.fetch_add(bonds, 1)

        for _ in range(n_h):
            p.thread(hydrogen)
        for _ in range(n_o):
            p.thread(oxygen)

    return Program(
        f"h2o_m{molecules}",
        build,
        description="H2O rendezvous (relaxed bonding order)",
    )


def seqlock(readers: int = 1, writes: int = 1) -> Program:
    """A seqlock: the writer increments a sequence counter around its
    updates; readers retry while the sequence is odd or changed.

    The reader's unsynchronised data reads race with the writer by
    design (the protocol tolerates them) — the canonical example of a
    *benign* race that HB race detection must still report.
    """

    def build(p: ProgramBuilder) -> None:
        seq = p.atomic("seq", 0)
        d1 = p.var("d1", 0)
        d2 = p.var("d2", 0)
        out = p.array("out", [0] * readers)

        def writer(api):
            for i in range(writes):
                s = yield api.load(seq)
                yield api.store(seq, s + 1)      # odd: write in progress
                yield api.write(d1, i + 1)
                yield api.write(d2, i + 1)
                yield api.store(seq, s + 2)      # even: stable

        def reader(api, me):
            while True:
                s1 = yield api.load(seq)
                if s1 % 2:
                    yield api.await_value(seq, lambda s, s1=s1: s != s1)
                    continue
                a = yield api.read(d1)
                b = yield api.read(d2)
                s2 = yield api.load(seq)
                if s1 == s2:
                    api.guest_assert(a == b, "torn seqlock read")
                    yield api.write(out, a, key=me)
                    break

        p.thread(writer)
        for me in range(readers):
            p.thread(reader, me)

    return Program(
        f"seqlock_r{readers}_w{writes}",
        build,
        description="seqlock with retrying readers",
    )


def stress_work_queue(workers: int = 2, items: int = 4) -> Program:
    """Scaled coarse-locked work queue used by the Figure 3 stress
    benchmark (budget-binding, many lazy HBRs)."""
    from .collections_prog import work_queue_shared

    return work_queue_shared(workers, items)
