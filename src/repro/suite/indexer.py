"""The *indexer* and *file system* benchmarks from the original DPOR
paper (Flanagan & Godefroid, POPL 2005), scaled to SCT-friendly sizes.

Both are classics because naive exploration explodes while the actual
conflicts are rare and data-dependent — exactly what *dynamic* POR
detects at runtime.
"""

from __future__ import annotations

from ..runtime.program import Program, ProgramBuilder


def indexer(threads: int, entries: int = 2, table_size: int = 8,
            mult: int = 7) -> Program:
    """Threads insert into a shared hash table with open addressing.

    Each thread ``tid`` inserts messages ``tid*entries + i`` at hash
    ``(msg * mult) % table_size``.  With ``mult`` coprime to the table
    size the hashes are collision-free (threads fully independent, the
    ideal DPOR case); an even ``mult`` over a power-of-two table forces
    collisions and CAS retries.  Termination requires
    ``threads * entries <= table_size``.
    """
    if threads * entries > table_size:
        raise ValueError("table too small: inserts would never terminate")

    def build(p: ProgramBuilder) -> None:
        table = p.array("table", [0] * table_size)

        def cas_slot(expect, new):
            def apply(old):
                if old == expect:
                    return new, True
                return old, False
            return apply

        def worker(api, tid):
            for i in range(entries):
                msg = tid * entries + i + 1
                h = (msg * mult) % table_size
                while True:
                    ok = yield api.rmw(table, cas_slot(0, msg), key=h)
                    if ok:
                        break
                    h = (h + 1) % table_size

        for tid in range(threads):
            p.thread(worker, tid)

    return Program(
        f"indexer_t{threads}_w{entries}_h{table_size}_m{mult}",
        build,
        description="DPOR-paper indexer: hash table with CAS insertion",
    )


def filesystem(threads: int, inodes: int = 2, blocks: int = 4) -> Program:
    """Threads allocate a disk block for their inode under two levels of
    locking (per-inode lock, then per-block lock)."""

    def build(p: ProgramBuilder) -> None:
        locki = [p.mutex(f"locki{i}") for i in range(inodes)]
        lockb = [p.mutex(f"lockb{b}") for b in range(blocks)]
        inode = p.array("inode", [0] * inodes)
        busy = p.array("busy", [0] * blocks)

        def worker(api, tid):
            i = tid % inodes
            yield api.lock(locki[i])
            v = yield api.read(inode, key=i)
            if v == 0:
                b = (i * 2) % blocks
                while True:
                    yield api.lock(lockb[b])
                    is_busy = yield api.read(busy, key=b)
                    if not is_busy:
                        yield api.write(busy, 1, key=b)
                        yield api.write(inode, b + 1, key=i)
                        yield api.unlock(lockb[b])
                        break
                    yield api.unlock(lockb[b])
                    b = (b + 1) % blocks
            yield api.unlock(locki[i])

        for tid in range(threads):
            p.thread(worker, tid)

    return Program(
        f"filesystem_t{threads}_i{inodes}_b{blocks}",
        build,
        description="DPOR-paper file system: inode/block allocation",
    )
