"""The paper's running example (Figure 1).

T1: lock(m); read(x); unlock(m); write(y)
T2: write(z); lock(m); read(x); unlock(m)

Two HBR equivalence classes (the two lock orders), but a single lazy
HBR class — the critical sections only *read* x, so removing the mutex
edges leaves no inter-thread ordering at all.
"""

from __future__ import annotations

from ..runtime.program import Program, ProgramBuilder


def _build(p: ProgramBuilder) -> None:
    m = p.mutex("m")
    x = p.var("x", 0)
    y = p.var("y", 0)
    z = p.var("z", 0)

    def t1(api):
        yield api.lock(m)
        v = yield api.read(x)
        yield api.unlock(m)
        yield api.write(y, v + 1)

    def t2(api):
        yield api.write(z, 7)
        yield api.lock(m)
        yield api.read(x)
        yield api.unlock(m)

    p.thread(t1, name="T1")
    p.thread(t2, name="T2")


def figure1() -> Program:
    """The exact program of the paper's Figure 1."""
    return Program(
        "figure1",
        _build,
        description="Paper Figure 1: coarse read-only critical sections",
    )
