"""Virtual-time scenarios: leases, watchdogs, retries and timed
message passing.

These programs exercise the deterministic virtual clock (DESIGN.md
§12): every ``timeout=`` below is an explorable scheduling branch —
the explorers enumerate both "the base operation won" and "the
deadline fired first" orderings, never a wall-clock race.  The seeded
bugs are the classic distributed-systems failure shapes that only
exist *because* of timeouts: acting on a lease the holder still
believes it owns, declaring a live worker dead, and giving up on a
lock but writing anyway.
"""

from __future__ import annotations

from functools import partial

from ..core.events import TIMED_OUT
from ..runtime.program import Program, ProgramBuilder


def _at_least(n, value) -> bool:
    """Module-level predicate (awaited ops must survive snapshots)."""
    return value >= n


def lease_expiry(buggy: bool = False) -> Program:
    """A lease-expiry race: the holder works under the lease while a
    contender's timed acquire expires.

    The buggy variant commits the textbook sin — after the acquire
    times out it assumes the holder crashed and writes ownership
    *without* the lease, so schedules where the deadline fires inside
    the holder's critical section fail the holder's ownership check.
    The fixed variant falls back to an untimed acquire.
    """

    def build(p: ProgramBuilder) -> None:
        lease = p.mutex("lease")
        owner = p.var("owner", 0)
        committed = p.var("committed", 0)

        def holder(api):
            yield api.lock(lease)
            yield api.write(owner, 1)
            yield api.sleep(0.05)  # works while holding the lease
            o = yield api.read(owner)
            api.guest_assert(o == 1, "lease stolen while still held")
            yield api.write(committed, 1)
            yield api.unlock(lease)

        def contender(api):
            got = yield api.lock(lease, timeout=0.02)
            if got is False:
                if buggy:
                    # "the holder must be dead": writes without the lease
                    yield api.write(owner, 2)
                else:
                    yield api.lock(lease)
                    yield api.write(owner, 2)
                    yield api.unlock(lease)
            else:
                yield api.write(owner, 2)
                yield api.unlock(lease)

        p.thread(holder)
        p.thread(contender)

    tag = "buggy" if buggy else "ok"
    return Program(
        f"lease_expiry_{tag}",
        build,
        description="timed lock acquire racing the lease holder"
        + (" with a seeded steal-without-lease bug" if buggy else ""),
    )


def heartbeat_watchdog(beats: int = 2, buggy: bool = False) -> Program:
    """A periodic heartbeat timer monitored by a watchdog with a timed
    await.

    The buggy variant asserts the watchdog's deadline can never fire
    before all heartbeats land — but the timeout branch is explorable
    whenever the counter is still low, so the explorers find the
    schedule where a live worker is declared dead.  The fixed variant
    records the alarm and keeps waiting.
    """

    def build(p: ProgramBuilder) -> None:
        hb = p.atomic("hb", 0)
        alarms = p.var("alarms", 0)

        def beat(api):
            yield api.fetch_add(hb, 1)

        def watchdog(api):
            got = yield api.await_value(
                hb, partial(_at_least, beats), timeout=0.05
            )
            if buggy:
                api.guest_assert(
                    got is not False,
                    "watchdog declared a live worker dead",
                )
            elif got is False:
                yield api.write(alarms, 1)
                yield api.await_value(hb, partial(_at_least, beats))

        p.timer(beat, period=0.01, count=beats)
        p.thread(watchdog)

    tag = "buggy" if buggy else "ok"
    return Program(
        f"heartbeat_watchdog_b{beats}_{tag}",
        build,
        description="timed await racing a periodic heartbeat timer"
        + (" with a seeded live-worker-declared-dead bug" if buggy else ""),
    )


def retry_backoff(clients: int = 2, buggy: bool = False) -> Program:
    """A retry-with-backoff storm: clients loop over timed lock
    acquires with growing virtual sleeps between attempts.

    The buggy variant gives up after its retries and performs the
    increment *unlocked* — a lost update the auditor's conservation
    assertion catches.  The fixed variant falls back to an untimed
    acquire after the storm.
    """

    def build(p: ProgramBuilder) -> None:
        m = p.mutex("m")
        count = p.var("count", 0)

        def client(api, me):
            backoff = 0.01
            for _attempt in range(2):
                got = yield api.lock(m, timeout=backoff)
                if got is not False:
                    c = yield api.read(count)
                    yield api.write(count, c + 1)
                    yield api.unlock(m)
                    return
                yield api.sleep(backoff)
                backoff *= 2
            if buggy:
                # retries exhausted; increments without the lock
                c = yield api.read(count)
                yield api.write(count, c + 1)
            else:
                yield api.lock(m)
                c = yield api.read(count)
                yield api.write(count, c + 1)
                yield api.unlock(m)

        def auditor(api):
            for t in range(clients):
                yield api.join(t)
            c = yield api.read(count)
            api.guest_assert(c == clients, "retry storm lost an update")

        for me in range(clients):
            p.thread(client, me)
        p.thread(auditor)

    tag = "buggy" if buggy else "ok"
    return Program(
        f"retry_backoff_c{clients}_{tag}",
        build,
        description="timed-lock retry storm with virtual backoff sleeps"
        + (" and a seeded unlocked give-up write" if buggy else ""),
    )


def sleepy_producer_consumer(items: int = 2) -> Program:
    """A producer that sleeps between sends feeding a consumer that
    polls with a timed receive (one timed attempt per item, then an
    untimed fallback, so every schedule terminates).  Conservation
    holds on every schedule — the timed branches add orderings, not
    outcomes."""

    def build(p: ProgramBuilder) -> None:
        ch = p.channel("ch", 1)
        out = p.var("out", 0)

        def producer(api):
            for i in range(items):
                yield api.sleep(0.01)
                yield api.chan_send(ch, i + 1)

        def consumer(api):
            acc = 0
            for _ in range(items):
                v = yield api.chan_recv(ch, timeout=0.03)
                if v is TIMED_OUT:
                    v = yield api.chan_recv(ch)
                acc += v
            yield api.write(out, acc)
            api.guest_assert(
                acc == items * (items + 1) // 2,
                "sleepy producer-consumer lost an item",
            )

        p.thread(producer)
        p.thread(consumer)

    return Program(
        f"sleepy_pc_k{items}",
        build,
        description="sleeping producer vs timed-recv polling consumer",
    )


def timed_handshake(rounds: int = 2) -> Program:
    """Request/response over rendezvous channels where both sides use
    timed operations with untimed fallbacks.  Strict alternation still
    holds (each reply echoes the client's own request) — timeouts on a
    rendezvous add retry orderings but cannot reorder the handshake."""

    def build(p: ProgramBuilder) -> None:
        req = p.channel("req", 0)
        rsp = p.channel("rsp", 0)
        out = p.var("out", 0)

        def server(api):
            for _ in range(rounds):
                v = yield api.chan_recv(req, timeout=0.02)
                if v is TIMED_OUT:
                    v = yield api.chan_recv(req)
                yield api.chan_send(rsp, v * 10)

        def client(api):
            acc = 0
            for i in range(rounds):
                got = yield api.chan_send(req, i + 1, timeout=0.02)
                if got is TIMED_OUT:
                    yield api.chan_send(req, i + 1)
                r = yield api.chan_recv(rsp)
                api.guest_assert(
                    r == (i + 1) * 10, "handshake echoed a stale request"
                )
                acc += r
            yield api.write(out, acc)

        p.thread(server)
        p.thread(client)

    return Program(
        f"timed_handshake_r{rounds}",
        build,
        description="rendezvous handshake with timed send/recv retries",
    )
