"""repro — reproduction of *The Lazy Happens-Before Relation: Better
Partial-Order Reduction for Systematic Concurrency Testing* (Thomson &
Donaldson, PPoPP 2015).

The package provides:

* :mod:`repro.runtime` — a deterministic systematic-concurrency-testing
  substrate: guest programs written as generators, executed one visible
  operation at a time under a pluggable scheduler;
* :mod:`repro.core` — the regular and lazy happens-before relations,
  computed online via dual vector clocks, with canonical fingerprints;
* :mod:`repro.explore` — exploration strategies: exhaustive DFS,
  Flanagan–Godefroid DPOR, HBR caching, the paper's lazy HBR caching,
  a lazy-DPOR prototype (the paper's future work), plus random, PCT and
  preemption-bounded baselines;
* :mod:`repro.suite` — 79 benchmark program instances mirroring the
  paper's benchmark collection;
* :mod:`repro.analysis` — harnesses that regenerate the paper's
  Figure 2, Figure 3 and the state-counting inequality.

Quickstart::

    from repro import Program, execute
    from repro.explore import DPORExplorer

    def build(p):
        m = p.mutex("m")
        x, y = p.var("x", 0), p.var("y", 0)
        def t1(api):
            yield api.lock(m)
            v = yield api.read(x)
            yield api.unlock(m)
            yield api.write(y, v + 1)
        p.thread(t1)
        p.thread(t1)

    program = Program("demo", build)
    stats = DPORExplorer(program).run()
    print(stats.num_schedules, stats.num_hbrs, stats.num_lazy_hbrs)
"""

from .core import (
    DualClockEngine,
    Event,
    FingerprintCache,
    Op,
    OpKind,
    PartialOrder,
    VectorClock,
    conflicts,
    conflicts_lazy,
)
from .errors import (
    ChannelError,
    DeadlockError,
    FutureError,
    GuestAssertionError,
    GuestError,
    InvalidOpError,
    ReproError,
    SchedulerError,
)
from .runtime import (
    CLOSED,
    AtomicInt,
    Barrier,
    Channel,
    CondVar,
    Executor,
    Future,
    Mutex,
    Program,
    ProgramBuilder,
    RWLock,
    Semaphore,
    SharedArray,
    SharedDict,
    SharedVar,
    ThreadAPI,
    TraceResult,
    execute,
    is_feasible,
)

__version__ = "1.0.0"

__all__ = [
    "AtomicInt",
    "Barrier",
    "CLOSED",
    "Channel",
    "ChannelError",
    "CondVar",
    "DeadlockError",
    "DualClockEngine",
    "Event",
    "Executor",
    "FingerprintCache",
    "Future",
    "FutureError",
    "GuestAssertionError",
    "GuestError",
    "InvalidOpError",
    "Mutex",
    "Op",
    "OpKind",
    "PartialOrder",
    "Program",
    "ProgramBuilder",
    "RWLock",
    "ReproError",
    "SchedulerError",
    "Semaphore",
    "SharedArray",
    "SharedDict",
    "SharedVar",
    "ThreadAPI",
    "TraceResult",
    "VectorClock",
    "conflicts",
    "conflicts_lazy",
    "execute",
    "is_feasible",
    "__version__",
]
