"""repro — reproduction of *The Lazy Happens-Before Relation: Better
Partial-Order Reduction for Systematic Concurrency Testing* (Thomson &
Donaldson, PPoPP 2015).

The package provides:

* :mod:`repro.runtime` — a deterministic systematic-concurrency-testing
  substrate: guest programs written as generators, executed one visible
  operation at a time under a pluggable scheduler;
* :mod:`repro.core` — the regular and lazy happens-before relations,
  computed online via dual vector clocks, with canonical fingerprints;
* :mod:`repro.explore` — exploration strategies: exhaustive DFS,
  Flanagan–Godefroid DPOR, HBR caching, the paper's lazy HBR caching,
  a lazy-DPOR prototype (the paper's future work), plus random, PCT and
  preemption-bounded baselines;
* :mod:`repro.suite` — 79 benchmark program instances mirroring the
  paper's benchmark collection;
* :mod:`repro.analysis` — harnesses that regenerate the paper's
  Figure 2, Figure 3 and the state-counting inequality;
* :mod:`repro.shim` — the real-code frontend: drop-in
  ``threading``/``queue`` modules plus lightweight instrumentation, so
  ordinary Python programs are checked without rewriting them as
  generators.

Quickstart — check real code with :func:`check`::

    import repro
    from repro.shim import threading

    @repro.shared
    class Counter:
        def __init__(self):
            self.value = 0

    def main():
        c = Counter()
        def worker():
            c.value += 1          # racy read-modify-write
        t1 = threading.Thread(target=worker)
        t2 = threading.Thread(target=worker)
        t1.start(); t2.start(); t1.join(); t2.join()
        assert c.value == 2

    result = repro.check(main)    # DPOR over every distinct interleaving
    if result.bug_found:
        print(result.summary())   # minimized schedule + timeline

The generator DSL remains the precision frontend (every scheduling
point explicit)::

    from repro import Program
    import repro

    def build(p):
        m = p.mutex("m")
        x, y = p.var("x", 0), p.var("y", 0)
        def t1(api):
            yield api.lock(m)
            v = yield api.read(x)
            yield api.unlock(m)
            yield api.write(y, v + 1)
        p.thread(t1)
        p.thread(t1)

    result = repro.check(Program("demo", build), explorer="lazy-hbr-caching")
    print(result.stats.summary())
"""

from .check import CheckResult, check
from .core import (
    DualClockEngine,
    Event,
    FingerprintCache,
    Op,
    OpKind,
    PartialOrder,
    VectorClock,
    conflicts,
    conflicts_lazy,
)
from .errors import (
    ChannelError,
    DeadlockError,
    FutureError,
    GuestAssertionError,
    GuestCrashError,
    GuestError,
    InstrumentError,
    InvalidOpError,
    ReproError,
    SchedulerError,
    ShimUsageError,
)
from .shim import instrument, program_from_function, shared
from .runtime import (
    CLOSED,
    AtomicInt,
    Barrier,
    Channel,
    CondVar,
    Executor,
    Future,
    Mutex,
    Program,
    ProgramBuilder,
    RWLock,
    Semaphore,
    SharedArray,
    SharedDict,
    SharedVar,
    ThreadAPI,
    TraceResult,
    execute,
    is_feasible,
)

__version__ = "1.0.0"

__all__ = [
    "AtomicInt",
    "Barrier",
    "CLOSED",
    "Channel",
    "ChannelError",
    "CheckResult",
    "CondVar",
    "DeadlockError",
    "DualClockEngine",
    "Event",
    "Executor",
    "FingerprintCache",
    "Future",
    "FutureError",
    "GuestAssertionError",
    "GuestCrashError",
    "GuestError",
    "InstrumentError",
    "InvalidOpError",
    "Mutex",
    "Op",
    "OpKind",
    "PartialOrder",
    "Program",
    "ProgramBuilder",
    "RWLock",
    "ReproError",
    "SchedulerError",
    "Semaphore",
    "SharedArray",
    "SharedDict",
    "SharedVar",
    "ShimUsageError",
    "ThreadAPI",
    "TraceResult",
    "VectorClock",
    "check",
    "conflicts",
    "conflicts_lazy",
    "execute",
    "instrument",
    "is_feasible",
    "program_from_function",
    "shared",
    "__version__",
]
