"""Explorer micro-benchmark harness (``python -m repro bench``).

Measures replay-loop throughput — schedules/sec and events/sec — for a
fixed set of (explorer, benchmark) cells drawn from the ablation
programs in ``benchmarks/bench_explorers.py``: a diagonal racy counter,
the coarse-lock/disjoint-data program where the lazy HBR wins, and the
condvar-heavy bounded buffer.

Methodology
-----------
* Each case is re-run (fresh explorer + program instance per
  iteration, exactly like real exploration) until at least
  ``min_time`` seconds have accumulated, and the whole measurement is
  repeated ``repeat`` times; the **best** rate is reported, which is
  the standard way to suppress scheduling noise on shared machines.
* A pure-Python *calibration* workload is timed alongside and stored
  in the report, so two reports taken on machines of different speeds
  can be compared via calibration-normalised ratios
  (:func:`compare_reports`).  The CI bench-smoke job uses this to fail
  on >30% regressions without being fooled by slower runners.

Reports are JSON (``BENCH_<name>.json``); see README "Performance".
"""

from __future__ import annotations

import json
import os
import platform
import sys
import time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence

from ..core.engines import backend_names, engine_provenance, resolve_engine
from ..explore import ExplorationLimits
from ..explore.controller import make_explorer, require_explorer
from ..ioutil import atomic_write_text
from ..suite import REGISTRY

#: Schema marker so unrelated JSON files are rejected early.
REPORT_KIND = "repro-bench"

#: Schema marker of the two-engine A/B reports (``bench --engine both``).
AB_REPORT_KIND = "repro-bench-ab"

#: Schema marker of the frontier split/resume scenario reports.
SPLIT_REPORT_KIND = "repro-bench-split"

#: Schema marker of the prefix-sharing (snapshot tree) scenario reports.
PREFIX_REPORT_KIND = "repro-bench-prefix"

#: Calibration-normalised slowdown beyond which the comparison fails.
DEFAULT_MAX_REGRESSION = 0.30

#: Floor on measurement iterations per round.  The min_time loop alone
#: let slow cells calibrate to two iterations (dfs/bounded_buffer_pc2
#: historically), where a single scheduler hiccup lands on half the
#: sample; three is the least count at which best-of still has a
#: majority of clean iterations to pick from.
MIN_ITERATIONS = 3


@dataclass(frozen=True)
class BenchCase:
    """One (explorer, benchmark) throughput measurement."""

    name: str           #: report key, ``<explorer>/<program label>``
    explorer: str       #: STANDARD_EXPLORERS strategy name
    bench_id: int       #: suite benchmark id
    max_schedules: int  #: per-iteration schedule budget


#: The explorer microbenchmarks.  Budgets are sized so one iteration
#: finishes in well under a second; the harness loops iterations until
#: ``min_time`` is reached, so tiny cells still time accurately.
CASES: List[BenchCase] = [
    BenchCase("dfs/racy_counter", "dfs", 4, 20_000),
    BenchCase("dfs/bounded_buffer", "dfs", 24, 2_000),
    BenchCase("dfs/bounded_buffer_pc2", "dfs", 27, 2_000),
    BenchCase("dpor/racy_counter", "dpor", 4, 20_000),
    BenchCase("dpor/disjoint_coarse", "dpor", 13, 20_000),
    BenchCase("lazy-dpor/disjoint_coarse", "lazy-dpor", 13, 20_000),
    BenchCase("hbr-caching/bounded_buffer", "hbr-caching", 24, 2_000),
    BenchCase("lazy-hbr-caching/disjoint_coarse", "lazy-hbr-caching",
              13, 20_000),
    BenchCase("lazy-hbr-caching/bounded_buffer_pc2", "lazy-hbr-caching",
              27, 2_000),
    BenchCase("preempt-bounded/bounded_buffer", "preempt-bounded", 24,
              1_000),
    BenchCase("random/bounded_buffer", "random", 24, 400),
    BenchCase("pct/bounded_buffer", "pct", 24, 400),
    # the message-passing family: a deep two-stage channel pipeline
    # (81) exercising the protocol-dispatched CHAN_* hot path
    BenchCase("dfs/chan_pipeline2", "dfs", 81, 2_000),
    BenchCase("dpor/chan_pipeline2", "dpor", 81, 2_000),
    BenchCase("lazy-hbr-caching/chan_pipeline2", "lazy-hbr-caching",
              81, 2_000),
    # the virtual-time family: timed-lock retries with backoff sleeps
    # (93) exercising the SLEEP/TIME_FIRE clock path in both the
    # enumerating and reducing explorers
    BenchCase("dfs/retry_backoff", "dfs", 93, 2_000),
    BenchCase("lazy-hbr-caching/retry_backoff", "lazy-hbr-caching",
              93, 2_000),
]

#: The prefix-sharing scenario cases (``bench --scenario prefix``):
#: deep DFS-family cells where schedules share long prefixes, measured
#: with the snapshot tree off vs on.  ``dfs/racy_counter`` rides along
#: as the shallow control — 9-event schedules have almost no prefix to
#: share, so it documents the break-even floor rather than a win.
PREFIX_CASES: List[BenchCase] = [
    BenchCase("dfs/racy_counter", "dfs", 4, 20_000),
    BenchCase("dfs/bounded_buffer", "dfs", 24, 2_000),
    BenchCase("dfs/bounded_buffer_pc2", "dfs", 27, 2_000),
    BenchCase("hbr-caching/bounded_buffer", "hbr-caching", 24, 2_000),
    BenchCase("lazy-hbr-caching/disjoint_coarse", "lazy-hbr-caching",
              13, 20_000),
    BenchCase("lazy-hbr-caching/bounded_buffer_pc2", "lazy-hbr-caching",
              27, 2_000),
    BenchCase("preempt-bounded/bounded_buffer", "preempt-bounded", 24,
              1_000),
]


def case_names() -> List[str]:
    return [c.name for c in CASES]


def _calibrate(loops: int = 200_000) -> float:
    """Ops/sec of a fixed pure-Python workload (int + list churn),
    used to normalise throughput across machines of different speeds."""
    best = float("inf")
    for _ in range(3):
        t0 = time.perf_counter()
        acc = 0
        xs = [0] * 16
        for i in range(loops):
            acc += i & 7
            xs[i & 15] = acc
            if xs[0] > 1 << 40:  # pragma: no cover - never taken
                xs[0] = 0
        best = min(best, time.perf_counter() - t0)
    return loops / best


def _case_limits(case: BenchCase,
                 snapshot_budget_bytes: Optional[int] = None
                 ) -> ExplorationLimits:
    limits = ExplorationLimits(max_schedules=case.max_schedules)
    if snapshot_budget_bytes is not None:
        limits.snapshot_budget_bytes = snapshot_budget_bytes
    return limits


def _measure_case(case: BenchCase, min_time: float,
                  snapshot_budget_bytes: Optional[int] = None,
                  engine: Optional[str] = None
                  ) -> Dict[str, Any]:
    """Run ``case`` repeatedly until ``min_time`` seconds accumulate."""
    limits = _case_limits(case, snapshot_budget_bytes)
    program = REGISTRY[case.bench_id].program
    total_sched = total_events = iterations = 0
    total_time = 0.0
    while total_time < min_time or iterations < MIN_ITERATIONS:
        explorer = make_explorer(case.explorer, program, limits,
                                 engine=engine)
        t0 = time.perf_counter()
        stats = explorer.run()
        total_time += time.perf_counter() - t0
        total_sched += stats.num_schedules
        total_events += stats.num_events
        iterations += 1
    return {
        "schedules": total_sched // iterations,
        "events": total_events // iterations,
        "iterations": iterations,
        "elapsed": total_time,
        "schedules_per_sec": total_sched / total_time,
        "events_per_sec": total_events / total_time,
    }


def _select_cases(cases: Optional[Sequence[str]]) -> List[BenchCase]:
    selected = CASES
    if cases:
        by_name = {c.name: c for c in CASES}
        unknown = [n for n in cases if n not in by_name]
        if unknown:
            raise KeyError(
                f"unknown bench case(s) {unknown}; available: {case_names()}"
            )
        selected = [by_name[n] for n in cases]
    for case in selected:
        require_explorer(case.explorer)
    return selected


def _case_engine(case: BenchCase, engine: Optional[str]) -> str:
    """The backend the case's executors will actually use.

    Resolution goes through :func:`repro.core.engines.resolve_engine`
    with the case's executor mode, so the recorded name tracks
    whatever the registry decides for that explorer — ``native`` under
    auto when the compiled kernel is built, ``ref`` otherwise — and
    the row stays truthful if the default changes.
    """
    probe = make_explorer(case.explorer, REGISTRY[case.bench_id].program,
                          _case_limits(case))
    return resolve_engine(engine, fast_replay=probe.fast_replay)


def run_bench(
    cases: Optional[Sequence[str]] = None,
    smoke: bool = False,
    repeat: int = 3,
    min_time: float = 0.25,
    progress=None,
    engine: Optional[str] = None,
) -> Dict[str, Any]:
    """Run the micro-benchmarks and return the JSON-ready report.

    ``engine`` pins the clock-engine backend for every case
    (``"ref"``/``"accel"``/``"native"``; ``None`` = the registry's
    mode-aware auto pick).  Every case row records the backend it
    actually ran under (``"engine"``) and how that backend was built
    (``"provenance"``: compiled vs pure fallback, interpreter,
    compiler), so reports are self-describing and cross-provenance
    comparisons can warn (:func:`provenance_warnings`).
    """
    selected = _select_cases(cases)
    if smoke:
        # shorter than the default but long enough that a single noisy
        # scheduler hiccup cannot fake a >30% regression in CI
        repeat = min(repeat, 2)
        min_time = min(min_time, 0.2)

    calibration = _calibrate()
    report: Dict[str, Any] = {
        "meta": {
            "kind": REPORT_KIND,
            "smoke": bool(smoke),
            "repeat": repeat,
            "min_time": min_time,
            "engine": engine or "auto",
            "python": platform.python_version(),
            "implementation": platform.python_implementation(),
            "calibration_ops_per_sec": calibration,
        },
        "cases": {},
    }
    for case in selected:
        best: Optional[Dict[str, Any]] = None
        for _ in range(max(1, repeat)):
            m = _measure_case(case, min_time, engine=engine)
            if best is None or m["schedules_per_sec"] > best["schedules_per_sec"]:
                best = m
        resolved = _case_engine(case, engine)
        entry = {
            "explorer": case.explorer,
            "bench_id": case.bench_id,
            "program": REGISTRY[case.bench_id].program.name,
            "max_schedules": case.max_schedules,
            "engine": resolved,
            "provenance": engine_provenance(resolved),
            **best,
        }
        report["cases"][case.name] = entry
        if progress is not None:
            prov = entry["provenance"]
            how = "compiled" if prov["compiled"] else "pure"
            progress(
                f"{case.name:<34} {entry['schedules_per_sec']:>10,.0f} "
                f"sched/s {entry['events_per_sec']:>12,.0f} ev/s "
                f"({entry['iterations']} iter, {entry['engine']}/{how})"
            )
    return report


def provenance_warnings(
    current: Dict[str, Any], baseline: Dict[str, Any]
) -> List[str]:
    """Human-readable warnings for shared cases whose engine provenance
    differs between two reports — compiled kernel vs pure fallback,
    different interpreter, different compiler.  Such pairs are still
    *compared* (calibration normalisation keeps the gate meaningful for
    same-provenance rows), but the mismatch must be loud: a 3x compiled
    win silently measured against a fallback baseline reads as a
    regression fixed, and vice versa.
    """
    warnings: List[str] = []
    for name, base in baseline.get("cases", {}).items():
        cur = current["cases"].get(name)
        if cur is None:
            continue
        bp, cp = base.get("provenance"), cur.get("provenance")
        if bp == cp:
            continue
        if bp is None or cp is None:
            missing = "baseline" if bp is None else "current"
            warnings.append(
                f"{name}: {missing} report predates provenance "
                f"recording; regenerate it (bench --out) before "
                f"trusting cross-report ratios"
            )
            continue
        diffs = ", ".join(
            f"{k}: {bp.get(k)} -> {cp.get(k)}"
            for k in sorted(set(bp) | set(cp))
            if bp.get(k) != cp.get(k)
        )
        warnings.append(
            f"{name}: engine provenance differs from baseline ({diffs})"
        )
    return warnings


def _engine_fingerprint_sets(case: BenchCase, engine: str) -> Dict[str, Any]:
    """One full exploration of ``case`` under ``engine``; the observable
    outcome sets the A/B harness compares."""
    stats = make_explorer(
        case.explorer, REGISTRY[case.bench_id].program, _case_limits(case),
        engine=engine,
    ).run()
    return {
        "schedules": stats.num_schedules,
        "hbr_fps": frozenset(stats.hbr_fps),
        "lazy_fps": frozenset(stats.lazy_fps),
        "state_hashes": frozenset(stats.state_hashes),
    }


def run_engine_ab(
    cases: Optional[Sequence[str]] = None,
    smoke: bool = False,
    repeat: int = 3,
    min_time: float = 0.25,
    progress=None,
) -> Dict[str, Any]:
    """``bench --engine both``: measure every case under every
    registered backend (``ref``, ``accel``, ``native``, and whatever is
    registered next — the list comes from the registry).

    For each case the harness first runs one full exploration per
    engine and hard-fails (``AssertionError``) unless the fingerprint
    sets, state-hash sets and schedule counts are identical to the
    reference — the byte-identical contract, enforced in the same
    process that is about to publish numbers.  Then per-engine
    measurement rounds are interleaved (best kept per engine) so
    machine noise hits every backend evenly.
    """
    selected = _select_cases(cases)
    if smoke:
        repeat = min(repeat, 2)
        min_time = min(min_time, 0.2)

    engines = list(backend_names())
    report: Dict[str, Any] = {
        "meta": {
            "kind": AB_REPORT_KIND,
            "smoke": bool(smoke),
            "repeat": repeat,
            "min_time": min_time,
            "engines": engines,
            "provenance": {e: engine_provenance(e) for e in engines},
            "python": platform.python_version(),
            "implementation": platform.python_implementation(),
            "calibration_ops_per_sec": _calibrate(),
        },
        "cases": {},
    }
    for case in selected:
        outcomes = {e: _engine_fingerprint_sets(case, e) for e in engines}
        ref_out = outcomes["ref"]
        for name, out in outcomes.items():
            if out != ref_out:
                diverged = sorted(
                    k for k in ref_out if ref_out[k] != out[k]
                )
                raise AssertionError(
                    f"engine divergence on {case.name}: ref and {name} "
                    f"disagree on {', '.join(diverged)} "
                    f"(ref {ref_out['schedules']} schedules, {name} "
                    f"{out['schedules']})"
                )
        best: Dict[str, Optional[Dict[str, Any]]] = dict.fromkeys(engines)
        for _ in range(max(1, repeat)):
            for name in engines:
                m = _measure_case(case, min_time, engine=name)
                b = best[name]
                if b is None or m["schedules_per_sec"] > b["schedules_per_sec"]:
                    best[name] = m
        ref_rate = best["ref"]["schedules_per_sec"]
        entry = {
            "explorer": case.explorer,
            "bench_id": case.bench_id,
            "program": REGISTRY[case.bench_id].program.name,
            "max_schedules": case.max_schedules,
            "schedules": best["ref"]["schedules"],
            "equivalent": True,
            "speedups": {
                name: best[name]["schedules_per_sec"] / ref_rate
                for name in engines if name != "ref"
            },
        }
        for name in engines:
            entry[name] = {**best[name], "engine": name}
        # kept for report consumers predating the three-engine table
        entry["accel_speedup"] = entry["speedups"]["accel"]
        report["cases"][case.name] = entry
        if progress is not None:
            rates = " ".join(
                f"{name} {best[name]['schedules_per_sec']:>9,.0f}"
                for name in engines
            )
            ratios = ", ".join(
                f"{name} {ratio:.2f}x"
                for name, ratio in entry["speedups"].items()
            )
            progress(
                f"{case.name:<34} {rates} sched/s "
                f"({ratios}; fingerprints equal)"
            )
    return report


def run_split_bench(
    shards: int = 4,
    smoke: bool = False,
    progress=None,
) -> Dict[str, Any]:
    """The frontier split/resume scenario (``bench --scenario split``).

    Two measurements on one exhaustible DFS campaign cell:

    * **split speedup** — wall-clock of the unsplit serial cell vs the
      same cell seeded, ``Frontier.split(k)``-sharded and run on a
      ``k``-worker pool (``campaign --split-large k --jobs k``).  Both
      runs exhaust the identical schedule set (enforced: the merged
      fingerprint sets must equal the serial run's), so the ratio is a
      true intra-cell scaling number, not budget inflation.
    * **resume overhead** — time to ``snapshot()`` a half-explored
      frontier, JSON round-trip it, and ``restore()`` — the cost a
      checkpointed campaign pays per cell to survive interruption.

    Smoke mode uses a smaller cell so CI stays fast.
    """
    from ..campaign import CampaignCell, run_campaign
    from ..explore import ExplorationLimits
    from ..explore.controller import make_explorer

    # disjoint_coarse(3,2): 8844-schedule exhaustive DFS cell (~1.5 s
    # serial) — large enough to amortise pool startup; the smoke cell
    # (racy_counter(3,1), 1680 schedules) keeps CI under a second
    bench_id = 4 if smoke else 13
    cells = [CampaignCell(bench_id, "dfs")]
    limits = ExplorationLimits()

    t0 = time.perf_counter()
    serial = run_campaign(cells, limits, jobs=1)
    serial_seconds = time.perf_counter() - t0

    t0 = time.perf_counter()
    split = run_campaign(cells, limits, jobs=shards, split_large=shards)
    split_seconds = time.perf_counter() - t0

    s_stats, p_stats = serial.results[0].stats, split.results[0].stats
    if (s_stats.hbr_fps != p_stats.hbr_fps
            or s_stats.state_hashes != p_stats.state_hashes
            or s_stats.num_schedules != p_stats.num_schedules):
        raise AssertionError(
            "split campaign diverged from the serial cell "
            f"(serial {s_stats.num_schedules} schedules, split "
            f"{p_stats.num_schedules})"
        )

    # resume overhead: snapshot/restore a half-explored frontier
    program = REGISTRY[bench_id].program
    explorer = make_explorer(
        "dfs", program,
        ExplorationLimits(max_schedules=s_stats.num_schedules // 2),
    )
    explorer.run()
    t0 = time.perf_counter()
    snapshot = explorer.snapshot()
    payload = json.dumps(snapshot)
    snapshot_seconds = time.perf_counter() - t0
    resumed = make_explorer("dfs", program, ExplorationLimits())
    t0 = time.perf_counter()
    resumed.restore(json.loads(payload))
    restore_seconds = time.perf_counter() - t0
    resumed_stats = resumed.run()
    if resumed_stats.num_schedules != s_stats.num_schedules:
        raise AssertionError(
            "resumed run diverged: "
            f"{resumed_stats.num_schedules} != {s_stats.num_schedules}"
        )

    report = {
        "meta": {
            "kind": SPLIT_REPORT_KIND,
            "smoke": bool(smoke),
            "python": platform.python_version(),
            "implementation": platform.python_implementation(),
            # split speedup is bounded by physical parallelism; a
            # 1-core runner can only show the (small) sharding overhead
            "cpu_count": os.cpu_count(),
        },
        "split": {
            "bench_id": bench_id,
            "program": program.name,
            "explorer": "dfs",
            "shards": shards,
            "schedules": s_stats.num_schedules,
            "serial_seconds": serial_seconds,
            "split_seconds": split_seconds,
            "speedup": serial_seconds / split_seconds,
        },
        "resume": {
            "checkpoint_schedules": s_stats.num_schedules // 2,
            "frontier_items": len(snapshot["frontier"]["items"]),
            "snapshot_bytes": len(payload),
            "snapshot_seconds": snapshot_seconds,
            "restore_seconds": restore_seconds,
        },
    }
    if progress is not None:
        progress(
            f"split x{shards} on {program.name}: "
            f"{serial_seconds:.2f}s serial -> {split_seconds:.2f}s "
            f"({report['split']['speedup']:.2f}x); resume snapshot "
            f"{len(payload):,} bytes in {snapshot_seconds*1e3:.1f}ms"
        )
    return report


def run_prefix_bench(
    smoke: bool = False,
    min_time: float = 0.25,
    repeat: int = 3,
    progress=None,
) -> Dict[str, Any]:
    """The prefix-sharing scenario (``bench --scenario prefix``).

    For each deep DFS-family case in :data:`PREFIX_CASES`, measures
    schedules/sec with the snapshot tree **off** (``snapshot_budget=0``,
    i.e. the plain ``replay_prefix`` path) and **on** (default budget),
    and reports the speedup plus what the tree actually did: the
    fraction of events resumed from snapshots vs replayed fresh vs newly
    executed, the snapshot hit rate, and the memory high-water mark.

    Hard-fails if the two modes diverge in any statistic other than
    wall clock — the same in-harness equivalence enforcement the split
    scenario applies.
    """
    if smoke:
        min_time = min(min_time, 0.15)
        repeat = min(repeat, 2)

    report: Dict[str, Any] = {
        "meta": {
            "kind": PREFIX_REPORT_KIND,
            "smoke": bool(smoke),
            "min_time": min_time,
            "repeat": repeat,
            "python": platform.python_version(),
            "implementation": platform.python_implementation(),
            "calibration_ops_per_sec": _calibrate(),
        },
        "cases": {},
    }
    for case in PREFIX_CASES:
        program = REGISTRY[case.bench_id].program

        # equivalence: off and on must produce identical statistics
        off_stats = make_explorer(
            case.explorer, program, _case_limits(case, 0)
        ).run()
        on_explorer = make_explorer(
            case.explorer, program, _case_limits(case)
        )
        on_stats = on_explorer.run()
        off_d, on_d = off_stats.to_dict(), on_stats.to_dict()
        off_d.pop("elapsed")
        on_d.pop("elapsed")
        if off_d != on_d:
            raise AssertionError(
                f"snapshot-resume diverged from plain replay on "
                f"{case.name}"
            )
        snap = on_explorer.snapshot_tree.stats()
        total_events = on_stats.num_events
        resumed = snap["resumed_events"]
        replayed = snap["replayed_events"]
        fresh = total_events - resumed - replayed
        # the equivalence explorers hold several MiB of live snapshot
        # graph; drop them (and sweep) so full-GC passes during the
        # timed rounds do not scan a heap the measured runs never built
        del on_explorer, off_stats, on_stats
        import gc
        gc.collect()

        # off/on rounds interleaved (and the best kept) so machine
        # noise and thermal drift hit both modes evenly instead of
        # whichever mode happened to run second
        off = on = None
        for _ in range(max(1, repeat)):
            o = _measure_case(case, min_time, snapshot_budget_bytes=0)
            n = _measure_case(case, min_time)
            if off is None or o["schedules_per_sec"] > off["schedules_per_sec"]:
                off = o
            if on is None or n["schedules_per_sec"] > on["schedules_per_sec"]:
                on = n
        entry = {
            "explorer": case.explorer,
            "bench_id": case.bench_id,
            "program": program.name,
            "max_schedules": case.max_schedules,
            "schedules": on["schedules"],
            "events": total_events,
            "off_schedules_per_sec": off["schedules_per_sec"],
            "on_schedules_per_sec": on["schedules_per_sec"],
            "speedup": on["schedules_per_sec"] / off["schedules_per_sec"],
            "resumed_events": resumed,
            "replayed_events": replayed,
            "fresh_events": fresh,
            "resumed_fraction": resumed / total_events if total_events else 0.0,
            "replayed_fraction": (replayed / total_events
                                  if total_events else 0.0),
            "fresh_fraction": fresh / total_events if total_events else 0.0,
            "snapshot": snap,
        }
        report["cases"][case.name] = entry
        if progress is not None:
            progress(
                f"{case.name:<34} {entry['speedup']:>5.2f}x  "
                f"resumed {entry['resumed_fraction']:>5.1%} of "
                f"{total_events} events, hit rate "
                f"{snap['hit_rate']:.1%}, "
                f"{snap['bytes_high_water'] / 1024:,.0f} KiB high water"
            )
    return report


def profile_case(case_name: str, out_path: str,
                 max_schedules: Optional[int] = None) -> None:
    """cProfile one run of a named case and dump pstats to ``out_path``
    (load with ``python -m pstats``).  CI attaches this for the slowest
    measured case so regressions come with a profile to read."""
    import cProfile

    case = next(c for c in CASES if c.name == case_name)
    limits = _case_limits(case)
    if max_schedules is not None:
        limits.max_schedules = max_schedules
    program = REGISTRY[case.bench_id].program
    explorer = make_explorer(case.explorer, program, limits)
    profiler = cProfile.Profile()
    profiler.enable()
    explorer.run()
    profiler.disable()
    profiler.dump_stats(out_path)


def write_report(report: Dict[str, Any], path: str) -> None:
    # crash-safe: a killed bench run never leaves a torn BENCH_*.json
    atomic_write_text(
        path, json.dumps(report, indent=1, sort_keys=True) + "\n"
    )


def load_report(path: str) -> Dict[str, Any]:
    with open(path) as fh:
        report = json.load(fh)
    meta = report.get("meta") or {}
    if meta.get("kind") != REPORT_KIND:
        raise ValueError(f"{path} is not a {REPORT_KIND} report")
    if not isinstance(report.get("cases"), dict) or not isinstance(
            meta.get("calibration_ops_per_sec"), (int, float)):
        raise ValueError(
            f"{path} is missing required {REPORT_KIND} fields "
            f"(cases, meta.calibration_ops_per_sec)"
        )
    return report


def compare_reports(
    current: Dict[str, Any],
    baseline: Dict[str, Any],
    max_regression: float = DEFAULT_MAX_REGRESSION,
) -> List[str]:
    """Regression check, normalised by each report's calibration.

    Returns human-readable failure lines for every shared case whose
    calibration-normalised schedules/sec dropped more than
    ``max_regression`` (fraction) below the baseline.  Cases present in
    only one report are ignored (the case set may evolve).
    """
    failures: List[str] = []
    cur_cal = current["meta"]["calibration_ops_per_sec"]
    base_cal = baseline["meta"]["calibration_ops_per_sec"]
    for name, base in baseline["cases"].items():
        cur = current["cases"].get(name)
        if cur is None:
            continue
        base_norm = base["schedules_per_sec"] / base_cal
        cur_norm = cur["schedules_per_sec"] / cur_cal
        if base_norm <= 0:
            continue
        ratio = cur_norm / base_norm
        if ratio < 1.0 - max_regression:
            failures.append(
                f"{name}: {cur['schedules_per_sec']:,.0f} sched/s is "
                f"{(1.0 - ratio) * 100:.0f}% below baseline "
                f"{base['schedules_per_sec']:,.0f} "
                f"(calibration-normalised ratio {ratio:.2f})"
            )
    return failures


def bench_table(report: Dict[str, Any]) -> str:
    """Markdown table of one report, for terminals and PR descriptions."""
    out = [
        "| case | engine | schedules/s | events/s | schedules | iterations |",
        "|---|---|---:|---:|---:|---:|",
    ]
    for name in sorted(report["cases"]):
        c = report["cases"][name]
        out.append(
            f"| {name} | {c.get('engine', 'ref')} | "
            f"{c['schedules_per_sec']:,.0f} | "
            f"{c['events_per_sec']:,.0f} | {c['schedules']} | "
            f"{c['iterations']} |"
        )
    return "\n".join(out)


def ab_table(report: Dict[str, Any]) -> str:
    """Markdown table of a ``--engine both`` A/B report, one rate
    column per measured engine plus speedup-vs-ref columns."""
    engines = report["meta"].get("engines", ["ref", "accel"])
    others = [e for e in engines if e != "ref"]
    header = (
        "| case | "
        + " | ".join(f"{e} sched/s" for e in engines)
        + " | "
        + " | ".join(f"{e} speedup" for e in others)
        + " |"
    )
    out = [header, "|---|" + "---:|" * (len(engines) + len(others))]
    for name in sorted(report["cases"]):
        c = report["cases"][name]
        speedups = c.get("speedups") or {"accel": c["accel_speedup"]}
        rates = " | ".join(
            f"{c[e]['schedules_per_sec']:,.0f}" for e in engines
        )
        ratios = " | ".join(f"{speedups[e]:.2f}x" for e in others)
        out.append(f"| {name} | {rates} | {ratios} |")
    return "\n".join(out)


def main(args) -> int:  # pragma: no cover - exercised via the CLI tests
    """Entry point for ``python -m repro bench``."""
    if getattr(args, "scenario", "micro") == "split":
        try:
            report = run_split_bench(
                shards=args.shards,
                smoke=args.smoke,
                progress=print if not args.quiet else None,
            )
        except AssertionError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
        split, resume = report["split"], report["resume"]
        print(
            f"split speedup: {split['speedup']:.2f}x over "
            f"{split['schedules']} schedules "
            f"({split['shards']} shards); snapshot/restore "
            f"{resume['snapshot_seconds']*1e3:.1f}/"
            f"{resume['restore_seconds']*1e3:.1f} ms"
        )
        if args.out:
            write_report(report, args.out)
            print(f"wrote {args.out}")
        return 0
    if getattr(args, "scenario", "micro") == "prefix":
        try:
            report = run_prefix_bench(
                smoke=args.smoke,
                min_time=args.min_time,
                progress=print if not args.quiet else None,
            )
        except AssertionError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
        worst = min(
            c["speedup"] for c in report["cases"].values()
        )
        print(f"prefix sharing: worst-case speedup {worst:.2f}x over "
              f"{len(report['cases'])} deep cases")
        if args.out:
            write_report(report, args.out)
            print(f"wrote {args.out}")
        return 0
    cases = args.cases.split(",") if args.cases else None
    engine = getattr(args, "engine", None)
    if engine == "both":
        try:
            report = run_engine_ab(
                cases=cases,
                smoke=args.smoke,
                repeat=args.repeat,
                min_time=args.min_time,
                progress=print if not args.quiet else None,
            )
        except KeyError as exc:
            print(f"error: {exc.args[0]}", file=sys.stderr)
            return 2
        except (AssertionError, ValueError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
        print()
        print(ab_table(report))
        if args.out:
            write_report(report, args.out)
            print(f"\nwrote {args.out}")
        return 0
    try:
        report = run_bench(
            cases=cases,
            smoke=args.smoke,
            repeat=args.repeat,
            min_time=args.min_time,
            progress=print if not args.quiet else None,
            engine=engine,
        )
    except KeyError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 2
    except ValueError as exc:
        # an explicit engine that the registry rejects (unknown or
        # unavailable in this environment)
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print()
    print(bench_table(report))
    if args.out:
        write_report(report, args.out)
        print(f"\nwrote {args.out}")
    if getattr(args, "profile", None):
        slowest = min(
            report["cases"],
            key=lambda n: report["cases"][n]["schedules_per_sec"],
        )
        profile_case(slowest, args.profile)
        print(f"profiled slowest case {slowest} -> {args.profile}")
    if args.baseline:
        try:
            baseline = load_report(args.baseline)
        except (OSError, ValueError, KeyError) as exc:
            print(f"error: cannot use baseline {args.baseline}: {exc}",
                  file=sys.stderr)
            return 2
        # compare_reports is deliberately lenient about disjoint case
        # sets (reports from different eras stay comparable), but the
        # CLI gate must not silently pass a case the baseline has never
        # measured — that reads as "no regression" when nothing was
        # checked at all
        missing = sorted(n for n in report["cases"]
                         if n not in baseline["cases"])
        if missing:
            for name in missing:
                print(f"error: case {name!r} missing from baseline "
                      f"{args.baseline}; regenerate the baseline "
                      f"(bench --out) to cover it", file=sys.stderr)
            return 1
        for line in provenance_warnings(report, baseline):
            print(f"WARNING: {line}", file=sys.stderr)
        failures = compare_reports(report, baseline, args.max_regression)
        if failures:
            for line in failures:
                print(f"REGRESSION {line}", file=sys.stderr)
            return 1
        print(f"no regressions vs {args.baseline} "
              f"(threshold {args.max_regression:.0%})")
    return 0
