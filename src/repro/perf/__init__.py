"""Performance harness: explorer micro-benchmarks with JSON reports.

``python -m repro bench`` runs the replay-loop micro-benchmarks and
writes ``BENCH_<name>.json`` reports; :func:`compare_reports` is the
calibration-normalised regression check used by the CI bench-smoke job
against the committed ``BENCH_baseline.json``.
"""

from .bench import (
    CASES,
    DEFAULT_MAX_REGRESSION,
    BenchCase,
    bench_table,
    case_names,
    compare_reports,
    load_report,
    run_bench,
    write_report,
)

__all__ = [
    "CASES",
    "DEFAULT_MAX_REGRESSION",
    "BenchCase",
    "bench_table",
    "case_names",
    "compare_reports",
    "load_report",
    "run_bench",
    "write_report",
]
