"""``@repro.shared`` — schedule-visible object attributes.

Decorating a class stores every instance attribute in a
:class:`~repro.runtime.sharedvar.SharedVar` cell registered with the
checked program.  Instrumented code then reads and writes those
attributes through READ/WRITE events, so data races on them are visible
to the explorers (an ``obj.x += 1`` in instrumented code is a separate
load and store — the classic lost-update bug stays reachable).

Uninstrumented code keeps working: attribute access falls through to
the cell's current value without emitting events, exactly like local
computation between scheduling points.

Instances must be created during the program's setup phase (main
thread, before the first ``Thread.start()``) so cell oids are
schedule-independent; see :mod:`repro.shim._context`.
"""

from __future__ import annotations

from ._context import current_context


def shared(cls: type) -> type:
    """Class decorator: back every instance attribute with a SharedVar
    cell of the checked program."""
    if "__slots__" in cls.__dict__:
        # cells live in the instance __dict__; __slots__ removes it
        from ..errors import ShimUsageError
        raise ShimUsageError(
            f"@repro.shared does not support __slots__ classes "
            f"({cls.__name__})"
        )

    clsname = cls.__name__

    def __setattr__(self, name, value):
        d = self.__dict__
        cells = d.get("_repro_cells")
        if cells is None:
            cells = {}
            d["_repro_cells"] = cells
        cell = cells.get(name)
        if cell is None:
            ctx = current_context(f"@shared {clsname} attribute {name!r}")
            cells[name] = ctx.make_cell(clsname, name, value)
        else:
            cell.value = value

    def __getattr__(self, name):
        # only reached when normal lookup fails — attribute stores are
        # diverted into cells, so instance data always lands here
        if name != "_repro_cells":
            cells = self.__dict__.get("_repro_cells")
            if cells is not None:
                cell = cells.get(name)
                if cell is not None:
                    return cell.value
        raise AttributeError(
            f"{clsname!r} object has no attribute {name!r}"
        )

    cls.__setattr__ = __setattr__
    cls.__getattr__ = __getattr__
    cls.__repro_shared__ = True
    return cls
