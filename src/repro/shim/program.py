"""Turn an instrumented real-code function into a checkable Program.

The resulting :class:`~repro.runtime.program.Program` declares exactly
one *static* thread — ``main``, the instrumented function itself driven
on tid 0.  Everything else (shared state, locks, queues, worker
threads) is created by that thread as it runs: object construction
happens during the setup phase (enforced by the shim context) and
workers enter through SPAWN ops, so ids stay deterministic across
schedules, replays and snapshot restores.
"""

from __future__ import annotations

from typing import Any, Optional, Tuple

from ..runtime.program import Program, ProgramBuilder
from ._context import ShimContext, drive
from ._instrument import ensure_guest


def program_from_function(
    fn,
    *,
    name: Optional[str] = None,
    args: Tuple[Any, ...] = (),
    kwargs: Optional[dict] = None,
) -> Program:
    """Wrap callable ``fn(*args, **kwargs)`` as a checkable program.

    ``fn`` may be a plain function (instrumented here) or an
    already-instrumented guest.  Each instantiation creates a fresh
    :class:`ShimContext`, so explored schedules never share state.
    """
    guest = ensure_guest(fn)
    frozen_args = tuple(args)
    frozen_kwargs = dict(kwargs or {})
    program_name = name or getattr(fn, "__name__", "shim_program")

    def build(p: ProgramBuilder) -> None:
        ctx = ShimContext(p.registry)

        def main(api):
            return (yield from drive(
                ctx, api.tid, guest(*frozen_args, **frozen_kwargs)
            ))

        p.thread(main, name="main")

    return Program(
        program_name,
        build,
        description=f"shim frontend over {getattr(fn, '__qualname__', fn)!r}",
        metadata={
            "frontend": "shim",
            # shim guests mutate host Python state (closures, shared
            # hold maps); snapshot restores must replay finished
            # threads' tapes to reconstruct it (see Executor.snapshot)
            "replay_finished_threads": True,
        },
    )
