"""The real-code frontend: check stdlib-style programs, unmodified.

``repro.shim.threading`` and ``repro.shim.queue`` are drop-in
replacements for the stdlib modules; :func:`instrument` rewrites plain
functions into guests; :func:`shared` makes object attributes
schedule-visible; :func:`program_from_function` packages it all as a
:class:`~repro.runtime.program.Program` for the explorers (or just call
:func:`repro.check` on the function).

    from repro.shim import threading, queue

    def main():
        q = queue.Queue(maxsize=1)
        t = threading.Thread(target=q.put, args=(42,))
        t.start()
        assert q.get() == 42
        t.join()

    import repro
    result = repro.check(main)
"""

from . import queue, threading
from ._context import ShimContext, current_context, drive, guest_op
from ._instrument import ensure_guest, instrument
from .program import program_from_function
from .shared import shared

__all__ = [
    "threading",
    "queue",
    "instrument",
    "ensure_guest",
    "shared",
    "program_from_function",
    "ShimContext",
    "current_context",
    "drive",
    "guest_op",
]
