"""Drop-in ``threading`` replacement for checked programs.

``repro.shim.threading`` mirrors the stdlib module's class signatures —
``Thread``, ``Lock``, ``RLock``, ``Condition``, ``Semaphore``,
``BoundedSemaphore``, ``Barrier``, ``Event`` — but every operation is
routed onto the runtime's sync-primitive protocol, so a real-code
program written against it is explored schedule-by-schedule instead of
executed on OS threads.  Typical usage swaps one import line::

    from repro.shim import threading   # instead of: import threading

Fidelity notes (enforced, not silent):

* ``timeout=`` arguments on blocking calls (``Lock.acquire``,
  ``Condition.wait``, ``Semaphore.acquire``, ``Event.wait``) run on the
  runtime's deterministic **virtual clock**: the timeout firing is an
  explorable scheduling branch, never a wall-clock race.  The few call
  sites virtual time cannot model (``Barrier(timeout=)``,
  ``Thread.join(timeout=)``, ``Condition.wait_for(timeout=)``) raise
  :class:`~repro.errors.UnsupportedTimeoutError` naming the nearest
  supported alternative; non-blocking acquires are likewise rejected —
  nothing silently falls back to wall time;
* all locks/queues/events (and ``@repro.shared`` state) must be created
  in the main thread before the first ``Thread.start()`` (the *setup
  phase*), which is what keeps object ids schedule-independent;
* a ``BoundedSemaphore`` over-release check is atomic with the release
  op itself (the release lands, then ``ValueError`` is raised at the
  same scheduling point).

Unsupported ``threading`` names raise ``ShimUsageError`` on attribute
access rather than silently running unchecked.
"""

from __future__ import annotations

from typing import Optional

from ..core.events import Op, OpKind, to_ticks
from ..errors import ShimUsageError, UnsupportedTimeoutError
from ..runtime.barrier import Barrier as _RtBarrier
from ..runtime.condvar import CondVar as _RtCondVar
from ..runtime.mutex import Mutex as _RtMutex
from ..runtime.semaphore import Semaphore as _RtSemaphore
from ..runtime.sharedvar import SharedVar as _RtSharedVar
from ._context import current_context, drive, guest_op
from ._instrument import _rt_call, ensure_guest

__all__ = [
    "Thread", "Lock", "RLock", "Condition", "Semaphore",
    "BoundedSemaphore", "Barrier", "Event", "current_thread",
    "BrokenBarrierError", "TIMEOUT_MAX",
]

TIMEOUT_MAX = float("inf")


class BrokenBarrierError(RuntimeError):
    """Stdlib-compatible name; shim barriers never break (no timeouts,
    no abort), so this is only ever raised by user code."""


def _no_timeout(where: str, timeout, alternative: str) -> None:
    """Reject a ``timeout=`` at a call site virtual time cannot model,
    pointing at the nearest shim construct that does support one."""
    if timeout is not None and timeout != -1:
        raise UnsupportedTimeoutError(where, alternative)


def _timeout_ticks(where: str, timeout) -> Optional[int]:
    """Validate and convert a supported ``timeout=`` to virtual ticks
    (stdlib convention: ``None``/``-1`` mean wait forever)."""
    if timeout is None or timeout == -1:
        return None
    if timeout < 0:
        raise ValueError(f"{where}: timeout value must be non-negative")
    return to_ticks(timeout)


def _no_nonblocking(where: str, blocking) -> None:
    if not blocking:
        raise ShimUsageError(
            f"{where}: non-blocking acquire is not supported under "
            f"systematic exploration"
        )


# ---------------------------------------------------------------------------
# locks
# ---------------------------------------------------------------------------

class Lock:
    """``threading.Lock`` backed by a runtime :class:`Mutex`."""

    def __init__(self) -> None:
        ctx = current_context("threading.Lock")
        self._ctx = ctx
        self._mutex = ctx.make(
            _RtMutex, label="threading.Lock",
            sites={OpKind.LOCK: "threading.Lock.acquire",
                   OpKind.UNLOCK: "threading.Lock.release"},
        )
        # Shim-side hold map for Condition's ownership check: shim code
        # must never peek runtime-object state (snapshot fast-forward
        # replays guests without re-applying ops, and replays threads in
        # tid order, not history order).  Keyed by tid with each thread
        # writing only its own key, the map is replay-order independent.
        self._holds: dict = {}

    @guest_op
    def acquire(self, blocking: bool = True, timeout: float = -1):
        _no_nonblocking("threading.Lock.acquire", blocking)
        ticks = _timeout_ticks("threading.Lock.acquire", timeout)
        got = yield Op(OpKind.LOCK, self._mutex, timeout=ticks)
        if got is False:  # virtual-clock timeout fired first
            return False
        self._holds[self._ctx.current_tid] = 1
        return True

    @guest_op
    def release(self):
        yield Op(OpKind.UNLOCK, self._mutex)
        self._holds.pop(self._ctx.current_tid, None)

    @guest_op
    def __enter__(self):
        yield from self.acquire()
        return self

    @guest_op
    def __exit__(self, exc_type, exc, tb):
        yield from self.release()
        return False

    def locked(self):
        raise ShimUsageError(
            "threading.Lock.locked: polling lock state is not supported; "
            "restructure the check around acquire/release"
        )


class RLock:
    """``threading.RLock``: reentrancy is tracked shim-side, so only the
    outermost acquire/release touch the runtime mutex (nested pairs are
    thread-local and emit no events)."""

    def __init__(self) -> None:
        ctx = current_context("threading.RLock")
        self._ctx = ctx
        self._mutex = ctx.make(
            _RtMutex, label="threading.RLock",
            sites={OpKind.LOCK: "threading.RLock.acquire",
                   OpKind.UNLOCK: "threading.RLock.release"},
        )
        # per-tid recursion depth; same replay-order-independence rule
        # as Lock._holds (each thread touches only its own key)
        self._holds: dict = {}

    @guest_op
    def acquire(self, blocking: bool = True, timeout: float = -1):
        _no_nonblocking("threading.RLock.acquire", blocking)
        ticks = _timeout_ticks("threading.RLock.acquire", timeout)
        tid = self._ctx.current_tid
        if self._holds.get(tid):
            self._holds[tid] += 1
            return True
        got = yield Op(OpKind.LOCK, self._mutex, timeout=ticks)
        if got is False:  # virtual-clock timeout fired first
            return False
        self._holds[tid] = 1
        return True

    @guest_op
    def release(self):
        tid = self._ctx.current_tid
        count = self._holds.get(tid, 0)
        if not count:
            raise RuntimeError("cannot release un-acquired lock")
        if count > 1:
            self._holds[tid] = count - 1
            return
        del self._holds[tid]
        yield Op(OpKind.UNLOCK, self._mutex)

    @guest_op
    def __enter__(self):
        yield from self.acquire()
        return self

    @guest_op
    def __exit__(self, exc_type, exc, tb):
        yield from self.release()
        return False


# ---------------------------------------------------------------------------
# condition variables
# ---------------------------------------------------------------------------

class Condition:
    """``threading.Condition`` over a shim :class:`Lock`/:class:`RLock`
    plus a runtime :class:`CondVar`.

    The runtime WAIT op atomically releases the mutex and parks; for an
    RLock the shim recursion state is saved around the wait, stdlib
    ``_release_save`` style.
    """

    def __init__(self, lock=None) -> None:
        ctx = current_context("threading.Condition")
        self._ctx = ctx
        if lock is None:
            lock = RLock()
        if not isinstance(lock, (Lock, RLock)):
            raise ShimUsageError(
                "threading.Condition: lock must be a shim Lock or RLock"
            )
        self._lock = lock
        self._cv = ctx.make(
            _RtCondVar, label="threading.Condition",
            sites={OpKind.WAIT: "threading.Condition.wait",
                   OpKind.NOTIFY: "threading.Condition.notify",
                   OpKind.NOTIFY_ALL: "threading.Condition.notify_all"},
        )

    # lock protocol delegates to the underlying shim lock
    @guest_op
    def acquire(self, *args, **kwargs):
        return (yield from self._lock.acquire(*args, **kwargs))

    @guest_op
    def release(self):
        yield from self._lock.release()

    @guest_op
    def __enter__(self):
        yield from self._lock.__enter__()
        return self

    @guest_op
    def __exit__(self, exc_type, exc, tb):
        return (yield from self._lock.__exit__(exc_type, exc, tb))

    def _check_owned(self, where: str) -> None:
        if not self._lock._holds.get(self._ctx.current_tid):
            raise RuntimeError(f"cannot {where} on un-acquired lock")

    @guest_op
    def wait(self, timeout=None):
        ticks = _timeout_ticks("threading.Condition.wait", timeout)
        self._check_owned("wait")
        # stdlib _release_save/_acquire_restore: the WAIT op atomically
        # releases the runtime mutex (once — an RLock holds it once
        # regardless of recursion depth) and re-acquires it on wake; the
        # shim-side hold entry is parked across the wait.  A timed wait
        # reports the stdlib contract: True if notified, False if the
        # virtual-clock deadline fired first (the mutex is re-acquired
        # either way).
        tid = self._ctx.current_tid
        saved = self._lock._holds.pop(tid)
        got = yield Op(
            OpKind.WAIT, self._cv, None, self._lock._mutex, timeout=ticks
        )
        self._lock._holds[tid] = saved
        return got is not False

    @guest_op
    def wait_for(self, predicate, timeout=None):
        _no_timeout(
            "threading.Condition.wait_for", timeout,
            "loop over Condition.wait(timeout=) re-testing the predicate",
        )
        result = yield from _rt_call(predicate)
        while not result:
            yield from self.wait()
            result = yield from _rt_call(predicate)
        return result

    @guest_op
    def notify(self, n: int = 1):
        self._check_owned("notify")
        for _ in range(n):
            yield Op(OpKind.NOTIFY, self._cv)

    @guest_op
    def notify_all(self):
        self._check_owned("notify")
        yield Op(OpKind.NOTIFY_ALL, self._cv)


# ---------------------------------------------------------------------------
# semaphores
# ---------------------------------------------------------------------------

class Semaphore:
    """``threading.Semaphore`` backed by the runtime semaphore."""

    _LABEL = "threading.Semaphore"

    def __init__(self, value: int = 1) -> None:
        if value < 0:
            raise ValueError("semaphore initial value must be >= 0")
        ctx = current_context(self._LABEL)
        self._ctx = ctx
        self._sem = ctx.make(
            _RtSemaphore, value, label=self._LABEL,
            sites={OpKind.SEM_ACQUIRE: f"{self._LABEL}.acquire",
                   OpKind.SEM_RELEASE: f"{self._LABEL}.release"},
        )

    @guest_op
    def acquire(self, blocking: bool = True, timeout=None):
        _no_nonblocking(f"{self._LABEL}.acquire", blocking)
        ticks = _timeout_ticks(f"{self._LABEL}.acquire", timeout)
        got = yield Op(OpKind.SEM_ACQUIRE, self._sem, timeout=ticks)
        return got is not False

    def _post_release(self, new_count: int) -> None:
        pass

    @guest_op
    def release(self, n: int = 1):
        if n < 1:
            raise ValueError("n must be one or more")
        for _ in range(n):
            new_count = yield Op(OpKind.SEM_RELEASE, self._sem)
            self._post_release(new_count)

    @guest_op
    def __enter__(self):
        yield from self.acquire()
        return self

    @guest_op
    def __exit__(self, exc_type, exc, tb):
        yield from self.release()
        return False


class BoundedSemaphore(Semaphore):
    """``threading.BoundedSemaphore``.

    The over-release check observes the post-release count delivered by
    the SEM_RELEASE op itself, so it is atomic with the release (the
    stdlib checks-then-releases under an internal lock; here the release
    lands and the ``ValueError`` is raised at the same scheduling
    point).
    """

    _LABEL = "threading.BoundedSemaphore"

    def __init__(self, value: int = 1) -> None:
        super().__init__(value)
        self._initial = value

    def _post_release(self, new_count: int) -> None:
        if new_count > self._initial:
            raise ValueError("Semaphore released too many times")


# ---------------------------------------------------------------------------
# barriers and events
# ---------------------------------------------------------------------------

class Barrier:
    """``threading.Barrier`` (without ``action``/``timeout``/abort)."""

    def __init__(self, parties: int, action=None, timeout=None) -> None:
        if action is not None:
            raise ShimUsageError(
                "threading.Barrier: action callbacks are not supported"
            )
        _no_timeout(
            "threading.Barrier", timeout,
            "a per-waiter Event.wait(timeout=) guarding the rendezvous",
        )
        ctx = current_context("threading.Barrier")
        self._ctx = ctx
        self._barrier = ctx.make(
            _RtBarrier, parties, label="threading.Barrier",
            sites={OpKind.BARRIER_WAIT: "threading.Barrier.wait"},
        )
        self._parties = parties

    @property
    def parties(self) -> int:
        return self._parties

    @guest_op
    def wait(self, timeout=None):
        _no_timeout(
            "threading.Barrier.wait", timeout,
            "a per-waiter Event.wait(timeout=) guarding the rendezvous",
        )
        # the runtime barrier hands back this thread's arrival index
        # (0..parties-1 within the cohort) as the op's send value
        return (yield Op(OpKind.BARRIER_WAIT, self._barrier))


class Event:
    """``threading.Event`` over a boolean SharedVar; ``wait`` is the
    runtime's *await* construct (a blocking READ enabled once the flag
    is truthy), so no spin schedules are generated."""

    def __init__(self) -> None:
        ctx = current_context("threading.Event")
        self._ctx = ctx
        self._flag = ctx.make(
            _RtSharedVar, False, label="threading.Event",
            sites={OpKind.READ: "threading.Event.wait",
                   OpKind.WRITE: "threading.Event.set"},
        )

    @guest_op
    def set(self):
        yield Op(OpKind.WRITE, self._flag, None, True)

    @guest_op
    def clear(self):
        yield Op(OpKind.WRITE, self._flag, None, False)

    @guest_op
    def is_set(self):
        return bool((yield Op(OpKind.READ, self._flag)))

    @guest_op
    def wait(self, timeout=None):
        ticks = _timeout_ticks("threading.Event.wait", timeout)
        got = yield Op(OpKind.READ, self._flag, None, _truthy, timeout=ticks)
        return got is not False


def _truthy(value) -> bool:
    return bool(value)


# ---------------------------------------------------------------------------
# threads
# ---------------------------------------------------------------------------

def _spawned_body(api, ctx, guest, args, kwargs):
    """Body handed to the runtime SPAWN op: drives the resolved guest
    on the freshly assigned tid."""
    if guest is None:
        return None
    return (yield from drive(ctx, api.tid, guest(*args, **kwargs)))


class Thread:
    """``threading.Thread``: ``start`` spawns a guest thread, ``join``
    blocks on its termination.  Both ``target=`` functions and ``run()``
    overrides in subclasses are instrumented automatically."""

    def __init__(self, group=None, target=None, name=None, args=(),
                 kwargs=None, *, daemon=None) -> None:
        if group is not None:
            raise ShimUsageError("threading.Thread: group must be None")
        self._ctx = current_context("threading.Thread")
        self._target = target
        self._args = tuple(args)
        self._kwargs = dict(kwargs) if kwargs else {}
        self._name = name
        self._daemon = bool(daemon) if daemon is not None else False
        self._started = False
        self._tid: Optional[int] = None

    @property
    def name(self) -> str:
        if self._name is not None:
            return self._name
        return f"Thread-T{self._tid}" if self._tid is not None else "Thread"

    @name.setter
    def name(self, value: str) -> None:
        self._name = value

    @property
    def daemon(self) -> bool:
        return self._daemon

    @daemon.setter
    def daemon(self, value: bool) -> None:
        self._daemon = bool(value)

    @property
    def ident(self) -> Optional[int]:
        return self._tid

    def run(self):
        """Stdlib hook: subclasses override this instead of passing
        ``target=``.  The override (not this default) is instrumented."""
        if self._target is not None:
            return self._target(*self._args, **self._kwargs)
        return None

    def _resolve_guest(self):
        if type(self).run is not Thread.run:
            return ensure_guest(self.run)  # bound method of the subclass
        if self._target is None:
            return None
        return ensure_guest(self._target)

    @guest_op
    def start(self):
        if self._started:
            raise RuntimeError("threads can only be started once")
        self._started = True
        guest = self._resolve_guest()
        ctx = self._ctx
        ctx.note_spawn()
        if guest is not None and type(self).run is not Thread.run:
            # run() override: args were consumed by __init__, the bound
            # method takes none
            payload = (_spawned_body, (ctx, guest, (), {}))
        else:
            payload = (_spawned_body, (ctx, guest, self._args, self._kwargs))
        self._tid = yield Op(OpKind.SPAWN, None, payload)

    @guest_op
    def join(self, timeout=None):
        _no_timeout(
            "threading.Thread.join", timeout,
            "an Event the worker sets on exit, awaited with "
            "Event.wait(timeout=)",
        )
        if not self._started:
            raise RuntimeError("cannot join thread before it is started")
        yield Op(OpKind.JOIN, None, self._tid)

    def is_alive(self):
        raise ShimUsageError(
            "threading.Thread.is_alive: polling liveness is not "
            "supported; use join() or an Event"
        )


class _CurrentThread:
    """Minimal stand-in returned by :func:`current_thread`."""

    __slots__ = ("name", "ident")

    def __init__(self, name: str, ident: int) -> None:
        self.name = name
        self.ident = ident


def current_thread() -> _CurrentThread:
    ctx = current_context("threading.current_thread()")
    tid = ctx.current_tid
    return _CurrentThread("MainThread" if tid == 0 else f"Thread-T{tid}", tid)


def __getattr__(name: str):
    if name.startswith("__"):
        raise AttributeError(name)
    raise ShimUsageError(
        f"repro.shim.threading does not provide {name!r}; supported: "
        + ", ".join(sorted(__all__))
    )
