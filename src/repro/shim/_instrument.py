"""Generator-rewriting instrumentation for real-code guests.

:func:`instrument` turns an ordinary Python function into a *guest
generator function* by rewriting its AST:

* every call ``f(x)`` becomes ``(yield from __repro_rt__.call(f, x))``
  — if ``f`` is itself a guest (a shim method like ``Lock.acquire``, an
  instrumented helper, or a nested function marked during rewriting) it
  is delegated with ``yield from`` so its scheduling points surface;
  any other callable runs atomically, exactly like local computation
  between two yields in DSL guests;
* attribute reads ``obj.x`` become ``attr_get`` yields and attribute
  writes ``obj.x = v`` / ``obj.x += v`` become ``attr_set``/``attr_aug``
  yields — these emit READ/WRITE events only when ``obj`` is a
  ``@repro.shared`` object (its attributes live in SharedVar cells), so
  data races on shared state stay DPOR-visible; an augmented assignment
  is two events (the load and the store), which is what makes the
  classic lost-update interleaving reachable;
* ``with`` statements are expanded into explicit ``__enter__`` /
  ``try/finally __exit__`` calls so shim locks block at the right point;
* nested ``def``-s are rewritten too and marked as guests, except
  nested generator functions, which are left untouched.

Lambdas and comprehensions are *not* descended into (``yield`` is
illegal there); calls inside them run atomically.  ``async`` constructs
are rejected with :class:`~repro.errors.InstrumentError`.

The rewritten source is compiled with the original function's globals
(plus one reserved name, ``__repro_rt__``, bound to the runtime helper
namespace below) so imports and module-level helpers resolve normally;
closures are reconstructed through a generated factory function.
"""

from __future__ import annotations

import ast
import inspect
import operator
import textwrap
import types
from typing import Any, List

from ..core.events import Op, OpKind
from ..errors import InstrumentError

#: Reserved global injected into the instrumented function's module
#: namespace; all generated code reaches the runtime through it.
RT_NAME = "__repro_rt__"


# ---------------------------------------------------------------------------
# runtime helpers referenced by generated code
# ---------------------------------------------------------------------------

def _cell_of(obj: Any, name: str):
    """The SharedVar cell backing ``obj.name`` if ``obj`` is a
    ``@repro.shared`` instance with that attribute, else None."""
    d = getattr(obj, "__dict__", None)
    if type(d) is dict:
        cells = d.get("_repro_cells")
        if type(cells) is dict:
            return cells.get(name)
    return None


def _rt_call(fn, /, *args, **kwargs):
    """Apply a call site: delegate to guests, run everything else
    atomically."""
    if getattr(fn, "__repro_guest__", False):
        return (yield from fn(*args, **kwargs))
    return fn(*args, **kwargs)


def _rt_attr_get(obj, name):
    cell = _cell_of(obj, name)
    if cell is not None:
        return (yield Op(OpKind.READ, cell))
    return getattr(obj, name)


def _rt_attr_set(obj, name, value):
    cell = _cell_of(obj, name)
    if cell is not None:
        yield Op(OpKind.WRITE, cell, None, value)
        return
    setattr(obj, name, value)
    return
    yield  # pragma: no cover - keeps this a generator on the plain path


_AUG_OPS = {
    "Add": operator.add, "Sub": operator.sub, "Mult": operator.mul,
    "Div": operator.truediv, "FloorDiv": operator.floordiv,
    "Mod": operator.mod, "Pow": operator.pow, "LShift": operator.lshift,
    "RShift": operator.rshift, "BitOr": operator.or_,
    "BitXor": operator.xor, "BitAnd": operator.and_,
    "MatMult": operator.matmul,
}


def _rt_attr_aug(obj, name, opname, value):
    """``obj.x <op>= value``: on shared cells this is a separate READ
    and WRITE (two scheduling points), deliberately racy."""
    combine = _AUG_OPS[opname]
    cell = _cell_of(obj, name)
    if cell is not None:
        old = yield Op(OpKind.READ, cell)
        yield Op(OpKind.WRITE, cell, None, combine(old, value))
        return
    setattr(obj, name, combine(getattr(obj, name), value))


def _rt_mark(fn):
    """Decorator stamped onto rewritten nested functions."""
    fn.__repro_guest__ = True
    return fn


class _Runtime:
    """The ``__repro_rt__`` namespace seen by generated code."""

    call = staticmethod(_rt_call)
    attr_get = staticmethod(_rt_attr_get)
    attr_set = staticmethod(_rt_attr_set)
    attr_aug = staticmethod(_rt_attr_aug)
    mark = staticmethod(_rt_mark)


_RT = _Runtime()


# ---------------------------------------------------------------------------
# the AST rewriter
# ---------------------------------------------------------------------------

def _rt_attr(name: str) -> ast.Attribute:
    return ast.Attribute(
        value=ast.Name(id=RT_NAME, ctx=ast.Load()), attr=name, ctx=ast.Load()
    )


def _scope_has_yield(node: ast.AST) -> bool:
    """Does this function's own scope contain a yield (ignoring nested
    functions and lambdas)?"""
    for child in ast.iter_child_nodes(node):
        if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        if isinstance(child, (ast.Yield, ast.YieldFrom)):
            return True
        if _scope_has_yield(child):
            return True
    return False


def _dummy_yield() -> ast.stmt:
    """``if False: yield`` — forces the def to compile as a generator
    function even when no real scheduling point was inserted."""
    return ast.If(
        test=ast.Constant(value=False),
        body=[ast.Expr(value=ast.Yield(value=None))],
        orelse=[],
    )


class _Instrumenter(ast.NodeTransformer):

    def __init__(self) -> None:
        self._n = 0

    def _temp(self, kind: str) -> str:
        self._n += 1
        return f"__repro_{kind}{self._n}"

    def _visit_block(self, stmts: List[ast.stmt]) -> List[ast.stmt]:
        out: List[ast.stmt] = []
        for stmt in stmts:
            result = self.visit(stmt)
            if result is None:
                continue
            if isinstance(result, list):
                out.extend(result)
            else:
                out.append(result)
        return out

    # -- expressions ---------------------------------------------------
    def visit_Call(self, node: ast.Call):
        if isinstance(node.func, ast.Attribute):
            # method lookup itself is not a data read; only the object
            # expression is instrumented
            func: ast.expr = ast.copy_location(
                ast.Attribute(
                    value=self.visit(node.func.value),
                    attr=node.func.attr,
                    ctx=ast.Load(),
                ),
                node.func,
            )
        else:
            func = self.visit(node.func)
        args = [self.visit(a) for a in node.args]
        keywords = [self.visit(k) for k in node.keywords]
        call = ast.Call(func=_rt_attr("call"), args=[func] + args,
                        keywords=keywords)
        return ast.copy_location(ast.YieldFrom(value=call), node)

    def visit_Attribute(self, node: ast.Attribute):
        if not isinstance(node.ctx, ast.Load):
            return self.generic_visit(node)
        call = ast.Call(
            func=_rt_attr("attr_get"),
            args=[self.visit(node.value), ast.Constant(value=node.attr)],
            keywords=[],
        )
        return ast.copy_location(ast.YieldFrom(value=call), node)

    def visit_Lambda(self, node: ast.Lambda):
        return node  # yield is illegal inside; runs atomically

    def visit_ListComp(self, node):
        return node

    def visit_SetComp(self, node):
        return node

    def visit_DictComp(self, node):
        return node

    def visit_GeneratorExp(self, node):
        return node

    # -- assignments ---------------------------------------------------
    def _attr_set_stmt(self, target: ast.Attribute, value: ast.expr,
                       origin: ast.stmt) -> ast.stmt:
        call = ast.Call(
            func=_rt_attr("attr_set"),
            args=[self.visit(target.value),
                  ast.Constant(value=target.attr), value],
            keywords=[],
        )
        return ast.copy_location(ast.Expr(value=ast.YieldFrom(value=call)),
                                 origin)

    def visit_Assign(self, node: ast.Assign):
        value = self.visit(node.value)
        if not any(isinstance(t, ast.Attribute) for t in node.targets):
            node.value = value
            node.targets = [self.visit(t) for t in node.targets]
            return node
        if len(node.targets) == 1:
            return self._attr_set_stmt(node.targets[0], value, node)
        tmp = self._temp("tmp")
        stmts: List[ast.stmt] = [ast.copy_location(
            ast.Assign(targets=[ast.Name(id=tmp, ctx=ast.Store())],
                       value=value),
            node,
        )]
        for target in node.targets:
            load = ast.Name(id=tmp, ctx=ast.Load())
            if isinstance(target, ast.Attribute):
                stmts.append(self._attr_set_stmt(target, load, node))
            else:
                stmts.append(ast.copy_location(
                    ast.Assign(targets=[self.visit(target)], value=load),
                    node,
                ))
        return stmts

    def visit_AnnAssign(self, node: ast.AnnAssign):
        if isinstance(node.target, ast.Attribute) and node.value is not None:
            return self._attr_set_stmt(node.target, self.visit(node.value),
                                       node)
        if node.value is not None:
            node.value = self.visit(node.value)
        return node

    def visit_AugAssign(self, node: ast.AugAssign):
        value = self.visit(node.value)
        if not isinstance(node.target, ast.Attribute):
            node.value = value
            return node
        opname = type(node.op).__name__
        if opname not in _AUG_OPS:
            raise InstrumentError(
                f"unsupported augmented assignment operator {opname}"
            )
        call = ast.Call(
            func=_rt_attr("attr_aug"),
            args=[self.visit(node.target.value),
                  ast.Constant(value=node.target.attr),
                  ast.Constant(value=opname), value],
            keywords=[],
        )
        return ast.copy_location(ast.Expr(value=ast.YieldFrom(value=call)),
                                 node)

    # -- with ----------------------------------------------------------
    def visit_With(self, node: ast.With):
        body = self._visit_block(node.body)
        for item in reversed(node.items):
            ctx_expr = self.visit(item.context_expr)
            tmp = self._temp("cm")

            def bound(method: str) -> ast.Attribute:
                return ast.Attribute(
                    value=ast.Name(id=tmp, ctx=ast.Load()),
                    attr=method, ctx=ast.Load(),
                )

            enter = ast.YieldFrom(value=ast.Call(
                func=_rt_attr("call"), args=[bound("__enter__")], keywords=[]
            ))
            none = ast.Constant(value=None)
            exit_stmt = ast.Expr(value=ast.YieldFrom(value=ast.Call(
                func=_rt_attr("call"),
                args=[bound("__exit__"), none, none, none], keywords=[]
            )))
            stmts: List[ast.stmt] = [
                ast.Assign(targets=[ast.Name(id=tmp, ctx=ast.Store())],
                           value=ctx_expr),
                ast.Assign(targets=[item.optional_vars], value=enter)
                if item.optional_vars is not None
                else ast.Expr(value=enter),
                ast.Try(body=body, handlers=[], orelse=[],
                        finalbody=[exit_stmt]),
            ]
            body = [ast.copy_location(s, node) for s in stmts]
        return body

    # -- nested functions ----------------------------------------------
    def visit_FunctionDef(self, node: ast.FunctionDef):
        if _scope_has_yield(node):
            return node  # already a generator; leave it alone
        node.body = self._visit_block(node.body)
        node.body.append(_dummy_yield())
        node.decorator_list = [_rt_attr("mark")] + node.decorator_list
        return node

    # -- rejected constructs -------------------------------------------
    def visit_AsyncFunctionDef(self, node):
        raise InstrumentError("async functions cannot be instrumented")

    def visit_AsyncWith(self, node):
        raise InstrumentError("async with cannot be instrumented")

    def visit_AsyncFor(self, node):
        raise InstrumentError("async for cannot be instrumented")

    def visit_Await(self, node):
        raise InstrumentError("await cannot be instrumented")


# ---------------------------------------------------------------------------
# public entry points
# ---------------------------------------------------------------------------

def instrument(fn):
    """Rewrite plain function ``fn`` into a guest generator function.

    Idempotent (guests pass through) and cached on the original
    function.  Generator and async functions are rejected: a generator
    function that yields :class:`Op` values already *is* a guest — give
    it to the DSL frontend instead.
    """
    if getattr(fn, "__repro_guest__", False):
        return fn
    cached = getattr(fn, "__repro_cached_guest__", None)
    if cached is not None:
        return cached
    if not inspect.isfunction(fn):
        raise InstrumentError(
            f"cannot instrument {fn!r}: expected a plain Python function"
        )
    if inspect.isgeneratorfunction(fn):
        raise InstrumentError(
            f"cannot instrument generator function {fn.__name__!r}; "
            f"generator functions yielding Op values are already guests"
        )
    if inspect.iscoroutinefunction(fn):
        raise InstrumentError(
            f"cannot instrument async function {fn.__name__!r}"
        )
    try:
        src = textwrap.dedent(inspect.getsource(fn))
    except (OSError, TypeError) as exc:
        raise InstrumentError(
            f"cannot instrument {fn.__name__!r}: source is unavailable "
            f"({exc}); define the function in an importable module file"
        ) from exc
    try:
        tree = ast.parse(src)
    except SyntaxError as exc:  # e.g. source slicing artifacts
        raise InstrumentError(
            f"cannot parse source of {fn.__name__!r}: {exc}"
        ) from exc
    fndef = tree.body[0]
    if not isinstance(fndef, ast.FunctionDef):
        raise InstrumentError(
            f"source of {fn.__name__!r} does not start with a def"
        )
    fndef.decorator_list = []
    rewriter = _Instrumenter()
    fndef.body = rewriter._visit_block(fndef.body)
    fndef.body.append(_dummy_yield())

    freevars = fn.__code__.co_freevars
    if freevars:
        factory = ast.FunctionDef(
            name="__repro_factory",
            args=ast.arguments(
                posonlyargs=[],
                args=[ast.arg(arg=v) for v in freevars],
                vararg=None, kwonlyargs=[], kw_defaults=[],
                kwarg=None, defaults=[],
            ),
            body=[fndef, ast.Return(value=ast.Name(id=fndef.name,
                                                   ctx=ast.Load()))],
            decorator_list=[],
        )
        tree.body = [factory]
    ast.fix_missing_locations(tree)

    code = compile(tree, filename=f"<repro.instrument {fn.__name__}>",
                   mode="exec")
    fn.__globals__[RT_NAME] = _RT
    ns: dict = {}
    exec(code, fn.__globals__, ns)
    if freevars:
        try:
            cells = [c.cell_contents for c in (fn.__closure__ or ())]
        except ValueError as exc:
            raise InstrumentError(
                f"cannot instrument {fn.__name__!r}: a closure cell is "
                f"still empty (self-referential closure?)"
            ) from exc
        guest = ns["__repro_factory"](*cells)
    else:
        guest = ns[fndef.name]
    guest.__repro_guest__ = True
    guest.__wrapped__ = fn
    guest.__qualname__ = fn.__qualname__
    guest.__doc__ = fn.__doc__
    fn.__repro_cached_guest__ = guest
    return guest


def ensure_guest(fn):
    """``fn`` as a guest: guests pass through, bound methods are
    instrumented on their underlying function, plain functions are
    instrumented."""
    if getattr(fn, "__repro_guest__", False):
        return fn
    if isinstance(fn, types.MethodType):
        return types.MethodType(ensure_guest(fn.__func__), fn.__self__)
    return instrument(fn)
