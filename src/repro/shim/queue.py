"""Drop-in ``queue`` replacement for checked programs.

``Queue`` is backed by a runtime :class:`Channel` (the FIFO) plus an
:class:`AtomicInt` (the ``unfinished_tasks`` counter for
``task_done``/``join``).  ``put`` is two events — the counter bump and
the deposit — and ``join`` is the runtime's *await* construct (a
blocking READ enabled once the counter is zero), so no spin schedules
are generated.

``Empty``/``Full`` are re-exported from the stdlib module so except
clauses in real code keep matching.  Timed ``get``/``put`` run on the
runtime's deterministic virtual clock — the timeout firing is an
explorable scheduling branch that raises the stdlib exception, never a
wall-clock race — while non-blocking operations remain rejected up
front with :class:`~repro.errors.ShimUsageError` (there is no single
"current" state to poll).
"""

from __future__ import annotations

from queue import Empty, Full  # stdlib re-export: except-clauses keep working

from ..core.events import TIMED_OUT, Op, OpKind, to_ticks
from ..errors import ShimUsageError
from ..runtime.atomic import AtomicInt as _RtAtomicInt
from ..runtime.channel import Channel as _RtChannel
from ._context import current_context, guest_op

__all__ = ["Queue", "Empty", "Full"]

#: Capacity used for "infinite" queues (maxsize <= 0).  Any schedule
#: reaching this many buffered items would have exploded long before.
_UNBOUNDED = 1 << 30


def _is_zero(value) -> bool:
    return value == 0


def _q_ticks(timeout):
    """Stdlib ``queue`` timeout contract: ``None`` waits forever, a
    negative value is a ``ValueError`` (no ``-1`` convention here)."""
    if timeout is None:
        return None
    if timeout < 0:
        raise ValueError("'timeout' must be a non-negative number")
    return to_ticks(timeout)


def _task_done_apply(old):
    """RMW payload for ``task_done``: refuse to go below zero (the
    ValueError is raised by the caller on a False result)."""
    if old <= 0:
        return old, False
    return old - 1, True


class Queue:
    """``queue.Queue`` (FIFO) with ``task_done``/``join`` support."""

    def __init__(self, maxsize: int = 0) -> None:
        ctx = current_context("queue.Queue")
        self._ctx = ctx
        self.maxsize = maxsize
        capacity = maxsize if maxsize > 0 else _UNBOUNDED
        self._chan = ctx.make(
            _RtChannel, capacity, label="queue.Queue",
            sites={OpKind.CHAN_SEND: "queue.Queue.put",
                   OpKind.CHAN_RECV: "queue.Queue.get"},
        )
        self._unfinished = ctx.make(
            _RtAtomicInt, 0, label="queue.Queue.unfinished",
            sites={OpKind.READ: "queue.Queue.join"},
        )

    @guest_op
    def put(self, item, block: bool = True, timeout=None):
        if not block and self.maxsize > 0:
            raise ShimUsageError(
                "queue.Queue.put: non-blocking put on a bounded queue "
                "is not supported under systematic exploration"
            )
        ticks = _q_ticks(timeout)
        # counter first: a consumer's task_done can then never observe
        # the deposit before the bump
        yield Op(OpKind.RMW, self._unfinished, None,
                 _RtAtomicInt._fetch_add(1))
        got = yield Op(OpKind.CHAN_SEND, self._chan, item, timeout=ticks)
        if got is TIMED_OUT:
            # the virtual-clock deadline fired before capacity opened:
            # compensate the optimistic bump, then report Full.  A
            # concurrent join() can observe the transient bump — that
            # window exists in any schedule where the put blocks, so it
            # adds no behaviours the bounded queue did not already have.
            yield Op(OpKind.RMW, self._unfinished, None,
                     _RtAtomicInt._fetch_add(-1))
            raise Full

    @guest_op
    def put_nowait(self, item):
        yield from self.put(item, block=False)

    @guest_op
    def get(self, block: bool = True, timeout=None):
        if not block:
            raise ShimUsageError(
                "queue.Queue.get: non-blocking get is not supported "
                "under systematic exploration (there is no single "
                "'current' state to poll)"
            )
        ticks = _q_ticks(timeout)
        value = yield Op(OpKind.CHAN_RECV, self._chan, timeout=ticks)
        if value is TIMED_OUT:
            raise Empty
        return value

    def get_nowait(self):
        raise ShimUsageError(
            "queue.Queue.get_nowait is not supported under systematic "
            "exploration; use get()"
        )

    @guest_op
    def task_done(self):
        ok = yield Op(OpKind.RMW, self._unfinished, None, _task_done_apply)
        if not ok:
            raise ValueError("task_done() called too many times")

    @guest_op
    def join(self):
        yield Op(OpKind.READ, self._unfinished, None, _is_zero)

    def qsize(self):
        raise ShimUsageError(
            "queue.Queue.qsize is not supported under systematic "
            "exploration (its value is schedule-dependent)"
        )

    def empty(self):
        raise ShimUsageError(
            "queue.Queue.empty is not supported under systematic "
            "exploration (its value is schedule-dependent)"
        )

    def full(self):
        raise ShimUsageError(
            "queue.Queue.full is not supported under systematic "
            "exploration (its value is schedule-dependent)"
        )


def __getattr__(name: str):
    if name.startswith("__"):
        raise AttributeError(name)
    raise ShimUsageError(
        f"repro.shim.queue does not provide {name!r}; supported: "
        + ", ".join(sorted(__all__))
    )
