"""Shim execution context and the guest driver loop.

One :class:`ShimContext` exists per *program instance*: the builder of a
shim program creates a fresh one each time the program is instantiated,
so the runtime objects the shim classes allocate land in that instance's
:class:`~repro.runtime.objects.ObjectRegistry`, with construction-order
oids — the same determinism contract DSL programs get from declaring
objects in the build function.

The context is *ambient*: shim constructors (``threading.Lock()``,
``queue.Queue()``) find it through :func:`current_context` rather than
via an explicit parameter, because they must mirror stdlib signatures
exactly.  :func:`drive` re-activates the right context before every
generator resume, so interleaved executors over different instances (or
different programs) can never observe each other's context.

**The setup-phase rule.**  Registry objects may only be created by the
main thread, *before* the first ``Thread.start()``.  This is what makes
oid assignment deterministic not only across schedules but also across
executor snapshot restores — ``Executor.from_snapshot`` re-registers
each thread's handle and then immediately fast-forwards that thread's
generator (in tid order), so an object created mid-run by tid 0 after a
spawn would be re-registered in a different order than the original
execution.  Confining creation to the pre-spawn prefix of tid 0 makes
both orders identical.  Violations raise
:class:`~repro.errors.ShimUsageError` with an explanation.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from ..errors import GuestCrashError, GuestError, ReproError, ShimUsageError
from ..runtime.objects import ObjectRegistry, SharedObject
from ..runtime.sharedvar import SharedVar

#: The context whose guest code is currently executing (set by drive()
#: before every resume; constructors read it via current_context()).
_ACTIVE: Optional["ShimContext"] = None


class ShimContext:
    """Per-program-instance state shared by all shim objects."""

    __slots__ = ("registry", "current_tid", "spawned", "_counts")

    def __init__(self, registry: ObjectRegistry) -> None:
        self.registry = registry
        self.current_tid = 0
        self.spawned = False          # has any Thread.start() executed?
        self._counts: Dict[str, int] = {}  # per-label naming counters

    # -- object creation (setup phase only) -----------------------------
    def make(self, cls, *args, label: str,
             sites: Optional[Dict[Any, str]] = None) -> SharedObject:
        """Create a runtime object backing one shim object.

        ``label`` names the stdlib class (``"threading.Lock"``); the
        runtime object is named ``label#n`` with a per-label counter so
        traces stay readable.  ``sites`` optionally maps op kinds to
        stdlib call-site strings for blocking diagnostics.
        """
        self._require_setup_phase(label)
        n = self._counts.get(label, 0)
        self._counts[label] = n + 1
        obj = cls(self.registry, *args, name=f"{label}#{n}")
        if sites:
            obj.op_sites = sites
        return obj

    def make_cell(self, owner: str, attr: str, initial: Any,
                  sites: Optional[Dict[Any, str]] = None) -> SharedVar:
        """Create the :class:`SharedVar` cell backing one attribute of a
        ``@repro.shared`` object."""
        label = f"{owner}.{attr}"
        self._require_setup_phase(label)
        n = self._counts.get(label, 0)
        self._counts[label] = n + 1
        cell = SharedVar(self.registry, initial, f"{label}#{n}")
        if sites:
            cell.op_sites = sites
        return cell

    def _require_setup_phase(self, label: str) -> None:
        if self.current_tid != 0:
            raise ShimUsageError(
                f"{label} created by worker thread T{self.current_tid}; "
                f"shim programs must create all shared state and sync "
                f"objects in the main thread, before starting threads "
                f"(object ids must not depend on the schedule)"
            )
        if self.spawned:
            raise ShimUsageError(
                f"{label} created after Thread.start(); shim programs "
                f"must create all shared state and sync objects before "
                f"the first thread starts (object ids must be identical "
                f"across schedules and snapshot restores)"
            )

    def note_spawn(self) -> None:
        self.spawned = True


def current_context(what: str = "shim object") -> ShimContext:
    """The active context, or a :class:`ShimUsageError` explaining that
    shim objects only exist inside a checked program."""
    if _ACTIVE is None:
        raise ShimUsageError(
            f"{what} constructed outside a checked program; shim "
            f"threading/queue objects can only be created inside a "
            f"function explored via repro.check() (or "
            f"repro.shim.program_from_function)"
        )
    return _ACTIVE


def guest_op(genfn):
    """Mark a hand-written generator method/function as a *guest*: the
    instrumentation runtime ``yield from``-s marked callables instead of
    calling them atomically.  All shim methods that emit ops are marked."""
    genfn.__repro_guest__ = True
    return genfn


def drive(ctx: ShimContext, tid: int, gen):
    """Run guest generator ``gen`` on behalf of thread ``tid``.

    The driver forwards ops outward and values/injected errors inward,
    re-activating ``ctx`` (and stamping ``current_tid``) before every
    resume, so ambient lookups always see the right instance however
    executors interleave.  Three exception contracts:

    * :class:`ReproError` (including :class:`GuestError`) propagates
      unchanged — the executor's ``_advance``/``_advance_throw`` handle
      guest errors, and host errors must stay loud;
    * any other ``Exception`` escaping the guest becomes a
      :class:`GuestCrashError` finding — a real ``assert``/``ValueError``
      bug in checked code crashes only its thread;
    * an executor-injected :class:`GuestError` (``fx_throw``) arrives at
      our ``yield`` and is re-thrown *into* the guest, so ``q.put()`` on
      a closed channel raises at the user's call site.
    """
    global _ACTIVE
    send_value: Any = None
    throw_exc: Optional[GuestError] = None
    first = True
    try:
        while True:
            # active only while guest code runs: restored on suspension
            # and on exit, so host code between steps (and after the
            # program) cannot observe a stale context
            prev = _ACTIVE
            _ACTIVE = ctx
            ctx.current_tid = tid
            try:
                if first:
                    first = False
                    op = next(gen)
                elif throw_exc is not None:
                    exc, throw_exc = throw_exc, None
                    op = gen.throw(exc)
                else:
                    op = gen.send(send_value)
            except StopIteration as stop:
                return stop.value
            except ReproError:
                raise
            except Exception as exc:
                raise GuestCrashError(tid, exc) from exc
            finally:
                _ACTIVE = prev
            try:
                send_value = yield op
            except GuestError as injected:
                throw_exc = injected
    except GeneratorExit:
        # the host abandoned this thread mid-run (Executor.close, or a
        # discarded replay being collected): unwind the guest here, or
        # its own GC-time close sprays "ignored GeneratorExit" — a
        # guest suspended in an instrumented with-block re-yields once
        # per nesting level while its cleanup releases through the op
        # protocol, hence the bounded retry
        for _ in range(8):
            try:
                gen.close()
                break
            except RuntimeError:
                continue
            except Exception:
                break  # guest cleanup raised; the run is discarded
        raise
