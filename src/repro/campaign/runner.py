"""Campaign driver: shard a cell work-list across a process pool.

The driver owns *orchestration only* — skipping checkpointed cells,
fanning pending cells out to workers, flushing each completed cell to
the store, and re-assembling results in deterministic work-list order.
All actual exploration happens in :func:`repro.campaign.worker
.execute_cell`, identically for ``jobs=1`` (in-process, no pool) and
``jobs=N`` (a ``multiprocessing`` pool), so the two paths return
bit-for-bit identical statistics and differ only in wall-clock time.
"""

from __future__ import annotations

import multiprocessing
import sys
import time
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

from ..explore.base import ExplorationLimits
from .cells import CampaignCell
from .store import ResultStore
from .worker import CellResult, _pool_entry, execute_cell


def _pool_context() -> multiprocessing.context.BaseContext:
    """``fork`` on Linux (cheap workers that inherit the already-built
    suite registry); the platform default elsewhere — macOS and Windows
    deliberately default to ``spawn`` (fork is unsafe under macOS
    system frameworks)."""
    if sys.platform.startswith("linux"):
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context()


@dataclass
class CampaignResult:
    """Everything a campaign produced, in work-list order."""

    results: List[CellResult] = field(default_factory=list)
    num_executed: int = 0
    num_cached: int = 0
    jobs: int = 1
    elapsed: float = 0.0

    @property
    def failures(self) -> List[CellResult]:
        return [r for r in self.results if not r.ok]

    @property
    def unexpected(self) -> List[CellResult]:
        """Failed cells plus cells whose explorer reported findings on a
        benchmark the suite marks error-free — the smoke-CI red flags."""
        return [r for r in self.results
                if not r.ok or r.unexpected_findings]


def run_campaign(
    cells: Sequence[CampaignCell],
    limits: Optional[ExplorationLimits] = None,
    jobs: int = 1,
    verify: bool = True,
    store: Optional[ResultStore] = None,
    progress: Optional[Callable[[str], None]] = None,
    on_result: Optional[Callable[[CellResult], None]] = None,
) -> CampaignResult:
    """Execute every cell, at most ``jobs`` at a time.

    With a ``store``, cells already checkpointed as completed are
    returned from the checkpoint without re-execution, and every newly
    completed cell is flushed before the next one is handed out.
    ``progress`` receives one formatted line per executed cell;
    ``on_result`` receives the raw :class:`CellResult` (for callers that
    aggregate as results stream in).
    """
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    limits = limits or ExplorationLimits()
    start = time.monotonic()

    out = CampaignResult(jobs=jobs)
    by_cell = {}
    if store is not None:
        if store.limits is None:
            store.limits = limits
        if not store.loaded:  # callers may have pre-loaded (for a
            store.load()      # resume message); don't re-parse


    pending: List[CampaignCell] = []
    for cell in cells:
        cached = store.get(cell) if store is not None else None
        if cached is not None and cached.ok:
            by_cell[cell] = cached
            out.num_cached += 1
        else:
            pending.append(cell)

    def record(result: CellResult) -> None:
        by_cell[result.cell] = result
        out.num_executed += 1
        if store is not None:
            store.add(result)
        if on_result is not None:
            on_result(result)
        if progress is not None:
            if result.ok and result.stats is not None:
                progress(result.stats.summary())
            else:
                progress(
                    f"{result.cell.key:<28} FAILED: "
                    f"{(result.error or '?').splitlines()[0]}"
                )

    try:
        if jobs == 1 or len(pending) <= 1:
            for cell in pending:
                record(execute_cell(cell, limits, verify))
        else:
            ctx = _pool_context()
            with ctx.Pool(processes=min(jobs, len(pending))) as pool:
                work = [(cell, limits, verify) for cell in pending]
                for result in pool.imap_unordered(_pool_entry, work,
                                                  chunksize=1):
                    record(result)
    finally:
        # store.add rate-limits its flushes; guarantee the final state
        # (and interrupted partial state) reaches disk
        if store is not None:
            store.flush()

    out.results = [by_cell[cell] for cell in cells]
    out.elapsed = time.monotonic() - start
    return out
