"""Campaign driver: shard a cell work-list across a process pool.

The driver owns *orchestration only* — skipping checkpointed cells,
fanning pending cells out to workers, flushing each completed cell to
the store, and re-assembling results in deterministic work-list order.
All actual exploration happens in :func:`repro.campaign.worker
.execute_cell`, identically for ``jobs=1`` (in-process, no pool) and
``jobs=N`` (a ``multiprocessing`` pool), so the two paths return
bit-for-bit identical statistics and differ only in wall-clock time.

Two frontier-kernel features ride on top of the PR-1 orchestration:

* **intra-cell resume** — with a store, workers periodically
  checkpoint in-flight explorer snapshots as partial files; on resume
  a half-explored cell continues from its frontier (and a
  budget-limited cell resumed under a laxer ``--limit`` picks up where
  the old budget stopped);
* **intra-cell sharding** (``split_large=k``) — cells of splittable
  strategies are seeded in the driver, their frontiers split into
  ``k`` disjoint sub-frontiers executed as independent pool tasks, and
  the shard statistics union-merged back into one logical cell result
  (:func:`repro.campaign.aggregate.merge_shard_results`), so one huge
  DFS cell no longer serializes the whole campaign.
"""

from __future__ import annotations

import multiprocessing
import sys
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..explore.base import ExplorationLimits
from ..explore.controller import supports_split
from .cells import CampaignCell
from .split import DEFAULT_SEED_SCHEDULES, SplitPlan, prepare_split, shard_key
from .store import ResultStore
from .worker import CellResult, _pool_entry, execute_cell


def _pool_context() -> multiprocessing.context.BaseContext:
    """``fork`` on Linux (cheap workers that inherit the already-built
    suite registry); the platform default elsewhere — macOS and Windows
    deliberately default to ``spawn`` (fork is unsafe under macOS
    system frameworks)."""
    if sys.platform.startswith("linux"):
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context()


@dataclass
class CampaignResult:
    """Everything a campaign produced, in work-list order."""

    results: List[CellResult] = field(default_factory=list)
    num_executed: int = 0
    num_cached: int = 0
    num_resumed: int = 0  #: cells continued from a partial checkpoint
    num_split: int = 0    #: logical cells that ran as split shards
    jobs: int = 1
    elapsed: float = 0.0

    @property
    def failures(self) -> List[CellResult]:
        return [r for r in self.results if not r.ok]

    @property
    def unexpected(self) -> List[CellResult]:
        """Failed cells plus cells whose explorer reported findings on a
        benchmark the suite marks error-free — the smoke-CI red flags."""
        return [r for r in self.results
                if not r.ok or r.unexpected_findings]


#: a unit of pool work: the cell plus everything the worker needs
#: (resume snapshot, checkpoint file, shard identity)
_Task = Tuple[CampaignCell, Optional[ExplorationLimits], bool,
              Optional[dict], Optional[str], Optional[str], int, int]


def run_campaign(
    cells: Sequence[CampaignCell],
    limits: Optional[ExplorationLimits] = None,
    jobs: int = 1,
    verify: bool = True,
    store: Optional[ResultStore] = None,
    progress: Optional[Callable[[str], None]] = None,
    on_result: Optional[Callable[[CellResult], None]] = None,
    split_large: int = 0,
    split_seed_schedules: int = DEFAULT_SEED_SCHEDULES,
) -> CampaignResult:
    """Execute every cell, at most ``jobs`` at a time.

    With a ``store``, cells already checkpointed as completed are
    returned from the checkpoint without re-execution, every newly
    completed cell is flushed before the next one is handed out, and
    half-explored cells resume from their partial snapshots.
    ``progress`` receives one formatted line per executed cell;
    ``on_result`` receives the raw :class:`CellResult` (for callers that
    aggregate as results stream in).

    ``split_large >= 2`` shards every cell of a splittable strategy
    into that many frontier shards (see :mod:`repro.campaign.split`);
    other cells run whole, as before.
    """
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    if split_large == 1 or split_large < 0:
        raise ValueError(
            f"split_large must be 0 (off) or >= 2, got {split_large}"
        )
    limits = limits or ExplorationLimits()
    start = time.monotonic()

    out = CampaignResult(jobs=jobs)
    by_cell: Dict[CampaignCell, CellResult] = {}
    if store is not None:
        if store.limits is None:
            store.limits = limits
        if not store.loaded:  # callers may have pre-loaded (for a
            store.load()      # resume message); don't re-parse

    tasks: List[_Task] = []
    #: cells whose seed phase finished them outright (tiny cells)
    completed_plans: List[CellResult] = []
    #: logical split cells: cell -> (plan, {shard index -> result})
    split_runs: Dict[CampaignCell, Tuple[SplitPlan,
                                         Dict[int, CellResult]]] = {}

    def make_task(cell: CampaignCell, resume: Optional[dict],
                  key: Optional[str] = None,
                  shard: int = -1, num_shards: int = 0) -> _Task:
        ckpt_path = (str(store.partial_path(key or cell.key))
                     if store is not None else None)
        return (cell, limits, verify, resume, ckpt_path, key,
                shard, num_shards)

    for cell in cells:
        cached = store.get(cell) if store is not None else None
        if cached is not None and cached.ok:
            by_cell[cell] = cached
            out.num_cached += 1
            continue
        if split_large >= 2 and supports_split(cell.explorer):
            # deterministic driver-side seed + split; re-derived on
            # resume so completed shards can be served from the store
            plan = prepare_split(
                cell, limits, split_large, verify=verify,
                seed_schedules=split_seed_schedules,
            )
            if plan.completed:
                completed_plans.append(plan.seed_result)
                continue
            out.num_split += 1
            shard_results: Dict[int, CellResult] = {}
            split_runs[cell] = (plan, shard_results)
            for i, state in enumerate(plan.shard_states):
                key = shard_key(cell, i, plan.num_shards)
                cached_shard = (store.get_shard(key)
                                if store is not None else None)
                if cached_shard is not None and cached_shard.ok:
                    shard_results[i] = cached_shard
                    out.num_cached += 1
                    continue
                resume = (store.load_partial(key)
                          if store is not None else None) or state
                tasks.append(make_task(cell, resume, key=key,
                                       shard=i,
                                       num_shards=plan.num_shards))
        else:
            resume = (store.load_partial(cell.key)
                      if store is not None else None)
            if resume is not None:
                out.num_resumed += 1
            tasks.append(make_task(cell, resume))

    def record(result: CellResult) -> None:
        out.num_executed += 1
        if result.num_shards:
            # one shard of a split cell: stash for the merge
            split_runs[result.cell][1][result.shard] = result
            if store is not None:
                key = shard_key(result.cell, result.shard,
                                result.num_shards)
                if result.ok:
                    store.add_shard(key, result)
                if result.partial is None:
                    # keep a budget-limited shard's final snapshot so
                    # a laxer-budget resume continues it, exactly like
                    # unsplit cells below
                    store.clear_partial(key)
            return
        by_cell[result.cell] = result
        if store is not None:
            if result.ok:
                store.add(result)
            if result.partial is None:
                # fully explored (or failed): drop any stale partial.
                # Budget-limited cells keep theirs — the worker wrote
                # the final snapshot, so a laxer-budget resume
                # continues from the frontier.
                store.clear_partial(result.cell.key)
        if on_result is not None:
            on_result(result)
        if progress is not None:
            if result.ok and result.stats is not None:
                progress(result.stats.summary())
            else:
                progress(
                    f"{result.cell.key:<28} FAILED: "
                    f"{(result.error or '?').splitlines()[0]}"
                )

    try:
        for seed_result in completed_plans:
            record(seed_result)
        if jobs == 1 or len(tasks) <= 1:
            for task in tasks:
                record(execute_cell(
                    task[0], task[1], task[2],
                    resume_state=task[3], checkpoint_path=task[4],
                    checkpoint_key=task[5], shard=task[6],
                    num_shards=task[7],
                ))
        else:
            ctx = _pool_context()
            with ctx.Pool(processes=min(jobs, len(tasks))) as pool:
                for result in pool.imap_unordered(_pool_entry, tasks,
                                                  chunksize=1):
                    record(result)

        # union-merge completed split cells back into logical cells
        from .aggregate import merge_shard_results

        for cell, (plan, shard_results) in split_runs.items():
            merged = merge_shard_results(
                plan.seed_result,
                [shard_results[i] for i in sorted(shard_results)],
            )
            if verify and merged.ok and merged.stats is not None:
                merged.stats.verify_inequality()
            by_cell[cell] = merged
            if on_result is not None:
                on_result(merged)
            if progress is not None and merged.ok:
                progress(merged.stats.summary()
                         + f"  [split x{plan.num_shards}]")
    finally:
        # store.add rate-limits its flushes; guarantee the final state
        # (and interrupted partial state) reaches disk
        if store is not None:
            store.flush()

    out.results = [by_cell[cell] for cell in cells]
    out.elapsed = time.monotonic() - start
    return out
