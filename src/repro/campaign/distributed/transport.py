"""Request/reply transports for the distributed campaign.

Two symmetric interfaces:

* :class:`WorkerChannel` — the worker side: ``request(msg)`` sends one
  JSON message and returns the coordinator's JSON reply, retrying on
  timeout with jittered exponential backoff (jitter is seeded from the
  worker id, so a fleet of workers restarting together does not
  retry in lockstep);
* :class:`CoordinatorServer` — the coordinator side: ``poll(timeout)``
  returns ``(message, reply_fn)`` pairs; the coordinator state machine
  computes a reply dict and hands it to ``reply_fn``.

Two implementations of each:

* **TCP** (``tcp``) — newline-delimited JSON over a non-blocking
  listening socket multiplexed with :mod:`selectors`; one persistent
  connection per worker.
* **File queue** (``file``) — a shared directory with ``req/`` and
  ``rep/`` subdirectories; every message is one atomically-replaced
  JSON file, so readers never observe torn messages and no network
  stack is needed (CI sandboxes, shared-filesystem clusters).

Both sides assume *at-least-once* delivery: a retried request may
reach the coordinator twice (e.g. the coordinator processed it and
died before replying), so every protocol message is idempotent or
explicitly deduplicated (see :mod:`.messages`).
"""

from __future__ import annotations

import json
import os
import random
import re
import selectors
import socket
import time
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Tuple, Union

from ...ioutil import atomic_write_json, read_json

Reply = Callable[[Dict[str, Any]], None]


class TransportError(Exception):
    """A request could not be delivered/answered (after retries)."""


# ---------------------------------------------------------------------------
# worker side
# ---------------------------------------------------------------------------

class WorkerChannel:
    """Base worker-side RPC channel: retry loop with jittered backoff."""

    #: attempts per logical request (1 initial + retries)
    max_attempts = 5
    #: first retry delay; doubles per retry, scaled by jitter in [0.5, 1.5)
    base_delay = 0.05
    max_delay = 2.0
    #: per-attempt reply deadline
    default_timeout = 5.0

    def __init__(self, worker_id: str) -> None:
        self.worker_id = worker_id
        # deterministic per-worker jitter: desynchronises a restarting
        # fleet without introducing run-to-run nondeterminism in tests
        self._jitter = random.Random(f"transport:{worker_id}")

    def request(
        self,
        msg: Dict[str, Any],
        timeout: Optional[float] = None,
        max_attempts: Optional[int] = None,
    ) -> Dict[str, Any]:
        """Send ``msg`` and return the coordinator's reply.

        Retries with jittered exponential backoff on per-attempt
        timeout or transport failure; raises :class:`TransportError`
        once every attempt is exhausted (callers treat that as a
        coordinator outage or partition).
        """
        timeout = self.default_timeout if timeout is None else timeout
        attempts = self.max_attempts if max_attempts is None else max_attempts
        msg = dict(msg)
        msg.setdefault("worker", self.worker_id)
        last: Optional[Exception] = None
        for attempt in range(max(1, attempts)):
            if attempt:
                delay = min(self.base_delay * (2 ** (attempt - 1)),
                            self.max_delay)
                time.sleep(delay * (0.5 + self._jitter.random()))
            try:
                return self._request_once(msg, timeout, attempt)
            except TransportError as exc:
                last = exc
        raise TransportError(
            f"request {msg.get('type')!r} failed after {attempts} "
            f"attempts: {last}"
        )

    def _request_once(self, msg: Dict[str, Any], timeout: float,
                      attempt: int) -> Dict[str, Any]:
        raise NotImplementedError

    def close(self) -> None:  # pragma: no cover - trivial default
        pass


class TcpWorkerChannel(WorkerChannel):
    """One persistent connection, strict request → reply lockstep."""

    def __init__(self, host: str, port: int, worker_id: str) -> None:
        super().__init__(worker_id)
        self.host = host
        self.port = port
        self._sock: Optional[socket.socket] = None
        self._buf = b""

    def _connect(self, timeout: float) -> socket.socket:
        if self._sock is None:
            try:
                self._sock = socket.create_connection(
                    (self.host, self.port), timeout=timeout)
            except OSError as exc:
                raise TransportError(f"connect {self.host}:{self.port}: "
                                     f"{exc}") from exc
            self._buf = b""
        return self._sock

    def _request_once(self, msg: Dict[str, Any], timeout: float,
                      attempt: int) -> Dict[str, Any]:
        deadline = time.monotonic() + timeout
        sock = self._connect(timeout)
        try:
            sock.settimeout(timeout)
            sock.sendall(json.dumps(msg).encode() + b"\n")
            while b"\n" not in self._buf:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise socket.timeout("reply deadline exceeded")
                sock.settimeout(remaining)
                chunk = sock.recv(65536)
                if not chunk:
                    raise OSError("connection closed by coordinator")
                self._buf += chunk
            line, _, self._buf = self._buf.partition(b"\n")
            return json.loads(line)
        except (OSError, ValueError) as exc:
            # drop the connection: a fresh one re-synchronises the
            # request/reply framing after a half-delivered exchange
            self.close()
            raise TransportError(str(exc)) from exc

    def close(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None
            self._buf = b""


class FileWorkerChannel(WorkerChannel):
    """File-queue worker side: one request file, one reply file.

    A logical request keeps its file name across retry attempts: if
    the coordinator consumed the request but died before replying, the
    retry re-publishes the *same* request (processed again — all
    messages tolerate duplicates) and eventually finds the reply under
    the same name.
    """

    def __init__(self, queue_dir: Union[str, Path], worker_id: str) -> None:
        super().__init__(worker_id)
        self.root = Path(queue_dir)
        self.req_dir = self.root / "req"
        self.rep_dir = self.root / "rep"
        self.req_dir.mkdir(parents=True, exist_ok=True)
        self.rep_dir.mkdir(parents=True, exist_ok=True)
        self._safe_id = re.sub(r"[^\w.-]", "_", worker_id)
        self._seq = 0
        self._poll_interval = 0.01
        self._pending: Optional[str] = None

    def _request_once(self, msg: Dict[str, Any], timeout: float,
                      attempt: int) -> Dict[str, Any]:
        if attempt == 0 or self._pending is None:
            self._seq += 1
            self._pending = (f"{self._safe_id}-{os.getpid()}-"
                             f"{self._seq:08d}.json")
            # a crashed previous incarnation of this exact name cannot
            # exist (pid+seq), but clear defensively
            try:
                os.unlink(self.rep_dir / self._pending)
            except OSError:
                pass
        name = self._pending
        atomic_write_json(self.req_dir / name, msg, indent=0, fsync=False)
        deadline = time.monotonic() + timeout
        rep = self.rep_dir / name
        while time.monotonic() < deadline:
            payload = read_json(rep)
            if isinstance(payload, dict):
                try:
                    os.unlink(rep)
                except OSError:
                    pass
                self._pending = None
                return payload
            time.sleep(self._poll_interval)
        raise TransportError(f"no reply to {name} within {timeout:g}s")


# ---------------------------------------------------------------------------
# coordinator side
# ---------------------------------------------------------------------------

class CoordinatorServer:
    """Base coordinator-side endpoint."""

    def poll(self, timeout: float) -> List[Tuple[Dict[str, Any], Reply]]:
        """Harvest pending worker messages (waiting up to ``timeout``
        seconds for the first); each comes with a ``reply`` callable
        expecting the coordinator's reply dict."""
        raise NotImplementedError

    def close(self) -> None:  # pragma: no cover - trivial default
        pass


class TcpCoordinatorServer(CoordinatorServer):
    """Non-blocking TCP listener multiplexing worker connections."""

    def __init__(self, host: str = "127.0.0.1", port: int = 0) -> None:
        self._listener = socket.create_server((host, port))
        self._listener.setblocking(False)
        self._sel = selectors.DefaultSelector()
        self._sel.register(self._listener, selectors.EVENT_READ)
        self._buffers: Dict[socket.socket, bytearray] = {}

    @property
    def address(self) -> Tuple[str, int]:
        addr = self._listener.getsockname()
        return addr[0], addr[1]

    def poll(self, timeout: float) -> List[Tuple[Dict[str, Any], Reply]]:
        out: List[Tuple[Dict[str, Any], Reply]] = []
        for key, _ in self._sel.select(timeout):
            sock = key.fileobj
            if sock is self._listener:
                self._accept()
                continue
            self._read(sock, out)
        return out

    def _accept(self) -> None:
        try:
            conn, _ = self._listener.accept()
        except OSError:
            return
        conn.setblocking(False)
        self._sel.register(conn, selectors.EVENT_READ)
        self._buffers[conn] = bytearray()

    def _read(self, sock: socket.socket,
              out: List[Tuple[Dict[str, Any], Reply]]) -> None:
        try:
            data = sock.recv(65536)
        except (BlockingIOError, InterruptedError):
            return
        except OSError:
            data = b""
        if not data:
            self._drop(sock)
            return
        buf = self._buffers[sock]
        buf += data
        while True:
            nl = buf.find(b"\n")
            if nl < 0:
                break
            line = bytes(buf[:nl])
            del buf[:nl + 1]
            try:
                msg = json.loads(line)
            except ValueError:
                continue  # garbage line: drop, the sender will retry
            if isinstance(msg, dict):
                out.append((msg, self._make_reply(sock)))

    def _make_reply(self, sock: socket.socket) -> Reply:
        def reply(payload: Dict[str, Any]) -> None:
            data = json.dumps(payload).encode() + b"\n"
            try:
                # replies are tiny; block briefly rather than buffer
                sock.setblocking(True)
                sock.settimeout(5.0)
                sock.sendall(data)
            except OSError:
                # worker vanished mid-reply: its lease will expire and
                # the task is reassigned — nothing to do here
                self._drop(sock)
                return
            try:
                sock.setblocking(False)
            except OSError:
                self._drop(sock)
        return reply

    def _drop(self, sock: socket.socket) -> None:
        try:
            self._sel.unregister(sock)
        except (KeyError, ValueError):
            pass
        self._buffers.pop(sock, None)
        try:
            sock.close()
        except OSError:
            pass

    def close(self) -> None:
        for sock in list(self._buffers):
            self._drop(sock)
        try:
            self._sel.unregister(self._listener)
        except (KeyError, ValueError):
            pass
        try:
            self._listener.close()
        except OSError:
            pass
        self._sel.close()


class FileCoordinatorServer(CoordinatorServer):
    """File-queue coordinator side: scan ``req/``, answer into ``rep/``.

    Request files are deleted *before* their reply is computed, so a
    coordinator crash mid-handling loses the request file — the worker
    times out and re-sends, which is exactly the at-least-once
    behaviour the protocol is built for.
    """

    def __init__(self, queue_dir: Union[str, Path]) -> None:
        self.root = Path(queue_dir)
        self.req_dir = self.root / "req"
        self.rep_dir = self.root / "rep"
        self.req_dir.mkdir(parents=True, exist_ok=True)
        self.rep_dir.mkdir(parents=True, exist_ok=True)
        self._poll_interval = 0.01

    def poll(self, timeout: float) -> List[Tuple[Dict[str, Any], Reply]]:
        deadline = time.monotonic() + max(0.0, timeout)
        while True:
            out: List[Tuple[Dict[str, Any], Reply]] = []
            try:
                names = sorted(p for p in self.req_dir.iterdir()
                               if p.suffix == ".json")
            except OSError:
                names = []
            for path in names:
                payload = read_json(path)
                try:
                    os.unlink(path)
                except OSError:
                    continue
                if isinstance(payload, dict):
                    out.append((payload, self._make_reply(path.name)))
            if out or time.monotonic() >= deadline:
                return out
            time.sleep(self._poll_interval)

    def _make_reply(self, name: str) -> Reply:
        def reply(payload: Dict[str, Any]) -> None:
            atomic_write_json(self.rep_dir / name, payload, indent=0,
                              fsync=False)
        return reply


# ---------------------------------------------------------------------------
# construction helpers (shared by CLI and tests)
# ---------------------------------------------------------------------------

def parse_hostport(spec: str, default_port: int = 0) -> Tuple[str, int]:
    """``"host:port"`` (or bare ``"host"``) → ``(host, port)``."""
    host, sep, port = spec.rpartition(":")
    if not sep:
        return spec, default_port
    return host or "127.0.0.1", int(port)
