"""Distributed campaign worker: lease → execute → report, forever.

The worker is deliberately thin: all exploration goes through
:func:`repro.campaign.worker.execute_cell_with_watchdog` — the same
cell executor the local pool uses — with two callbacks threaded into
the explorer's between-schedules control point:

* the **control callback** probes the chaos plan (fault injection),
  heartbeats the lease at the coordinator-prescribed interval, honours
  ``abandon`` replies (stop cooperatively, discard the result) and
  answers ``steal`` commands by donating the bottom half of the
  frontier;
* the **checkpoint callback** streams periodic snapshots to the
  coordinator, which is what makes worker death cheap: the next
  attempt resumes from the last streamed checkpoint instead of
  schedule zero.

Failure stance: a lost heartbeat or checkpoint is *ignored* (the
worker keeps computing through coordinator restarts and network
partitions — at-least-once result delivery plus coordinator-side dedup
make that safe); only a result that cannot be delivered after real
retries ends the loop, because then the coordinator is genuinely gone.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Dict, List, Optional

from ...clock import Clock, SystemClock
from ...explore.base import ExplorationLimits
from ...explore.kernel import SNAPSHOT_VERSION
from ..chaos import ChaosPlan
from ..worker import CellResult, execute_cell_with_watchdog
from . import messages as M
from .messages import PROTOCOL_VERSION, Task
from .transport import TransportError, WorkerChannel


class DistributedWorker:
    """One worker process's lease loop."""

    #: per-request deadline for the cheap control-plane RPCs
    control_timeout = 2.0
    #: attempts for result delivery (the one RPC that must land)
    result_attempts = 8

    def __init__(
        self,
        channel: WorkerChannel,
        *,
        chaos: Optional[ChaosPlan] = None,
        hard_timeout: Optional[float] = None,
        progress: Optional[Callable[[str], None]] = None,
        clock: Clock = SystemClock(),
    ) -> None:
        self.channel = channel
        self.worker_id = channel.worker_id
        self.chaos = chaos
        self.hard_timeout = hard_timeout
        self.progress = progress
        self._clock = clock
        self._partition_until = 0.0

        # filled in by hello()
        self.limits = ExplorationLimits()
        self.verify = True
        self.lease_timeout = 15.0
        self.heartbeat_interval = 1.0

        self.num_tasks = 0
        self.num_completed = 0
        self.num_abandoned = 0
        self.num_donated = 0

    # -- RPC with partition semantics --------------------------------------

    def _rpc(self, msg: Dict[str, Any], critical: bool = False,
             **kw: Any) -> Dict[str, Any]:
        """Send one message, honouring an active chaos partition.

        During a partition window, control-plane messages are dropped
        (raise) — heartbeats go dark and the lease expires, exactly
        like a real netsplit.  ``critical`` messages (results, stolen
        shards) instead wait the partition out and then deliver: the
        worker survives the partition with its work intact, and the
        coordinator's dedup absorbs whatever got re-assigned meanwhile.
        """
        remaining = self._partition_until - self._clock()
        if remaining > 0:
            if not critical:
                raise TransportError("chaos: partitioned")
            time.sleep(remaining)
        return self.channel.request(msg, **kw)

    # -- lifecycle ----------------------------------------------------------

    def hello(self) -> None:
        reply = self._rpc({"type": M.HELLO, "protocol": PROTOCOL_VERSION},
                          critical=True)
        if reply.get("type") != M.OK:
            raise TransportError(f"coordinator rejected hello: {reply}")
        lim = reply.get("limits") or {}
        self.limits = ExplorationLimits(
            max_schedules=lim.get("max_schedules",
                                  self.limits.max_schedules),
            max_seconds=lim.get("max_seconds"),
            max_events_per_schedule=lim.get(
                "max_events_per_schedule",
                self.limits.max_events_per_schedule),
            snapshot_budget_bytes=reply.get(
                "snapshot_budget_bytes",
                self.limits.snapshot_budget_bytes),
        )
        self.verify = bool(reply.get("verify", True))
        self.lease_timeout = float(reply.get("lease_timeout", 15.0))
        self.heartbeat_interval = float(
            reply.get("heartbeat_interval", 1.0))

    def run(self, max_tasks: Optional[int] = None) -> Dict[str, Any]:
        """Lease and execute until the coordinator says shutdown (or
        disappears).  Returns the worker's own counters."""
        self.hello()
        while max_tasks is None or self.num_tasks < max_tasks:
            try:
                reply = self._rpc({"type": M.REQUEST},
                                  timeout=self.control_timeout)
            except TransportError:
                break  # coordinator gone (or we are partitioned out)
            rtype = reply.get("type")
            if rtype == M.SHUTDOWN:
                break
            if rtype == M.IDLE:
                time.sleep(float(reply.get("wait", 0.25)))
                continue
            if rtype != M.LEASE:
                break  # protocol error; don't spin
            task = Task.from_dict(reply["task"])
            if not self._execute(task):
                break
        return {
            "worker": self.worker_id,
            "tasks": self.num_tasks,
            "completed": self.num_completed,
            "abandoned": self.num_abandoned,
            "donated": self.num_donated,
        }

    # -- one task -----------------------------------------------------------

    def _execute(self, task: Task) -> bool:
        """Run one leased task; False ends the lease loop (coordinator
        unreachable for result delivery)."""
        self.num_tasks += 1
        cell = task.cell
        state: Dict[str, Any] = {
            "abandoned": False,
            "last_hb": self._clock(),
            "explorer": None,
        }

        def control(explorer: Any) -> None:
            state["explorer"] = explorer
            schedules = explorer.stats.num_schedules
            if self.chaos is not None:
                rule = self.chaos.probe(self.worker_id, task.cell_key,
                                        schedules)
                if rule is not None and rule.action == "partition":
                    self._partition_until = self._clock() + rule.seconds
            now = self._clock()
            if now - state["last_hb"] < self.heartbeat_interval:
                return
            state["last_hb"] = now
            try:
                reply = self._rpc(
                    {"type": M.HEARTBEAT, "task_id": task.task_id,
                     "schedules": schedules},
                    timeout=self.control_timeout, max_attempts=1,
                )
            except TransportError:
                return  # keep computing; results re-deliver later
            if reply.get("abandon"):
                state["abandoned"] = True
                explorer.request_stop()
                return
            steal = reply.get("steal")
            if isinstance(steal, dict):
                self._donate(explorer, task, steal, state)

        def checkpoint(snapshot: Dict[str, Any]) -> None:
            try:
                reply = self._rpc(
                    {"type": M.CHECKPOINT, "task_id": task.task_id,
                     "snapshot": snapshot},
                    timeout=self.control_timeout, max_attempts=1,
                )
            except TransportError:
                return
            if reply.get("abandon"):
                state["abandoned"] = True
                explorer = state.get("explorer")
                if explorer is not None:
                    explorer.request_stop()

        result = execute_cell_with_watchdog(
            cell, self.limits, self.verify,
            hard_timeout=self.hard_timeout,
            resume_state=task.snapshot,
            checkpoint_fn=checkpoint,
            control_fn=control,
            checkpoint_interval=min(2.0, self.lease_timeout / 4.0),
        )
        if state["abandoned"]:
            # the lease was revoked (expired + reassigned, or the cell
            # was poisoned): this result is a duplicate-in-the-making —
            # drop it, the current holder owns the task now
            self.num_abandoned += 1
            return True
        return self._deliver(task, result)

    def _deliver(self, task: Task, result: CellResult) -> bool:
        msg = {
            "type": M.RESULT,
            "task_id": task.task_id,
            "result": result.to_dict(),
            "partial": result.partial,
        }
        try:
            reply = self._rpc(msg, critical=True,
                              max_attempts=self.result_attempts)
        except TransportError:
            return False
        if reply.get("type") == M.ERROR:
            return False
        self.num_completed += 1
        if self.progress is not None and result.stats is not None:
            self.progress(result.stats.summary())
        return True

    # -- work donation ------------------------------------------------------

    def _donate(self, explorer: Any, task: Task, steal: Dict[str, Any],
                state: Dict[str, Any]) -> None:
        """Answer a steal command: cut half the frontier into shards.

        The shard payloads mirror :mod:`repro.campaign.split`: zeroed
        statistics (the merge adds the victim's statistics exactly
        once) sharing the victim's current strategy state.  The
        ``stolen`` message also carries the victim's *post-steal*
        snapshot, which becomes the task's authoritative checkpoint —
        any later requeue must exclude the donated subtrees.
        """
        steal_id = int(steal.get("steal_id", 0))
        max_shards = max(1, int(steal.get("max_shards", 1)))
        frontier = getattr(explorer, "frontier", None)
        shards: List[Dict[str, Any]] = []
        parts: List[Any] = []
        if (frontier is not None and len(frontier) >= 2
                and hasattr(explorer, "strategy")):
            stolen = frontier.steal(len(frontier) // 2)
            if len(stolen) > 1 and max_shards > 1:
                parts = [p for p in stolen.split(
                    min(max_shards, len(stolen))) if len(p)]
            elif len(stolen):
                parts = [stolen]
            strategy_state = explorer.strategy.state_to_dict()
            shards = [
                {
                    "version": SNAPSHOT_VERSION,
                    "explorer": explorer.name,
                    "program": explorer.program.name,
                    "frontier": part.to_dict(),
                    "stats": None,
                    "strategy": strategy_state,
                }
                for part in parts
            ]
        post_steal = (explorer.snapshot()
                      if hasattr(explorer, "snapshot") else None)
        try:
            reply = self._rpc(
                {"type": M.STOLEN, "task_id": task.task_id,
                 "steal_id": steal_id, "shards": shards,
                 "snapshot": post_steal},
                critical=True,
            )
        except TransportError:
            # the coordinator never learned of the donation: put the
            # items back or the stolen subtrees would be explored by
            # no one (the steal command will simply be re-sent)
            for part in parts:
                while part:
                    frontier.push(part.pop())
            return
        if reply.get("abandon"):
            state["abandoned"] = True
            explorer.request_stop()
            return
        if reply.get("duplicate"):
            return
        self.num_donated += len(shards)
