"""The campaign coordinator: a crash-safe lease-based work queue.

The coordinator owns the campaign work-list and *only* orchestrates —
all exploration happens in workers (which funnel into the same
``execute_cell`` as serial campaigns, so a distributed campaign merges
to the identical report).  It is written as a synchronous state
machine — :meth:`Coordinator.handle` maps one worker message to one
reply dict, with no I/O — pumped by :meth:`Coordinator.run` over a
:class:`~.transport.CoordinatorServer`.  Tests drive ``handle``
directly with hand-built messages and a
:class:`~repro.clock.ManualClock`.

Lease lifecycle of a task (a whole cell, or a stolen frontier shard)::

    QUEUED ──request──▶ LEASED(worker, deadline)
      ▲                     │ heartbeat/checkpoint: deadline renewed
      │ expiry / failure    │
      ├─────────────────────┤  attempt += 1, resume from last
      │  retries exhausted  │  streamed checkpoint
      ▼                     ▼
    POISONED ◀──────────  DONE (result accepted, cell merged)

Robustness rules (the whole point of this module):

* **at-least-once, dedup at the top** — transports may deliver any
  message twice; results dedup by task id, stolen shards by steal id,
  everything else is idempotent;
* **stale holders** — checkpoint/stolen messages are accepted only
  from the task's *current* lease holder; a result from a stale
  holder is accepted only if no steal was ever granted on the task
  (statistics are cumulative, so any attempt's result covers the same
  work — unless a steal carved the frontier after that attempt
  started);
* **poison quarantine** — a cell whose attempts keep dying is
  quarantined after ``max_cell_retries`` retries and surfaced in the
  report with full diagnostics, instead of wedging the campaign in a
  retry loop;
* **coordinator crash-resume** — all queue/retry/dedup state is
  checkpointed atomically to ``state_path``; a restarted coordinator
  requeues in-flight tasks from their last checkpoints, and *adopts*
  the lease of any worker that is still alive and heartbeating.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Set

from ...clock import Clock, SystemClock
from ...explore.base import ExplorationLimits
from ...explore.controller import SPLITTABLE_EXPLORERS
from ...ioutil import atomic_write_json, read_json
from ..aggregate import merge_stolen_results
from ..cells import CampaignCell
from ..partial import limits_to_dict, write_partial
from ..runner import CampaignResult
from ..store import ResultStore
from ..worker import CellResult
from . import messages as M
from .messages import PROTOCOL_VERSION, Task
from .transport import CoordinatorServer

STATE_VERSION = 1
STATE_KIND = "repro-campaign-coordinator-state"

#: strategies the coordinator will steal from by default: splittable
#: *and* count-exact under partition.  The caching strategies are
#: splittable too, but a stolen shard explores without the victim's
#: future cache entries, so ``num_schedules``/``num_pruned`` can differ
#: from the serial run (sets stay exact); ``steal_exact_only=False``
#: opts into that trade.
EXACT_STEAL_EXPLORERS = frozenset({
    "dfs", "preempt-bounded", "iterative-cb", "delay-bounded",
})


@dataclass
class Lease:
    """One granted task: who holds it and until when."""

    task_id: str
    worker: str
    granted_at: float
    deadline: float
    schedules: int = 0            #: last progress report
    #: a pending steal command ``(steal_id, max_shards)`` repeated in
    #: every heartbeat reply until the ``stolen`` message arrives
    steal_pending: Optional[tuple] = None


@dataclass
class _CellBook:
    """Per-cell retry/diagnostic bookkeeping."""

    retries: int = 0
    workers: List[str] = field(default_factory=list)
    last_error: Optional[str] = None
    last_status: Optional[str] = None


class Coordinator:
    """Synchronous coordinator state machine + its pump loop."""

    #: minimum seconds between state-file flushes (final flush always
    #: happens); bounds checkpoint I/O like the result store does
    flush_interval = 1.0
    #: seconds an idle worker is told to wait before re-requesting
    idle_wait = 0.25
    #: a lease younger than this is not a steal victim (give the
    #: worker time to grow its frontier past the trivial prefix)
    steal_min_age = 0.5
    #: upper bound on shards requested per steal command
    steal_max_shards = 4

    def __init__(
        self,
        cells: Sequence[CampaignCell],
        limits: Optional[ExplorationLimits] = None,
        *,
        server: Optional[CoordinatorServer] = None,
        store: Optional[ResultStore] = None,
        state_path: Optional[str] = None,
        lease_timeout: float = 15.0,
        max_cell_retries: int = 3,
        steal: bool = True,
        steal_exact_only: bool = True,
        verify: bool = True,
        progress: Optional[Callable[[str], None]] = None,
        clock: Clock = SystemClock(),
    ) -> None:
        if lease_timeout <= 0:
            raise ValueError(f"lease_timeout must be > 0, got "
                             f"{lease_timeout}")
        if max_cell_retries < 0:
            raise ValueError(f"max_cell_retries must be >= 0, got "
                             f"{max_cell_retries}")
        self.cells = list(cells)
        self.limits = limits or ExplorationLimits()
        self.server = server
        self.store = store
        self.state_path = state_path
        self.lease_timeout = lease_timeout
        self.max_cell_retries = max_cell_retries
        self.steal_enabled = steal
        self.steal_exact_only = steal_exact_only
        self.verify = verify
        self.progress = progress
        self._clock = clock

        #: outstanding work: task_id -> Task (pending or leased)
        self._tasks: Dict[str, Task] = {}
        self._pending: List[str] = []
        self._leases: Dict[str, Lease] = {}
        #: accepted task results (parents and shards), by task id
        self._results: Dict[str, CellResult] = {}
        #: final per-cell results: merged, cached or poisoned
        self._merged: Dict[str, CellResult] = {}
        self._poisoned: Dict[str, CellResult] = {}
        #: latest streamed snapshot per task (requeues resume here)
        self._checkpoints: Dict[str, Dict[str, Any]] = {}
        self._book: Dict[str, _CellBook] = {}
        #: shard task ids created by steals, per cell, creation order
        self._shards_of: Dict[str, List[str]] = {}
        self._steal_counter: Dict[str, int] = {}
        #: steals ever granted per task id (stale-result gate)
        self._steals_granted: Dict[str, int] = {}
        #: accepted steal ids per task id (stolen-message dedup)
        self._steal_ids_seen: Dict[str, Set[int]] = {}
        self._idle_since: Dict[str, float] = {}
        self.workers: Set[str] = set()

        self.num_executed = 0
        self.num_cached = 0
        self.num_resumed = 0
        self.num_expired = 0
        self.num_duplicates = 0
        self.num_adopted = 0
        self.num_steals = 0
        self.state_discarded = False

        self._dirty = False
        self._last_flush = 0.0
        self._started = self._clock()

        if self.store is not None:
            if self.store.limits is None:
                self.store.limits = self.limits
            if not self.store.loaded:
                self.store.load()
            for cell in self.cells:
                cached = self.store.get(cell)
                if cached is not None and cached.ok:
                    self._merged[cell.key] = cached
                    self.num_cached += 1

        if not self._load_state():
            self._seed_queue()
        self._dirty = True

    # -- initial queue ------------------------------------------------------

    def _seed_queue(self) -> None:
        for cell in self.cells:
            if cell.key in self._merged:
                continue
            snapshot = (self.store.load_partial(cell.key)
                        if self.store is not None else None)
            if snapshot is not None:
                self.num_resumed += 1
            self._enqueue(Task(cell.key, cell.key, snapshot=snapshot))

    def _enqueue(self, task: Task) -> None:
        self._tasks[task.task_id] = task
        self._pending.append(task.task_id)
        self._dirty = True

    # -- message dispatch ---------------------------------------------------

    def handle(self, msg: Dict[str, Any],
               now: Optional[float] = None) -> Dict[str, Any]:
        """Map one worker message to its reply (pure state transition)."""
        now = self._clock() if now is None else now
        handler = {
            M.HELLO: self._on_hello,
            M.REQUEST: self._on_request,
            M.HEARTBEAT: self._on_heartbeat,
            M.CHECKPOINT: self._on_checkpoint,
            M.STOLEN: self._on_stolen,
            M.RESULT: self._on_result,
        }.get(msg.get("type"))
        if handler is None:
            return M.reply_error(f"unknown message type "
                                 f"{msg.get('type')!r}")
        worker = msg.get("worker")
        if not isinstance(worker, str) or not worker:
            return M.reply_error("missing worker id")
        self.workers.add(worker)
        return handler(worker, msg, now)

    def _on_hello(self, worker: str, msg: Dict[str, Any],
                  now: float) -> Dict[str, Any]:
        if msg.get("protocol") != PROTOCOL_VERSION:
            return M.reply_error(
                f"protocol mismatch: coordinator speaks "
                f"v{PROTOCOL_VERSION}, worker sent "
                f"{msg.get('protocol')!r}"
            )
        heartbeat = min(max(self.lease_timeout / 4.0, 0.05), 5.0)
        return M.reply_ok(
            protocol=PROTOCOL_VERSION,
            limits=limits_to_dict(self.limits),
            snapshot_budget_bytes=self.limits.snapshot_budget_bytes,
            verify=self.verify,
            lease_timeout=self.lease_timeout,
            heartbeat_interval=heartbeat,
        )

    def _on_request(self, worker: str, msg: Dict[str, Any],
                    now: float) -> Dict[str, Any]:
        self._expire_leases(now)
        if self.done:
            return {"type": M.SHUTDOWN}
        if not self._pending:
            self._idle_since.setdefault(worker, now)
            self._consider_steal(now)
            return {"type": M.IDLE, "wait": self.idle_wait}
        task_id = self._pending.pop(0)
        task = self._tasks[task_id]
        self._idle_since.pop(worker, None)
        self._leases[task_id] = Lease(
            task_id, worker, granted_at=now,
            deadline=now + self.lease_timeout,
        )
        self._dirty = True
        wire = task.to_dict()
        wire["snapshot"] = self._checkpoints.get(task_id, task.snapshot)
        return {"type": M.LEASE, "task": wire}

    def _on_heartbeat(self, worker: str, msg: Dict[str, Any],
                      now: float) -> Dict[str, Any]:
        task_id = msg.get("task_id")
        lease = self._leases.get(task_id)
        if lease is None and task_id in self._pending:
            # a coordinator restart dropped the lease table; the worker
            # is demonstrably alive and still computing — adopt it
            self._pending.remove(task_id)
            lease = Lease(task_id, worker, granted_at=now,
                          deadline=now + self.lease_timeout)
            self._leases[task_id] = lease
            self.num_adopted += 1
            self._dirty = True
        if lease is None or lease.worker != worker:
            return M.reply_ok(abandon=True)
        lease.deadline = now + self.lease_timeout
        lease.schedules = int(msg.get("schedules", lease.schedules))
        reply = M.reply_ok()
        if lease.steal_pending is not None:
            steal_id, max_shards = lease.steal_pending
            reply["steal"] = {"steal_id": steal_id,
                              "max_shards": max_shards}
        return reply

    def _on_checkpoint(self, worker: str, msg: Dict[str, Any],
                       now: float) -> Dict[str, Any]:
        task_id = msg.get("task_id")
        lease = self._leases.get(task_id)
        if lease is None and task_id in self._pending:
            # same adoption rule as heartbeats (a checkpoint is the
            # strongest possible liveness proof)
            self._pending.remove(task_id)
            lease = Lease(task_id, worker, granted_at=now,
                          deadline=now + self.lease_timeout)
            self._leases[task_id] = lease
            self.num_adopted += 1
        if lease is None or lease.worker != worker:
            return M.reply_ok(abandon=True)
        snapshot = msg.get("snapshot")
        if isinstance(snapshot, dict):
            self._checkpoints[task_id] = snapshot
            if self.store is not None:
                write_partial(self.store.partial_path(task_id),
                              task_id, self.limits, snapshot)
            self._dirty = True
        lease.deadline = now + self.lease_timeout
        lease.schedules = int(msg.get("schedules", lease.schedules))
        return M.reply_ok()

    def _on_stolen(self, worker: str, msg: Dict[str, Any],
                   now: float) -> Dict[str, Any]:
        task_id = msg.get("task_id")
        lease = self._leases.get(task_id)
        if lease is None or lease.worker != worker:
            # stale holder: its shards would double-cover work the
            # requeued attempt (resumed from a pre-steal checkpoint)
            # already owns — drop them
            return M.reply_ok(abandon=True)
        steal_id = int(msg.get("steal_id", -1))
        seen = self._steal_ids_seen.setdefault(task_id, set())
        if steal_id in seen:
            self.num_duplicates += 1
            return M.reply_ok(duplicate=True)
        seen.add(steal_id)
        lease.steal_pending = None
        lease.deadline = now + self.lease_timeout
        task = self._tasks[task_id]
        shards = msg.get("shards") or []
        post_steal = msg.get("snapshot")
        if isinstance(post_steal, dict):
            # the victim's own state now *excludes* the stolen items;
            # any future requeue of this task must resume here, or the
            # stolen subtrees would be explored twice
            self._checkpoints[task_id] = post_steal
        if shards:
            self._steals_granted[task_id] = \
                self._steals_granted.get(task_id, 0) + len(shards)
            self.num_steals += 1
            cell_key = task.cell_key
            for i, shard_snapshot in enumerate(shards):
                shard_id = f"{cell_key}@steal{steal_id}-{i}"
                self._shards_of.setdefault(cell_key, []).append(shard_id)
                self._enqueue(Task(shard_id, cell_key,
                                   snapshot=shard_snapshot))
        self._dirty = True
        return M.reply_ok(shards_accepted=len(shards))

    def _on_result(self, worker: str, msg: Dict[str, Any],
                   now: float) -> Dict[str, Any]:
        task_id = msg.get("task_id")
        if task_id in self._results or task_id not in self._tasks:
            # completed (possibly by another attempt), or dropped with
            # a poisoned cell: acknowledge so the worker moves on
            self.num_duplicates += 1
            return M.reply_ok(duplicate=True)
        lease = self._leases.get(task_id)
        holder = lease is not None and lease.worker == worker
        if not holder and self._steals_granted.get(task_id, 0):
            # a stale attempt racing a post-steal attempt does NOT
            # cover the same work — only the current holder's result
            # (or a steal-free stale one) is complete
            return M.reply_ok(abandon=True)
        try:
            result = CellResult.from_dict(msg["result"])
        except (KeyError, TypeError, ValueError) as exc:
            return M.reply_error(f"malformed result: {exc}")
        task = self._tasks[task_id]
        if not holder and (not result.ok or result.stats is None):
            # a stale attempt's failure is old news — the live attempt
            # decides the cell's fate, don't burn a retry on it
            return M.reply_ok(duplicate=True)
        if not holder:
            # steal-free stale result: statistics are cumulative, so
            # this attempt covers everything the re-queued/re-leased
            # attempt would — accept it and cancel the duplicate
            if task_id in self._pending:
                self._pending.remove(task_id)
        self._leases.pop(task_id, None)
        if not result.ok or result.stats is None:
            self._attempt_failed(
                task, worker,
                error=result.error or "worker reported failure",
                status=(result.diagnostics or {}).get("status", "failed"),
                now=now,
            )
            return M.reply_ok()
        self._results[task_id] = result
        del self._tasks[task_id]
        self.num_executed += 1
        partial = msg.get("partial")
        if self.store is not None:
            if isinstance(partial, dict):
                # budget-limited cell: keep its final frontier so a
                # laxer-budget local resume continues it
                write_partial(self.store.partial_path(task_id),
                              task_id, self.limits, partial)
            else:
                self.store.clear_partial(task_id)
        self._checkpoints.pop(task_id, None)
        self._dirty = True
        self._maybe_complete_cell(task.cell_key)
        return M.reply_ok()

    # -- failure / expiry / poison -----------------------------------------

    def _expire_leases(self, now: float) -> None:
        for task_id in [tid for tid, lease in self._leases.items()
                        if now > lease.deadline]:
            lease = self._leases.pop(task_id)
            task = self._tasks.get(task_id)
            if task is None:
                continue
            self.num_expired += 1
            self._attempt_failed(
                task, lease.worker,
                error=(f"lease expired: no heartbeat from "
                       f"{lease.worker!r} within "
                       f"{self.lease_timeout:g}s "
                       f"(last progress: {lease.schedules} schedules)"),
                status="lease_expired",
                now=now,
            )

    def _attempt_failed(self, task: Task, worker: str, error: str,
                        status: str, now: float) -> None:
        book = self._book.setdefault(task.cell_key, _CellBook())
        book.retries += 1
        book.workers.append(worker)
        book.last_error = error
        book.last_status = status
        self._dirty = True
        if book.retries > self.max_cell_retries:
            self._poison_cell(task.cell_key)
            return
        task.attempt += 1
        if task.task_id not in self._pending:
            self._pending.append(task.task_id)

    def _poison_cell(self, cell_key: str) -> None:
        """Quarantine a cell that keeps killing its workers."""
        if cell_key in self._poisoned:
            return
        book = self._book.setdefault(cell_key, _CellBook())
        checkpoint = self._checkpoints.get(cell_key)
        result = CellResult(
            CampaignCell.from_key(cell_key), None, ok=False,
            error=(f"quarantined after {book.retries} failed attempts "
                   f"(max_cell_retries={self.max_cell_retries}); "
                   f"last error: "
                   f"{(book.last_error or '?').splitlines()[0]}"),
            diagnostics={
                "status": "quarantined",
                "retries": book.retries,
                "workers": list(book.workers),
                "traceback": book.last_error,
                "last_failure": book.last_status,
                "last_checkpoint_depth":
                    _snapshot_depth(checkpoint),
            },
        )
        self._poisoned[cell_key] = result
        self._merged[cell_key] = result
        # drop every outstanding task of the cell: pending entries,
        # leases (their holders get ``abandon`` on the next message)
        # and any completed shard results (the cell failed as a whole)
        doomed = [tid for tid, t in self._tasks.items()
                  if t.cell_key == cell_key]
        for tid in doomed:
            del self._tasks[tid]
            self._leases.pop(tid, None)
            if tid in self._pending:
                self._pending.remove(tid)
            self._checkpoints.pop(tid, None)
        for tid in self._shards_of.pop(cell_key, []):
            self._results.pop(tid, None)
        self._results.pop(cell_key, None)
        self._dirty = True
        if self.progress is not None:
            self.progress(f"{cell_key:<28} QUARANTINED: "
                          f"{(book.last_error or '?').splitlines()[0]}")

    # -- completion / merge -------------------------------------------------

    def _maybe_complete_cell(self, cell_key: str) -> None:
        if cell_key in self._merged:
            return
        if any(t.cell_key == cell_key for t in self._tasks.values()):
            return
        parent = self._results.get(cell_key)
        if parent is None:
            return
        shard_ids = self._shards_of.get(cell_key, [])
        shards = [self._results[tid] for tid in shard_ids
                  if tid in self._results]
        if len(shards) != len(shard_ids):  # pragma: no cover - guarded
            return                         # by the _tasks check above
        if shards:
            merged = merge_stolen_results(parent, shards)
        else:
            merged = parent
        if self.verify and merged.ok and merged.stats is not None:
            merged.stats.verify_inequality()
        self._merged[cell_key] = merged
        if self.store is not None and merged.ok:
            self.store.add(merged)
            for tid in shard_ids:
                self.store.clear_partial(tid)
        self._dirty = True
        if self.progress is not None and merged.stats is not None:
            tag = f"  [stolen x{len(shards)}]" if shards else ""
            self.progress(merged.stats.summary() + tag)

    @property
    def done(self) -> bool:
        return all(cell.key in self._merged for cell in self.cells)

    # -- work stealing ------------------------------------------------------

    def _consider_steal(self, now: float) -> None:
        """Ask the oldest eligible lease to donate half its frontier."""
        if not self.steal_enabled or self._pending:
            return
        # forget idle workers that stopped asking (they died or left)
        for worker, since in list(self._idle_since.items()):
            if now - since > self.lease_timeout:
                del self._idle_since[worker]
        if not self._idle_since:
            return
        allowed = (EXACT_STEAL_EXPLORERS if self.steal_exact_only
                   else SPLITTABLE_EXPLORERS)
        for task_id, lease in sorted(self._leases.items(),
                                     key=lambda kv: kv[1].granted_at):
            if lease.steal_pending is not None:
                continue
            if now - lease.granted_at < self.steal_min_age:
                continue
            task = self._tasks[task_id]
            if task.cell.explorer not in allowed:
                continue
            counter = self._steal_counter.get(task.cell_key, 0) + 1
            self._steal_counter[task.cell_key] = counter
            lease.steal_pending = (
                counter,
                min(len(self._idle_since), self.steal_max_shards),
            )
            self._dirty = True
            return

    # -- run loop -----------------------------------------------------------

    def run(
        self,
        poll_interval: float = 0.05,
        max_seconds: Optional[float] = None,
        linger: float = 1.0,
    ) -> CampaignResult:
        """Pump the transport until every cell is merged or poisoned.

        After completion the coordinator keeps answering for ``linger``
        seconds so parked workers receive their ``shutdown`` instead of
        timing out.  ``max_seconds`` bounds the whole run; cells still
        outstanding at the deadline come back as failed results (state
        is checkpointed, so a restarted coordinator resumes them).
        """
        if self.server is None:
            raise ValueError("Coordinator.run needs a transport server")
        start = self._clock()
        try:
            while not self.done:
                if (max_seconds is not None
                        and self._clock() - start > max_seconds):
                    break
                for msg, reply in self.server.poll(poll_interval):
                    reply(self.handle(msg))
                now = self._clock()
                self._expire_leases(now)
                self._consider_steal(now)
                self._maybe_flush(now)
            deadline = self._clock() + (linger if self.done else 0.0)
            while self._clock() < deadline:
                for msg, reply in self.server.poll(poll_interval):
                    reply(self.handle(msg))
        finally:
            self.flush_state()
            if self.store is not None:
                self.store.flush()
        return self.result()

    def result(self) -> CampaignResult:
        """Results in deterministic work-list order (missing cells — a
        timed-out run — become failed placeholders)."""
        out = CampaignResult(jobs=max(1, len(self.workers)))
        for cell in self.cells:
            merged = self._merged.get(cell.key)
            if merged is None:
                merged = CellResult(
                    cell, None, ok=False,
                    error="campaign incomplete: cell still outstanding "
                          "when the coordinator stopped",
                )
            out.results.append(merged)
        out.num_executed = self.num_executed
        out.num_cached = self.num_cached
        out.num_resumed = self.num_resumed
        out.elapsed = self._clock() - self._started
        return out

    # -- crash-safe state ---------------------------------------------------

    def _maybe_flush(self, now: float) -> None:
        if self._dirty and now - self._last_flush >= self.flush_interval:
            self.flush_state()

    def flush_state(self) -> None:
        """Atomically checkpoint the queue/lease bookkeeping."""
        if self.state_path is None or not self._dirty:
            return
        # leases are deliberately persisted as pending work: a
        # restarted coordinator cannot trust old deadlines, so live
        # holders re-attach via heartbeat adoption and dead ones are
        # simply never heard from again
        ordered = self._pending + [tid for tid in self._leases
                                   if tid not in self._pending]
        payload = {
            "version": STATE_VERSION,
            "kind": STATE_KIND,
            "limits": limits_to_dict(self.limits),
            "cells": [cell.key for cell in self.cells],
            "max_cell_retries": self.max_cell_retries,
            "tasks": [self._tasks[tid].to_dict() for tid in ordered
                      if tid in self._tasks],
            "checkpoints": self._checkpoints,
            "results": {tid: r.to_dict()
                        for tid, r in self._results.items()},
            "poisoned": {key: r.to_dict()
                         for key, r in self._poisoned.items()},
            "book": {
                key: {
                    "retries": b.retries,
                    "workers": b.workers,
                    "last_error": b.last_error,
                    "last_status": b.last_status,
                }
                for key, b in self._book.items()
            },
            "shards_of": self._shards_of,
            "steal_counter": self._steal_counter,
            "steals_granted": self._steals_granted,
            "steal_ids_seen": {tid: sorted(ids) for tid, ids
                               in self._steal_ids_seen.items()},
            "counters": {
                "num_executed": self.num_executed,
                "num_resumed": self.num_resumed,
                "num_expired": self.num_expired,
                "num_duplicates": self.num_duplicates,
                "num_steals": self.num_steals,
            },
        }
        atomic_write_json(self.state_path, payload, indent=0)
        self._dirty = False
        self._last_flush = self._clock()

    def _load_state(self) -> bool:
        """Restore a previous coordinator's checkpoint; False means
        start fresh (no file, or an incompatible one)."""
        if self.state_path is None:
            return False
        payload = read_json(self.state_path)
        if not isinstance(payload, dict):
            return False
        if (payload.get("version") != STATE_VERSION
                or payload.get("kind") != STATE_KIND
                or payload.get("limits") != limits_to_dict(self.limits)
                or payload.get("cells") != [c.key for c in self.cells]):
            # a different campaign's state: ignore it rather than mix
            self.state_discarded = True
            return False
        try:
            tasks = [Task.from_dict(t) for t in payload.get("tasks", [])]
            results = {tid: CellResult.from_dict(r)
                       for tid, r in payload.get("results", {}).items()}
            poisoned = {key: CellResult.from_dict(r)
                        for key, r in payload.get("poisoned",
                                                  {}).items()}
        except (KeyError, TypeError, ValueError):
            self.state_discarded = True
            return False
        for key, r in poisoned.items():
            self._poisoned[key] = r
            self._merged.setdefault(key, r)
        for tid, r in results.items():
            self._results[tid] = r
        for task in tasks:
            if task.cell_key in self._merged:
                continue
            self._enqueue(task)
        self._checkpoints.update(
            {tid: snap for tid, snap
             in payload.get("checkpoints", {}).items()
             if isinstance(snap, dict)})
        for key, b in payload.get("book", {}).items():
            self._book[key] = _CellBook(
                retries=int(b.get("retries", 0)),
                workers=list(b.get("workers", [])),
                last_error=b.get("last_error"),
                last_status=b.get("last_status"),
            )
        self._shards_of.update({
            key: list(v) for key, v
            in payload.get("shards_of", {}).items()
            if key not in self._merged})
        self._steal_counter.update(payload.get("steal_counter", {}))
        self._steals_granted.update(payload.get("steals_granted", {}))
        for tid, ids in payload.get("steal_ids_seen", {}).items():
            self._steal_ids_seen[tid] = set(ids)
        counters = payload.get("counters", {})
        self.num_executed = int(counters.get("num_executed", 0))
        self.num_resumed = int(counters.get("num_resumed", 0))
        self.num_expired = int(counters.get("num_expired", 0))
        self.num_duplicates = int(counters.get("num_duplicates", 0))
        self.num_steals = int(counters.get("num_steals", 0))
        # a crash may have separated the last result from its merge;
        # also seed any cell the state file somehow lost entirely
        for cell in self.cells:
            if cell.key in self._merged:
                continue
            outstanding = any(t.cell_key == cell.key
                              for t in self._tasks.values())
            if not outstanding and cell.key not in self._results:
                snapshot = (self._checkpoints.get(cell.key)
                            or (self.store.load_partial(cell.key)
                                if self.store is not None else None))
                self._enqueue(Task(cell.key, cell.key,
                                   snapshot=snapshot))
            else:
                self._maybe_complete_cell(cell.key)
        return True


def _snapshot_depth(snapshot: Optional[Dict[str, Any]]) -> Optional[int]:
    """Schedules already explored in a checkpoint snapshot, if any."""
    if not isinstance(snapshot, dict):
        return None
    stats = snapshot.get("stats")
    if isinstance(stats, dict):
        schedules = stats.get("num_schedules")
        if isinstance(schedules, int):
            return schedules
    return None
