"""Fault-tolerant distributed campaigns.

A coordinator owns the campaign work-list; workers lease one task at a
time over a request/reply transport (TCP, or a shared-filesystem file
queue for no-network CI), heartbeat while executing, stream partial
checkpoints back, and — when other workers sit idle — donate halves of
their frontier as stolen shard tasks.  Everything is at-least-once
with coordinator-side dedup; crash-recovery paths (worker death,
coordinator death, message replay) all resume from the last streamed
checkpoint.  See DESIGN.md §10 for the protocol and the
exactly-once-merge argument.
"""

from ..chaos import ChaosError, ChaosPlan, ChaosRule
from .coordinator import Coordinator
from .messages import PROTOCOL_VERSION, Task
from .transport import (
    FileCoordinatorServer,
    FileWorkerChannel,
    TcpCoordinatorServer,
    TcpWorkerChannel,
    TransportError,
)
from .worker import DistributedWorker

__all__ = [
    "ChaosError",
    "ChaosPlan",
    "ChaosRule",
    "Coordinator",
    "DistributedWorker",
    "FileCoordinatorServer",
    "FileWorkerChannel",
    "PROTOCOL_VERSION",
    "Task",
    "TcpCoordinatorServer",
    "TcpWorkerChannel",
    "TransportError",
]
