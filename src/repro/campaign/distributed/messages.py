"""Wire protocol of the distributed campaign: plain JSON dicts.

Every exchange is a worker-initiated request with exactly one
coordinator reply (RPC style), so both transports — a TCP socket and a
file queue — implement the same two tiny interfaces (see
:mod:`.transport`).  Messages are versioned dicts, not pickled
objects: a worker from a different checkout fails loudly on a version
mismatch instead of deserializing garbage.

Worker → coordinator message types (``"type"`` field):

=============  =====================================================
``hello``      register; reply carries limits, verify flag, lease
               timeout and heartbeat interval
``request``    ask for work; reply is ``lease`` (a :class:`Task`),
               ``idle`` (retry after ``wait`` seconds) or
               ``shutdown`` (campaign complete)
``heartbeat``  renew the lease; reply may carry ``abandon`` (lease
               lost — stop, discard) or ``steal`` (donate frontier)
``checkpoint`` stream an in-flight snapshot; reply may carry
               ``abandon``
``stolen``     deliver frontier shards cut off for a steal request
``result``     deliver the finished :class:`~repro.campaign.worker
               .CellResult`; duplicates are acknowledged, not merged
               twice
=============  =====================================================

All requests are safe to retry (the transports re-send on timeout):
``hello``/``request``/``heartbeat``/``checkpoint`` are idempotent,
``stolen`` is deduplicated by ``steal_id`` and ``result`` by task id.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional

from ..cells import CampaignCell

PROTOCOL_VERSION = 1

#: worker → coordinator request types
HELLO = "hello"
REQUEST = "request"
HEARTBEAT = "heartbeat"
CHECKPOINT = "checkpoint"
STOLEN = "stolen"
RESULT = "result"

#: coordinator → worker reply types
OK = "ok"
LEASE = "lease"
IDLE = "idle"
SHUTDOWN = "shutdown"
ERROR = "error"


@dataclass
class Task:
    """One leasable unit of work.

    A *cell task* (``task_id == cell.key``) runs a whole campaign
    cell, possibly resuming from ``snapshot`` (the last streamed
    checkpoint of a previous attempt, or a local partial).  A *shard
    task* (``task_id == "<cell.key>@stealN-i"``) runs one frontier
    shard stolen from a running cell; its ``snapshot`` is the shard
    state (zeroed statistics — the merge adds the victim's statistics
    exactly once).
    """

    task_id: str
    cell_key: str
    snapshot: Optional[Dict[str, Any]] = None
    attempt: int = 0

    @property
    def cell(self) -> CampaignCell:
        return CampaignCell.from_key(self.cell_key)

    @property
    def is_shard(self) -> bool:
        return "@" in self.task_id

    def to_dict(self) -> Dict[str, Any]:
        return {
            "task_id": self.task_id,
            "cell_key": self.cell_key,
            "snapshot": self.snapshot,
            "attempt": self.attempt,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "Task":
        return cls(
            task_id=payload["task_id"],
            cell_key=payload["cell_key"],
            snapshot=payload.get("snapshot"),
            attempt=int(payload.get("attempt", 0)),
        )


def reply_ok(**extra: Any) -> Dict[str, Any]:
    out: Dict[str, Any] = {"type": OK}
    out.update(extra)
    return out


def reply_error(message: str) -> Dict[str, Any]:
    return {"type": ERROR, "error": message}
