"""Cell execution: the one function every campaign worker runs.

``execute_cell`` resolves the cell's benchmark from the suite registry
and funnels into :func:`repro.explore.controller.run_single` — the same
function the serial harnesses call — so a sharded campaign produces
bit-for-bit the statistics a serial run would.

Failures are *data*, not exceptions: a worker never takes the pool down.
A crash inside an explorer (or an inequality violation under ``verify``)
comes back as a failed :class:`CellResult` carrying the traceback, and
the campaign driver decides whether that fails the run.

Frontier threading (see ``repro.explore.kernel``): a worker can start
a cell from a ``resume_state`` snapshot (a checkpointed partial, or
one shard of a split frontier), periodically checkpoints the in-flight
state to ``checkpoint_path``, and returns the final snapshot of a
budget-limited cell in :attr:`CellResult.partial` so a later run with
a laxer budget continues instead of restarting.
"""

from __future__ import annotations

import traceback
from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional, Tuple

from ..explore.base import ExplorationLimits, ExplorationStats
from ..explore.controller import run_single
from ..suite import REGISTRY
from .cells import CampaignCell
from .partial import write_partial


@dataclass
class CellResult:
    """Outcome of one cell: statistics, or a captured failure."""

    cell: CampaignCell
    stats: Optional[ExplorationStats]
    ok: bool = True
    error: Optional[str] = None
    cached: bool = False  #: satisfied from a checkpoint, not re-executed
    #: final explorer snapshot of a budget-limited cell (when the
    #: strategy supports snapshots); lets a laxer-budget resume
    #: continue from the frontier.  Persisted as a partial file, not
    #: in the main store document.
    partial: Optional[Dict[str, Any]] = None
    #: shard index within a split cell (-1 = not a shard)
    shard: int = -1
    #: shard count of the split this result belongs to (0 = unsplit)
    num_shards: int = 0
    #: failure/quarantine forensics (distributed campaigns): status
    #: (``"failed"``/``"timed_out"``/``"quarantined"``), retry count,
    #: worker ids that attempted the cell, the last traceback, and the
    #: schedule depth of the last usable checkpoint.  ``None`` (and
    #: absent from the JSON form) for healthy cells, so the historical
    #: document shape is unchanged.
    diagnostics: Optional[Dict[str, Any]] = None

    @property
    def unexpected_findings(self) -> bool:
        """Did the explorer report an error the suite does not expect?

        Benchmarks annotated ``expect_error`` (deadlocks, assertion
        violations) are *supposed* to yield findings; anything else
        reporting errors is a red flag for the smoke campaign.
        """
        if self.stats is None or not self.stats.errors:
            return False
        bench = REGISTRY.get(self.cell.bench_id)
        return bench is None or bench.expect_error is None

    def to_dict(self) -> Dict[str, Any]:
        payload = {
            "bench_id": self.cell.bench_id,
            "explorer": self.cell.explorer,
            "seed": self.cell.seed,
            "ok": self.ok,
            "error": self.error,
            "stats": self.stats.to_dict() if self.stats is not None else None,
        }
        if self.num_shards:
            payload["shard"] = self.shard
            payload["num_shards"] = self.num_shards
        if self.diagnostics is not None:
            payload["diagnostics"] = dict(self.diagnostics)
        return payload

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "CellResult":
        stats = payload.get("stats")
        return cls(
            cell=CampaignCell(
                payload["bench_id"], payload["explorer"],
                payload.get("seed", 0),
            ),
            stats=(ExplorationStats.from_dict(stats)
                   if stats is not None else None),
            ok=payload.get("ok", True),
            error=payload.get("error"),
            shard=payload.get("shard", -1),
            num_shards=payload.get("num_shards", 0),
            diagnostics=payload.get("diagnostics"),
        )


def execute_cell(
    cell: CampaignCell,
    limits: Optional[ExplorationLimits] = None,
    verify: bool = True,
    resume_state: Optional[Dict[str, Any]] = None,
    checkpoint_path: Optional[str] = None,
    checkpoint_key: Optional[str] = None,
    checkpoint_interval: float = 2.0,
    shard: int = -1,
    num_shards: int = 0,
    checkpoint_fn: Optional[Callable[[Dict[str, Any]], None]] = None,
    control_fn: Optional[Callable[[Any], None]] = None,
    on_explorer: Optional[Callable[[Any], None]] = None,
) -> CellResult:
    """Run one cell to completion, trapping any failure.

    Per-cell budgets ride on ``limits``: ``max_schedules`` bounds the
    work, ``max_seconds`` is the per-cell (cooperative) timeout, and
    ``max_events_per_schedule`` bounds any single execution — so no cell
    can wedge a worker indefinitely.

    With ``resume_state`` the explorer restores a snapshot and
    continues (restored schedule/elapsed counts are charged against
    ``limits``).  With ``checkpoint_path`` the in-flight state is
    written there (atomic replace) at most every
    ``checkpoint_interval`` seconds, so an interrupted campaign resumes
    the cell from (almost) where it stopped.  ``checkpoint_fn``
    overrides the file sink with a custom one (the distributed worker
    streams checkpoints to the coordinator instead); ``control_fn`` is
    installed as the explorer's between-schedules control callback
    (heartbeats, steal commands, fault injection — see
    :meth:`repro.explore.base.Explorer.set_control`).
    """
    limits = limits or ExplorationLimits()
    bench = REGISTRY.get(cell.bench_id)
    if bench is None:
        return CellResult(
            cell, None, ok=False,
            error=f"no suite benchmark with id {cell.bench_id}",
            shard=shard, num_shards=num_shards,
        )
    key = checkpoint_key if checkpoint_key is not None else cell.key
    if checkpoint_fn is None and checkpoint_path is not None:
        def checkpoint_fn(snapshot: Dict[str, Any]) -> None:
            write_partial(checkpoint_path, key, limits, snapshot)

    holder: Dict[str, Any] = {}

    def grab(explorer) -> None:
        holder["explorer"] = explorer
        if on_explorer is not None:
            on_explorer(explorer)

    try:
        stats = run_single(
            bench.program, cell.explorer, limits, seed=cell.seed,
            verify=verify, resume_state=resume_state,
            checkpoint_fn=checkpoint_fn,
            checkpoint_interval=checkpoint_interval,
            control_fn=control_fn,
            on_explorer=grab,
        )
        result = CellResult(cell, stats, shard=shard, num_shards=num_shards)
        explorer = holder.get("explorer")
        if (stats.limit_hit and explorer is not None
                and hasattr(explorer, "snapshot")):
            result.partial = explorer.snapshot()
            if checkpoint_fn is not None:
                checkpoint_fn(result.partial)
        return result
    except Exception as exc:  # noqa: BLE001 - workers must not crash
        return CellResult(
            cell, None, ok=False,
            error=f"{type(exc).__name__}: {exc}\n"
                  f"{traceback.format_exc(limit=8)}",
            shard=shard, num_shards=num_shards,
        )


def execute_cell_with_watchdog(
    cell: CampaignCell,
    limits: Optional[ExplorationLimits] = None,
    verify: bool = True,
    hard_timeout: Optional[float] = None,
    resume_state: Optional[Dict[str, Any]] = None,
    checkpoint_fn: Optional[Callable[[Dict[str, Any]], None]] = None,
    control_fn: Optional[Callable[[Any], None]] = None,
    checkpoint_interval: float = 2.0,
    _execute: Callable[..., CellResult] = None,
) -> CellResult:
    """Run one cell under a hard wall-clock watchdog.

    ``ExplorationLimits.max_seconds`` is a *cooperative* deadline —
    probed every 32 scheduling points — so a cell that wedges inside a
    single step (a pathological guest, a runaway object semantics bug)
    would hold its lease forever.  The watchdog runs the cell in a
    daemon thread and, if it has not finished after ``hard_timeout``
    seconds, reports the cell as ``timed_out`` (a failed
    :class:`CellResult` with ``diagnostics["status"] == "timed_out"``)
    instead of stalling or crashing the worker.

    The overrunning thread cannot be killed (CPython has no thread
    cancellation); it is asked to stop cooperatively
    (:meth:`~repro.explore.base.Explorer.request_stop`) and abandoned
    as a daemon — it stops burning CPU at the next schedule boundary
    it ever reaches, and dies with the worker process.  ``None``
    disables the watchdog (plain :func:`execute_cell`).
    """
    import threading

    execute = _execute or execute_cell
    if hard_timeout is None:
        return execute(cell, limits, verify, resume_state=resume_state,
                       checkpoint_fn=checkpoint_fn, control_fn=control_fn,
                       checkpoint_interval=checkpoint_interval)
    box: Dict[str, Any] = {}

    def capture_control(explorer) -> None:
        # runs at every schedule boundary: keep the live explorer in
        # reach so the watchdog can ask it to stop cooperatively
        box["explorer"] = explorer
        if control_fn is not None:
            control_fn(explorer)

    def target() -> None:
        box["result"] = execute(
            cell, limits, verify, resume_state=resume_state,
            checkpoint_fn=checkpoint_fn, control_fn=capture_control,
            checkpoint_interval=checkpoint_interval,
        )

    thread = threading.Thread(
        target=target, daemon=True,
        name=f"cell-{cell.key}",
    )
    thread.start()
    thread.join(hard_timeout)
    if thread.is_alive():
        explorer = box.get("explorer")
        if explorer is not None and hasattr(explorer, "request_stop"):
            explorer.request_stop()
        return CellResult(
            cell, None, ok=False,
            error=(f"hard watchdog: cell still running after "
                   f"{hard_timeout:g}s"),
            diagnostics={
                "status": "timed_out",
                "hard_timeout": hard_timeout,
            },
        )
    result = box.get("result")
    if result is None:  # pragma: no cover - thread died abnormally
        return CellResult(cell, None, ok=False,
                          error="worker thread died without a result")
    return result


def _pool_entry(
    packed: Tuple[CampaignCell, Optional[ExplorationLimits], bool,
                  Optional[Dict[str, Any]], Optional[str], Optional[str],
                  int, int],
) -> CellResult:
    """Top-level (picklable) entry point for ``multiprocessing`` pools."""
    (cell, limits, verify, resume_state, checkpoint_path,
     checkpoint_key, shard, num_shards) = packed
    return execute_cell(
        cell, limits, verify,
        resume_state=resume_state,
        checkpoint_path=checkpoint_path,
        checkpoint_key=checkpoint_key,
        shard=shard,
        num_shards=num_shards,
    )
