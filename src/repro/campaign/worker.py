"""Cell execution: the one function every campaign worker runs.

``execute_cell`` resolves the cell's benchmark from the suite registry
and funnels into :func:`repro.explore.controller.run_single` — the same
function the serial harnesses call — so a sharded campaign produces
bit-for-bit the statistics a serial run would.

Failures are *data*, not exceptions: a worker never takes the pool down.
A crash inside an explorer (or an inequality violation under ``verify``)
comes back as a failed :class:`CellResult` carrying the traceback, and
the campaign driver decides whether that fails the run.
"""

from __future__ import annotations

import traceback
from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple

from ..explore.base import ExplorationLimits, ExplorationStats
from ..explore.controller import run_single
from ..suite import REGISTRY
from .cells import CampaignCell


@dataclass
class CellResult:
    """Outcome of one cell: statistics, or a captured failure."""

    cell: CampaignCell
    stats: Optional[ExplorationStats]
    ok: bool = True
    error: Optional[str] = None
    cached: bool = False  #: satisfied from a checkpoint, not re-executed

    @property
    def unexpected_findings(self) -> bool:
        """Did the explorer report an error the suite does not expect?

        Benchmarks annotated ``expect_error`` (deadlocks, assertion
        violations) are *supposed* to yield findings; anything else
        reporting errors is a red flag for the smoke campaign.
        """
        if self.stats is None or not self.stats.errors:
            return False
        bench = REGISTRY.get(self.cell.bench_id)
        return bench is None or bench.expect_error is None

    def to_dict(self) -> Dict[str, Any]:
        return {
            "bench_id": self.cell.bench_id,
            "explorer": self.cell.explorer,
            "seed": self.cell.seed,
            "ok": self.ok,
            "error": self.error,
            "stats": self.stats.to_dict() if self.stats is not None else None,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "CellResult":
        stats = payload.get("stats")
        return cls(
            cell=CampaignCell(
                payload["bench_id"], payload["explorer"],
                payload.get("seed", 0),
            ),
            stats=(ExplorationStats.from_dict(stats)
                   if stats is not None else None),
            ok=payload.get("ok", True),
            error=payload.get("error"),
        )


def execute_cell(
    cell: CampaignCell,
    limits: Optional[ExplorationLimits] = None,
    verify: bool = True,
) -> CellResult:
    """Run one cell to completion, trapping any failure.

    Per-cell budgets ride on ``limits``: ``max_schedules`` bounds the
    work, ``max_seconds`` is the per-cell (cooperative) timeout, and
    ``max_events_per_schedule`` bounds any single execution — so no cell
    can wedge a worker indefinitely.
    """
    bench = REGISTRY.get(cell.bench_id)
    if bench is None:
        return CellResult(
            cell, None, ok=False,
            error=f"no suite benchmark with id {cell.bench_id}",
        )
    try:
        stats = run_single(
            bench.program, cell.explorer, limits, seed=cell.seed,
            verify=verify,
        )
        return CellResult(cell, stats)
    except Exception as exc:  # noqa: BLE001 - workers must not crash
        return CellResult(
            cell, None, ok=False,
            error=f"{type(exc).__name__}: {exc}\n"
                  f"{traceback.format_exc(limit=8)}",
        )


def _pool_entry(
    packed: Tuple[CampaignCell, Optional[ExplorationLimits], bool],
) -> CellResult:
    """Top-level (picklable) entry point for ``multiprocessing`` pools."""
    cell, limits, verify = packed
    return execute_cell(cell, limits, verify)
