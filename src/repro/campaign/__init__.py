"""Parallel campaign runner: shard the explorer × benchmark × seed
matrix across a process pool.

The paper's evaluation is a big run-matrix; this subsystem makes it
wall-clock-bound by core count instead of single-thread speed:

* :mod:`~repro.campaign.cells` — the deterministic work-list;
* :mod:`~repro.campaign.worker` — one-cell execution (shared with the
  serial harnesses via :func:`repro.explore.controller.run_single`);
* :mod:`~repro.campaign.store` — resumable JSON checkpointing;
* :mod:`~repro.campaign.runner` — the ``multiprocessing`` driver;
* :mod:`~repro.campaign.aggregate` — order-independent aggregation.

CLI: ``python -m repro campaign --jobs 8`` (see ``--help``).
"""

from .aggregate import (
    CampaignReport,
    CampaignSummary,
    campaign_report,
    comparison_rows,
    merge_shard_results,
    stats_by_cell,
)
from .cells import CampaignCell, build_cells
from .runner import CampaignResult, run_campaign
from .split import SplitPlan, prepare_split, shard_key
from .store import ResultStore
from .worker import CellResult, execute_cell

__all__ = [
    "CampaignCell",
    "CampaignReport",
    "CampaignResult",
    "CampaignSummary",
    "CellResult",
    "ResultStore",
    "SplitPlan",
    "build_cells",
    "campaign_report",
    "comparison_rows",
    "execute_cell",
    "merge_shard_results",
    "prepare_split",
    "run_campaign",
    "shard_key",
    "stats_by_cell",
]
