"""Parallel campaign runner: shard the explorer × benchmark × seed
matrix across a process pool — or a fleet of distributed workers.

The paper's evaluation is a big run-matrix; this subsystem makes it
wall-clock-bound by core count instead of single-thread speed:

* :mod:`~repro.campaign.cells` — the deterministic work-list;
* :mod:`~repro.campaign.worker` — one-cell execution (shared with the
  serial harnesses via :func:`repro.explore.controller.run_single`);
* :mod:`~repro.campaign.store` — resumable JSON checkpointing;
* :mod:`~repro.campaign.runner` — the ``multiprocessing`` driver;
* :mod:`~repro.campaign.aggregate` — order-independent aggregation;
* :mod:`~repro.campaign.distributed` — fault-tolerant
  coordinator/worker campaigns (leases, heartbeats, work stealing,
  poison quarantine) over TCP or a file queue;
* :mod:`~repro.campaign.chaos` — deterministic fault injection for
  the robustness tests and CI.

CLI: ``python -m repro campaign --jobs 8`` (see ``--help``), or
``--coordinator`` / ``--worker`` for the distributed mode.
"""

from .aggregate import (
    CampaignReport,
    CampaignSummary,
    campaign_report,
    canonical_report_dict,
    comparison_rows,
    merge_shard_results,
    merge_stolen_results,
    stats_by_cell,
)
from .cells import CampaignCell, build_cells
from .chaos import ChaosError, ChaosPlan, ChaosRule
from .runner import CampaignResult, run_campaign
from .split import SplitPlan, prepare_split, shard_key
from .store import ResultStore
from .worker import CellResult, execute_cell, execute_cell_with_watchdog

__all__ = [
    "CampaignCell",
    "CampaignReport",
    "CampaignResult",
    "CampaignSummary",
    "CellResult",
    "ChaosError",
    "ChaosPlan",
    "ChaosRule",
    "ResultStore",
    "SplitPlan",
    "build_cells",
    "campaign_report",
    "canonical_report_dict",
    "comparison_rows",
    "execute_cell",
    "execute_cell_with_watchdog",
    "merge_shard_results",
    "merge_stolen_results",
    "prepare_split",
    "run_campaign",
    "shard_key",
    "stats_by_cell",
]
