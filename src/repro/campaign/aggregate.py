"""Deterministic aggregation of campaign results.

Completion order under a pool is nondeterministic; everything here
re-keys results by ``(bench_id, explorer, seed)`` so the aggregated
rows — and therefore the rendered reports — are identical however the
cells were scheduled.  Figure-specific aggregation (``Figure2Row``,
``Figure3Row``) lives next to those row types in
:mod:`repro.analysis.runner`; this module covers the explorer-matrix
and raw-JSON views that do not depend on the analysis layer.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

from ..explore.base import ExplorationLimits, ExplorationStats
from ..explore.controller import ComparisonRow
from ..suite import REGISTRY
from .runner import CampaignResult
from .worker import CellResult


def merge_shard_results(
    seed_result: CellResult,
    shard_results: Sequence[CellResult],
) -> CellResult:
    """Union-merge one split cell back into a logical cell result.

    The merge is deterministic — seed first, then shards in index
    order — and operates on the *set* payloads of
    :class:`ExplorationStats` (fingerprints, state hashes, error
    kinds), so for exhaustively explored cells the merged distinct
    counts are exactly those of the equivalent unsplit run, however
    the shards were scheduled.  Additive counters (schedules, events,
    elapsed) sum across seed + shards.

    Any failed shard fails the logical cell (its error is surfaced);
    the merged cell is ``exhausted`` only if every shard exhausted its
    sub-frontier.
    """
    cell = seed_result.cell
    failures = [r for r in ([seed_result] + list(shard_results))
                if not r.ok or r.stats is None]
    if failures:
        first = failures[0]
        return CellResult(
            cell, None, ok=False,
            error=(f"shard {first.shard}/{first.num_shards} failed: "
                   f"{first.error}" if first.num_shards else first.error),
        )
    merged = ExplorationStats.from_dict(seed_result.stats.to_dict())
    # the seed stopped early by design; exhaustion of the logical cell
    # is decided purely by the shards (AND across them)
    merged.exhausted = True
    merged.limit_hit = False
    for shard in sorted(shard_results, key=lambda r: r.shard):
        merged.merge(shard.stats)
    merged.extra["split_shards"] = len(shard_results)
    merged.extra["split_seed_schedules"] = seed_result.stats.num_schedules
    return CellResult(cell, merged)


def stats_by_cell(
    results: Sequence[CellResult],
) -> Dict[tuple, ExplorationStats]:
    """``(bench_id, explorer, seed) -> stats`` for completed cells."""
    return {
        (r.cell.bench_id, r.cell.explorer, r.cell.seed): r.stats
        for r in results
        if r.ok and r.stats is not None
    }


def comparison_rows(results: Sequence[CellResult]) -> List[ComparisonRow]:
    """Re-assemble campaign cells into the rows ``matrix_report``
    renders: one row per benchmark (ascending id), explorers in cell
    order, multi-seed cells suffixed ``name#seed``."""
    by_bench: Dict[int, ComparisonRow] = {}
    for r in sorted(results, key=lambda r: r.cell):
        if not r.ok or r.stats is None:
            continue
        row = by_bench.get(r.cell.bench_id)
        if row is None:
            bench = REGISTRY.get(r.cell.bench_id)
            name = (bench.program.name if bench is not None
                    else r.stats.program_name)
            row = by_bench.setdefault(
                r.cell.bench_id, ComparisonRow(name)
            )
        row.by_explorer[r.cell.label] = r.stats
    return [by_bench[bid] for bid in sorted(by_bench)]


def campaign_report(
    campaign: CampaignResult,
    limits: Optional[ExplorationLimits] = None,
    meta: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """JSON-serialisable campaign report (the ``--out`` artifact)."""
    totals = {
        "num_cells": len(campaign.results),
        "num_executed": campaign.num_executed,
        "num_cached": campaign.num_cached,
        "num_failed": len(campaign.failures),
        "num_unexpected": len(campaign.unexpected),
        "total_schedules": sum(
            r.stats.num_schedules for r in campaign.results
            if r.stats is not None
        ),
        "total_events": sum(
            r.stats.num_events for r in campaign.results
            if r.stats is not None
        ),
        "jobs": campaign.jobs,
        "elapsed": campaign.elapsed,
    }
    report: Dict[str, Any] = {
        "kind": "repro-campaign-report",
        "version": 1,
        "summary": totals,
        "cells": [r.to_dict() for r in campaign.results],
    }
    if limits is not None:
        report["limits"] = {
            "max_schedules": limits.max_schedules,
            "max_seconds": limits.max_seconds,
            "max_events_per_schedule": limits.max_events_per_schedule,
        }
    if meta:
        report["campaign"] = dict(meta)
    return report
