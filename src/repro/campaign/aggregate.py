"""Deterministic aggregation of campaign results.

Completion order under a pool is nondeterministic; everything here
re-keys results by ``(bench_id, explorer, seed)`` so the aggregated
rows — and therefore the rendered reports — are identical however the
cells were scheduled.  Figure-specific aggregation (``Figure2Row``,
``Figure3Row``) lives next to those row types in
:mod:`repro.analysis.runner`; this module covers the explorer-matrix
and raw-JSON views that do not depend on the analysis layer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Sequence

from ..explore.base import ExplorationLimits, ExplorationStats
from ..explore.controller import ComparisonRow
from ..suite import REGISTRY
from .runner import CampaignResult
from .worker import CellResult

if TYPE_CHECKING:  # circular at runtime: analysis.runner imports campaign
    from ..analysis.runner import Figure2Row, Figure3Row


def merge_shard_results(
    seed_result: CellResult,
    shard_results: Sequence[CellResult],
) -> CellResult:
    """Union-merge one split cell back into a logical cell result.

    The merge is deterministic — seed first, then shards in index
    order — and operates on the *set* payloads of
    :class:`ExplorationStats` (fingerprints, state hashes, error
    kinds), so for exhaustively explored cells the merged distinct
    counts are exactly those of the equivalent unsplit run, however
    the shards were scheduled.  Additive counters (schedules, events,
    elapsed) sum across seed + shards.

    Any failed shard fails the logical cell (its error is surfaced);
    the merged cell is ``exhausted`` only if every shard exhausted its
    sub-frontier.
    """
    cell = seed_result.cell
    failures = [r for r in ([seed_result] + list(shard_results))
                if not r.ok or r.stats is None]
    if failures:
        first = failures[0]
        return CellResult(
            cell, None, ok=False,
            error=(f"shard {first.shard}/{first.num_shards} failed: "
                   f"{first.error}" if first.num_shards else first.error),
        )
    merged = ExplorationStats.from_dict(seed_result.stats.to_dict())
    # the seed stopped early by design; exhaustion of the logical cell
    # is decided purely by the shards (AND across them)
    merged.exhausted = True
    merged.limit_hit = False
    for shard in sorted(shard_results, key=lambda r: r.shard):
        merged.merge(shard.stats)
    merged.extra["split_shards"] = len(shard_results)
    merged.extra["split_seed_schedules"] = seed_result.stats.num_schedules
    return CellResult(cell, merged)


def merge_stolen_results(
    parent_result: CellResult,
    shard_results: Sequence[CellResult],
) -> CellResult:
    """Union-merge work-stealing shards back into their logical cell.

    The distributed coordinator's counterpart of
    :func:`merge_shard_results`.  The parent attempt's statistics are
    *cumulative over the whole cell minus the stolen subtrees* (the
    victim keeps exploring after the steal), and each shard covers
    exactly its stolen subtrees — the frontier partition guarantees
    disjointness — so summing counters and unioning the fingerprint
    sets reproduces the serial run for count-exact strategies.  Merge
    order is deterministic: parent first, then shards in creation
    order (the order the coordinator recorded them).

    Provenance goes under ``dist_``-prefixed ``extra`` keys, which the
    canonical report view strips (see :func:`canonical_report_dict`).
    """
    cell = parent_result.cell
    failures = [r for r in ([parent_result] + list(shard_results))
                if not r.ok or r.stats is None]
    if failures:
        first = failures[0]
        return CellResult(cell, None, ok=False, error=first.error,
                          diagnostics=first.diagnostics)
    merged = ExplorationStats.from_dict(parent_result.stats.to_dict())
    for shard in shard_results:
        merged.merge(shard.stats)
    merged.extra["dist_stolen_shards"] = len(shard_results)
    return CellResult(cell, merged)


#: summary fields that record execution provenance (how the campaign
#: ran), not exploration results (what it computed)
_PROVENANCE_SUMMARY_FIELDS = ("jobs", "elapsed", "num_executed",
                              "num_cached")


def canonical_report_dict(report: Dict[str, Any]) -> Dict[str, Any]:
    """The execution-invariant view of a campaign report document.

    Two campaigns over the same cells with the same limits — serial,
    pooled, or distributed with workers dying mid-cell — must agree on
    this view *byte for byte* once JSON-serialized with sorted keys.
    It strips exactly the provenance that legitimately varies with how
    (not what) the campaign computed: wall-clock ``elapsed``, the
    executed/cached split (a resumed campaign re-executes fewer
    cells), worker counts, the ``campaign`` metadata block, and
    ``dist_``-prefixed ``extra`` keys (stolen-shard bookkeeping).
    """
    out = {k: v for k, v in report.items() if k != "campaign"}
    summary = report.get("summary")
    if isinstance(summary, dict):
        out["summary"] = {k: v for k, v in summary.items()
                          if k not in _PROVENANCE_SUMMARY_FIELDS}
    cells = report.get("cells")
    if isinstance(cells, list):
        out["cells"] = [_canonical_cell(c) for c in cells]
    return out


def _canonical_cell(cell: Any) -> Any:
    if not isinstance(cell, dict):
        return cell
    out = dict(cell)
    stats = cell.get("stats")
    if isinstance(stats, dict):
        stats = {k: v for k, v in stats.items() if k != "elapsed"}
        extra = stats.get("extra")
        if isinstance(extra, dict):
            stats["extra"] = {k: v for k, v in extra.items()
                              if not k.startswith("dist_")}
        out["stats"] = stats
    return out


def stats_by_cell(
    results: Sequence[CellResult],
) -> Dict[tuple, ExplorationStats]:
    """``(bench_id, explorer, seed) -> stats`` for completed cells."""
    return {
        (r.cell.bench_id, r.cell.explorer, r.cell.seed): r.stats
        for r in results
        if r.ok and r.stats is not None
    }


def comparison_rows(results: Sequence[CellResult]) -> List[ComparisonRow]:
    """Re-assemble campaign cells into the rows ``matrix_report``
    renders: one row per benchmark (ascending id), explorers in cell
    order, multi-seed cells suffixed ``name#seed``."""
    by_bench: Dict[int, ComparisonRow] = {}
    for r in sorted(results, key=lambda r: r.cell):
        if not r.ok or r.stats is None:
            continue
        row = by_bench.get(r.cell.bench_id)
        if row is None:
            bench = REGISTRY.get(r.cell.bench_id)
            name = (bench.program.name if bench is not None
                    else r.stats.program_name)
            row = by_bench.setdefault(
                r.cell.bench_id, ComparisonRow(name)
            )
        row.by_explorer[r.cell.label] = r.stats
    return [by_bench[bid] for bid in sorted(by_bench)]


@dataclass
class CampaignSummary:
    """Aggregate counters of one campaign (the report's ``summary``)."""

    num_cells: int = 0
    num_executed: int = 0
    num_cached: int = 0
    num_failed: int = 0
    num_unexpected: int = 0
    total_schedules: int = 0
    total_events: int = 0
    jobs: int = 1
    elapsed: float = 0.0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "num_cells": self.num_cells,
            "num_executed": self.num_executed,
            "num_cached": self.num_cached,
            "num_failed": self.num_failed,
            "num_unexpected": self.num_unexpected,
            "total_schedules": self.total_schedules,
            "total_events": self.total_events,
            "jobs": self.jobs,
            "elapsed": self.elapsed,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "CampaignSummary":
        return cls(**payload)

    @classmethod
    def from_campaign(cls, campaign: CampaignResult) -> "CampaignSummary":
        return cls(
            num_cells=len(campaign.results),
            num_executed=campaign.num_executed,
            num_cached=campaign.num_cached,
            num_failed=len(campaign.failures),
            num_unexpected=len(campaign.unexpected),
            total_schedules=sum(
                r.stats.num_schedules for r in campaign.results
                if r.stats is not None
            ),
            total_events=sum(
                r.stats.num_events for r in campaign.results
                if r.stats is not None
            ),
            jobs=campaign.jobs,
            elapsed=campaign.elapsed,
        )


@dataclass
class CampaignReport:
    """The ``--out`` artifact, typed: summary + cells (+ optional limits,
    campaign metadata and re-derived figure rows).

    ``to_dict``/``from_dict`` round-trip losslessly and produce exactly
    the historical JSON document shape, so existing report consumers
    keep working unchanged.
    """

    KIND = "repro-campaign-report"
    VERSION = 1

    summary: CampaignSummary
    cells: List[CellResult] = field(default_factory=list)
    limits: Optional[ExplorationLimits] = None
    campaign: Optional[Dict[str, Any]] = None
    figure2: Optional[List["Figure2Row"]] = None
    figure3: Optional[List["Figure3Row"]] = None

    def to_dict(self) -> Dict[str, Any]:
        report: Dict[str, Any] = {
            "kind": self.KIND,
            "version": self.VERSION,
            "summary": self.summary.to_dict(),
            "cells": [r.to_dict() for r in self.cells],
        }
        if self.limits is not None:
            report["limits"] = {
                "max_schedules": self.limits.max_schedules,
                "max_seconds": self.limits.max_seconds,
                "max_events_per_schedule":
                    self.limits.max_events_per_schedule,
            }
        if self.campaign:
            report["campaign"] = dict(self.campaign)
        if self.figure2:
            report["figure2"] = [r.to_dict() for r in self.figure2]
        if self.figure3:
            report["figure3"] = [r.to_dict() for r in self.figure3]
        return report

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "CampaignReport":
        from ..analysis.runner import Figure2Row, Figure3Row
        kind = payload.get("kind")
        if kind != cls.KIND:
            raise ValueError(f"not a campaign report: kind={kind!r}")
        version = payload.get("version")
        if version != cls.VERSION:
            raise ValueError(f"unsupported report version {version!r}")
        limits = None
        if "limits" in payload:
            lim = payload["limits"]
            limits = ExplorationLimits(
                max_schedules=lim["max_schedules"],
                max_seconds=lim["max_seconds"],
                max_events_per_schedule=lim["max_events_per_schedule"],
            )
        return cls(
            summary=CampaignSummary.from_dict(payload["summary"]),
            cells=[CellResult.from_dict(c) for c in payload["cells"]],
            limits=limits,
            campaign=payload.get("campaign"),
            figure2=([Figure2Row.from_dict(r) for r in payload["figure2"]]
                     if "figure2" in payload else None),
            figure3=([Figure3Row.from_dict(r) for r in payload["figure3"]]
                     if "figure3" in payload else None),
        )


def campaign_report(
    campaign: CampaignResult,
    limits: Optional[ExplorationLimits] = None,
    meta: Optional[Dict[str, Any]] = None,
    figure2: Optional[List["Figure2Row"]] = None,
    figure3: Optional[List["Figure3Row"]] = None,
) -> CampaignReport:
    """Typed campaign report (serialise with ``.to_dict()``)."""
    return CampaignReport(
        summary=CampaignSummary.from_campaign(campaign),
        cells=list(campaign.results),
        limits=limits,
        campaign=dict(meta) if meta else None,
        figure2=figure2 or None,
        figure3=figure3 or None,
    )
