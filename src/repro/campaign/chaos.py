"""Deterministic fault injection for campaign robustness testing.

A :class:`ChaosPlan` is a list of rules, each firing when a matching
worker reaches a chosen schedule count inside a matching cell.  The
worker probes the plan from its between-schedules control callback
(see :meth:`repro.explore.base.Explorer.set_control`), which runs at
*every* schedule boundary — so ``after_schedules=40`` fires at exactly
the 40th boundary, reproducibly, regardless of wall-clock load.

Actions:

=============  ======================================================
``kill``       ``os._exit(137)`` — a SIGKILLed worker: no cleanup, no
               result message, lease expires
``hang``       sleep ``seconds`` inside the schedule boundary — a
               wedged worker: heartbeats stop, the lease expires (or
               the hard watchdog fires)
``fail``       raise :class:`ChaosError` — an internal worker crash:
               surfaces through the failed-:class:`CellResult` path
               with a traceback
``partition``  drop this worker's RPCs for ``seconds`` — a network
               partition: heartbeats are lost but the worker keeps
               computing and re-delivers its result afterwards
               (exercising at-least-once dedup)
=============  ======================================================

Plans serialize to JSON (``--chaos plan.json``) so CI jobs and tests
describe faults declaratively.  Rule fire-counts are per *process*:
a respawned worker starts with a fresh plan — which is the realistic
model (the replacement of a crashed worker is a new process), and why
repeated-kill rules drive cells into poison quarantine.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Union

from ..ioutil import atomic_write_json, read_json

CHAOS_VERSION = 1

ACTIONS = frozenset({"kill", "hang", "fail", "partition"})


class ChaosError(RuntimeError):
    """The injected in-process failure (``action == "fail"``)."""


@dataclass
class ChaosRule:
    """One fault: *what* happens, *where*, and *when*."""

    action: str
    #: cell key (``"3:dfs:0"``) this rule applies to; None = any cell
    cell: Optional[str] = None
    #: worker id this rule applies to; None = any worker
    worker: Optional[str] = None
    #: fire once the cell's schedule count reaches this value
    after_schedules: int = 0
    #: firings per worker process (-1 = unlimited)
    times: int = 1
    #: duration of ``hang``/``partition``
    seconds: float = 0.0

    def __post_init__(self) -> None:
        if self.action not in ACTIONS:
            raise ValueError(
                f"unknown chaos action {self.action!r}; "
                f"available: {sorted(ACTIONS)}"
            )

    def matches(self, worker_id: str, cell_key: str,
                schedules: int) -> bool:
        if self.worker is not None and self.worker != worker_id:
            return False
        if self.cell is not None and self.cell != cell_key:
            return False
        return schedules >= self.after_schedules

    def to_dict(self) -> Dict[str, Any]:
        return {
            "action": self.action,
            "cell": self.cell,
            "worker": self.worker,
            "after_schedules": self.after_schedules,
            "times": self.times,
            "seconds": self.seconds,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "ChaosRule":
        return cls(
            action=payload["action"],
            cell=payload.get("cell"),
            worker=payload.get("worker"),
            after_schedules=int(payload.get("after_schedules", 0)),
            times=int(payload.get("times", 1)),
            seconds=float(payload.get("seconds", 0.0)),
        )


class ChaosPlan:
    """An ordered rule list with per-process fire counting."""

    def __init__(self, rules: Sequence[ChaosRule] = ()) -> None:
        self.rules: List[ChaosRule] = list(rules)
        self._fired = [0] * len(self.rules)

    def __len__(self) -> int:
        return len(self.rules)

    def match(self, worker_id: str, cell_key: str,
              schedules: int) -> Optional[ChaosRule]:
        """First unexhausted rule matching this probe point (consumes
        one firing), or None."""
        for i, rule in enumerate(self.rules):
            if 0 <= rule.times <= self._fired[i]:
                continue
            if rule.matches(worker_id, cell_key, schedules):
                self._fired[i] += 1
                return rule
        return None

    def probe(self, worker_id: str, cell_key: str,
              schedules: int) -> Optional[ChaosRule]:
        """Probe and *perform* the matched fault.

        ``kill`` never returns; ``hang`` sleeps here and then returns
        the rule; ``fail`` raises :class:`ChaosError`; ``partition`` is
        returned for the caller (the worker owns its channel, so it
        implements the message-dropping window).
        """
        rule = self.match(worker_id, cell_key, schedules)
        if rule is None:
            return None
        if rule.action == "kill":
            # SIGKILL semantics: no atexit handlers, no flush, no
            # result message — the lease must expire at the coordinator
            os._exit(137)
        if rule.action == "hang":
            time.sleep(rule.seconds)
            return rule
        if rule.action == "fail":
            raise ChaosError(
                f"chaos: injected failure in {cell_key} at schedule "
                f"{schedules} on {worker_id}"
            )
        return rule  # partition: applied by the caller

    def to_dict(self) -> Dict[str, Any]:
        return {
            "version": CHAOS_VERSION,
            "rules": [r.to_dict() for r in self.rules],
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "ChaosPlan":
        if payload.get("version") != CHAOS_VERSION:
            raise ValueError(
                f"unsupported chaos plan version "
                f"{payload.get('version')!r}"
            )
        return cls([ChaosRule.from_dict(r)
                    for r in payload.get("rules", [])])

    def dump(self, path: Union[str, Path]) -> None:
        atomic_write_json(path, self.to_dict())

    @classmethod
    def load(cls, path: Union[str, Path]) -> "ChaosPlan":
        payload = read_json(path)
        if not isinstance(payload, dict):
            raise ValueError(f"unreadable chaos plan: {path}")
        return cls.from_dict(payload)
