"""Intra-cell sharding: split one cell's frontier across workers.

The PR-1 campaign shards only across whole ``explorer × benchmark ×
seed`` cells, so one big DFS cell is an unsplittable straggler.  For
kernel strategies (``repro.explore.SPLITTABLE_EXPLORERS``) a cell's
in-progress state is an explicit :class:`~repro.explore.frontier
.Frontier` of disjoint subtree roots, so the driver can:

1. **seed** — run the cell deterministically for a handful of
   schedules (``run_seed``) until the frontier holds at least ``k``
   work items;
2. **split** — ``Frontier.split(k)`` deals the items into ``k``
   disjoint, exhaustive sub-frontiers;
3. **fan out** — each shard runs on a worker as a restored snapshot
   with zeroed statistics (sharing the seed run's strategy state, e.g.
   the HBR cache built so far);
4. **merge** — :func:`repro.campaign.aggregate.merge_shard_results`
   union-merges seed + shard statistics (fingerprint/state/error
   *sets*, not just counts) into the statistics of the logical cell.

Seeding is deterministic and cheap, so a resumed campaign re-derives
identical shard states and completed shards are served from the
checkpoint store.

Budget note: each shard receives the full per-cell ``limits``; a split
cell may therefore execute up to ``k × max_schedules`` schedules.
Splitting targets *exhaustible* cells, where the merged fingerprint,
state and error sets are exactly those of the unsplit run (enforced by
tests); for budget-truncated cells the shards cover more ground than
one serial budget would, which is reported, not hidden
(``extra["split_shards"]``).
"""

from __future__ import annotations

import traceback
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from ..explore.base import ExplorationLimits
from ..explore.controller import make_explorer, supports_split
from ..explore.kernel import KernelExplorer, SNAPSHOT_VERSION
from ..suite import REGISTRY
from .cells import CampaignCell
from .worker import CellResult

#: schedules the driver-side seed run may spend growing the frontier
DEFAULT_SEED_SCHEDULES = 256

#: target frontier items per shard before splitting; more items per
#: shard smooths the exponential skew of subtree sizes under
#: round-robin dealing
SEED_ITEMS_PER_SHARD = 16


@dataclass
class SplitPlan:
    """Outcome of the seed phase for one splittable cell."""

    cell: CampaignCell
    num_shards: int
    #: seed-phase statistics (a real, verified exploration prefix) —
    #: or the complete/failed result when no sharding is needed
    seed_result: CellResult = None  # type: ignore[assignment]
    #: one restore() payload per shard; empty when ``completed``
    shard_states: List[Dict[str, Any]] = field(default_factory=list)
    #: the seed run finished (or failed) the cell outright
    completed: bool = False


def shard_key(cell: CampaignCell, index: int, num_shards: int) -> str:
    """Store key for one shard of a split cell."""
    return f"{cell.key}@{index}/{num_shards}"


def prepare_split(
    cell: CampaignCell,
    limits: Optional[ExplorationLimits],
    num_shards: int,
    verify: bool = True,
    seed_schedules: int = DEFAULT_SEED_SCHEDULES,
) -> SplitPlan:
    """Seed one cell and split its frontier into ``num_shards``.

    Deterministic: the same cell under the same limits always yields
    the same seed statistics and shard states.  Small cells that
    exhaust during seeding come back ``completed`` with the full
    result; failures are captured as failed results, mirroring
    :func:`repro.campaign.worker.execute_cell`.
    """
    if num_shards < 2:
        raise ValueError(f"split requires >= 2 shards, got {num_shards}")
    if not supports_split(cell.explorer):
        raise ValueError(
            f"explorer {cell.explorer!r} does not support frontier "
            f"splitting"
        )
    limits = limits or ExplorationLimits()
    bench = REGISTRY.get(cell.bench_id)
    if bench is None:
        return SplitPlan(
            cell, num_shards, completed=True,
            seed_result=CellResult(
                cell, None, ok=False,
                error=f"no suite benchmark with id {cell.bench_id}",
            ),
        )
    try:
        explorer = make_explorer(cell.explorer, bench.program, limits,
                                 cell.seed)
        assert isinstance(explorer, KernelExplorer)
        seed_stats = explorer.run_seed(
            min_items=num_shards * SEED_ITEMS_PER_SHARD,
            max_schedules=seed_schedules,
        )
        if verify:
            seed_stats.verify_inequality()
        if not explorer.frontier:
            # the whole cell fit into the seed budget: nothing to split
            return SplitPlan(
                cell, num_shards, completed=True,
                seed_result=CellResult(cell, seed_stats),
            )
        strategy_state = explorer.strategy.state_to_dict()
        shard_states = [
            {
                "version": SNAPSHOT_VERSION,
                "explorer": explorer.name,
                "program": bench.program.name,
                "frontier": shard.to_dict(),
                "stats": None,  # zeroed: the merge adds seed stats once
                "strategy": strategy_state,
            }
            for shard in explorer.frontier.split(num_shards)
        ]
        return SplitPlan(
            cell, num_shards,
            seed_result=CellResult(cell, seed_stats),
            shard_states=shard_states,
        )
    except Exception as exc:  # noqa: BLE001 - mirror execute_cell
        return SplitPlan(
            cell, num_shards, completed=True,
            seed_result=CellResult(
                cell, None, ok=False,
                error=f"{type(exc).__name__}: {exc}\n"
                      f"{traceback.format_exc(limit=8)}",
            ),
        )
